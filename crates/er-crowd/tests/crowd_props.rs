//! Property tests for the crowd machinery: EM recovers planted worker
//! reliabilities, never overrules a unanimous vote, and aggregation is
//! invariant to the order and batching in which votes arrive.

use er_crowd::{
    estimate, mix, Aggregation, CrowdConfig, CrowdPlan, EmConfig, VoteAsk, VoteMatrix, WorkerId,
    WorkerModel,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A pool whose planted flip rates fan out from `base` in both confusion
/// directions, so every worker is distinguishable.
fn planted_pool(n: usize, base: f64, seed: u64) -> Vec<WorkerModel> {
    (0..n)
        .map(|w| {
            let fm = (base + 0.03 * w as f64).min(0.4);
            let fu = (base + 0.02 * (n - 1 - w) as f64).min(0.4);
            WorkerModel::new(fm, fu, mix(seed, w as u64))
        })
        .collect()
}

/// Ground truth for a synthetic pair id: roughly one third matches.
fn truth(pair: u64) -> bool {
    pair.is_multiple_of(3)
}

/// Fills a full vote matrix: every worker votes on every pair.
fn full_matrix(pool: &[WorkerModel], pairs: u64) -> VoteMatrix {
    let mut matrix = VoteMatrix::new();
    for pair in 0..pairs {
        for (w, worker) in pool.iter().enumerate() {
            matrix.record(pair, WorkerId(w as u32), worker.vote(pair, truth(pair)));
        }
    }
    matrix
}

/// Drives a plan to completion against simulated workers, feeding votes back
/// in an order controlled by `scramble`, and returns the decided labels.
fn drive(
    config: CrowdConfig,
    pool: &[WorkerModel],
    pairs: &[u64],
    scramble: bool,
) -> (BTreeMap<u64, bool>, u64) {
    let mut plan = CrowdPlan::new(config);
    let mut asks: Vec<VoteAsk> = pairs.iter().flat_map(|&p| plan.submit(p)).collect();
    if scramble {
        asks.reverse();
    }
    while !asks.is_empty() {
        // The scrambled run serves newest-first, so escalations jump the
        // queue; the forward run strictly first-in-first-out.
        let ask = if scramble { asks.pop().expect("non-empty") } else { asks.remove(0) };
        let vote = pool[ask.worker.0 as usize].vote(ask.pair, truth(ask.pair));
        asks.extend(plan.absorb(ask.pair, ask.worker, vote));
    }
    let completed = plan.take_completed();
    let labels = plan.decide(&completed).into_iter().collect();
    (labels, plan.stats().votes)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// With every worker voting on every pair, EM's reliability estimates land
    /// within a small tolerance of the planted confusion matrices. The base
    /// rate stays in the identifiable regime — when an entire pool pushes
    /// toward 0.4+ flip rates, the latent labels themselves become ambiguous
    /// and no aggregator can attribute the noise to individual workers.
    #[test]
    fn em_recovers_planted_reliabilities(base in 0.02..0.15f64, seed in 0u64..500) {
        let pool = planted_pool(5, base, seed);
        let matrix = full_matrix(&pool, 900);
        let outcome = estimate(&matrix, &EmConfig::default());
        let mut total_error = 0.0;
        for (w, worker) in pool.iter().enumerate() {
            let est = &outcome.reliabilities[&WorkerId(w as u32)];
            let fm_err = (est.flip_match - worker.flip_match()).abs();
            let fu_err = (est.flip_unmatch - worker.flip_unmatch()).abs();
            prop_assert!(
                fm_err < 0.12 && fu_err < 0.12,
                "worker {w}: estimated ({:.3}, {:.3}) vs planted ({:.3}, {:.3})",
                est.flip_match, est.flip_unmatch, worker.flip_match(), worker.flip_unmatch(),
            );
            total_error += fm_err + fu_err;
        }
        prop_assert!(total_error / (2.0 * pool.len() as f64) < 0.06, "mean error {total_error}");
    }

    /// EM never flips a unanimous vote, whatever reliabilities it infers from
    /// the rest of the matrix.
    #[test]
    fn em_never_flips_a_unanimous_vote(base in 0.05..0.45f64, seed in 0u64..500) {
        let pool = planted_pool(5, base, seed);
        let matrix = full_matrix(&pool, 400);
        let outcome = estimate(&matrix, &EmConfig::default());
        let mut unanimous = 0usize;
        for (pair, row) in matrix.rows() {
            let votes: Vec<bool> = row.values().copied().collect();
            if votes.iter().all(|&v| v) || votes.iter().all(|&v| !v) {
                unanimous += 1;
                prop_assert!(
                    outcome.labels[&pair] == votes[0],
                    "unanimous pair {pair} was flipped"
                );
            }
        }
        prop_assert!(unanimous > 0, "grid produced no unanimous pair — vacuous case");
    }

    /// Decided labels and total vote cost do not depend on the order (or
    /// batching) in which votes arrive — for majority and for EM, fixed and
    /// adaptive redundancy alike.
    #[test]
    fn aggregation_is_invariant_to_vote_arrival_order(
        error in 0.0..0.4f64,
        seed in 0u64..500,
        adaptive in 0u64..2,
        em in 0u64..2,
    ) {
        let (adaptive, em) = (adaptive == 1, em == 1);
        let pool: Vec<WorkerModel> =
            (0..7).map(|w| WorkerModel::symmetric(error, mix(seed, w))).collect();
        let redundancy = if adaptive {
            er_crowd::Redundancy::Adaptive { min: 2, max: 5 }
        } else {
            er_crowd::Redundancy::Fixed(3)
        };
        let aggregation =
            if em { Aggregation::Em(EmConfig::default()) } else { Aggregation::Majority };
        let config = CrowdConfig { pool_size: pool.len(), redundancy, aggregation, seed };
        let forward_pairs: Vec<u64> = (0..240).collect();
        let mut reversed_pairs = forward_pairs.clone();
        reversed_pairs.reverse();
        let (forward, forward_votes) = drive(config.clone(), &pool, &forward_pairs, false);
        let (scrambled, scrambled_votes) = drive(config, &pool, &reversed_pairs, true);
        prop_assert_eq!(forward, scrambled);
        prop_assert_eq!(forward_votes, scrambled_votes);
    }
}
