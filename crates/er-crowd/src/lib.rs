//! `er-crowd` — crowd labeling for entity resolution: per-worker reliability
//! models, redundant assignment, and vote aggregation.
//!
//! The HUMO guarantee machinery assumes a single perfectly consistent oracle;
//! production labels come from a crowd of workers with heterogeneous, unknown
//! error rates. This crate models that gap as three composable pieces, all
//! deterministic and dependency-free (like `er-obs`, it sits below the rest of
//! the workspace — `humo` adapts it into its `Oracle`/session vocabulary):
//!
//! 1. **[`WorkerModel`]** — a simulated worker with an asymmetric confusion
//!    matrix (separate match/non-match flip rates). Votes are pure functions
//!    of `(worker seed, pair id)` via the same SplitMix64 finalizer the
//!    single-oracle `NoisyOracle` uses, so they are order-, batch- and
//!    replay-invariant.
//! 2. **[`AssignmentPlanner`]** — fans each pair out to
//!    [`Redundancy::Fixed`]`(r)` distinct workers, or adaptively
//!    ([`Redundancy::Adaptive`]) starting from `min` and escalating one worker
//!    at a time *only on disagreement*, up to `max`. Rosters are seeded
//!    per-pair permutations: pure, distinct, replay-stable.
//! 3. **Aggregation** — [`majority`] vote, or a Dawid–Skene-style EM
//!    estimator ([`estimate`]) that jointly infers per-worker flip rates and
//!    per-pair posteriors from the [`VoteMatrix`] alone. The EM's uniform
//!    class prior and `[min_rate, 0.5]` rate clamps guarantee it never flips
//!    a unanimous vote.
//!
//! [`CrowdPlan`] ties the three together as a re-entrant sans-I/O state
//! machine: submit pairs, dispatch the returned [`VoteAsk`]s, absorb votes
//! (possibly receiving escalation asks back), decide completed pairs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod assign;
pub mod plan;
pub mod worker;

pub use aggregate::{estimate, majority, EmConfig, EmOutcome, VoteMatrix, WorkerReliability};
pub use assign::{AssignmentPlanner, Redundancy};
pub use plan::{Aggregation, CrowdConfig, CrowdPlan, CrowdStats, VoteAsk};
pub use worker::{mix, unit_draw, WorkerId, WorkerModel};
