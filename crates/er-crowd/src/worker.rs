//! Per-worker reliability models with deterministic, replay-invariant votes.
//!
//! A [`WorkerModel`] is a simulated crowd worker with an *asymmetric* confusion
//! matrix: the probability of flipping a true match to "unmatch" and the
//! probability of flipping a true non-match to "match" are configured
//! separately, because real annotators miss matches (conservative skimming)
//! far more often than they invent them. Whether a given worker flips a given
//! pair is a pure function of `(worker seed, pair id)` — the same SplitMix64
//! finalizer the single-oracle `NoisyOracle` has always used — so votes do not
//! depend on the order, batching or replay count of the queries. That is the
//! invariant every crash-safe driver in this workspace relies on: re-asking a
//! worker after a resume reproduces the identical vote.

/// Identifies one worker inside a crowd pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WorkerId(pub u32);

impl std::fmt::Display for WorkerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// A simulated crowd worker: an asymmetric confusion matrix over binary labels
/// plus a private seed making every vote a pure function of the pair id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerModel {
    flip_match: f64,
    flip_unmatch: f64,
    seed: u64,
}

impl WorkerModel {
    /// Creates a worker flipping true matches with probability `flip_match`
    /// and true non-matches with probability `flip_unmatch`.
    ///
    /// # Panics
    /// Panics if either flip rate is outside `[0, 1]`.
    pub fn new(flip_match: f64, flip_unmatch: f64, seed: u64) -> Self {
        for rate in [flip_match, flip_unmatch] {
            assert!((0.0..=1.0).contains(&rate), "flip rate must be in [0,1], got {rate}");
        }
        Self { flip_match, flip_unmatch, seed }
    }

    /// A symmetric worker: both flip rates equal `error_rate`. A pool of one
    /// symmetric worker reproduces the classic `NoisyOracle` byte-for-byte.
    ///
    /// # Panics
    /// Panics if `error_rate` is outside `[0, 1]`.
    pub fn symmetric(error_rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&error_rate), "error rate must be in [0,1], got {error_rate}");
        Self { flip_match: error_rate, flip_unmatch: error_rate, seed }
    }

    /// Probability of voting "unmatch" on a true match.
    pub fn flip_match(&self) -> f64 {
        self.flip_match
    }

    /// Probability of voting "match" on a true non-match.
    pub fn flip_unmatch(&self) -> f64 {
        self.flip_unmatch
    }

    /// The worker's private seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether this worker flips the given pair: a pure function of
    /// `(seed, pair)` and the truth-dependent flip rate. A symmetric worker
    /// makes the identical decision the classic `NoisyOracle` makes for the
    /// same `(seed, pair)`.
    pub fn flips(&self, pair: u64, truth_is_match: bool) -> bool {
        let rate = if truth_is_match { self.flip_match } else { self.flip_unmatch };
        unit_draw(self.seed, pair) < rate
    }

    /// The worker's vote on a pair whose ground truth is `truth_is_match`.
    pub fn vote(&self, pair: u64, truth_is_match: bool) -> bool {
        truth_is_match != self.flips(pair, truth_is_match)
    }
}

/// A uniform draw in `[0, 1)` derived from `(seed, pair)` alone — the
/// SplitMix64 finalizer over the mixed key, bit-for-bit the function
/// `NoisyOracle` has always used for its flip decisions.
pub fn unit_draw(seed: u64, pair: u64) -> f64 {
    let mut z = seed ^ pair.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Derives an independent sub-seed from `(seed, lane)`: the same finalizer on
/// an integer key. Used to give pool workers distinct private seeds and the
/// assignment planner distinct shuffle steps from one configured seed.
pub fn mix(seed: u64, lane: u64) -> u64 {
    let mut z = seed ^ lane.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_worker_flip_is_truth_independent() {
        let w = WorkerModel::symmetric(0.3, 17);
        for pair in 0..500 {
            assert_eq!(w.flips(pair, true), w.flips(pair, false));
            assert_eq!(w.vote(pair, true), !w.flips(pair, true));
            assert_eq!(w.vote(pair, false), w.flips(pair, false));
        }
    }

    #[test]
    fn asymmetric_rates_bias_the_flip_direction() {
        let w = WorkerModel::new(0.4, 0.05, 9);
        let n = 4_000u64;
        let match_flips = (0..n).filter(|&p| w.flips(p, true)).count() as f64 / n as f64;
        let unmatch_flips = (0..n).filter(|&p| w.flips(p, false)).count() as f64 / n as f64;
        assert!((match_flips - 0.4).abs() < 0.03, "match flip rate {match_flips}");
        assert!((unmatch_flips - 0.05).abs() < 0.02, "unmatch flip rate {unmatch_flips}");
    }

    #[test]
    fn zero_noise_worker_always_votes_truth() {
        let w = WorkerModel::symmetric(0.0, 3);
        for pair in 0..200 {
            assert!(w.vote(pair, true));
            assert!(!w.vote(pair, false));
        }
    }

    #[test]
    fn mix_produces_distinct_lanes() {
        let seeds: std::collections::BTreeSet<u64> = (0..64).map(|w| mix(42, w)).collect();
        assert_eq!(seeds.len(), 64);
    }

    #[test]
    #[should_panic(expected = "flip rate")]
    fn rejects_invalid_rates() {
        let _ = WorkerModel::new(1.2, 0.1, 0);
    }
}
