//! Vote aggregation: the canonical vote matrix, majority vote, and a
//! Dawid–Skene-style EM estimator.
//!
//! The [`VoteMatrix`] stores votes in a canonical sorted form (pair-major,
//! worker-minor), so every aggregate computed from it is invariant to the
//! order and batching in which votes arrived — the property the proptests pin.
//!
//! [`estimate`] is a binary Dawid–Skene: it jointly infers each worker's
//! asymmetric flip rates and each pair's posterior match probability from the
//! redundant votes alone (no ground truth). Two deliberate deviations from the
//! textbook form keep it safe as a *label source* for the θ-guarantee:
//!
//! * the class prior is held uniform rather than re-estimated — ER workloads
//!   are overwhelmingly non-match, and a learned prior would let the majority
//!   class overrule even unanimous minority votes;
//! * estimated flip rates are clamped to `[min_rate, 0.5]` — every worker is
//!   treated as no worse than a coin. Together these guarantee a unanimous
//!   vote is never flipped: each unanimous vote contributes a log-odds term of
//!   the vote's own sign, and exact zero-odds ties fall back to majority.

use crate::worker::WorkerId;
use std::collections::BTreeMap;

/// All votes collected so far, in canonical (pair-major, worker-minor) order.
#[derive(Debug, Clone, Default)]
pub struct VoteMatrix {
    votes: BTreeMap<u64, BTreeMap<WorkerId, bool>>,
    total: usize,
}

impl VoteMatrix {
    /// An empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one vote; returns `false` if this `(pair, worker)` cell was
    /// already filled (the duplicate is ignored — votes are idempotent).
    pub fn record(&mut self, pair: u64, worker: WorkerId, is_match: bool) -> bool {
        let row = self.votes.entry(pair).or_default();
        if row.contains_key(&worker) {
            return false;
        }
        row.insert(worker, is_match);
        self.total += 1;
        true
    }

    /// The votes for one pair, worker-sorted. Empty if the pair is unknown.
    pub fn row(&self, pair: u64) -> impl Iterator<Item = (WorkerId, bool)> + '_ {
        self.votes.get(&pair).into_iter().flatten().map(|(&w, &v)| (w, v))
    }

    /// Whether the given worker already voted on the given pair.
    pub fn has_vote(&self, pair: u64, worker: WorkerId) -> bool {
        self.votes.get(&pair).is_some_and(|row| row.contains_key(&worker))
    }

    /// Iterates pairs and their vote rows in canonical order.
    pub fn rows(&self) -> impl Iterator<Item = (u64, &BTreeMap<WorkerId, bool>)> + '_ {
        self.votes.iter().map(|(&pair, row)| (pair, row))
    }

    /// Number of pairs with at least one vote.
    pub fn pairs(&self) -> usize {
        self.votes.len()
    }

    /// Total votes recorded.
    pub fn total_votes(&self) -> usize {
        self.total
    }

    /// Whether no votes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }
}

/// Majority vote over a set of binary votes; exact ties break to *non-match*
/// (the conservative direction for precision, and the overwhelming prior of
/// ER workloads).
pub fn majority<I: IntoIterator<Item = bool>>(votes: I) -> bool {
    let mut balance = 0i64;
    for vote in votes {
        balance += if vote { 1 } else { -1 };
    }
    balance > 0
}

/// Configuration for the EM estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmConfig {
    /// Iteration cap (each iteration is one M-step plus one E-step).
    pub max_iterations: usize,
    /// Stop once no posterior moves by more than this between iterations.
    pub tolerance: f64,
    /// Lower clamp on estimated flip rates (the upper clamp is fixed at 0.5).
    pub min_rate: f64,
    /// Additive smoothing on the flip-rate counts, so a worker with few votes
    /// is pulled toward an uninformed rate instead of a degenerate 0 or 1.
    pub smoothing: f64,
}

impl Default for EmConfig {
    fn default() -> Self {
        Self { max_iterations: 50, tolerance: 1e-6, min_rate: 1e-3, smoothing: 0.5 }
    }
}

/// One worker's reliability as estimated by EM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerReliability {
    /// Estimated probability of voting "unmatch" on a true match.
    pub flip_match: f64,
    /// Estimated probability of voting "match" on a true non-match.
    pub flip_unmatch: f64,
    /// Votes this estimate is based on.
    pub votes: usize,
}

/// The EM estimate: per-pair posteriors and labels, per-worker reliabilities.
#[derive(Debug, Clone, Default)]
pub struct EmOutcome {
    /// Posterior match probability per pair (uniform class prior).
    pub posteriors: BTreeMap<u64, f64>,
    /// Aggregated label per pair: posterior log-odds sign, zero-odds ties
    /// falling back to [`majority`].
    pub labels: BTreeMap<u64, bool>,
    /// Estimated per-worker flip rates.
    pub reliabilities: BTreeMap<WorkerId, WorkerReliability>,
    /// Iterations run before convergence (or the cap).
    pub iterations: usize,
}

/// Runs binary Dawid–Skene EM over the vote matrix. Deterministic: iteration
/// order is the matrix's canonical order, initialization is the per-pair
/// match-vote fraction, and there is no randomness anywhere.
pub fn estimate(matrix: &VoteMatrix, config: &EmConfig) -> EmOutcome {
    let mut posteriors: BTreeMap<u64, f64> = matrix
        .rows()
        .map(|(pair, row)| {
            let matches = row.values().filter(|&&v| v).count() as f64;
            (pair, matches / row.len().max(1) as f64)
        })
        .collect();
    let mut rates: BTreeMap<WorkerId, (f64, f64, usize)> = BTreeMap::new();
    let mut iterations = 0;
    while iterations < config.max_iterations {
        iterations += 1;
        rates = m_step(matrix, &posteriors, config);
        let mut delta = 0.0f64;
        for (pair, row) in matrix.rows() {
            let odds = log_odds(row.iter().map(|(&w, &v)| (w, v)), &rates);
            let posterior = 1.0 / (1.0 + (-odds).exp());
            let previous = posteriors.insert(pair, posterior).unwrap_or(0.5);
            delta = delta.max((posterior - previous).abs());
        }
        if delta < config.tolerance {
            break;
        }
    }
    let labels = matrix
        .rows()
        .map(|(pair, row)| {
            let odds = log_odds(row.iter().map(|(&w, &v)| (w, v)), &rates);
            let label =
                if odds.abs() <= ODDS_TIE { majority(row.values().copied()) } else { odds > 0.0 };
            (pair, label)
        })
        .collect();
    let reliabilities = rates
        .into_iter()
        .map(|(w, (fm, fu, votes))| {
            (w, WorkerReliability { flip_match: fm, flip_unmatch: fu, votes })
        })
        .collect();
    EmOutcome { posteriors, labels, reliabilities, iterations }
}

/// Log-odds magnitudes at or below this are treated as exact ties.
const ODDS_TIE: f64 = 1e-12;

fn m_step(
    matrix: &VoteMatrix,
    posteriors: &BTreeMap<u64, f64>,
    config: &EmConfig,
) -> BTreeMap<WorkerId, (f64, f64, usize)> {
    // Per worker: posterior-weighted match mass, flipped-match mass,
    // non-match mass, flipped-non-match mass, vote count.
    let mut accum: BTreeMap<WorkerId, (f64, f64, f64, f64, usize)> = BTreeMap::new();
    for (pair, row) in matrix.rows() {
        let mu = posteriors.get(&pair).copied().unwrap_or(0.5);
        for (&worker, &vote) in row {
            let a = accum.entry(worker).or_default();
            a.0 += mu;
            if !vote {
                a.1 += mu;
            }
            a.2 += 1.0 - mu;
            if vote {
                a.3 += 1.0 - mu;
            }
            a.4 += 1;
        }
    }
    let s = config.smoothing;
    accum
        .into_iter()
        .map(|(worker, (m, m_flip, u, u_flip, votes))| {
            let fm = ((m_flip + s) / (m + 2.0 * s)).clamp(config.min_rate, 0.5);
            let fu = ((u_flip + s) / (u + 2.0 * s)).clamp(config.min_rate, 0.5);
            (worker, (fm, fu, votes))
        })
        .collect()
}

fn log_odds(
    row: impl Iterator<Item = (WorkerId, bool)>,
    rates: &BTreeMap<WorkerId, (f64, f64, usize)>,
) -> f64 {
    let mut odds = 0.0;
    for (worker, vote) in row {
        let (fm, fu, _) = rates.get(&worker).copied().unwrap_or((0.5, 0.5, 0));
        // Rates are clamped to [min_rate, 0.5], so a match vote contributes a
        // non-negative term and an unmatch vote a non-positive one — the
        // unanimity guarantee rests on exactly this.
        odds += if vote { ((1.0 - fm) / fu).ln() } else { (fm / (1.0 - fu)).ln() };
    }
    odds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::{mix, unit_draw, WorkerModel};

    #[test]
    fn matrix_is_canonical_and_idempotent() {
        let mut forward = VoteMatrix::new();
        let mut reverse = VoteMatrix::new();
        let votes = [(3u64, 1u32, true), (1, 2, false), (3, 0, false), (1, 1, true)];
        for &(p, w, v) in &votes {
            assert!(forward.record(p, WorkerId(w), v));
        }
        for &(p, w, v) in votes.iter().rev() {
            reverse.record(p, WorkerId(w), v);
        }
        let rows = |m: &VoteMatrix| m.rows().map(|(p, r)| (p, r.clone())).collect::<Vec<_>>();
        assert_eq!(rows(&forward), rows(&reverse));
        assert!(!forward.record(3, WorkerId(1), false), "duplicate cells are ignored");
        assert_eq!(forward.total_votes(), 4);
        assert!(forward.row(3).any(|(w, v)| w == WorkerId(1) && v), "first vote wins");
    }

    #[test]
    fn majority_breaks_ties_to_unmatch() {
        assert!(majority([true, true, false]));
        assert!(!majority([true, false]));
        assert!(!majority(std::iter::empty::<bool>()));
        assert!(majority([true]));
    }

    #[test]
    fn em_matches_majority_accuracy_on_identical_symmetric_workers() {
        // With identically reliable symmetric workers there is nothing for
        // reliability weighting to exploit: EM's accuracy must not fall below
        // plain majority's (small finite-sample weight differences may flip
        // individual split votes either way).
        let workers: Vec<WorkerModel> =
            (0..5).map(|w| WorkerModel::symmetric(0.2, mix(99, w))).collect();
        let mut matrix = VoteMatrix::new();
        let mut truths = BTreeMap::new();
        for pair in 0..300u64 {
            let truth = unit_draw(7, pair) < 0.4;
            truths.insert(pair, truth);
            for (w, worker) in workers.iter().enumerate() {
                matrix.record(pair, WorkerId(w as u32), worker.vote(pair, truth));
            }
        }
        let outcome = estimate(&matrix, &EmConfig::default());
        let em_errors = truths.iter().filter(|(p, &t)| outcome.labels[p] != t).count();
        let majority_errors = matrix
            .rows()
            .filter(|(pair, row)| majority(row.values().copied()) != truths[pair])
            .count();
        assert!(
            em_errors <= majority_errors + 3,
            "EM ({em_errors} errors) should not be materially worse than majority \
             ({majority_errors} errors) on identical symmetric workers"
        );
        assert!(outcome.iterations >= 1);
    }

    #[test]
    fn em_outvotes_a_majority_of_unreliable_workers() {
        // Two workers are near-perfect, three are almost random. On pairs
        // where the three unreliable workers happen to outvote the reliable
        // two, plain majority is wrong and EM should side with reliability.
        let reliable: Vec<WorkerModel> =
            (0..2).map(|w| WorkerModel::symmetric(0.02, mix(5, w))).collect();
        let noisy: Vec<WorkerModel> =
            (0..3).map(|w| WorkerModel::symmetric(0.45, mix(17, w))).collect();
        let mut matrix = VoteMatrix::new();
        let mut truths = std::collections::BTreeMap::new();
        for pair in 0..600u64 {
            let truth = unit_draw(3, pair) < 0.5;
            truths.insert(pair, truth);
            for (w, worker) in reliable.iter().chain(&noisy).enumerate() {
                matrix.record(pair, WorkerId(w as u32), worker.vote(pair, truth));
            }
        }
        let outcome = estimate(&matrix, &EmConfig::default());
        let errors =
            |labels: &BTreeMap<u64, bool>| truths.iter().filter(|(p, &t)| labels[p] != t).count();
        let majority_labels: BTreeMap<u64, bool> =
            matrix.rows().map(|(p, row)| (p, majority(row.values().copied()))).collect();
        assert!(
            errors(&outcome.labels) < errors(&majority_labels),
            "EM ({}) should beat majority ({}) with two reliable vs three noisy workers",
            errors(&outcome.labels),
            errors(&majority_labels)
        );
        // And the reliability estimates should separate the two groups.
        for w in 0..2u32 {
            assert!(outcome.reliabilities[&WorkerId(w)].flip_match < 0.15);
        }
        for w in 2..5u32 {
            assert!(outcome.reliabilities[&WorkerId(w)].flip_match > 0.25);
        }
    }

    #[test]
    fn empty_matrix_estimates_nothing() {
        let outcome = estimate(&VoteMatrix::new(), &EmConfig::default());
        assert!(outcome.labels.is_empty());
        assert!(outcome.reliabilities.is_empty());
    }
}
