//! The assignment planner: which workers see which pair, and when to escalate.
//!
//! Every pair gets a deterministic *roster* — a seeded Fisher–Yates permutation
//! of the worker pool, keyed by `(planner seed, pair id)` — and votes are
//! requested from a growing prefix of it. [`Redundancy::Fixed`] asks a constant
//! prefix; [`Redundancy::Adaptive`] starts at `min` and extends the prefix one
//! worker at a time *only while the collected votes disagree*, up to `max`.
//! Because the roster is a pure function of the pair id, assignment (like the
//! votes themselves) is invariant to query order, batching and crash-replay.

use crate::worker::{mix, unit_draw, WorkerId};

/// How many distinct workers vote on each pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Redundancy {
    /// Every pair is voted on by exactly `r` distinct workers.
    Fixed(usize),
    /// Start with `min` workers; while their votes disagree, add one worker at
    /// a time up to `max`. Unanimous prefixes never escalate.
    Adaptive {
        /// Votes requested up front.
        min: usize,
        /// Hard ceiling on votes per pair.
        max: usize,
    },
}

impl Redundancy {
    /// Votes requested before any disagreement is seen.
    pub fn initial(&self) -> usize {
        match *self {
            Redundancy::Fixed(r) => r,
            Redundancy::Adaptive { min, .. } => min,
        }
    }

    /// The most votes a single pair can receive.
    pub fn limit(&self) -> usize {
        match *self {
            Redundancy::Fixed(r) => r,
            Redundancy::Adaptive { max, .. } => max,
        }
    }

    /// Validates the shape against a pool size.
    ///
    /// # Panics
    /// Panics if the redundancy is zero, inverted (`min > max`) or exceeds the
    /// pool (votes must come from *distinct* workers).
    pub fn validate(&self, pool_size: usize) {
        let (initial, limit) = (self.initial(), self.limit());
        assert!(initial >= 1, "redundancy must request at least one vote");
        assert!(initial <= limit, "adaptive redundancy needs min <= max, got {initial} > {limit}");
        assert!(
            limit <= pool_size,
            "redundancy limit {limit} exceeds the worker pool size {pool_size}"
        );
    }
}

/// Plans per-pair worker rosters over a pool of `pool_size` workers.
#[derive(Debug, Clone)]
pub struct AssignmentPlanner {
    pool_size: usize,
    redundancy: Redundancy,
    seed: u64,
}

impl AssignmentPlanner {
    /// Creates a planner.
    ///
    /// # Panics
    /// Panics if the pool is empty or the redundancy does not fit it (see
    /// [`Redundancy::validate`]).
    pub fn new(redundancy: Redundancy, pool_size: usize, seed: u64) -> Self {
        assert!(pool_size > 0, "worker pool must not be empty");
        redundancy.validate(pool_size);
        Self { pool_size, redundancy, seed }
    }

    /// The configured redundancy.
    pub fn redundancy(&self) -> Redundancy {
        self.redundancy
    }

    /// The worker-pool size rosters draw from.
    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// The pair's full roster: the first [`Redundancy::limit`] entries of a
    /// seeded Fisher–Yates permutation of the pool, keyed by the pair id alone.
    /// Entries are distinct by construction; escalation walks this list.
    pub fn roster(&self, pair: u64) -> Vec<WorkerId> {
        let mut order: Vec<u32> = (0..self.pool_size as u32).collect();
        for i in (1..order.len()).rev() {
            let j = (unit_draw(mix(self.seed, i as u64), pair) * (i + 1) as f64) as usize;
            order.swap(i, j.min(i));
        }
        order.truncate(self.redundancy.limit());
        order.into_iter().map(WorkerId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn rosters_are_distinct_deterministic_and_within_pool() {
        let planner = AssignmentPlanner::new(Redundancy::Adaptive { min: 2, max: 5 }, 9, 7);
        for pair in 0..200 {
            let roster = planner.roster(pair);
            assert_eq!(roster.len(), 5);
            let set: BTreeSet<WorkerId> = roster.iter().copied().collect();
            assert_eq!(set.len(), roster.len(), "roster has duplicate workers");
            assert!(roster.iter().all(|w| (w.0 as usize) < 9));
            assert_eq!(roster, planner.roster(pair), "roster must be deterministic");
        }
    }

    #[test]
    fn rosters_vary_across_pairs_and_seeds() {
        let a = AssignmentPlanner::new(Redundancy::Fixed(3), 8, 1);
        let b = AssignmentPlanner::new(Redundancy::Fixed(3), 8, 2);
        let distinct_pairs: BTreeSet<Vec<WorkerId>> = (0..50).map(|p| a.roster(p)).collect();
        assert!(distinct_pairs.len() > 10, "rosters should vary across pairs");
        assert!((0..50).any(|p| a.roster(p) != b.roster(p)), "seed must matter");
    }

    #[test]
    fn fixed_one_roster_is_a_single_worker() {
        let planner = AssignmentPlanner::new(Redundancy::Fixed(1), 4, 11);
        for pair in 0..50 {
            assert_eq!(planner.roster(pair).len(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds the worker pool")]
    fn rejects_redundancy_beyond_the_pool() {
        let _ = AssignmentPlanner::new(Redundancy::Fixed(5), 4, 0);
    }
}
