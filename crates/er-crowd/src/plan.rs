//! The re-entrant vote-collection state machine.
//!
//! [`CrowdPlan`] ties the planner and the aggregators together without doing
//! any I/O: callers [`submit`](CrowdPlan::submit) pairs, forward the returned
//! [`VoteAsk`]s to whatever answers votes (simulated [`WorkerModel`]s, a task
//! queue, real people), feed answers back through
//! [`absorb`](CrowdPlan::absorb) — which may return *escalation* asks when an
//! adaptive prefix disagrees — and finally [`decide`](CrowdPlan::decide) the
//! pairs whose voting completed. Everything is keyed by raw `u64` pair ids so
//! the crate stays dependency-free; the `humo` crate wraps this in its
//! `Oracle`/session vocabulary.
//!
//! Re-entrancy: submitting a known pair re-emits only its still-unanswered
//! asks, absorbing a duplicate vote is a no-op, and every ask/vote/decision is
//! a pure function of the configured seed and the pair id — so a driver that
//! crashes and replays (the labeling service's resume path) reproduces
//! identical votes and labels.
//!
//! [`WorkerModel`]: crate::WorkerModel

use crate::aggregate::{estimate, majority, EmConfig, EmOutcome, VoteMatrix};
use crate::assign::{AssignmentPlanner, Redundancy};
use crate::worker::WorkerId;
use std::collections::{BTreeMap, BTreeSet};

/// How completed vote sets are turned into labels.
#[derive(Debug, Clone, PartialEq)]
pub enum Aggregation {
    /// Per-pair majority vote (ties break to non-match).
    Majority,
    /// Dawid–Skene EM over *all* votes collected so far: each
    /// [`decide`](CrowdPlan::decide) call re-estimates worker reliabilities
    /// jointly with the requested labels. Labels therefore depend on the
    /// aggregation scope (which other pairs have been voted on), unlike
    /// [`Aggregation::Majority`], which is a pure per-pair function.
    Em(EmConfig),
}

/// Configuration of a [`CrowdPlan`].
#[derive(Debug, Clone)]
pub struct CrowdConfig {
    /// Number of workers in the pool.
    pub pool_size: usize,
    /// Votes per pair.
    pub redundancy: Redundancy,
    /// How completed vote sets become labels.
    pub aggregation: Aggregation,
    /// Seed for the assignment rosters.
    pub seed: u64,
}

/// A request for one worker's vote on one pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VoteAsk {
    /// The pair to vote on.
    pub pair: u64,
    /// The worker asked.
    pub worker: WorkerId,
}

/// Running totals of the crowd machinery, for reports and the `crowd.*`
/// observability counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CrowdStats {
    /// Votes recorded (duplicates excluded).
    pub votes: u64,
    /// Pairs whose final vote set was not unanimous.
    pub disagreements: u64,
    /// Extra asks issued beyond the initial redundancy.
    pub escalations: u64,
    /// Labels decided.
    pub decided: u64,
    /// EM aggregation passes run.
    pub em_runs: u64,
    /// Total EM iterations across all passes.
    pub em_iterations: u64,
}

/// Voting progress of one submitted pair.
#[derive(Debug)]
struct PendingPair {
    roster: Vec<WorkerId>,
    asked: usize,
}

/// The sans-I/O crowd state machine. See the module docs for the protocol.
#[derive(Debug)]
pub struct CrowdPlan {
    planner: AssignmentPlanner,
    aggregation: Aggregation,
    matrix: VoteMatrix,
    pending: BTreeMap<u64, PendingPair>,
    completed: BTreeSet<u64>,
    decided: BTreeMap<u64, bool>,
    stats: CrowdStats,
    last_em: Option<EmOutcome>,
}

impl CrowdPlan {
    /// Creates a plan.
    ///
    /// # Panics
    /// Panics if the pool is empty or the redundancy does not fit it.
    pub fn new(config: CrowdConfig) -> Self {
        Self {
            planner: AssignmentPlanner::new(config.redundancy, config.pool_size, config.seed),
            aggregation: config.aggregation,
            matrix: VoteMatrix::new(),
            pending: BTreeMap::new(),
            completed: BTreeSet::new(),
            decided: BTreeMap::new(),
            stats: CrowdStats::default(),
            last_em: None,
        }
    }

    /// Submits a pair for labeling. New pairs return their initial asks;
    /// already-pending pairs re-emit their still-unanswered asks (so a driver
    /// can always recover its outstanding work by re-submitting); completed or
    /// decided pairs return nothing.
    pub fn submit(&mut self, pair: u64) -> Vec<VoteAsk> {
        if self.decided.contains_key(&pair) || self.completed.contains(&pair) {
            return Vec::new();
        }
        if !self.pending.contains_key(&pair) {
            let roster = self.planner.roster(pair);
            let asked = self.planner.redundancy().initial().min(roster.len());
            self.pending.insert(pair, PendingPair { roster, asked });
        }
        self.unanswered(pair)
    }

    /// Records one vote. Unknown pairs and duplicate `(pair, worker)` votes
    /// are ignored. When the vote completes an adaptive prefix that still
    /// disagrees, the returned asks extend the roster by one worker; when it
    /// completes the pair's voting altogether, the pair becomes available from
    /// [`take_completed`](CrowdPlan::take_completed).
    pub fn absorb(&mut self, pair: u64, worker: WorkerId, is_match: bool) -> Vec<VoteAsk> {
        let Some(pending) = self.pending.get(&pair) else { return Vec::new() };
        if !pending.roster[..pending.asked].contains(&worker) {
            return Vec::new();
        }
        if self.matrix.record(pair, worker, is_match) {
            self.stats.votes += 1;
        }
        let pending = &self.pending[&pair];
        let answered: Vec<bool> = pending.roster[..pending.asked]
            .iter()
            .filter_map(|&w| self.matrix.row(pair).find(|&(rw, _)| rw == w).map(|(_, v)| v))
            .collect();
        if answered.len() < pending.asked {
            return Vec::new();
        }
        let unanimous = answered.windows(2).all(|w| w[0] == w[1]);
        if unanimous || pending.asked == pending.roster.len() {
            if !unanimous {
                self.stats.disagreements += 1;
            }
            self.pending.remove(&pair);
            self.completed.insert(pair);
            return Vec::new();
        }
        // Disagreement with roster room left: escalate by one worker.
        let pending = self.pending.get_mut(&pair).expect("pair is pending");
        pending.asked += 1;
        self.stats.escalations += 1;
        vec![VoteAsk { pair, worker: pending.roster[pending.asked - 1] }]
    }

    /// Drains the pairs whose voting completed but whose label has not been
    /// decided yet, in pair order.
    pub fn take_completed(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.completed).into_iter().collect()
    }

    /// Decides labels for the given (completed) pairs, in input order.
    /// Majority aggregates each pair from its own row; EM re-estimates over
    /// the full matrix. Decisions are cached and final.
    pub fn decide(&mut self, pairs: &[u64]) -> Vec<(u64, bool)> {
        if pairs.is_empty() {
            return Vec::new();
        }
        let em = match &self.aggregation {
            Aggregation::Majority => None,
            Aggregation::Em(config) => {
                let outcome = estimate(&self.matrix, config);
                self.stats.em_runs += 1;
                self.stats.em_iterations += outcome.iterations as u64;
                self.last_em = Some(outcome);
                self.last_em.as_ref()
            }
        };
        let mut decisions = Vec::with_capacity(pairs.len());
        for &pair in pairs {
            let label = match em {
                Some(outcome) => outcome
                    .labels
                    .get(&pair)
                    .copied()
                    .unwrap_or_else(|| majority(self.matrix.row(pair).map(|(_, v)| v))),
                None => majority(self.matrix.row(pair).map(|(_, v)| v)),
            };
            decisions.push((pair, label));
        }
        for &(pair, label) in &decisions {
            if self.decided.insert(pair, label).is_none() {
                self.stats.decided += 1;
            }
        }
        decisions
    }

    /// The decided label for a pair, if any.
    pub fn decision(&self, pair: u64) -> Option<bool> {
        self.decided.get(&pair).copied()
    }

    /// All asked-but-unanswered asks across pending pairs, in canonical order
    /// — what a re-entrant driver re-dispatches after losing its queue.
    pub fn outstanding(&self) -> Vec<VoteAsk> {
        self.pending
            .iter()
            .flat_map(|(&pair, pending)| {
                pending.roster[..pending.asked]
                    .iter()
                    .filter(move |&&w| !self.matrix.has_vote(pair, w))
                    .map(move |&worker| VoteAsk { pair, worker })
            })
            .collect()
    }

    /// Still-unanswered asks for one pair.
    fn unanswered(&self, pair: u64) -> Vec<VoteAsk> {
        let Some(pending) = self.pending.get(&pair) else { return Vec::new() };
        pending.roster[..pending.asked]
            .iter()
            .filter(|&&w| !self.matrix.has_vote(pair, w))
            .map(|&worker| VoteAsk { pair, worker })
            .collect()
    }

    /// Running totals.
    pub fn stats(&self) -> CrowdStats {
        self.stats
    }

    /// The canonical vote matrix.
    pub fn matrix(&self) -> &VoteMatrix {
        &self.matrix
    }

    /// The most recent EM outcome, when EM aggregation has run.
    pub fn last_em(&self) -> Option<&EmOutcome> {
        self.last_em.as_ref()
    }

    /// The configured aggregation policy.
    pub fn aggregation(&self) -> &Aggregation {
        &self.aggregation
    }

    /// The assignment planner (roster introspection for tests and drivers).
    pub fn planner(&self) -> &AssignmentPlanner {
        &self.planner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::{mix, WorkerModel};

    fn drive(
        plan: &mut CrowdPlan,
        workers: &[WorkerModel],
        truth: impl Fn(u64) -> bool,
        pair: u64,
    ) {
        let mut asks = plan.submit(pair);
        while let Some(ask) = asks.pop() {
            let vote = workers[ask.worker.0 as usize].vote(ask.pair, truth(ask.pair));
            asks.extend(plan.absorb(ask.pair, ask.worker, vote));
        }
    }

    fn pool(n: usize, rate: f64, seed: u64) -> Vec<WorkerModel> {
        (0..n).map(|w| WorkerModel::symmetric(rate, mix(seed, w as u64))).collect()
    }

    #[test]
    fn fixed_redundancy_collects_exactly_r_votes() {
        let workers = pool(7, 0.3, 1);
        let mut plan = CrowdPlan::new(CrowdConfig {
            pool_size: 7,
            redundancy: Redundancy::Fixed(3),
            aggregation: Aggregation::Majority,
            seed: 5,
        });
        for pair in 0..100 {
            drive(&mut plan, &workers, |p| p % 3 == 0, pair);
        }
        let completed = plan.take_completed();
        assert_eq!(completed.len(), 100);
        plan.decide(&completed);
        assert_eq!(plan.stats().votes, 300);
        assert_eq!(plan.stats().escalations, 0);
        assert_eq!(plan.stats().decided, 100);
    }

    #[test]
    fn adaptive_redundancy_escalates_only_on_disagreement() {
        let workers = pool(9, 0.25, 2);
        let mut plan = CrowdPlan::new(CrowdConfig {
            pool_size: 9,
            redundancy: Redundancy::Adaptive { min: 2, max: 5 },
            aggregation: Aggregation::Majority,
            seed: 6,
        });
        for pair in 0..200 {
            drive(&mut plan, &workers, |p| p % 2 == 0, pair);
        }
        let completed = plan.take_completed();
        assert_eq!(completed.len(), 200);
        let stats = plan.stats();
        assert!(stats.escalations > 0, "25% error must force some escalations");
        assert!(stats.votes >= 400, "at least min votes per pair");
        assert!(stats.votes <= 1000, "never beyond max votes per pair");
        assert_eq!(stats.votes, 400 + stats.escalations, "every extra vote is an escalation");
        // With zero noise nothing escalates.
        let clean = pool(9, 0.0, 3);
        let mut quiet = CrowdPlan::new(CrowdConfig {
            pool_size: 9,
            redundancy: Redundancy::Adaptive { min: 2, max: 5 },
            aggregation: Aggregation::Majority,
            seed: 6,
        });
        for pair in 0..200 {
            drive(&mut quiet, &clean, |p| p % 2 == 0, pair);
        }
        assert_eq!(quiet.stats().escalations, 0);
        assert_eq!(quiet.stats().disagreements, 0);
        assert_eq!(quiet.stats().votes, 400);
    }

    #[test]
    fn resubmitting_reemits_only_unanswered_asks() {
        let mut plan = CrowdPlan::new(CrowdConfig {
            pool_size: 5,
            redundancy: Redundancy::Fixed(3),
            aggregation: Aggregation::Majority,
            seed: 9,
        });
        let first = plan.submit(42);
        assert_eq!(first.len(), 3);
        // Answer one vote, then "crash": resubmit and compare to outstanding.
        assert!(plan.absorb(42, first[0].worker, true).is_empty());
        let reissued = plan.submit(42);
        assert_eq!(reissued, first[1..].to_vec());
        assert_eq!(plan.outstanding(), reissued);
        // Duplicate votes are idempotent.
        assert!(plan.absorb(42, first[0].worker, false).is_empty());
        assert_eq!(plan.stats().votes, 1);
        // Completing the pair and deciding it makes resubmission a no-op.
        plan.absorb(42, first[1].worker, true);
        plan.absorb(42, first[2].worker, true);
        let completed = plan.take_completed();
        assert_eq!(completed, vec![42]);
        assert_eq!(plan.decide(&completed), vec![(42, true)]);
        assert!(plan.submit(42).is_empty());
        assert_eq!(plan.decision(42), Some(true));
    }

    #[test]
    fn votes_from_unasked_workers_are_rejected() {
        let mut plan = CrowdPlan::new(CrowdConfig {
            pool_size: 6,
            redundancy: Redundancy::Fixed(2),
            aggregation: Aggregation::Majority,
            seed: 4,
        });
        let asks = plan.submit(7);
        let unasked = (0..6).map(WorkerId).find(|w| !asks.iter().any(|a| a.worker == *w)).unwrap();
        assert!(plan.absorb(7, unasked, true).is_empty());
        assert_eq!(plan.stats().votes, 0, "vote from an unasked worker must not count");
        assert!(plan.absorb(99, WorkerId(0), true).is_empty(), "unknown pair is ignored");
    }
}
