//! Integration-test and example host crate for the HUMO workspace.
