//! Quickstart: enforce precision/recall guarantees on a synthetic ER workload.
//!
//! Run with:
//! ```text
//! cargo run --release -p integration --example quickstart
//! ```
//!
//! The example generates a pair-level workload whose match proportion follows the
//! paper's logistic curve, then runs all three HUMO optimizers (BASE, SAMP, HYBR)
//! against the same quality requirement and prints the achieved quality and the
//! human cost of each.

use er_datagen::synthetic::{SyntheticConfig, SyntheticGenerator};
use humo::{
    BaselineConfig, BaselineOptimizer, GroundTruthOracle, HybridConfig, HybridOptimizer, Optimizer,
    PartialSamplingConfig, PartialSamplingOptimizer, QualityRequirement,
};

fn main() {
    // 1. An ER workload: 50 000 instance pairs, each with a machine-computed
    //    similarity and a (hidden) ground-truth label. In a real deployment this
    //    comes out of your blocking + similarity pipeline (see the other examples);
    //    here we use the paper's synthetic generator.
    let workload = SyntheticGenerator::new(SyntheticConfig::new(50_000, 14.0, 0.1)).generate();
    println!("workload: {} pairs, {} true matches", workload.len(), workload.total_matches());

    // 2. The quality requirement: precision >= 0.9 and recall >= 0.9, each with
    //    90% confidence.
    let requirement = QualityRequirement::new(0.9, 0.9, 0.9).expect("valid requirement");
    println!("requirement: {requirement}\n");

    // 3. Run the three optimizers. The oracle simulates the human workforce; it
    //    answers with ground-truth labels and counts every distinct pair it is
    //    asked about — that count is the human cost HUMO minimizes.
    let optimizers: Vec<Box<dyn Optimizer>> = vec![
        Box::new(BaselineOptimizer::new(BaselineConfig::new(requirement)).unwrap()),
        Box::new(
            PartialSamplingOptimizer::new(PartialSamplingConfig::new(requirement).with_seed(3))
                .unwrap(),
        ),
        Box::new(HybridOptimizer::new(HybridConfig::new(requirement).with_seed(3)).unwrap()),
    ];

    println!(
        "{:<6} {:>10} {:>10} {:>12} {:>14} {:>12}",
        "method", "precision", "recall", "human pairs", "human cost %", "DH interval"
    );
    let mut met = 0usize;
    for optimizer in &optimizers {
        let mut oracle = GroundTruthOracle::new();
        let outcome = optimizer.optimize(&workload, &mut oracle).expect("optimization succeeds");
        let interval = outcome
            .solution
            .human_similarity_interval(&workload)
            .map(|(lo, hi)| format!("[{lo:.2},{hi:.2}]"))
            .unwrap_or_else(|| "-".to_string());
        let satisfied = requirement.is_satisfied_by(&outcome.metrics);
        met += usize::from(satisfied);
        println!(
            "{:<6} {:>10.4} {:>10.4} {:>12} {:>13.2}% {:>12} {}",
            optimizer.name(),
            outcome.metrics.precision(),
            outcome.metrics.recall(),
            outcome.total_human_cost,
            100.0 * outcome.human_cost_fraction(workload.len()),
            interval,
            if satisfied { "met" } else { "missed" }
        );
    }

    println!(
        "\n{met}/{} met the requirement on this run (the sampling-based guarantees are \
         probabilistic at confidence 0.90); the methods differ in how much manual \
         verification they need.",
        optimizers.len()
    );
}
