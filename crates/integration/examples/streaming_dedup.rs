//! Streaming deduplication end to end: records arrive in batches, the pipeline
//! keeps the candidate index, workload and entities up to date.
//!
//! Run with:
//! ```text
//! cargo run --release -p integration --example streaming_dedup
//! ```
//!
//! This is the streaming counterpart of `bibliographic_dedup`: the same
//! DBLP-Scholar-style linkage task, but the two corpora arrive in three batches
//! instead of all at once. Each batch is folded into the incremental blocking
//! index, only the *delta* candidate pairs are scored (in parallel), and the
//! similarity-sorted workload is maintained by merge insertion. After each
//! batch the engine re-resolves: the HUMO optimizer is warm-started from the
//! previous epoch's samples, the human labels the (small) uncertain region, and
//! match-labeled pairs are transitively closed into entities.
//!
//! Observability knobs (see [`er_obs::ObsConfig`]):
//!
//! * `HUMO_OBS=metrics` — attach an in-memory metrics recorder and print a
//!   counter/span summary at the end;
//! * `HUMO_OBS=trace` — stream every pipeline event to a JSONL trace file
//!   (`HUMO_OBS_PATH`, default `humo-trace.jsonl`) that
//!   `cargo run -p bench --bin trace_check` can validate;
//! * `HUMO_DEMO_SPILL_PAIRS=<n>` — cap resident workload pairs and postings
//!   at `n` so the out-of-core spill layer engages (and shows up in the
//!   trace) even on this small demo corpus.

use er_core::aggregate::{AttributeMeasure, AttributeWeighting, ScoringConfig};
use er_core::record::{Record, RecordId};
use er_core::similarity::StringMeasure;
use er_core::spill::MemoryBudget;
use er_core::text::Tokenizer;
use er_datagen::bibliographic::{BibliographicConfig, BibliographicGenerator};
use er_obs::ObsConfig;
use er_pipeline::{PipelineConfig, ResolutionEngine};
use humo::{GroundTruthOracle, Oracle, QualityRequirement};

fn batches_of<T: Clone>(items: &[T], count: usize) -> Vec<Vec<T>> {
    let size = items.len().div_ceil(count.max(1)).max(1);
    items.chunks(size).map(<[T]>::to_vec).collect()
}

fn main() {
    // A bibliographic corpus: a curated dataset, a noisy dataset, and the
    // ground-truth duplicates between them.
    let corpus = BibliographicGenerator::new(BibliographicConfig {
        num_entities: 600,
        duplicate_probability: 0.6,
        extra_right_entities: 300,
        corruption: 0.3,
        seed: 9,
    })
    .generate();
    let truth: Vec<(RecordId, RecordId)> = corpus.ground_truth.iter().copied().collect();
    println!(
        "corpus: {} + {} records, {} true duplicates, arriving in 3 batches\n",
        corpus.left.len(),
        corpus.right.len(),
        truth.len()
    );

    // The pipeline: token blocking on titles, uniform attribute-weighted
    // scoring, a 0.9/0.9 quality requirement at 90% confidence, warm-started
    // re-optimization.
    let scoring = ScoringConfig::new(
        [
            ("title", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
            ("authors", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
            ("venue", AttributeMeasure::Text(StringMeasure::JaroWinkler)),
        ],
        AttributeWeighting::Uniform,
    );
    let requirement = QualityRequirement::symmetric(0.9).expect("valid requirement");
    let mut config = PipelineConfig::new(scoring, "title", requirement);
    config.similarity_threshold = 0.4;
    config.optimizer.unit_size = 100;

    // Observability: HUMO_OBS=off|metrics|trace selects the recorder; the
    // default no-op handle keeps the run byte-identical and overhead-free.
    let obs = ObsConfig::from_env();
    let setup = obs.build().expect("observability setup succeeds");
    config.recorder = setup.handle.clone();

    // HUMO_DEMO_SPILL_PAIRS caps residency so the spill layer engages on this
    // small corpus — resolution results are byte-identical either way.
    let spill_pairs: usize =
        std::env::var("HUMO_DEMO_SPILL_PAIRS").ok().and_then(|v| v.parse().ok()).unwrap_or(0);
    if spill_pairs > 0 {
        config.memory_budget = MemoryBudget::bounded(spill_pairs, spill_pairs);
        println!("out-of-core: residency capped at {spill_pairs} pairs/postings\n");
    }

    let schema = BibliographicGenerator::schema();
    let mut engine =
        ResolutionEngine::new(config, schema.clone(), schema).expect("valid pipeline config");

    // One human oracle across the whole stream: pairs labeled in an earlier
    // epoch stay labeled, so re-resolution only pays for new questions.
    let mut oracle = GroundTruthOracle::new();

    let left_batches: Vec<Vec<Record>> = batches_of(corpus.left.records(), 3);
    let right_batches: Vec<Vec<Record>> = batches_of(corpus.right.records(), 3);
    for epoch in 0..3usize {
        let left = left_batches.get(epoch).cloned().unwrap_or_default();
        let right = right_batches.get(epoch).cloned().unwrap_or_default();
        // Ground-truth edges ride along with the first batch; labels attach to a
        // pair when both of its records have arrived.
        let edges = if epoch == 0 { truth.as_slice() } else { &[] };
        let ingest = engine.ingest(left, right, edges).expect("ingest succeeds");
        println!(
            "epoch {epoch}: +{} records -> {} delta candidates, {} kept, workload {}",
            ingest.left_records + ingest.right_records,
            ingest.delta_candidates,
            ingest.retained_pairs,
            ingest.workload_len,
        );
        let report = engine.resolve(&mut oracle).expect("resolve succeeds");
        println!(
            "         resolve{}: {} oracle queries | pairs P={:.3} R={:.3} | \
             entities: {} merged clusters, cluster P={:.3} R={:.3} F1={:.3}",
            if report.used_warm_start { " (warm)" } else { "" },
            report.oracle_queries,
            report.outcome.metrics.precision(),
            report.outcome.metrics.recall(),
            report.entities.non_singleton_count(),
            report.cluster_metrics.precision(),
            report.cluster_metrics.recall(),
            report.cluster_metrics.f1(),
        );
    }

    println!(
        "\ntotal human cost for the whole stream: {} labels ({:.1}% of the final workload)",
        oracle.labels_issued(),
        100.0 * oracle.labels_issued() as f64 / engine.workload().len().max(1) as f64
    );
    let spill = engine.spill_report();
    if spill.segments_spilled > 0 || spill.posting_generations_spilled > 0 {
        println!(
            "spill: {} workload segments out ({} B), {} loads back ({} B), \
             cache hit rate {:.2}, {} posting generations ({} B)",
            spill.segments_spilled,
            spill.bytes_spilled,
            spill.segments_loaded,
            spill.bytes_loaded,
            spill.cache_hit_rate(),
            spill.posting_generations_spilled,
            spill.posting_bytes_spilled,
        );
    }

    if let Some(metrics) = &setup.metrics {
        let snap = metrics.snapshot();
        println!(
            "\nobs summary: {} ingest spans totaling {:.1} ms, {} delta candidates, \
             {} label rounds ({} plan + {} refine), token cache {} hits / {} misses",
            snap.span("pipeline.ingest").map_or(0, |s| s.count),
            1e3 * snap.span("pipeline.ingest").map_or(0.0, |s| s.total_secs),
            snap.counter("ingest.delta_candidates"),
            snap.counter("session.rounds"),
            snap.counter("session.rounds.plan"),
            snap.counter("session.rounds.refine"),
            snap.counter("blocking.tokencache.hits"),
            snap.counter("blocking.tokencache.misses"),
        );
    }
    setup.flush();
    if setup.trace.is_some() {
        println!("\ntrace written to {}", obs.trace_path.display());
    }
}
