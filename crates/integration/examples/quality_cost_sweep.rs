//! Quality-vs-cost sweep: how much manual work does each additional "nine" cost?
//!
//! Run with:
//! ```text
//! cargo run --release -p humo-integration --example quality_cost_sweep
//! ```
//!
//! Sweeps the symmetric quality requirement from 0.70 to 0.95 on a DS-like
//! workload (calibrated to the DBLP-Scholar statistics reported in the paper) and
//! prints the human cost of each optimizer — a scaled-down interactive version of
//! the paper's Figure 6.

use er_datagen::calibrated::CalibratedConfig;
use humo::{
    BaselineConfig, BaselineOptimizer, GroundTruthOracle, HybridConfig, HybridOptimizer, Optimizer,
    PartialSamplingConfig, PartialSamplingOptimizer, QualityRequirement,
};

fn main() {
    // A 20%-scale DS-like workload keeps the sweep fast while preserving the
    // match-proportion shape.
    let workload = CalibratedConfig::ds(11).scaled(0.2).generate();
    println!("DS-like workload: {} pairs, {} matches\n", workload.len(), workload.total_matches());

    println!("{:>12} | {:>26} | {:>26} | {:>26}", "requirement", "BASE", "SAMP", "HYBR");
    println!("{}", "-".repeat(100));
    for level in [0.70, 0.75, 0.80, 0.85, 0.90, 0.95] {
        let requirement = QualityRequirement::symmetric(level).unwrap();

        let base = {
            let optimizer = BaselineOptimizer::new(BaselineConfig::new(requirement)).unwrap();
            let mut oracle = GroundTruthOracle::new();
            optimizer.optimize(&workload, &mut oracle).unwrap()
        };
        let samp = {
            let optimizer =
                PartialSamplingOptimizer::new(PartialSamplingConfig::new(requirement)).unwrap();
            let mut oracle = GroundTruthOracle::new();
            optimizer.optimize(&workload, &mut oracle).unwrap()
        };
        let hybr = {
            let optimizer = HybridOptimizer::new(HybridConfig::new(requirement)).unwrap();
            let mut oracle = GroundTruthOracle::new();
            optimizer.optimize(&workload, &mut oracle).unwrap()
        };

        let cell = |outcome: &humo::OptimizationOutcome| {
            format!(
                "{:6.2}% (P {:.2} R {:.2})",
                100.0 * outcome.human_cost_fraction(workload.len()),
                outcome.metrics.precision(),
                outcome.metrics.recall()
            )
        };
        println!(
            "({level:.2}, {level:.2}) | {:>26} | {:>26} | {:>26}",
            cell(&base),
            cell(&samp),
            cell(&hybr),
        );
    }

    println!(
        "\nHuman cost rises only modestly with the requirement, and the hybrid optimizer \
         tracks the cheaper of the other two — the qualitative behaviour of Figure 6 in the paper."
    );
}
