//! Product matching (Abt-Buy style): a hard workload where machine-only
//! classification breaks down and HUMO's quality guarantees earn their keep.
//!
//! Run with:
//! ```text
//! cargo run --release -p humo-integration --example product_matching
//! ```
//!
//! The example compares three ways of resolving a product-offer workload:
//!
//! * a pure machine classifier (linear SVM over attribute-similarity features);
//! * the precision-constrained active-learning baseline (ACTL);
//! * HUMO's hybrid optimizer with both precision and recall guarantees.

use er_core::aggregate::{AttributeMeasure, AttributeWeighting, PairScorer, ScoringConfig};
use er_core::blocking::{build_workload, TokenBlocker};
use er_core::similarity::StringMeasure;
use er_core::text::Tokenizer;
use er_datagen::product::{ProductConfig, ProductGenerator};
use er_ml::{ActiveLearningClassifier, ActlConfig, LinearSvm, SvmConfig, TrainTestSplit};
use humo::{GroundTruthOracle, HybridConfig, HybridOptimizer, Optimizer, QualityRequirement};

fn main() {
    // 1. Two product catalogues with overlapping offers. Product duplicates are
    //    heavily corrupted (different shops describe the same product differently),
    //    which pushes matching pairs down to medium similarity values.
    let corpus = ProductGenerator::new(ProductConfig {
        num_entities: 1_200,
        duplicate_probability: 0.5,
        extra_right_entities: 1_500,
        corruption: 0.6,
        seed: 7,
    })
    .generate();
    println!(
        "catalogues: {} + {} products, {} true matches",
        corpus.left.len(),
        corpus.right.len(),
        corpus.match_count()
    );

    // 2. Blocking + scoring (product name and description, AB-style threshold 0.05).
    let blocker = TokenBlocker::new("name", Tokenizer::Words);
    let candidates = blocker.candidates(&corpus.left, &corpus.right);
    let scoring = ScoringConfig::new(
        [
            ("name", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
            ("description", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
        ],
        AttributeWeighting::DistinctValues,
    );
    let scorer = PairScorer::new(&scoring, &[&corpus.left, &corpus.right]).expect("valid scorer");
    let workload = build_workload(
        &corpus.left,
        &corpus.right,
        &candidates,
        &scorer,
        &corpus.ground_truth,
        0.05,
    )
    .expect("workload construction succeeds");
    println!("workload: {} pairs, {} matches\n", workload.len(), workload.total_matches());

    // 3a. Pure machine: a linear SVM on the similarity feature.
    let examples = er_ml::features::workload_examples(&workload);
    let split = TrainTestSplit::new(&examples, 0.5, 1).expect("splittable");
    let svm = LinearSvm::train(&split.train, SvmConfig::default()).expect("trainable");
    let svm_metrics = svm.evaluate(&split.test);
    println!(
        "SVM (machine only):    precision {:.3}  recall {:.3}  F1 {:.3}  human cost 0",
        svm_metrics.precision(),
        svm_metrics.recall(),
        svm_metrics.f1()
    );

    // 3b. ACTL: enforces precision only, maximizing recall.
    let actl = ActiveLearningClassifier::new(ActlConfig {
        target_precision: 0.9,
        confidence: 0.9,
        samples_per_probe: 100,
        max_probes: 20,
        seed: 5,
    })
    .expect("valid ACTL configuration");
    let actl_result = actl.run(&workload).expect("ACTL runs");
    println!(
        "ACTL (precision only): precision {:.3}  recall {:.3}  F1 {:.3}  human cost {} pairs ({:.2}%)",
        actl_result.metrics.precision(),
        actl_result.metrics.recall(),
        actl_result.metrics.f1(),
        actl_result.human_labels_used,
        100.0 * actl_result.human_cost_fraction(workload.len())
    );

    // 3c. HUMO: both precision and recall guaranteed.
    let requirement = QualityRequirement::new(0.9, 0.9, 0.9).unwrap();
    let mut config = HybridConfig::new(requirement);
    config.sampling.unit_size = 50;
    config.sampling.samples_per_subset = 15;
    let optimizer = HybridOptimizer::new(config).unwrap();
    let mut oracle = GroundTruthOracle::new();
    let outcome = optimizer.optimize(&workload, &mut oracle).expect("optimization succeeds");
    println!(
        "HUMO HYBR:             precision {:.3}  recall {:.3}  F1 {:.3}  human cost {} pairs ({:.2}%)",
        outcome.metrics.precision(),
        outcome.metrics.recall(),
        outcome.metrics.f1(),
        outcome.total_human_cost,
        100.0 * outcome.human_cost_fraction(workload.len())
    );

    println!(
        "\nOn product data the machine-only classifier collapses, ACTL holds precision but \
         gives up recall, and HUMO buys both guarantees with a bounded amount of manual work."
    );
}
