//! Batched, resumable human-in-the-loop optimization with sans-I/O labeling
//! sessions.
//!
//! This example plays the role of a crowdsourcing dispatcher: it starts a
//! `LabelingSession`, receives *batches* of label requests (each batch is
//! askable in parallel), "dispatches" them to a simulated worker pool,
//! checkpoints the session mid-flight from its answered-label log, rebuilds it
//! from that checkpoint, and verifies that the resumed session lands on the
//! exact outcome the classic oracle entry point produces.
//!
//! Run with: `cargo run --release -p integration --example labeling_sessions`

use er_datagen::synthetic::{SyntheticConfig, SyntheticGenerator};
use humo::{
    GroundTruthOracle, HybridConfig, HybridOptimizer, LabelRequest, LabelResponse, Optimizer,
    OptimizerKind, QualityRequirement, SessionConfig, Step,
};

/// Pretends to be a pool of human workers answering a dispatched batch. In a
/// real deployment this is where the requests leave the process (crowdsourcing
/// tasks, a labeling UI, a queue) and responses trickle back asynchronously.
fn dispatch_to_workers(
    workload: &er_core::workload::Workload,
    requests: &[LabelRequest],
) -> Vec<LabelResponse> {
    requests
        .iter()
        .map(|request| LabelResponse {
            pair_id: request.pair_id,
            label: workload.pair(request.index).ground_truth(),
        })
        .collect()
}

fn main() {
    // A 30k-pair workload following the paper's logistic match-proportion
    // curve, and a 0.9/0.9 quality requirement at 90% confidence.
    let workload = SyntheticGenerator::new(SyntheticConfig::new(30_000, 14.0, 0.1)).generate();
    let requirement = QualityRequirement::new(0.9, 0.9, 0.9).unwrap();
    let config = SessionConfig::for_kind(OptimizerKind::Hybrid, requirement);

    println!("== phase 1: run a session batch by batch, then checkpoint ==");
    let mut session = humo::LabelingSession::new(config, &workload).unwrap();
    let mut responses = Vec::new();
    for _ in 0..6 {
        match session.step(&responses).unwrap() {
            Step::Done(_) => break,
            Step::NeedLabels(requests) => {
                println!(
                    "round {:>2} [{}]: {} pairs dispatched in parallel",
                    session.rounds(),
                    session.phase(),
                    requests.len()
                );
                responses = dispatch_to_workers(&workload, &requests);
            }
        }
    }
    // Absorb the in-flight responses, then checkpoint: the answered-label log
    // is the complete, serialization-free session snapshot.
    let _ = session.step(&responses).unwrap();
    let checkpoint: Vec<LabelResponse> = session.answered_log().to_vec();
    println!(
        "checkpoint after {} rounds: {} answered labels, phase '{}'\n",
        session.rounds(),
        checkpoint.len(),
        session.phase()
    );
    drop(session); // e.g. the process restarts here

    println!("== phase 2: resume from the checkpoint and run to completion ==");
    let mut resumed = humo::LabelingSession::resume(config, &workload, &checkpoint).unwrap();
    let mut responses = Vec::new();
    let outcome = loop {
        match resumed.step(&responses).unwrap() {
            Step::Done(outcome) => break outcome,
            Step::NeedLabels(requests) => {
                println!(
                    "round {:>2} [{}]: {} pairs dispatched in parallel",
                    resumed.rounds(),
                    resumed.phase(),
                    requests.len()
                );
                responses = dispatch_to_workers(&workload, &requests);
            }
        }
    };
    println!(
        "resumed session done: DH = [{}, {}), {} labels total, {} round-trips\n",
        outcome.solution.lower_index,
        outcome.solution.upper_index,
        outcome.total_human_cost,
        resumed.rounds()
    );

    println!("== phase 3: the classic oracle entry point is the same machine ==");
    let optimizer = HybridOptimizer::new(HybridConfig::new(requirement)).unwrap();
    let mut oracle = GroundTruthOracle::new();
    let reference = optimizer.optimize(&workload, &mut oracle).unwrap();
    assert_eq!(reference.solution, outcome.solution);
    assert_eq!(reference.assignment, outcome.assignment);
    assert_eq!(reference.total_human_cost, outcome.total_human_cost);
    println!(
        "byte-identical with Optimizer::optimize: cost {} pairs ({:.1}% of the workload), \
         precision {:.3}, recall {:.3}",
        reference.total_human_cost,
        100.0 * reference.human_cost_fraction(workload.len()),
        reference.metrics.precision(),
        reference.metrics.recall()
    );
    assert!(reference.metrics.precision() >= 0.9 && reference.metrics.recall() >= 0.9);
}
