//! Bibliographic matching end to end: records → blocking → similarity → HUMO.
//!
//! Run with:
//! ```text
//! cargo run --release -p humo-integration --example bibliographic_dedup
//! ```
//!
//! This is the DBLP-Scholar-style scenario of the paper's evaluation: two
//! publication datasets (one curated, one noisy) must be linked. The example
//! walks through the full pipeline on generated corpora:
//!
//! 1. generate the two record datasets plus the ground truth;
//! 2. block candidate pairs on shared title tokens;
//! 3. score the candidates with an attribute-weighted similarity (Jaccard on
//!    titles and authors, Jaro-Winkler on venues — the paper's configuration);
//! 4. hand the resulting workload to HUMO with a (precision, recall, confidence)
//!    requirement and inspect the outcome.

use er_core::aggregate::{AttributeMeasure, AttributeWeighting, PairScorer, ScoringConfig};
use er_core::blocking::{build_workload, TokenBlocker};
use er_core::similarity::StringMeasure;
use er_core::text::Tokenizer;
use er_datagen::bibliographic::{BibliographicConfig, BibliographicGenerator};
use humo::{GroundTruthOracle, HybridConfig, HybridOptimizer, Optimizer, QualityRequirement};

fn main() {
    // 1. Two publication corpora with overlapping entities.
    let corpus = BibliographicGenerator::new(BibliographicConfig {
        num_entities: 1_500,
        duplicate_probability: 0.6,
        extra_right_entities: 1_500,
        corruption: 0.35,
        seed: 42,
    })
    .generate();
    println!(
        "left dataset: {} records, right dataset: {} records, true duplicates: {}",
        corpus.left.len(),
        corpus.right.len(),
        corpus.match_count()
    );

    // 2. Token blocking on titles keeps the candidate set manageable.
    let blocker = TokenBlocker::new("title", Tokenizer::Words);
    let candidates = blocker.candidates(&corpus.left, &corpus.right);
    println!(
        "blocking: {} candidate pairs (vs {} in the cartesian product)",
        candidates.len(),
        corpus.left.len() * corpus.right.len()
    );

    // 3. Attribute-weighted pair similarity, weights proportional to the number of
    //    distinct attribute values (the paper's weighting rule).
    let scoring = ScoringConfig::new(
        [
            ("title", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
            ("authors", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
            ("venue", AttributeMeasure::Text(StringMeasure::JaroWinkler)),
        ],
        AttributeWeighting::DistinctValues,
    );
    let scorer = PairScorer::new(&scoring, &[&corpus.left, &corpus.right]).expect("valid scorer");

    // The paper filters DS pairs below similarity 0.2 during blocking.
    let workload = build_workload(
        &corpus.left,
        &corpus.right,
        &candidates,
        &scorer,
        &corpus.ground_truth,
        0.2,
    )
    .expect("workload construction succeeds");
    println!(
        "workload after the 0.2 similarity threshold: {} pairs, {} matches\n",
        workload.len(),
        workload.total_matches()
    );

    // 4. HUMO with a symmetric 0.9/0.9 requirement at 90% confidence, using the
    //    hybrid optimizer (the paper's best performer). Smaller workloads need a
    //    smaller subset size than the paper's 200-pair default.
    let requirement = QualityRequirement::new(0.9, 0.9, 0.9).unwrap();
    let mut config = HybridConfig::new(requirement);
    config.sampling.unit_size = 50;
    config.sampling.samples_per_subset = 15;
    let optimizer = HybridOptimizer::new(config).unwrap();
    let mut oracle = GroundTruthOracle::new();
    let outcome = optimizer.optimize(&workload, &mut oracle).expect("optimization succeeds");

    println!("HYBR outcome:");
    println!("  precision           {:.4}", outcome.metrics.precision());
    println!("  recall              {:.4}", outcome.metrics.recall());
    println!("  F1                  {:.4}", outcome.metrics.f1());
    println!("  pairs for the human {}", outcome.total_human_cost);
    println!(
        "  human cost          {:.2}% of the workload",
        100.0 * outcome.human_cost_fraction(workload.len())
    );
    if let Some((lo, hi)) = outcome.solution.human_similarity_interval(&workload) {
        println!("  human region        similarity in [{lo:.3}, {hi:.3}]");
    }
}
