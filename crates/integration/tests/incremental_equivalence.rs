//! Equivalence of incremental and batch resolution, pinned by property tests.
//!
//! The contract of the streaming pipeline (warm-starting disabled, uniform
//! attribute weighting): for **any** split of the records into ingest batches,
//! the engine ends up in exactly the state a from-scratch single-batch run
//! reaches on the union of the records —
//!
//! * the same candidate count,
//! * the same similarity-sorted workload (record pairs, similarities, labels,
//!   position by position),
//! * the same HUMO thresholds, label assignment and pair metrics,
//! * the same entity clusters and cluster metrics.
//!
//! A second group of properties pins the clustering substrate itself:
//! union-find transitive closure is idempotent and independent of edge order.

use er_core::aggregate::{AttributeMeasure, AttributeWeighting, ScoringConfig};
use er_core::record::{Record, RecordId};
use er_core::similarity::StringMeasure;
use er_core::text::Tokenizer;
use er_datagen::bibliographic::{BibliographicConfig, BibliographicGenerator, GeneratedCorpus};
use er_pipeline::cluster::{EntityClusters, RecordKey, Side};
use er_pipeline::{PipelineConfig, ResolutionEngine};
use humo::{GroundTruthOracle, QualityRequirement};
use proptest::prelude::*;

fn corpus(entities: usize, seed: u64) -> GeneratedCorpus {
    BibliographicGenerator::new(BibliographicConfig {
        num_entities: entities,
        duplicate_probability: 0.5,
        extra_right_entities: entities / 2,
        corruption: 0.3,
        seed,
    })
    .generate()
}

/// Cold (no warm start) configuration with uniform weighting — the regime the
/// exact-equivalence guarantee covers.
fn cold_config() -> PipelineConfig {
    let scoring = ScoringConfig::new(
        [
            ("title", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
            ("authors", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
        ],
        AttributeWeighting::Uniform,
    );
    let requirement = QualityRequirement::symmetric(0.9).expect("valid requirement");
    let mut config = PipelineConfig::new(scoring, "title", requirement);
    config.similarity_threshold = 0.25;
    config.optimizer.unit_size = 25;
    config.warm_start = false;
    config
}

fn engine() -> ResolutionEngine {
    let schema = BibliographicGenerator::schema();
    ResolutionEngine::new(cold_config(), schema.clone(), schema).expect("valid pipeline config")
}

fn batches_of(records: &[Record], count: usize) -> Vec<Vec<Record>> {
    let size = records.len().div_ceil(count.max(1)).max(1);
    records.chunks(size).map(<[Record]>::to_vec).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]
    #[test]
    fn any_batch_split_matches_a_from_scratch_run(
        entities in 40usize..90,
        split in 1usize..5,
        seed in 0u64..1_000,
    ) {
        let corpus = corpus(entities, seed);
        let truth: Vec<(RecordId, RecordId)> = corpus.ground_truth.iter().copied().collect();

        // Incremental: ingest in `split` batches.
        let mut incremental = engine();
        let left_batches = batches_of(corpus.left.records(), split);
        let right_batches = batches_of(corpus.right.records(), split);
        for i in 0..left_batches.len().max(right_batches.len()) {
            let l = left_batches.get(i).cloned().unwrap_or_default();
            let r = right_batches.get(i).cloned().unwrap_or_default();
            let edges = if i == 0 { truth.as_slice() } else { &[] };
            incremental.ingest(l, r, edges).unwrap();
        }

        // From-scratch: everything in one batch.
        let mut batch = engine();
        batch
            .ingest(corpus.left.records().to_vec(), corpus.right.records().to_vec(), &truth)
            .unwrap();

        // Same candidate set size and same workload, position by position
        // (pair ids differ by construction order; everything observable about
        // the workload must not).
        prop_assert_eq!(incremental.candidate_count(), batch.candidate_count());
        prop_assert_eq!(incremental.workload().len(), batch.workload().len());
        for (a, b) in incremental.workload().pairs().iter().zip(batch.workload().pairs()) {
            prop_assert_eq!(a.left(), b.left());
            prop_assert_eq!(a.right(), b.right());
            prop_assert_eq!(a.similarity().to_bits(), b.similarity().to_bits());
            prop_assert_eq!(a.ground_truth(), b.ground_truth());
        }

        // Same thresholds, labels, metrics, clusters and cluster metrics under
        // a cold resolve with fresh oracles.
        let mut oracle_a = GroundTruthOracle::new();
        let report_a = incremental.resolve(&mut oracle_a).unwrap();
        let mut oracle_b = GroundTruthOracle::new();
        let report_b = batch.resolve(&mut oracle_b).unwrap();
        prop_assert_eq!(report_a.outcome.solution, report_b.outcome.solution);
        prop_assert_eq!(&report_a.outcome.assignment, &report_b.outcome.assignment);
        prop_assert_eq!(report_a.outcome.metrics, report_b.outcome.metrics);
        prop_assert_eq!(report_a.oracle_queries, report_b.oracle_queries);
        prop_assert_eq!(&report_a.entities, &report_b.entities);
        prop_assert_eq!(report_a.cluster_metrics, report_b.cluster_metrics);
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
    #[test]
    fn union_find_clustering_is_idempotent_and_order_independent(
        nodes in 2usize..40,
        num_edges in 0usize..60,
        seed in 0u64..10_000,
        rotation in 0usize..60,
    ) {
        // Deterministic pseudo-random edge list over `nodes` keys.
        let key = |i: usize| -> RecordKey {
            if i.is_multiple_of(2) {
                (Side::Left, RecordId(i as u64))
            } else {
                (Side::Right, RecordId(i as u64))
            }
        };
        let all_nodes: Vec<RecordKey> = (0..nodes).map(key).collect();
        let edges: Vec<(RecordKey, RecordKey)> = (0..num_edges)
            .map(|e| {
                let h = (e as u64).wrapping_mul(6364136223846793005).wrapping_add(seed);
                let a = (h % nodes as u64) as usize;
                let b = ((h >> 17) % nodes as u64) as usize;
                (key(a), key(b))
            })
            .collect();

        let base = EntityClusters::from_edges(all_nodes.clone(), edges.clone());

        // Order independence: reversed and rotated edge orders agree.
        let mut reversed = edges.clone();
        reversed.reverse();
        prop_assert_eq!(&base, &EntityClusters::from_edges(all_nodes.clone(), reversed));
        let mut rotated = edges.clone();
        if !rotated.is_empty() {
            let r = rotation % rotated.len();
            rotated.rotate_left(r);
        }
        prop_assert_eq!(&base, &EntityClusters::from_edges(all_nodes.clone(), rotated));

        // Idempotence: adding the same edges again (or the clustering's own
        // co-membership pairs) changes nothing.
        let doubled: Vec<_> = edges.iter().chain(edges.iter()).copied().collect();
        prop_assert_eq!(&base, &EntityClusters::from_edges(all_nodes.clone(), doubled));
        let closure_edges: Vec<(RecordKey, RecordKey)> = base
            .clusters()
            .iter()
            .flat_map(|c| c.windows(2).map(|w| (w[0], w[1])))
            .collect();
        let reclustered = EntityClusters::from_edges(
            all_nodes,
            edges.into_iter().chain(closure_edges),
        );
        prop_assert_eq!(&base, &reclustered);

        // The partition is consistent: every node sits in exactly one cluster.
        let total: usize = base.clusters().iter().map(Vec::len).sum();
        prop_assert_eq!(total, nodes);
    }
}
