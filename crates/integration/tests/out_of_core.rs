//! Out-of-core equivalence: a memory-budgeted engine spills posting lists and
//! workload segments to disk yet resolves **byte-identically** to an unbounded
//! in-memory engine.
//!
//! The spill layer's contract is that residency never affects computed values:
//! candidates, similarities, thresholds, labels, entities and metrics must all
//! be exactly equal, and the budgeted engine's resident pair count must stay
//! within its budget after every ingest.

use er_core::aggregate::{AttributeMeasure, AttributeWeighting, ScoringConfig};
use er_core::record::RecordId;
use er_core::similarity::StringMeasure;
use er_core::spill::MemoryBudget;
use er_core::text::Tokenizer;
use er_datagen::bibliographic::{BibliographicConfig, BibliographicGenerator, GeneratedCorpus};
use er_pipeline::{PipelineConfig, ResolutionEngine};
use humo::{GroundTruthOracle, QualityRequirement};

fn corpus(entities: usize, seed: u64) -> GeneratedCorpus {
    BibliographicGenerator::new(BibliographicConfig {
        num_entities: entities,
        duplicate_probability: 0.5,
        extra_right_entities: entities / 2,
        corruption: 0.3,
        seed,
    })
    .generate()
}

fn config(memory_budget: MemoryBudget) -> PipelineConfig {
    let scoring = ScoringConfig::new(
        [
            ("title", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
            ("authors", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
        ],
        AttributeWeighting::Uniform,
    );
    let requirement = QualityRequirement::symmetric(0.9).expect("valid requirement");
    let mut config = PipelineConfig::new(scoring, "title", requirement);
    config.similarity_threshold = 0.25;
    config.optimizer.unit_size = 25;
    config.warm_start = false;
    config.memory_budget = memory_budget;
    config
}

fn engine(memory_budget: MemoryBudget) -> ResolutionEngine {
    let schema = BibliographicGenerator::schema();
    ResolutionEngine::new(config(memory_budget), schema.clone(), schema)
        .expect("valid pipeline config")
}

#[test]
fn budgeted_engine_spills_and_matches_in_memory_resolution() {
    let corpus = corpus(260, 23);
    let truth: Vec<(RecordId, RecordId)> = corpus.ground_truth.iter().copied().collect();

    let pair_budget = 600;
    let mut in_memory = engine(MemoryBudget::unbounded());
    let mut budgeted = engine(MemoryBudget::bounded(pair_budget, 2_000));

    // Ingest the same batches into both engines; the budgeted one must stay
    // within its resident-pair budget after every batch.
    let batches = 4;
    let left_size = corpus.left.len().div_ceil(batches);
    let right_size = corpus.right.len().div_ceil(batches);
    for i in 0..batches {
        let l: Vec<_> =
            corpus.left.records().iter().skip(i * left_size).take(left_size).cloned().collect();
        let r: Vec<_> =
            corpus.right.records().iter().skip(i * right_size).take(right_size).cloned().collect();
        let truth_delta = if i == 0 { truth.as_slice() } else { &[] };
        let a = in_memory.ingest(l.clone(), r.clone(), truth_delta).unwrap();
        let b = budgeted.ingest(l, r, truth_delta).unwrap();
        assert_eq!(a.delta_candidates, b.delta_candidates, "batch {i} candidates diverged");
        assert_eq!(a.retained_pairs, b.retained_pairs, "batch {i} retained pairs diverged");
        assert!(
            b.resident_pairs <= pair_budget,
            "batch {i}: {} resident pairs exceed the {pair_budget} budget",
            b.resident_pairs
        );
        assert_eq!(b.resident_pairs + b.spilled_pairs, b.workload_len);
        assert_eq!(a.spilled_pairs, 0);
    }

    // The budget was tight enough that both layers actually spilled.
    assert!(budgeted.workload().spilled_pairs() > 0, "workload spill never engaged");
    assert!(budgeted.workload().spilled_bytes() > 0);
    assert!(budgeted.blocking_index().spilled_generations() > 0, "posting spill never engaged");
    assert!(budgeted.blocking_index().spilled_bytes() > 0);
    assert_eq!(in_memory.workload().spilled_pairs(), 0);
    assert_eq!(in_memory.blocking_index().spilled_generations(), 0);

    // The workloads are byte-identical, pair by pair.
    assert_eq!(in_memory.workload().len(), budgeted.workload().len());
    for (i, (a, b)) in in_memory.workload().iter().zip(budgeted.workload().iter()).enumerate() {
        assert_eq!(a.id(), b.id(), "pair {i} id diverged");
        assert_eq!(a.left(), b.left(), "pair {i} left record diverged");
        assert_eq!(a.right(), b.right(), "pair {i} right record diverged");
        assert_eq!(
            a.similarity().to_bits(),
            b.similarity().to_bits(),
            "pair {i} similarity bits diverged"
        );
        assert_eq!(a.ground_truth(), b.ground_truth(), "pair {i} truth label diverged");
    }

    // Resolution over the spilled workload is exactly the in-memory resolution.
    let mut oracle_a = GroundTruthOracle::new();
    let mut oracle_b = GroundTruthOracle::new();
    let a = in_memory.resolve(&mut oracle_a).unwrap();
    let b = budgeted.resolve(&mut oracle_b).unwrap();
    assert_eq!(a.outcome.solution, b.outcome.solution);
    assert_eq!(a.outcome.assignment, b.outcome.assignment);
    assert_eq!(a.outcome.metrics, b.outcome.metrics);
    assert_eq!(a.oracle_queries, b.oracle_queries);
    assert_eq!(a.entities, b.entities);
    assert_eq!(a.cluster_metrics, b.cluster_metrics);
}

#[test]
fn tiny_budgets_spill_aggressively_but_keep_reports_identical() {
    // An adversarially small budget (a fraction of one segment) forces spilled
    // reads on nearly every workload access path during resolution.
    let corpus = corpus(120, 31);
    let truth: Vec<(RecordId, RecordId)> = corpus.ground_truth.iter().copied().collect();
    let mut reference = engine(MemoryBudget::unbounded());
    let mut tiny = engine(MemoryBudget {
        resident_pairs: 64,
        resident_postings: 128,
        cached_segments: 2,
        spill_dir: None,
    });
    let l = corpus.left.records().to_vec();
    let r = corpus.right.records().to_vec();
    let a = reference.ingest(l.clone(), r.clone(), &truth).unwrap();
    let b = tiny.ingest(l, r, &truth).unwrap();
    assert_eq!(a.delta_candidates, b.delta_candidates);
    assert!(b.spilled_pairs > 0);
    let mut oracle_a = GroundTruthOracle::new();
    let mut oracle_b = GroundTruthOracle::new();
    let ra = reference.resolve(&mut oracle_a).unwrap();
    let rb = tiny.resolve(&mut oracle_b).unwrap();
    assert_eq!(ra.outcome.solution, rb.outcome.solution);
    assert_eq!(ra.outcome.assignment, rb.outcome.assignment);
    assert_eq!(ra.oracle_queries, rb.oracle_queries);
    assert_eq!(ra.entities, rb.entities);
}
