//! A degenerate crowd is not a different oracle: `Redundancy::Fixed(1)` over
//! zero-noise workers must drive every optimizer to the byte-identical
//! outcome — same boundaries, same label assignment, same cost counters —
//! that [`GroundTruthOracle`] produces, at the same number of labels issued.
//! This pins the crowd layer as a pure generalization: enabling it without
//! redundancy or noise changes nothing.

use er_datagen::synthetic::{SyntheticConfig, SyntheticGenerator};
use humo::{
    symmetric_pool, Aggregation, AllSamplingConfig, AllSamplingOptimizer, BaselineConfig,
    BaselineOptimizer, CrowdOracle, GroundTruthOracle, HybridConfig, HybridOptimizer, Optimizer,
    OptimizerKind, Oracle, PartialSamplingConfig, PartialSamplingOptimizer, QualityRequirement,
    Redundancy,
};
use proptest::prelude::*;

/// Builds the optimizer for a kind with the harness defaults and a seed.
fn build(kind: OptimizerKind, requirement: QualityRequirement, seed: u64) -> Box<dyn Optimizer> {
    match kind {
        OptimizerKind::Baseline => {
            Box::new(BaselineOptimizer::new(BaselineConfig::new(requirement)).unwrap())
        }
        OptimizerKind::AllSampling => Box::new(
            AllSamplingOptimizer::new(AllSamplingConfig {
                seed,
                ..AllSamplingConfig::new(requirement)
            })
            .unwrap(),
        ),
        OptimizerKind::PartialSampling => Box::new(
            PartialSamplingOptimizer::new(PartialSamplingConfig::new(requirement).with_seed(seed))
                .unwrap(),
        ),
        OptimizerKind::Hybrid => {
            Box::new(HybridOptimizer::new(HybridConfig::new(requirement).with_seed(seed)).unwrap())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

    #[test]
    fn fixed1_zero_noise_crowd_is_byte_identical_to_ground_truth(
        tau in 8.0..18.0f64,
        seed in 0u64..1_000,
    ) {
        let workload = SyntheticGenerator::new(SyntheticConfig {
            num_pairs: 4_000,
            tau,
            sigma: 0.1,
            subset_size: 200,
            seed,
        })
        .generate();
        let requirement = QualityRequirement::symmetric(0.9).unwrap();
        for kind in OptimizerKind::all() {
            let optimizer = build(kind, requirement, seed);

            let mut truth_oracle = GroundTruthOracle::new();
            let truth = optimizer.optimize(&workload, &mut truth_oracle).unwrap();

            let mut crowd_oracle = CrowdOracle::new(
                symmetric_pool(4, 0.0, seed ^ 0xA5A5),
                Redundancy::Fixed(1),
                Aggregation::Majority,
                seed ^ 0x5A5A,
            );
            let crowd = optimizer.optimize(&workload, &mut crowd_oracle).unwrap();

            prop_assert_eq!(crowd.solution.lower_index, truth.solution.lower_index);
            prop_assert_eq!(crowd.solution.upper_index, truth.solution.upper_index);
            prop_assert_eq!(crowd.assignment.labels(), truth.assignment.labels());
            prop_assert_eq!(crowd.verification_cost, truth.verification_cost);
            prop_assert_eq!(crowd.sampling_cost, truth.sampling_cost);
            prop_assert_eq!(crowd.total_human_cost, truth.total_human_cost);
            prop_assert_eq!(crowd_oracle.labels_issued(), truth_oracle.labels_issued());
            // One vote per label: the crowd layer added zero cost.
            prop_assert_eq!(crowd_oracle.votes_cast(), crowd_oracle.labels_issued() as u64);
        }
    }
}
