//! Engine-level crash recovery: a `ResolutionEngine` with an attached WAL
//! multiplexes epochs onto one `HAL1` log — committed epochs fold into the
//! cross-epoch label store and warm-start state, a trailing uncommitted epoch
//! rebuilds mid-flight — and a fresh engine that re-ingests the same batches
//! resumes to the byte-identical outcome the crashed process was heading for.

use er_core::aggregate::{AttributeMeasure, AttributeWeighting, ScoringConfig};
use er_core::record::{Record, RecordId};
use er_core::similarity::StringMeasure;
use er_core::text::Tokenizer;
use er_datagen::bibliographic::{BibliographicConfig, BibliographicGenerator, GeneratedCorpus};
use er_pipeline::{
    PipelineConfig, ResolutionEngine, ResolutionReport, ResolutionSession, ResolutionStep,
};
use humo::{LabelResponse, QualityRequirement};
use std::path::PathBuf;

fn pipeline_config() -> PipelineConfig {
    let scoring = ScoringConfig::new(
        [
            ("title", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
            ("authors", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
        ],
        AttributeWeighting::Uniform,
    );
    let requirement = QualityRequirement::symmetric(0.9).unwrap();
    let mut config = PipelineConfig::new(scoring, "title", requirement);
    config.similarity_threshold = 0.15;
    config.optimizer.unit_size = 25;
    config
}

fn corpus(entities: usize, seed: u64) -> GeneratedCorpus {
    BibliographicGenerator::new(BibliographicConfig {
        num_entities: entities,
        duplicate_probability: 0.6,
        extra_right_entities: entities / 2,
        corruption: 0.3,
        seed,
    })
    .generate()
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(".humo-engine-resume-{}-{name}", std::process::id()))
}

/// Splits the corpus into two ingest batches plus the truth edges.
struct Batches {
    first: (Vec<Record>, Vec<Record>),
    second: (Vec<Record>, Vec<Record>),
    truth: Vec<(RecordId, RecordId)>,
}

fn batches(entities: usize, seed: u64) -> Batches {
    let corpus = corpus(entities, seed);
    let truth: Vec<(RecordId, RecordId)> = corpus.ground_truth.iter().copied().collect();
    let (l1, l2) = corpus.left.records().split_at(corpus.left.len() * 2 / 3);
    let (r1, r2) = corpus.right.records().split_at(corpus.right.len() * 2 / 3);
    Batches { first: (l1.to_vec(), r1.to_vec()), second: (l2.to_vec(), r2.to_vec()), truth }
}

fn ingest_all(engine: &mut ResolutionEngine, batches: &Batches) {
    engine
        .ingest(batches.first.0.clone(), batches.first.1.clone(), &batches.truth)
        .expect("first batch ingests");
    engine
        .ingest(batches.second.0.clone(), batches.second.1.clone(), &[])
        .expect("second batch ingests");
}

fn drive(mut session: ResolutionSession<'_>) -> ResolutionReport {
    let mut responses = Vec::new();
    loop {
        match session.step(&responses).unwrap() {
            ResolutionStep::Done(report) => return report,
            ResolutionStep::NeedLabels(requests) => {
                let workload = session.workload();
                responses = requests
                    .iter()
                    .map(|request| LabelResponse {
                        pair_id: request.pair_id,
                        label: workload.pair(request.index).ground_truth(),
                    })
                    .collect();
            }
        }
    }
}

/// Drives a session for `rounds` dispatch waves, then abandons it mid-flight.
fn drive_partially(mut session: ResolutionSession<'_>, rounds: usize) {
    let mut responses = Vec::new();
    for _ in 0..rounds {
        match session.step(&responses).unwrap() {
            ResolutionStep::Done(_) => panic!("session finished before the simulated crash"),
            ResolutionStep::NeedLabels(requests) => {
                let workload = session.workload();
                responses = requests
                    .iter()
                    .map(|request| LabelResponse {
                        pair_id: request.pair_id,
                        label: workload.pair(request.index).ground_truth(),
                    })
                    .collect();
            }
        }
    }
}

fn assert_reports_equal(context: &str, a: &ResolutionReport, b: &ResolutionReport) {
    assert_eq!(a.outcome.solution, b.outcome.solution, "{context}: bounds differ");
    assert_eq!(a.outcome.assignment, b.outcome.assignment, "{context}: assignments differ");
    assert_eq!(a.outcome.metrics, b.outcome.metrics, "{context}: metrics differ");
    assert_eq!(a.oracle_queries, b.oracle_queries, "{context}: label costs differ");
    assert_eq!(a.entities, b.entities, "{context}: entity clusters differ");
    assert_eq!(a.cluster_metrics, b.cluster_metrics, "{context}: cluster metrics differ");
}

/// Crash in the middle of epoch 2 (epoch 1 committed): a fresh engine that
/// re-ingests both batches folds epoch 1 from the log — labels *and* warm
/// start — and finishes epoch 2 byte-identically to a never-crashed engine.
#[test]
fn multi_epoch_log_resumes_the_second_epoch_byte_identically() {
    let batches = batches(160, 41);
    let path = temp_path("multi-epoch");
    let schema = BibliographicGenerator::schema();

    // Reference: two epochs, no crash, no WAL.
    let mut reference =
        ResolutionEngine::new(pipeline_config(), schema.clone(), schema.clone()).unwrap();
    reference.ingest(batches.first.0.clone(), batches.first.1.clone(), &batches.truth).unwrap();
    drive(reference.begin_resolve().unwrap());
    reference.ingest(batches.second.0.clone(), batches.second.1.clone(), &[]).unwrap();
    let reference_report = drive(reference.begin_resolve().unwrap());
    assert!(reference_report.used_warm_start, "second epoch should start warm");

    // Crashed engine: epoch 1 completes and commits, epoch 2 dies after two
    // dispatch waves. Both epochs share one log.
    let mut crashed =
        ResolutionEngine::new(pipeline_config(), schema.clone(), schema.clone()).unwrap();
    crashed.ingest(batches.first.0.clone(), batches.first.1.clone(), &batches.truth).unwrap();
    crashed.attach_wal(&path).unwrap();
    drive(crashed.begin_resolve().unwrap());
    crashed.ingest(batches.second.0.clone(), batches.second.1.clone(), &[]).unwrap();
    drive_partially(crashed.begin_resolve().unwrap(), 2);
    drop(crashed);

    // Fresh process: re-ingest the same batches, resume, finish epoch 2.
    let mut resumed = ResolutionEngine::new(pipeline_config(), schema.clone(), schema).unwrap();
    ingest_all(&mut resumed, &batches);
    let session = resumed.resume(&path).unwrap().expect("epoch 2 is in flight on the log");
    let report = drive(session);
    assert!(report.used_warm_start, "resumed epoch must re-seed the committed warm start");
    assert_reports_equal("multi-epoch resume", &report, &reference_report);
    std::fs::remove_file(&path).unwrap();
}

/// Resuming against an engine that did not re-ingest the same batches is
/// refused: the log names the workload size it was written for.
#[test]
fn resume_against_a_different_workload_is_refused() {
    let batches = batches(120, 43);
    let path = temp_path("wrong-workload");
    let schema = BibliographicGenerator::schema();

    let mut engine =
        ResolutionEngine::new(pipeline_config(), schema.clone(), schema.clone()).unwrap();
    ingest_all(&mut engine, &batches);
    engine.attach_wal(&path).unwrap();
    drive_partially(engine.begin_resolve().unwrap(), 1);
    drop(engine);

    // Only the first batch re-ingested: the workload is smaller than the one
    // the in-flight epoch was begun over.
    let mut partial = ResolutionEngine::new(pipeline_config(), schema.clone(), schema).unwrap();
    partial.ingest(batches.first.0.clone(), batches.first.1.clone(), &batches.truth).unwrap();
    let err = partial.resume(&path).unwrap_err();
    let message = err.to_string();
    assert!(
        message.contains("re-ingest"),
        "refusal should tell the operator to re-ingest the same batches: {message}"
    );
    std::fs::remove_file(&path).unwrap();
}

/// A clone of an engine never inherits the WAL append handle: the log has
/// exactly one writer.
#[test]
fn cloned_engines_do_not_share_the_wal() {
    let path = temp_path("clone");
    let schema = BibliographicGenerator::schema();
    let mut engine = ResolutionEngine::new(pipeline_config(), schema.clone(), schema).unwrap();
    engine.attach_wal(&path).unwrap();
    assert!(engine.has_wal());
    let clone = engine.clone();
    assert!(!clone.has_wal(), "clone must not share the exclusive append handle");
    std::fs::remove_file(&path).unwrap();
}
