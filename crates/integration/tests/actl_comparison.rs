//! Integration tests for the HUMO-vs-ACTL comparison (the paper's Tables V/VI and
//! Figure 11 in miniature).

use er_datagen::calibrated::CalibratedConfig;
use er_ml::{ActiveLearningClassifier, ActlConfig};
use humo::{GroundTruthOracle, HybridConfig, HybridOptimizer, Optimizer, QualityRequirement};

fn ds_workload() -> er_core::workload::Workload {
    CalibratedConfig::ds(13).scaled(0.1).generate()
}

fn ab_workload() -> er_core::workload::Workload {
    CalibratedConfig::ab(13).scaled(0.05).generate()
}

fn run_humo(workload: &er_core::workload::Workload, precision: f64) -> humo::OptimizationOutcome {
    let requirement = QualityRequirement::new(precision, precision, 0.9).unwrap();
    let optimizer = HybridOptimizer::new(HybridConfig::new(requirement)).unwrap();
    let mut oracle = GroundTruthOracle::new();
    optimizer.optimize(workload, &mut oracle).unwrap()
}

fn run_actl(workload: &er_core::workload::Workload, precision: f64) -> er_ml::ActlResult {
    let actl = ActiveLearningClassifier::new(ActlConfig {
        target_precision: precision,
        confidence: 0.9,
        samples_per_probe: 200,
        max_probes: 20,
        seed: 3,
    })
    .unwrap();
    actl.run(workload).unwrap()
}

#[test]
fn humo_achieves_higher_recall_than_actl_at_matched_precision_on_ds() {
    let workload = ds_workload();
    for precision in [0.8, 0.9] {
        let humo_outcome = run_humo(&workload, precision);
        let actl_outcome = run_actl(&workload, precision);
        assert!(
            humo_outcome.metrics.recall() > actl_outcome.metrics.recall(),
            "precision {precision}: HUMO recall {} should exceed ACTL recall {}",
            humo_outcome.metrics.recall(),
            actl_outcome.metrics.recall()
        );
    }
}

#[test]
fn humo_achieves_much_higher_recall_than_actl_on_ab() {
    // On the AB shape ACTL's pure threshold classifier gives up most of the recall
    // (Table VI reports 0.10-0.20); HUMO keeps it above the requirement.
    let workload = ab_workload();
    let humo_outcome = run_humo(&workload, 0.9);
    let actl_outcome = run_actl(&workload, 0.9);
    assert!(humo_outcome.metrics.recall() >= 0.9);
    assert!(
        actl_outcome.metrics.recall() < 0.6,
        "ACTL recall {} unexpectedly high on the AB shape",
        actl_outcome.metrics.recall()
    );
    assert!(
        humo_outcome.metrics.recall() - actl_outcome.metrics.recall() > 0.3,
        "HUMO should dominate ACTL by a wide recall margin on AB"
    );
}

#[test]
fn actl_is_cheaper_but_humo_buys_quality_at_reasonable_roi() {
    // HUMO uses more manual work than ACTL, but the extra cost per absolute point
    // of recall improvement stays small (the Δψ/ΔRecall column of Tables V/VI).
    let workload = ds_workload();
    let humo_outcome = run_humo(&workload, 0.9);
    let actl_outcome = run_actl(&workload, 0.9);

    let humo_cost = humo_outcome.human_cost_fraction(workload.len());
    let actl_cost = actl_outcome.human_cost_fraction(workload.len());
    assert!(
        humo_cost > actl_cost,
        "HUMO ({humo_cost:.4}) is expected to use more manual work than ACTL ({actl_cost:.4})"
    );

    let recall_gain = humo_outcome.metrics.recall() - actl_outcome.metrics.recall();
    assert!(recall_gain > 0.0);
    let cost_per_point = (humo_cost - actl_cost) / (100.0 * recall_gain);
    assert!(
        cost_per_point < 0.02,
        "manual work per 1% recall improvement should be small, got {cost_per_point:.4}"
    );
}

#[test]
fn both_methods_respect_their_precision_targets() {
    let workload = ds_workload();
    for precision in [0.8, 0.9, 0.95] {
        let humo_outcome = run_humo(&workload, precision);
        let actl_outcome = run_actl(&workload, precision);
        assert!(
            humo_outcome.metrics.precision() >= precision - 1e-9,
            "HUMO precision {} below target {precision}",
            humo_outcome.metrics.precision()
        );
        assert!(
            actl_outcome.metrics.precision() >= precision - 0.05,
            "ACTL precision {} far below target {precision}",
            actl_outcome.metrics.precision()
        );
    }
}
