//! Property-based integration tests of the quality guarantees.
//!
//! These are the paper's central claims (Theorems 1 and 2, plus the HYBR
//! dominance argument) exercised over randomized workload shapes.

use er_datagen::synthetic::{SyntheticConfig, SyntheticGenerator};
use humo::{
    BaselineConfig, BaselineOptimizer, GroundTruthOracle, HybridConfig, HybridOptimizer, Optimizer,
    PartialSamplingConfig, PartialSamplingOptimizer, QualityRequirement,
};
use proptest::prelude::*;

fn synthetic(num_pairs: usize, tau: f64, sigma: f64, seed: u64) -> er_core::workload::Workload {
    SyntheticGenerator::new(SyntheticConfig { num_pairs, tau, sigma, subset_size: 200, seed })
        .generate()
}

proptest! {
    // Keep the case count small: every case runs full optimizations.
    #![proptest_config(ProptestConfig { cases: 8, .. ProptestConfig::default() })]

    /// Theorem 1: under (approximate) monotonicity the baseline meets any
    /// requirement level.
    #[test]
    fn baseline_meets_requirements_under_monotonicity(
        tau in 10.0..18.0f64,
        level in 0.7..0.95f64,
        seed in 0u64..1_000,
    ) {
        let workload = synthetic(15_000, tau, 0.05, seed);
        let requirement = QualityRequirement::new(level, level, 0.9).unwrap();
        let mut config = BaselineConfig::new(requirement);
        config.unit_size = 100;
        let optimizer = BaselineOptimizer::new(config).unwrap();
        let mut oracle = GroundTruthOracle::new();
        let outcome = optimizer.optimize(&workload, &mut oracle).unwrap();
        prop_assert!(outcome.metrics.precision() >= level - 1e-9,
            "precision {} < {level}", outcome.metrics.precision());
        prop_assert!(outcome.metrics.recall() >= level - 1e-9,
            "recall {} < {level}", outcome.metrics.recall());
    }

    /// The solution structure is always a valid three-way partition and the cost
    /// accounting is internally consistent, whatever the workload shape.
    #[test]
    fn outcomes_are_structurally_consistent(
        tau in 6.0..18.0f64,
        sigma in 0.0..0.4f64,
        level in 0.7..0.95f64,
        seed in 0u64..1_000,
    ) {
        let workload = synthetic(10_000, tau, sigma, seed);
        let requirement = QualityRequirement::new(level, level, 0.9).unwrap();
        let optimizer = PartialSamplingOptimizer::new(
            PartialSamplingConfig::new(requirement).with_seed(seed),
        ).unwrap();
        let mut oracle = GroundTruthOracle::new();
        let outcome = optimizer.optimize(&workload, &mut oracle).unwrap();

        let s = outcome.solution;
        prop_assert!(s.lower_index <= s.upper_index);
        prop_assert!(s.upper_index <= workload.len());
        prop_assert_eq!(
            s.machine_negative_size() + s.human_region_size() + s.machine_positive_size(workload.len()),
            workload.len()
        );
        prop_assert_eq!(outcome.verification_cost, s.human_region_size());
        prop_assert_eq!(
            outcome.total_human_cost,
            outcome.verification_cost + outcome.sampling_cost
        );
        prop_assert!(outcome.total_human_cost <= workload.len());
        // The assignment labels exactly D+ plus the matches the oracle found in DH.
        prop_assert_eq!(outcome.assignment.len(), workload.len());
    }

    /// HYBR never costs more than SAMP for the same seed and requirement — the
    /// paper's dominance argument for the hybrid search.
    #[test]
    fn hybrid_is_never_more_expensive_than_samp(
        tau in 10.0..18.0f64,
        level in 0.75..0.95f64,
        seed in 0u64..500,
    ) {
        let workload = synthetic(12_000, tau, 0.1, seed);
        let requirement = QualityRequirement::new(level, level, 0.9).unwrap();

        let samp = PartialSamplingOptimizer::new(
            PartialSamplingConfig::new(requirement).with_seed(seed),
        ).unwrap();
        let mut samp_oracle = GroundTruthOracle::new();
        let samp_outcome = samp.optimize(&workload, &mut samp_oracle).unwrap();

        let hybr = HybridOptimizer::new(
            HybridConfig::new(requirement).with_seed(seed),
        ).unwrap();
        let mut hybr_oracle = GroundTruthOracle::new();
        let hybr_outcome = hybr.optimize(&workload, &mut hybr_oracle).unwrap();

        prop_assert!(
            hybr_outcome.total_human_cost <= samp_outcome.total_human_cost,
            "HYBR cost {} exceeds SAMP cost {}",
            hybr_outcome.total_human_cost,
            samp_outcome.total_human_cost
        );
    }

    /// Assigning everything to the human is always feasible and perfect; the
    /// optimizers must never exceed that trivial cost.
    #[test]
    fn optimizers_never_exceed_the_all_human_cost(
        tau in 6.0..18.0f64,
        sigma in 0.0..0.5f64,
        seed in 0u64..500,
    ) {
        let workload = synthetic(8_000, tau, sigma, seed);
        let requirement = QualityRequirement::new(0.9, 0.9, 0.9).unwrap();
        let optimizer = HybridOptimizer::new(HybridConfig::new(requirement).with_seed(seed)).unwrap();
        let mut oracle = GroundTruthOracle::new();
        let outcome = optimizer.optimize(&workload, &mut oracle).unwrap();
        prop_assert!(outcome.total_human_cost <= workload.len());
    }
}

/// The requirement/confidence knobs behave monotonically on average: this is a
/// deterministic multi-seed check rather than a proptest because single runs are
/// noisy by design.
#[test]
fn average_cost_increases_with_the_requirement_level() {
    let workload = synthetic(20_000, 14.0, 0.1, 7);
    let avg_cost = |level: f64| {
        let mut total = 0usize;
        for seed in 0..5 {
            let requirement = QualityRequirement::new(level, level, 0.9).unwrap();
            let optimizer = PartialSamplingOptimizer::new(
                PartialSamplingConfig::new(requirement).with_seed(seed),
            )
            .unwrap();
            let mut oracle = GroundTruthOracle::new();
            total += optimizer.optimize(&workload, &mut oracle).unwrap().total_human_cost;
        }
        total as f64 / 5.0
    };
    let low = avg_cost(0.75);
    let high = avg_cost(0.95);
    assert!(
        high > low,
        "average cost at the 0.95 requirement ({high}) should exceed the 0.75 one ({low})"
    );
}
