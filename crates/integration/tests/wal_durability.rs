//! WAL durability: a `DurableSession` killed at *any* step — including by a
//! real `SIGKILL` of a child process — resumes from its `HAL1` log to the
//! byte-identical outcome, for every optimizer kind. The log itself survives
//! torture: arbitrary truncation recovers the longest complete record prefix,
//! and single-bit corruption is detected (an error, or a conservative
//! torn-tail truncation when the flip is indistinguishable from one) — never
//! a panic, never a silently altered label.

use er_core::workload::Workload;
use humo::wal::{decode_log, DurableSession, WalWriter, HAL1_MAGIC};
use humo::{
    LabelResponse, LabelingSession, OptimizationOutcome, OptimizerKind, QualityRequirement,
    SessionConfig, Step,
};
use proptest::prelude::*;
use std::io::Write as _;
use std::path::PathBuf;

/// Env var that flips this test binary into the crash-harness child role.
const CHILD_ENV: &str = "HUMO_WAL_DURABILITY_CHILD";
/// Marker the child prints once its kill point is durable on disk.
const KILL_MARKER: &str = "HUMO_WAL_CHILD_PARKED";

fn workload(n: usize, tau: f64, sigma: f64, seed: u64) -> Workload {
    er_datagen::synthetic::SyntheticGenerator::new(er_datagen::synthetic::SyntheticConfig {
        num_pairs: n,
        tau,
        sigma,
        subset_size: 200,
        seed,
    })
    .generate()
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(".humo-wal-durability-{}-{name}", std::process::id()))
}

fn answer(workload: &Workload, requests: &[humo::LabelRequest]) -> Vec<LabelResponse> {
    requests
        .iter()
        .map(|request| LabelResponse {
            pair_id: request.pair_id,
            label: workload.pair(request.index).ground_truth(),
        })
        .collect()
}

fn drive_plain(session: &mut LabelingSession<'_>) -> OptimizationOutcome {
    let workload = session.workload();
    let mut responses = Vec::new();
    loop {
        match session.step(&responses).unwrap() {
            Step::Done(outcome) => return outcome,
            Step::NeedLabels(requests) => responses = answer(workload, &requests),
        }
    }
}

fn drive_durable(session: &mut DurableSession<'_>, workload: &Workload) -> OptimizationOutcome {
    let mut responses = Vec::new();
    loop {
        match session.step(&responses).unwrap() {
            Step::Done(outcome) => return outcome,
            Step::NeedLabels(requests) => responses = answer(workload, &requests),
        }
    }
}

fn assert_outcomes_equal(kind: OptimizerKind, a: &OptimizationOutcome, b: &OptimizationOutcome) {
    assert_eq!(a.solution, b.solution, "{kind:?}: bounds differ");
    assert_eq!(a.assignment, b.assignment, "{kind:?}: label assignments differ");
    assert_eq!(a.metrics, b.metrics, "{kind:?}: metrics differ");
    assert_eq!(a.total_human_cost, b.total_human_cost, "{kind:?}: total cost differs");
    assert_eq!(a.verification_cost, b.verification_cost, "{kind:?}: verification cost differs");
    assert_eq!(a.sampling_cost, b.sampling_cost, "{kind:?}: sampling cost differs");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]
    #[test]
    fn killed_durable_sessions_resume_byte_identically(
        tau in 8.0..18.0f64,
        sigma in 0.05..0.25f64,
        seed in 0u64..1_000,
        kill_fraction in 0.0..1.0f64,
    ) {
        let w = workload(6_000, tau, sigma, seed);
        let requirement = QualityRequirement::new(0.9, 0.9, 0.9).unwrap();
        for kind in OptimizerKind::all() {
            let config = SessionConfig::for_kind(kind, requirement);

            // Uninterrupted reference run.
            let mut reference_session = LabelingSession::new(config, &w).unwrap();
            let reference = drive_plain(&mut reference_session);
            let total_rounds = reference_session.rounds();

            // Durable run abandoned mid-flight after a proptest-chosen number
            // of dispatch waves — every kill point from "before the first
            // label" to "one wave short of done".
            let kill_after = ((total_rounds as f64) * kill_fraction) as usize;
            let path = temp_path(&format!("kill-{kind:?}"));
            {
                let mut durable = DurableSession::create(config, &w, &path).unwrap();
                let mut responses = Vec::new();
                for _ in 0..kill_after {
                    match durable.step(&responses).unwrap() {
                        Step::Done(_) => break,
                        Step::NeedLabels(requests) => responses = answer(&w, &requests),
                    }
                }
                // Dropped without commit: the simulated crash. Only what
                // `fsync` already persisted reaches the resume below.
            }

            let mut resumed = DurableSession::resume(&w, &path).unwrap();
            let outcome = drive_durable(&mut resumed, &w);
            assert_outcomes_equal(kind, &outcome, &reference);
            prop_assert!(
                resumed.session().state().answered_log()
                    == reference_session.state().answered_log(),
                "{:?}: resumed answered log diverged from the reference",
                kind
            );
            std::fs::remove_file(&path).unwrap();
        }
    }
}

/// Builds a realistic multi-record log image (a full Hybrid session) and
/// returns it with the decoded record count.
fn sample_log_image() -> (Vec<u8>, usize) {
    let w = workload(4_000, 14.0, 0.1, 7);
    let requirement = QualityRequirement::new(0.9, 0.9, 0.9).unwrap();
    let config = SessionConfig::for_kind(OptimizerKind::Hybrid, requirement);
    let path = temp_path("image");
    {
        let mut durable = DurableSession::create(config, &w, &path).unwrap();
        drive_durable(&mut durable, &w);
    }
    let image = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    let records = decode_log(&image).unwrap().records.len();
    assert!(records >= 4, "sample log too small to torture ({records} records)");
    (image, records)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]
    #[test]
    fn truncated_logs_recover_the_longest_complete_prefix(cut_fraction in 0.0..1.0f64) {
        let (image, total) = sample_log_image();
        let full = decode_log(&image).unwrap().records;
        let cut = ((image.len() as f64) * cut_fraction) as usize;
        let truncated = &image[..cut];
        if cut < HAL1_MAGIC.len() {
            // Not even the magic survived: an empty, torn log.
            let recovery = decode_log(truncated).unwrap();
            prop_assert!(recovery.torn_tail);
            prop_assert!(recovery.records.is_empty());
        } else {
            let recovery = decode_log(truncated).unwrap();
            let n = recovery.records.len();
            prop_assert!(n <= total);
            prop_assert!(recovery.records == full[..n], "recovered records are not a prefix");
            prop_assert_eq!(recovery.torn_tail, (recovery.valid_len as usize) < cut);
            // `valid_len` is exactly the bytes the recovered prefix occupies:
            // re-truncating there recovers the same records, tear-free.
            let clean = decode_log(&image[..recovery.valid_len as usize]).unwrap();
            prop_assert!(!clean.torn_tail);
            prop_assert!(clean.records == recovery.records);
        }
    }

    #[test]
    fn single_bit_corruption_never_panics_or_alters_labels(
        byte_fraction in 0.0..1.0f64,
        bit in 0u8..8,
    ) {
        let (image, _) = sample_log_image();
        let full = decode_log(&image).unwrap().records;
        let mut corrupted = image.clone();
        let index = (((corrupted.len() - 1) as f64) * byte_fraction) as usize;
        corrupted[index] ^= 1 << bit;
        match decode_log(&corrupted) {
            // Detected: the FNV trailers (and the header self-check) catch
            // any single-bit flip in a complete frame, and a corrupted magic
            // is rejected outright.
            Err(_) => {}
            // A flip in the *final* frame's length field can inflate it past
            // the end of the file — indistinguishable from a torn tail, so
            // the decoder conservatively truncates that frame. The surviving
            // records must still be an exact prefix: corruption may cost the
            // tail record, never change one.
            Ok(recovery) => {
                prop_assert!(
                    recovery.torn_tail,
                    "corruption at byte {} bit {} was silently accepted",
                    index,
                    bit
                );
                let n = recovery.records.len();
                prop_assert!(n < full.len());
                prop_assert!(recovery.records == full[..n], "recovered records were altered");
            }
        }
        // Recovery over the corrupted image must also never panic: it either
        // reports the corruption or truncates to the clean prefix.
        let path = temp_path("bitflip");
        std::fs::write(&path, &corrupted).unwrap();
        match WalWriter::recover(&path) {
            Err(_) => {}
            Ok((_, recovery)) => {
                let n = recovery.records.len();
                prop_assert!(recovery.records == full[..n]);
            }
        }
        std::fs::remove_file(&path).unwrap();
    }
}

/// The child role of the SIGKILL test: create a durable session over the
/// deterministic workload, absorb `HUMO_WAL_CHILD_ROUNDS` dispatch waves,
/// print the marker and park until the parent kills the process. Nothing is
/// dropped cleanly — the resume sees only what `fsync` put on disk.
fn run_child_role() -> ! {
    let rounds: usize = std::env::var("HUMO_WAL_CHILD_ROUNDS").unwrap().parse().unwrap();
    let path: PathBuf = std::env::var("HUMO_WAL_CHILD_PATH").unwrap().into();
    let w = workload(6_000, 14.0, 0.1, 1234);
    let requirement = QualityRequirement::new(0.9, 0.9, 0.9).unwrap();
    let config = SessionConfig::for_kind(OptimizerKind::Hybrid, requirement);
    let mut durable = DurableSession::create(config, &w, &path).unwrap();
    let mut responses = Vec::new();
    for _ in 0..rounds {
        match durable.step(&responses).unwrap() {
            Step::Done(_) => break,
            Step::NeedLabels(requests) => responses = answer(&w, &requests),
        }
    }
    println!("{KILL_MARKER}");
    std::io::stdout().flush().unwrap();
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

#[test]
fn sigkilled_child_process_resumes_byte_identically() {
    if std::env::var(CHILD_ENV).is_ok() {
        run_child_role();
    }
    let w = workload(6_000, 14.0, 0.1, 1234);
    let requirement = QualityRequirement::new(0.9, 0.9, 0.9).unwrap();
    let config = SessionConfig::for_kind(OptimizerKind::Hybrid, requirement);
    let mut reference_session = LabelingSession::new(config, &w).unwrap();
    let reference = drive_plain(&mut reference_session);

    for kill_rounds in [0usize, 2, 5] {
        let path = temp_path(&format!("sigkill-{kill_rounds}"));
        let exe = std::env::current_exe().expect("test binary path is known");
        let mut child = std::process::Command::new(exe)
            .args(["sigkilled_child_process_resumes_byte_identically", "--exact", "--nocapture"])
            .env(CHILD_ENV, "1")
            .env("HUMO_WAL_CHILD_ROUNDS", kill_rounds.to_string())
            .env("HUMO_WAL_CHILD_PATH", &path)
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("crash-harness child spawns");
        let stdout = child.stdout.take().expect("child stdout is piped");
        let mut parked = false;
        for line in std::io::BufRead::lines(std::io::BufReader::new(stdout)) {
            if line.unwrap_or_default().contains(KILL_MARKER) {
                parked = true;
                break;
            }
        }
        assert!(parked, "child exited before reaching its kill point ({kill_rounds} rounds)");
        // A real SIGKILL: no destructors, no buffered-writer flushes.
        child.kill().expect("child is killable");
        child.wait().expect("child reaps");

        let mut resumed = DurableSession::resume(&w, &path).expect("killed log resumes");
        let outcome = drive_durable(&mut resumed, &w);
        assert_outcomes_equal(OptimizerKind::Hybrid, &outcome, &reference);
        assert_eq!(
            resumed.session().state().answered_log(),
            reference_session.state().answered_log(),
            "SIGKILL at {kill_rounds} rounds: answered log diverged"
        );
        std::fs::remove_file(&path).unwrap();
    }
}
