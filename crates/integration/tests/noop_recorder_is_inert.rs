//! The observability layer is a pure observer: attaching an enabled recorder
//! (metrics or trace) must not change a single computed bit anywhere in the
//! pipeline, with or without the out-of-core spill layer engaged.
//!
//! Each test streams the same corpus through engines that differ only in
//! their [`er_obs::Recorder`] and asserts the ingest reports, resolution
//! reports and final workloads are byte-identical.

use er_core::aggregate::{AttributeMeasure, AttributeWeighting, ScoringConfig};
use er_core::record::{Record, RecordId};
use er_core::similarity::StringMeasure;
use er_core::spill::MemoryBudget;
use er_core::text::Tokenizer;
use er_datagen::bibliographic::{BibliographicConfig, BibliographicGenerator, GeneratedCorpus};
use er_obs::{MetricsRecorder, ObsHandle, TraceRecorder};
use er_pipeline::{IngestReport, PipelineConfig, ResolutionEngine, ResolutionReport};
use humo::{GroundTruthOracle, QualityRequirement};
use std::sync::Arc;

const BATCHES: usize = 2;

fn corpus() -> GeneratedCorpus {
    BibliographicGenerator::new(BibliographicConfig {
        num_entities: 250,
        duplicate_probability: 0.6,
        extra_right_entities: 120,
        corruption: 0.3,
        seed: 17,
    })
    .generate()
}

fn chunks<T: Clone>(items: &[T], batches: usize) -> Vec<Vec<T>> {
    let size = items.len().div_ceil(batches.max(1)).max(1);
    items.chunks(size).map(<[T]>::to_vec).collect()
}

fn config(recorder: ObsHandle, budget: Option<usize>) -> PipelineConfig {
    let scoring = ScoringConfig::new(
        [
            ("title", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
            ("authors", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
            ("venue", AttributeMeasure::Text(StringMeasure::JaroWinkler)),
        ],
        AttributeWeighting::Uniform,
    );
    let requirement = QualityRequirement::symmetric(0.9).expect("valid requirement");
    let mut config = PipelineConfig::new(scoring, "title", requirement);
    config.similarity_threshold = 0.4;
    config.optimizer.unit_size = 100;
    config.recorder = recorder;
    if let Some(pairs) = budget {
        config.memory_budget = MemoryBudget::bounded(pairs, pairs);
    }
    config
}

/// Streams the corpus through a fresh engine in `BATCHES` batches, resolving
/// after each, and returns the engine plus every report it produced.
fn run(
    recorder: ObsHandle,
    budget: Option<usize>,
) -> (ResolutionEngine, Vec<IngestReport>, Vec<ResolutionReport>) {
    let corpus = corpus();
    let truth: Vec<(RecordId, RecordId)> = corpus.ground_truth.iter().copied().collect();
    let schema = BibliographicGenerator::schema();
    let mut engine = ResolutionEngine::new(config(recorder, budget), schema.clone(), schema)
        .expect("valid pipeline config");
    let mut oracle = GroundTruthOracle::new();
    let left: Vec<Vec<Record>> = chunks(corpus.left.records(), BATCHES);
    let right: Vec<Vec<Record>> = chunks(corpus.right.records(), BATCHES);
    let mut ingests = Vec::new();
    let mut reports = Vec::new();
    for epoch in 0..BATCHES {
        let l = left.get(epoch).cloned().unwrap_or_default();
        let r = right.get(epoch).cloned().unwrap_or_default();
        let edges = if epoch == 0 { truth.as_slice() } else { &[] };
        ingests.push(engine.ingest(l, r, edges).expect("ingest succeeds"));
        reports.push(engine.resolve(&mut oracle).expect("resolve succeeds"));
    }
    (engine, ingests, reports)
}

/// Asserts two runs are byte-identical: every ingest report, every resolution
/// report, and every pair of the final workloads (similarity compared on bits).
fn assert_runs_identical(
    name: &str,
    a: &(ResolutionEngine, Vec<IngestReport>, Vec<ResolutionReport>),
    b: &(ResolutionEngine, Vec<IngestReport>, Vec<ResolutionReport>),
) {
    assert_eq!(a.1, b.1, "{name}: ingest reports diverged");
    assert_eq!(a.2.len(), b.2.len(), "{name}: epoch counts diverged");
    for (epoch, (ra, rb)) in a.2.iter().zip(&b.2).enumerate() {
        assert_eq!(ra.outcome.solution, rb.outcome.solution, "{name}: epoch {epoch} solution");
        assert_eq!(
            ra.outcome.assignment, rb.outcome.assignment,
            "{name}: epoch {epoch} assignment"
        );
        assert_eq!(ra.outcome.metrics, rb.outcome.metrics, "{name}: epoch {epoch} metrics");
        assert_eq!(ra.oracle_queries, rb.oracle_queries, "{name}: epoch {epoch} queries");
        assert_eq!(ra.label_rounds, rb.label_rounds, "{name}: epoch {epoch} rounds");
        assert_eq!(ra.plan_rounds, rb.plan_rounds, "{name}: epoch {epoch} plan rounds");
        assert_eq!(ra.refine_rounds, rb.refine_rounds, "{name}: epoch {epoch} refine rounds");
        assert_eq!(ra.entities, rb.entities, "{name}: epoch {epoch} entities");
        assert_eq!(ra.cluster_metrics, rb.cluster_metrics, "{name}: epoch {epoch} cluster metrics");
    }
    assert_eq!(a.0.workload().len(), b.0.workload().len(), "{name}: workload lengths diverged");
    for (pa, pb) in a.0.workload().iter().zip(b.0.workload().iter()) {
        assert_eq!(pa.id(), pb.id(), "{name}: pair ids diverged");
        assert_eq!(pa.left(), pb.left(), "{name}: left records diverged");
        assert_eq!(pa.right(), pb.right(), "{name}: right records diverged");
        assert_eq!(
            pa.similarity().to_bits(),
            pb.similarity().to_bits(),
            "{name}: similarity bits diverged"
        );
        assert_eq!(pa.ground_truth(), pb.ground_truth(), "{name}: ground truth diverged");
    }
}

#[test]
fn noop_and_metrics_recorders_agree_bit_for_bit() {
    let noop = run(ObsHandle::noop(), None);
    let metrics = Arc::new(MetricsRecorder::new());
    let recorded = run(ObsHandle::new(metrics.clone()), None);
    assert_runs_identical("in-memory", &noop, &recorded);
    // The comparison must not be vacuous: the enabled arm actually recorded.
    let snap = metrics.snapshot();
    assert!(snap.counter("ingest.delta_candidates") > 0, "no delta candidates recorded");
    assert!(snap.counter("session.rounds") > 0, "no session rounds recorded");
    assert_eq!(
        snap.span("pipeline.ingest").map_or(0, |s| s.count),
        BATCHES as u64,
        "one ingest span per batch"
    );
    assert_eq!(
        snap.counter("session.rounds"),
        snap.counter("session.rounds.plan") + snap.counter("session.rounds.refine"),
        "per-phase round counters must sum to the total"
    );
}

#[test]
fn recorders_are_inert_with_the_spill_layer_engaged() {
    let budget = Some(500);
    let noop = run(ObsHandle::noop(), budget);
    assert!(noop.0.workload().spilled_pairs() > 0, "budget too lax — spill never engaged");
    let metrics = Arc::new(MetricsRecorder::new());
    let recorded = run(ObsHandle::new(metrics.clone()), budget);
    assert_runs_identical("spilled", &noop, &recorded);
    let snap = metrics.snapshot();
    assert!(snap.counter("spill.workload.segments_spilled") > 0, "no spill events recorded");
}

#[test]
fn trace_recorder_is_inert_and_emits_a_schema_valid_trace() {
    let noop = run(ObsHandle::noop(), None);
    // Unique-per-process path so parallel test runs never collide.
    let path = std::env::temp_dir().join(format!("humo-inert-trace-{}.jsonl", std::process::id()));
    let trace = Arc::new(TraceRecorder::to_file(&path).expect("trace file opens"));
    let traced = run(ObsHandle::new(trace.clone()), None);
    assert_runs_identical("traced", &noop, &traced);
    trace.flush();
    let text = std::fs::read_to_string(&path).expect("trace file readable");
    let report = er_obs::validate_trace(&text);
    assert!(report.is_valid(), "trace schema violations: {:?}", report.violations);
    assert!(report.events > 0, "trace is empty");
    for prefix in ["pipeline.ingest", "ingest.score", "blocking.", "session.", "spill."] {
        assert!(report.covers(prefix), "trace has no `{prefix}*` events");
    }
    let _ = std::fs::remove_file(&path);
}
