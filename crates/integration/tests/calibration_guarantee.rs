//! Regression tests for the tail-calibrated quality guarantee (ISSUE 2).
//!
//! The paper's Section VI guarantee is probabilistic: the recall requirement
//! may be missed with probability at most 1 − θ = 10%. These tests measure the
//! empirical recall-failure rate on *flat* match-proportion curves (τ = 8, the
//! regime where the uncalibrated GP bounds under-covered in roughly half the
//! runs) across ≥ 20 seeds, and pin the calibration's cost overhead on steep
//! curves (τ = 14, the paper's DS/AB-like regime) below 10%.
//!
//! Everything is seeded, so the assertions are deterministic; the binomial
//! slack documents how the thresholds relate to the nominal rate.

use er_datagen::synthetic::{SyntheticConfig, SyntheticGenerator};
use humo::{
    GroundTruthOracle, HybridConfig, HybridOptimizer, OptimizationOutcome, Optimizer,
    PartialSamplingConfig, PartialSamplingOptimizer, QualityRequirement, TailCalibration,
};

const LEVEL: f64 = 0.9;
const SEEDS: u64 = 20;
const PAIRS: usize = 24_000;

fn workload(tau: f64, seed: u64) -> er_core::workload::Workload {
    SyntheticGenerator::new(SyntheticConfig {
        num_pairs: PAIRS,
        tau,
        sigma: 0.1,
        subset_size: 200,
        seed,
    })
    .generate()
}

fn run_samp(
    w: &er_core::workload::Workload,
    seed: u64,
    tail: TailCalibration,
) -> OptimizationOutcome {
    let requirement = QualityRequirement::symmetric(LEVEL).unwrap();
    let config = PartialSamplingConfig {
        tail_calibration: tail,
        ..PartialSamplingConfig::new(requirement).with_seed(seed)
    };
    let optimizer = PartialSamplingOptimizer::new(config).unwrap();
    let mut oracle = GroundTruthOracle::new();
    optimizer.optimize(w, &mut oracle).unwrap()
}

fn run_hybr(
    w: &er_core::workload::Workload,
    seed: u64,
    tail: TailCalibration,
) -> OptimizationOutcome {
    let requirement = QualityRequirement::symmetric(LEVEL).unwrap();
    let mut config = HybridConfig::new(requirement).with_seed(seed);
    config.sampling.tail_calibration = tail;
    let optimizer = HybridOptimizer::new(config).unwrap();
    let mut oracle = GroundTruthOracle::new();
    optimizer.optimize(w, &mut oracle).unwrap()
}

/// Over 20 seeds the nominal 10% failure rate admits at most 4 failures at the
/// one-sided 95% binomial band: P(X >= 5 | n = 20, p = 0.1) ≈ 4.3%.
const MAX_RECALL_FAILURES: usize = 4;

#[test]
fn flat_curve_recall_failure_rate_is_nominal_for_samp() {
    let mut failures = 0usize;
    for seed in 0..SEEDS {
        let w = workload(8.0, 500 + seed);
        let outcome = run_samp(&w, seed, TailCalibration::default());
        if outcome.metrics.recall() < LEVEL {
            failures += 1;
        }
    }
    assert!(
        failures <= MAX_RECALL_FAILURES,
        "SAMP missed recall on the flat curve {failures}/{SEEDS} times \
         (nominal 10% + binomial slack allows {MAX_RECALL_FAILURES})"
    );
}

#[test]
fn flat_curve_recall_failure_rate_is_nominal_for_hybr() {
    let mut failures = 0usize;
    for seed in 0..SEEDS {
        let w = workload(8.0, 500 + seed);
        let outcome = run_hybr(&w, seed, TailCalibration::default());
        if outcome.metrics.recall() < LEVEL {
            failures += 1;
        }
    }
    assert!(
        failures <= MAX_RECALL_FAILURES,
        "HYBR missed recall on the flat curve {failures}/{SEEDS} times \
         (nominal 10% + binomial slack allows {MAX_RECALL_FAILURES})"
    );
}

/// The calibration must be almost free where the uncalibrated estimator was
/// already sound: on steep curves (τ = 14) the mean human cost may grow by
/// less than 10% relative to the pre-calibration (disabled) estimator.
#[test]
fn steep_curve_cost_regression_stays_under_ten_percent() {
    let runs = 10u64;
    let mut calibrated = 0usize;
    let mut uncalibrated = 0usize;
    for seed in 0..runs {
        let w = workload(14.0, 500 + seed);
        calibrated += run_samp(&w, seed, TailCalibration::default()).total_human_cost;
        uncalibrated += run_samp(&w, seed, TailCalibration::disabled()).total_human_cost;
    }
    let ratio = calibrated as f64 / uncalibrated as f64;
    assert!(
        ratio < 1.10,
        "tail calibration inflated steep-curve SAMP cost by {:.1}% (allowed < 10%): \
         {calibrated} vs {uncalibrated} pairs over {runs} runs",
        100.0 * (ratio - 1.0)
    );
}

/// The calibrated estimator still never lets HYBR cost more than SAMP — the
/// paper's dominance argument survives the wider bounds.
#[test]
fn hybrid_dominance_survives_calibration() {
    for &tau in &[8.0, 14.0] {
        for seed in 0..5 {
            let w = workload(tau, 900 + seed);
            let samp = run_samp(&w, seed, TailCalibration::default());
            let hybr = run_hybr(&w, seed, TailCalibration::default());
            assert!(
                hybr.total_human_cost <= samp.total_human_cost,
                "τ={tau} seed {seed}: HYBR cost {} exceeds SAMP cost {}",
                hybr.total_human_cost,
                samp.total_human_cost
            );
        }
    }
}
