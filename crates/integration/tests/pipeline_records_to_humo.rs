//! Full-pipeline integration tests: raw records → blocking → attribute-weighted
//! similarity → HUMO, on both generated corpora (bibliographic and product).

use er_core::aggregate::{AttributeMeasure, AttributeWeighting, PairScorer, ScoringConfig};
use er_core::blocking::{build_workload, cartesian_pairs, TokenBlocker};
use er_core::record::RecordId;
use er_core::similarity::StringMeasure;
use er_core::text::Tokenizer;
use er_core::workload::Workload;
use er_datagen::bibliographic::{BibliographicConfig, BibliographicGenerator, GeneratedCorpus};
use er_datagen::product::{ProductConfig, ProductGenerator};
use humo::{GroundTruthOracle, HybridConfig, HybridOptimizer, Optimizer, QualityRequirement};
use std::collections::BTreeSet;

fn bibliographic_corpus() -> GeneratedCorpus {
    BibliographicGenerator::new(BibliographicConfig {
        num_entities: 300,
        duplicate_probability: 0.6,
        extra_right_entities: 300,
        corruption: 0.3,
        seed: 5,
    })
    .generate()
}

fn bibliographic_scorer(corpus: &GeneratedCorpus) -> PairScorer {
    let scoring = ScoringConfig::new(
        [
            ("title", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
            ("authors", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
            ("venue", AttributeMeasure::Text(StringMeasure::JaroWinkler)),
        ],
        AttributeWeighting::DistinctValues,
    );
    PairScorer::new(&scoring, &[&corpus.left, &corpus.right]).unwrap()
}

fn bibliographic_workload(corpus: &GeneratedCorpus) -> Workload {
    let blocker = TokenBlocker::new("title", Tokenizer::Words);
    let candidates = blocker.candidates(&corpus.left, &corpus.right);
    let scorer = bibliographic_scorer(corpus);
    build_workload(&corpus.left, &corpus.right, &candidates, &scorer, &corpus.ground_truth, 0.2)
        .unwrap()
}

#[test]
fn token_blocking_keeps_nearly_all_true_matches() {
    let corpus = bibliographic_corpus();
    let blocker = TokenBlocker::new("title", Tokenizer::Words);
    let candidates: BTreeSet<(RecordId, RecordId)> =
        blocker.candidates(&corpus.left, &corpus.right).into_iter().collect();
    let retained = corpus.ground_truth.iter().filter(|pair| candidates.contains(pair)).count();
    let retention = retained as f64 / corpus.match_count() as f64;
    assert!(retention >= 0.95, "blocking must retain nearly all true matches, got {retention:.3}");
    // And it must prune at least part of the cartesian product. (The generated
    // titles draw from a compact vocabulary, so token blocking is deliberately
    // recall-oriented rather than aggressive here.)
    assert!(candidates.len() < cartesian_pairs(&corpus.left, &corpus.right).len());
}

#[test]
fn workload_construction_preserves_ground_truth_labels() {
    let corpus = bibliographic_corpus();
    let workload = bibliographic_workload(&corpus);
    assert!(!workload.is_empty());
    for pair in workload.pairs() {
        let left = pair.left().expect("record-level workloads carry record ids");
        let right = pair.right().expect("record-level workloads carry record ids");
        assert_eq!(pair.is_match(), corpus.ground_truth.contains(&(left, right)));
        assert!(pair.similarity() >= 0.2 - 1e-12);
    }
    // Matching record pairs concentrate at higher similarity than non-matching ones.
    let avg = |m: bool| {
        let sims: Vec<f64> =
            workload.pairs().iter().filter(|p| p.is_match() == m).map(|p| p.similarity()).collect();
        sims.iter().sum::<f64>() / sims.len().max(1) as f64
    };
    assert!(avg(true) > avg(false) + 0.2);
}

#[test]
fn humo_resolves_the_bibliographic_pipeline_with_guarantees() {
    let corpus = bibliographic_corpus();
    let workload = bibliographic_workload(&corpus);
    let requirement = QualityRequirement::new(0.9, 0.9, 0.9).unwrap();
    let mut config = HybridConfig::new(requirement);
    config.sampling.unit_size = 25;
    config.sampling.samples_per_subset = 10;
    let optimizer = HybridOptimizer::new(config).unwrap();
    let mut oracle = GroundTruthOracle::new();
    let outcome = optimizer.optimize(&workload, &mut oracle).unwrap();
    assert!(outcome.metrics.precision() >= 0.9, "precision {}", outcome.metrics.precision());
    assert!(outcome.metrics.recall() >= 0.9, "recall {}", outcome.metrics.recall());
    assert!(outcome.total_human_cost < workload.len());
}

#[test]
fn humo_resolves_the_product_pipeline_with_guarantees() {
    let corpus = ProductGenerator::new(ProductConfig {
        num_entities: 300,
        duplicate_probability: 0.5,
        extra_right_entities: 350,
        corruption: 0.6,
        seed: 9,
    })
    .generate();
    let blocker = TokenBlocker::new("name", Tokenizer::Words);
    let candidates = blocker.candidates(&corpus.left, &corpus.right);
    let scoring = ScoringConfig::new(
        [
            ("name", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
            ("description", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
        ],
        AttributeWeighting::DistinctValues,
    );
    let scorer = PairScorer::new(&scoring, &[&corpus.left, &corpus.right]).unwrap();
    let workload = build_workload(
        &corpus.left,
        &corpus.right,
        &candidates,
        &scorer,
        &corpus.ground_truth,
        0.05,
    )
    .unwrap();
    assert!(workload.total_matches() > 0);

    let requirement = QualityRequirement::new(0.85, 0.85, 0.9).unwrap();
    let mut config = HybridConfig::new(requirement);
    config.sampling.unit_size = 25;
    config.sampling.samples_per_subset = 10;
    let optimizer = HybridOptimizer::new(config).unwrap();
    let mut oracle = GroundTruthOracle::new();
    let outcome = optimizer.optimize(&workload, &mut oracle).unwrap();
    assert!(outcome.metrics.precision() >= 0.85, "precision {}", outcome.metrics.precision());
    assert!(outcome.metrics.recall() >= 0.85, "recall {}", outcome.metrics.recall());
}

#[test]
fn product_workloads_need_more_human_work_than_bibliographic_ones() {
    // The record-level analogue of "AB is harder than DS" (Figure 6): at the same
    // requirement, the product pipeline should hand a larger fraction of its
    // workload to the human than the bibliographic pipeline.
    let bib_corpus = bibliographic_corpus();
    let bib_workload = bibliographic_workload(&bib_corpus);

    let product_corpus = ProductGenerator::new(ProductConfig {
        num_entities: 300,
        duplicate_probability: 0.6,
        extra_right_entities: 300,
        corruption: 0.6,
        seed: 5,
    })
    .generate();
    let blocker = TokenBlocker::new("name", Tokenizer::Words);
    let candidates = blocker.candidates(&product_corpus.left, &product_corpus.right);
    let scoring = ScoringConfig::new(
        [
            ("name", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
            ("description", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
        ],
        AttributeWeighting::DistinctValues,
    );
    let scorer = PairScorer::new(&scoring, &[&product_corpus.left, &product_corpus.right]).unwrap();
    let product_workload = build_workload(
        &product_corpus.left,
        &product_corpus.right,
        &candidates,
        &scorer,
        &product_corpus.ground_truth,
        0.05,
    )
    .unwrap();

    let fraction = |workload: &Workload| {
        let requirement = QualityRequirement::new(0.85, 0.85, 0.9).unwrap();
        let mut config = HybridConfig::new(requirement);
        config.sampling.unit_size = 25;
        config.sampling.samples_per_subset = 10;
        let optimizer = HybridOptimizer::new(config).unwrap();
        let mut oracle = GroundTruthOracle::new();
        let outcome = optimizer.optimize(workload, &mut oracle).unwrap();
        outcome.human_cost_fraction(workload.len())
    };
    let bib = fraction(&bib_workload);
    let product = fraction(&product_workload);
    assert!(
        product > bib,
        "product matching ({product:.3}) should need a larger human fraction than \
         bibliographic matching ({bib:.3})"
    );
}
