//! Refit-strategy equivalence: a labeling session running with the default
//! incremental GP refits and a warm replay cache must be byte-identical with
//! the same session forced onto full from-scratch refits and a cold cache —
//! same labels requested (set, values *and* order), same bounds, same
//! assignment, same costs. The incremental path is a pure performance
//! optimization; this test is the contract that keeps it one.

use er_core::workload::{Label, PairId, Workload};
use er_datagen::synthetic::{SyntheticConfig, SyntheticGenerator};
use humo::{
    HybridConfig, LabelResponse, LabelingSession, NoisyOracle, OptimizationOutcome, OptimizerKind,
    Oracle, PartialSamplingConfig, QualityRequirement, RefitStrategy, SessionConfig, Step,
};
use proptest::prelude::*;

fn workload(n: usize, tau: f64, sigma: f64, seed: u64) -> Workload {
    SyntheticGenerator::new(SyntheticConfig { num_pairs: n, tau, sigma, subset_size: 200, seed })
        .generate()
}

/// The same optimizer configuration with every incremental shortcut disabled:
/// GP refits from scratch on each probe, and no replay cache. For BASE and
/// ALL (which fit no GP) only the cache toggle differs.
fn full_refit_config(kind: OptimizerKind, requirement: QualityRequirement) -> SessionConfig {
    match kind {
        OptimizerKind::PartialSampling => SessionConfig::PartialSampling(PartialSamplingConfig {
            refit: RefitStrategy::Full,
            ..PartialSamplingConfig::new(requirement)
        }),
        OptimizerKind::Hybrid => {
            let mut config = HybridConfig::new(requirement);
            config.sampling.refit = RefitStrategy::Full;
            SessionConfig::Hybrid(config)
        }
        _ => SessionConfig::for_kind(kind, requirement),
    }
}

/// Drives a session to completion with `label_of`, returning the outcome and
/// the ordered (pair, label) request log.
fn drive(
    session: &mut LabelingSession<'_>,
    mut label_of: impl FnMut(usize) -> Label,
) -> (OptimizationOutcome, Vec<(PairId, Label)>) {
    let mut order: Vec<(PairId, Label)> = Vec::new();
    let mut responses: Vec<LabelResponse> = Vec::new();
    loop {
        match session.step(&responses).unwrap() {
            Step::Done(outcome) => return (outcome, order),
            Step::NeedLabels(requests) => {
                responses = requests
                    .iter()
                    .map(|request| {
                        let label = label_of(request.index);
                        order.push((request.pair_id, label));
                        LabelResponse { pair_id: request.pair_id, label }
                    })
                    .collect();
            }
        }
    }
}

fn assert_identical(
    kind: OptimizerKind,
    incremental: &(OptimizationOutcome, Vec<(PairId, Label)>),
    full: &(OptimizationOutcome, Vec<(PairId, Label)>),
) {
    let (a, order_a) = incremental;
    let (b, order_b) = full;
    assert_eq!(order_a, order_b, "{kind:?}: refit strategy changed the labels requested");
    assert_eq!(a.solution, b.solution, "{kind:?}: bounds differ across refit strategies");
    assert_eq!(a.assignment, b.assignment, "{kind:?}: assignments differ across refit strategies");
    assert_eq!(a.metrics, b.metrics, "{kind:?}: metrics differ across refit strategies");
    assert_eq!(a.total_human_cost, b.total_human_cost, "{kind:?}: total cost differs");
    assert_eq!(a.sampling_cost, b.sampling_cost, "{kind:?}: sampling cost differs");
    assert_eq!(a.verification_cost, b.verification_cost, "{kind:?}: verification cost differs");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]
    #[test]
    fn incremental_and_full_refits_are_byte_identical(
        tau in 8.0..18.0f64,
        sigma in 0.05..0.25f64,
        seed in 0u64..1_000,
    ) {
        let w = workload(8_000, tau, sigma, seed);
        let requirement = QualityRequirement::new(0.9, 0.9, 0.9).unwrap();
        for kind in OptimizerKind::all() {
            let mut fast = LabelingSession::new(SessionConfig::for_kind(kind, requirement), &w)
                .unwrap();
            let fast_run = drive(&mut fast, |index| w.pair(index).ground_truth());

            let mut slow = LabelingSession::new(full_refit_config(kind, requirement), &w)
                .unwrap()
                .with_replay_cache(false);
            let slow_run = drive(&mut slow, |index| w.pair(index).ground_truth());

            assert_identical(kind, &fast_run, &slow_run);
        }
    }
}

#[test]
fn refit_equivalence_survives_noisy_labels() {
    // Label noise stresses the surprise-triggered hyperparameter re-selection
    // paths, where an incremental factor that drifted from the from-scratch
    // one would change which probes the GP asks for next.
    let w = workload(8_000, 12.0, 0.12, 41);
    let requirement = QualityRequirement::new(0.9, 0.9, 0.9).unwrap();
    for kind in [OptimizerKind::PartialSampling, OptimizerKind::Hybrid] {
        let mut fast_labeler = NoisyOracle::new(0.08, 93);
        let mut fast =
            LabelingSession::new(SessionConfig::for_kind(kind, requirement), &w).unwrap();
        let fast_run = drive(&mut fast, |index| fast_labeler.label(w.pair(index)));

        let mut slow_labeler = NoisyOracle::new(0.08, 93);
        let mut slow = LabelingSession::new(full_refit_config(kind, requirement), &w)
            .unwrap()
            .with_replay_cache(false);
        let slow_run = drive(&mut slow, |index| slow_labeler.label(w.pair(index)));

        assert_identical(kind, &fast_run, &slow_run);
    }
}

#[test]
fn refit_counters_fire_under_each_strategy() {
    // The observability layer must see the refit machinery the equivalence
    // tests above exercise: each strategy increments its own `gp.refit.*`
    // counter (and only its own) once the GP is past the selection warm-up.
    // The refit arms only engage once the boundary search probes beyond the
    // 32-point warm-up without doubling the training set, so the sampling
    // range is widened to let refinement run deep enough.
    let requirement = QualityRequirement::new(0.9, 0.9, 0.9).unwrap();
    for (strategy, own, other) in [
        (RefitStrategy::Incremental, "gp.refit.incremental", "gp.refit.full"),
        (RefitStrategy::Full, "gp.refit.full", "gp.refit.incremental"),
    ] {
        let mut w = SyntheticGenerator::new(SyntheticConfig {
            num_pairs: 20_000,
            tau: 14.0,
            sigma: 0.05,
            subset_size: 100,
            seed: 41,
        })
        .generate();
        let metrics = std::sync::Arc::new(er_obs::MetricsRecorder::new());
        w.set_obs(er_obs::ObsHandle::new(metrics.clone()));
        let config = SessionConfig::PartialSampling(PartialSamplingConfig {
            refit: strategy,
            sampling_range: (0.05, 0.5),
            ..PartialSamplingConfig::new(requirement)
        });
        let mut session = LabelingSession::new(config, &w).unwrap();
        drive(&mut session, |index| w.pair(index).ground_truth());
        let snap = metrics.snapshot();
        assert!(snap.counter(own) > 0, "{own} never fired");
        assert_eq!(snap.counter(other), 0, "{other} fired under the wrong strategy");
        assert!(snap.counter("gp.reselect") > 0, "hyperparameter selection never recorded");
        assert!(snap.counter("session.rounds") > 0, "label rounds never recorded");
    }
}

#[test]
fn refit_equivalence_survives_checkpoint_resume() {
    // Resuming mid-flight from the answered log must not change the outcome
    // regardless of refit strategy: the incremental state is rebuilt from the
    // log, never checkpointed itself.
    let w = workload(6_000, 14.0, 0.1, 59);
    let requirement = QualityRequirement::new(0.9, 0.9, 0.9).unwrap();
    for kind in OptimizerKind::all() {
        let config = SessionConfig::for_kind(kind, requirement);
        let mut reference = LabelingSession::new(config, &w).unwrap();
        let (expected, order) = drive(&mut reference, |index| w.pair(index).ground_truth());

        let log: Vec<LabelResponse> =
            order.iter().map(|&(pair_id, label)| LabelResponse { pair_id, label }).collect();
        for arm in [config, full_refit_config(kind, requirement)] {
            let prefix = &log[..log.len() * 2 / 3];
            let mut resumed = LabelingSession::resume(arm, &w, prefix).unwrap();
            let (outcome, _) = drive(&mut resumed, |index| w.pair(index).ground_truth());
            assert_eq!(outcome.solution, expected.solution, "{kind:?}: resumed bounds differ");
            assert_eq!(
                outcome.assignment, expected.assignment,
                "{kind:?}: resumed assignment differs"
            );
            assert_eq!(
                outcome.total_human_cost, expected.total_human_cost,
                "{kind:?}: resumed total cost differs"
            );
        }
    }
}
