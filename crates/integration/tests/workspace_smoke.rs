//! Fast deterministic smoke test: every optimizer family runs end to end on a
//! tiny fixed-seed synthetic workload and meets its quality requirement.
//!
//! This is the canary CI runs on every push: it exercises workload generation
//! (`er-datagen`), partitioning and metrics (`er-core`), the statistical
//! machinery (`er-stats` via the samplers), and all four optimizers (`humo`)
//! in well under a second. The workload is steep (τ = 16) and small, so every
//! family meets the requirement deterministically with the fixed seeds below.

use er_datagen::synthetic::{SyntheticConfig, SyntheticGenerator};
use humo::sampling::{
    AllSamplingConfig, AllSamplingOptimizer, PartialSamplingConfig, PartialSamplingOptimizer,
};
use humo::{
    BaselineConfig, BaselineOptimizer, GroundTruthOracle, HybridConfig, HybridOptimizer,
    OptimizationOutcome, Optimizer, OptimizerKind, QualityRequirement,
};

const SEED: u64 = 5;

fn tiny_workload() -> er_core::workload::Workload {
    SyntheticGenerator::new(SyntheticConfig {
        num_pairs: 6_000,
        tau: 16.0,
        sigma: 0.05,
        subset_size: 100,
        seed: SEED,
    })
    .generate()
}

/// Builds and runs the optimizer for `kind`. The exhaustive match makes this
/// test fail to compile when a new optimizer family is added without smoke
/// coverage.
fn run(kind: OptimizerKind, requirement: QualityRequirement) -> OptimizationOutcome {
    let workload = tiny_workload();
    let mut oracle = GroundTruthOracle::new();
    let outcome = match kind {
        OptimizerKind::Baseline => {
            let mut config = BaselineConfig::new(requirement);
            config.unit_size = 100;
            BaselineOptimizer::new(config).unwrap().optimize(&workload, &mut oracle)
        }
        OptimizerKind::AllSampling => {
            let mut config = AllSamplingConfig::new(requirement);
            config.seed = SEED;
            AllSamplingOptimizer::new(config).unwrap().optimize(&workload, &mut oracle)
        }
        OptimizerKind::PartialSampling => {
            let config =
                PartialSamplingConfig { unit_size: 100, ..PartialSamplingConfig::new(requirement) }
                    .with_seed(SEED);
            PartialSamplingOptimizer::new(config).unwrap().optimize(&workload, &mut oracle)
        }
        OptimizerKind::Hybrid => {
            let mut config = HybridConfig::new(requirement).with_seed(SEED);
            config.sampling.unit_size = 100;
            HybridOptimizer::new(config).unwrap().optimize(&workload, &mut oracle)
        }
    };
    outcome.unwrap_or_else(|e| panic!("{kind} failed on the smoke workload: {e}"))
}

#[test]
fn every_optimizer_kind_meets_its_requirement_on_the_smoke_workload() {
    let requirement = QualityRequirement::new(0.85, 0.85, 0.9).unwrap();
    let kinds = [
        OptimizerKind::Baseline,
        OptimizerKind::AllSampling,
        OptimizerKind::PartialSampling,
        OptimizerKind::Hybrid,
    ];
    for kind in kinds {
        let outcome = run(kind, requirement);
        assert!(
            requirement.is_satisfied_by(&outcome.metrics),
            "{kind} missed the requirement: precision {:.4}, recall {:.4}",
            outcome.metrics.precision(),
            outcome.metrics.recall()
        );
        assert!(
            outcome.total_human_cost <= tiny_workload().len(),
            "{kind} cost accounting exceeded the workload size"
        );
    }
}

#[test]
fn smoke_outcomes_are_deterministic_across_runs() {
    let requirement = QualityRequirement::new(0.85, 0.85, 0.9).unwrap();
    for kind in [OptimizerKind::PartialSampling, OptimizerKind::Hybrid] {
        let first = run(kind, requirement);
        let second = run(kind, requirement);
        assert_eq!(
            first.total_human_cost, second.total_human_cost,
            "{kind} is not deterministic for a fixed seed"
        );
        assert_eq!(first.solution.lower_index, second.solution.lower_index);
        assert_eq!(first.solution.upper_index, second.solution.upper_index);
    }
}
