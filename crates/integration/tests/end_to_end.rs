//! End-to-end integration tests: every optimizer on every workload family.

use er_datagen::calibrated::CalibratedConfig;
use er_datagen::synthetic::{SyntheticConfig, SyntheticGenerator};
use humo::{
    AllSamplingConfig, AllSamplingOptimizer, BaselineConfig, BaselineOptimizer, GroundTruthOracle,
    HybridConfig, HybridOptimizer, NoisyOracle, Optimizer, Oracle, PartialSamplingConfig,
    PartialSamplingOptimizer, QualityRequirement,
};

fn optimizers(requirement: QualityRequirement) -> Vec<Box<dyn Optimizer>> {
    vec![
        Box::new(BaselineOptimizer::new(BaselineConfig::new(requirement)).unwrap()),
        Box::new(AllSamplingOptimizer::new(AllSamplingConfig::new(requirement)).unwrap()),
        Box::new(PartialSamplingOptimizer::new(PartialSamplingConfig::new(requirement)).unwrap()),
        Box::new(HybridOptimizer::new(HybridConfig::new(requirement)).unwrap()),
    ]
}

#[test]
fn every_optimizer_meets_the_requirement_on_a_regular_synthetic_workload() {
    let workload = SyntheticGenerator::new(SyntheticConfig::new(30_000, 14.0, 0.1)).generate();
    let requirement = QualityRequirement::new(0.9, 0.9, 0.9).unwrap();
    // The guarantee is probabilistic (confidence θ = 0.9), so a single seeded run
    // is allowed a small shortfall; large violations would still fail the test.
    let tolerance = 0.02;
    for optimizer in optimizers(requirement) {
        let mut oracle = GroundTruthOracle::new();
        let outcome = optimizer.optimize(&workload, &mut oracle).unwrap();
        assert!(
            outcome.metrics.precision() >= 0.9 - tolerance,
            "{}: precision {} below the requirement",
            optimizer.name(),
            outcome.metrics.precision()
        );
        assert!(
            outcome.metrics.recall() >= 0.9 - tolerance,
            "{}: recall {} below the requirement",
            optimizer.name(),
            outcome.metrics.recall()
        );
        // Cost accounting must be consistent with the oracle.
        assert_eq!(outcome.total_human_cost, oracle.labels_issued());
        assert!(outcome.total_human_cost < workload.len());
        assert_eq!(
            outcome.verification_cost,
            outcome.solution.human_region_size(),
            "{}: verification cost must equal |DH|",
            optimizer.name()
        );
    }
}

#[test]
fn every_optimizer_meets_the_requirement_on_a_ds_like_workload() {
    // 10%-scale DS keeps the test fast while preserving the distribution shape.
    let workload = CalibratedConfig::ds(3).scaled(0.1).generate();
    let requirement = QualityRequirement::new(0.85, 0.85, 0.9).unwrap();
    for optimizer in optimizers(requirement) {
        let mut oracle = GroundTruthOracle::new();
        let outcome = optimizer.optimize(&workload, &mut oracle).unwrap();
        assert!(
            outcome.metrics.precision() >= 0.83,
            "{}: precision {}",
            optimizer.name(),
            outcome.metrics.precision()
        );
        assert!(
            outcome.metrics.recall() >= 0.83,
            "{}: recall {}",
            optimizer.name(),
            outcome.metrics.recall()
        );
    }
}

#[test]
fn hybrid_meets_the_requirement_on_an_ab_like_workload() {
    // The AB shape (matches at low/medium similarity) is the hard case.
    let workload = CalibratedConfig::ab(5).scaled(0.05).generate();
    let requirement = QualityRequirement::new(0.9, 0.9, 0.9).unwrap();
    let optimizer = HybridOptimizer::new(HybridConfig::new(requirement)).unwrap();
    let mut oracle = GroundTruthOracle::new();
    let outcome = optimizer.optimize(&workload, &mut oracle).unwrap();
    assert!(outcome.metrics.precision() >= 0.85, "precision {}", outcome.metrics.precision());
    assert!(outcome.metrics.recall() >= 0.85, "recall {}", outcome.metrics.recall());
    // AB requires more manual work than a trivial amount, but far less than the
    // whole workload. (At 5% scale the workload has only ~54 matches, so the
    // optimizer is forced to be quite conservative.)
    assert!(outcome.total_human_cost > 0);
    assert!(outcome.total_human_cost < workload.len());
}

#[test]
fn the_human_cost_ordering_matches_the_paper_on_an_easy_workload() {
    // On a steep, regular workload the sampling-based optimizers should beat the
    // conservative baseline, and HYBR should not exceed SAMP (Figure 6 / 9).
    let workload = SyntheticGenerator::new(SyntheticConfig::new(40_000, 16.0, 0.1)).generate();
    let requirement = QualityRequirement::new(0.9, 0.9, 0.9).unwrap();

    let cost = |optimizer: &dyn Optimizer| {
        let mut oracle = GroundTruthOracle::new();
        optimizer.optimize(&workload, &mut oracle).unwrap().total_human_cost
    };
    let base = cost(&BaselineOptimizer::new(BaselineConfig::new(requirement)).unwrap());
    let samp =
        cost(&PartialSamplingOptimizer::new(PartialSamplingConfig::new(requirement)).unwrap());
    let hybr = cost(&HybridOptimizer::new(HybridConfig::new(requirement)).unwrap());

    assert!(samp < base, "SAMP ({samp}) should be cheaper than BASE ({base})");
    assert!(hybr <= samp, "HYBR ({hybr}) should not exceed SAMP ({samp})");
}

#[test]
fn a_noisy_oracle_degrades_quality_gracefully() {
    // The paper assumes perfect manual labels; with a 5% error rate the achieved
    // quality drops but stays in the vicinity of the requirement, because DH is
    // bounded and machine-labeled regions are unaffected.
    let workload = SyntheticGenerator::new(SyntheticConfig::new(20_000, 14.0, 0.1)).generate();
    let requirement = QualityRequirement::new(0.9, 0.9, 0.9).unwrap();
    let optimizer = HybridOptimizer::new(HybridConfig::new(requirement)).unwrap();

    let mut perfect = GroundTruthOracle::new();
    let clean = optimizer.optimize(&workload, &mut perfect).unwrap();

    let mut noisy = NoisyOracle::new(0.05, 99);
    let noisy_outcome = optimizer.optimize(&workload, &mut noisy).unwrap();

    // A noisy oracle can occasionally produce a *larger* human region (its noisy
    // samples change the search), so we only require that quality stays close to
    // the clean run rather than strictly below it.
    assert!(noisy_outcome.metrics.f1() >= clean.metrics.f1() - 0.15);
    assert!(
        noisy_outcome.metrics.precision() >= 0.8,
        "precision collapsed to {}",
        noisy_outcome.metrics.precision()
    );
    assert!(
        noisy_outcome.metrics.recall() >= 0.8,
        "recall collapsed to {}",
        noisy_outcome.metrics.recall()
    );
}

#[test]
fn stricter_confidence_does_not_reduce_human_cost() {
    let workload = SyntheticGenerator::new(SyntheticConfig::new(30_000, 14.0, 0.1)).generate();
    let cost_at = |confidence: f64| {
        let requirement = QualityRequirement::new(0.9, 0.9, confidence).unwrap();
        let optimizer =
            PartialSamplingOptimizer::new(PartialSamplingConfig::new(requirement)).unwrap();
        let mut oracle = GroundTruthOracle::new();
        optimizer.optimize(&workload, &mut oracle).unwrap().total_human_cost
    };
    let relaxed = cost_at(0.6);
    let strict = cost_at(0.95);
    assert!(
        strict >= relaxed,
        "confidence 0.95 should not need less manual work ({strict}) than 0.6 ({relaxed})"
    );
}
