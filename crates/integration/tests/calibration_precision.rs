//! Regression tests for the lower-bound (precision-side) tail calibration —
//! the precision twin of `calibration_guarantee.rs` (ISSUE 4).
//!
//! The `hi` sweep of Eq. 14 certifies precision from *lower* bounds over the
//! kept region, which near-pure ("pure-one") samples used to collapse onto
//! `p = 1`: on mid-steep curves (τ ∈ [8, 14]) the precision requirement was
//! missed in 20–45% of runs, double to quadruple the nominal 1 − θ = 10%.
//! These tests pin the pooled saturated-run calibration's fix: the empirical
//! precision-failure rate on a mid-steep curve stays within the one-sided 95%
//! Clopper–Pearson band of the nominal rate, the steep-curve human cost stays
//! within 10% of the upper-side-only (pre-pooling) default, and the
//! estimator-level lower-bound properties hold for the ALL path's
//! `ShortfallBaseline::UpperBound` configuration.
//!
//! Everything is seeded, so the assertions are deterministic.

use er_datagen::synthetic::{SyntheticConfig, SyntheticGenerator};
use humo::sampling::{MatchCountEstimator, StratifiedCountEstimator};
use humo::{
    CalibratedEstimator, GroundTruthOracle, HybridConfig, HybridOptimizer, OptimizationOutcome,
    Optimizer, PartialSamplingConfig, PartialSamplingOptimizer, QualityRequirement,
    ShortfallBaseline, TailCalibration,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

const LEVEL: f64 = 0.9;
const SEEDS: u64 = 20;
const PAIRS: usize = 24_000;

fn workload(tau: f64, seed: u64) -> er_core::workload::Workload {
    SyntheticGenerator::new(SyntheticConfig {
        num_pairs: PAIRS,
        tau,
        sigma: 0.1,
        subset_size: 200,
        seed,
    })
    .generate()
}

fn run_samp(
    w: &er_core::workload::Workload,
    seed: u64,
    tail: TailCalibration,
) -> OptimizationOutcome {
    let requirement = QualityRequirement::symmetric(LEVEL).unwrap();
    let config = PartialSamplingConfig {
        tail_calibration: tail,
        ..PartialSamplingConfig::new(requirement).with_seed(seed)
    };
    let optimizer = PartialSamplingOptimizer::new(config).unwrap();
    let mut oracle = GroundTruthOracle::new();
    optimizer.optimize(w, &mut oracle).unwrap()
}

fn run_hybr(
    w: &er_core::workload::Workload,
    seed: u64,
    tail: TailCalibration,
) -> OptimizationOutcome {
    let requirement = QualityRequirement::symmetric(LEVEL).unwrap();
    let mut config = HybridConfig::new(requirement).with_seed(seed);
    config.sampling.tail_calibration = tail;
    let optimizer = HybridOptimizer::new(config).unwrap();
    let mut oracle = GroundTruthOracle::new();
    optimizer.optimize(w, &mut oracle).unwrap()
}

/// Over 20 seeds the nominal 10% failure rate admits at most 4 failures at the
/// one-sided 95% binomial band: P(X >= 5 | n = 20, p = 0.1) ≈ 4.3%.
const MAX_PRECISION_FAILURES: usize = 4;

#[test]
fn mid_steep_precision_failure_rate_is_nominal_for_samp() {
    let mut failures = 0usize;
    for seed in 0..SEEDS {
        let w = workload(10.0, 700 + seed);
        let outcome = run_samp(&w, seed, TailCalibration::default());
        if outcome.metrics.precision() < LEVEL {
            failures += 1;
        }
    }
    assert!(
        failures <= MAX_PRECISION_FAILURES,
        "SAMP missed precision on the mid-steep curve {failures}/{SEEDS} times \
         (nominal 10% + binomial slack allows {MAX_PRECISION_FAILURES})"
    );
}

#[test]
fn mid_steep_precision_failure_rate_is_nominal_for_hybr() {
    let mut failures = 0usize;
    for seed in 0..SEEDS {
        let w = workload(10.0, 700 + seed);
        let outcome = run_hybr(&w, seed, TailCalibration::default());
        if outcome.metrics.precision() < LEVEL {
            failures += 1;
        }
    }
    assert!(
        failures <= MAX_PRECISION_FAILURES,
        "HYBR missed precision on the mid-steep curve {failures}/{SEEDS} times \
         (nominal 10% + binomial slack allows {MAX_PRECISION_FAILURES})"
    );
}

/// The pooled lower-bound calibration must be almost free where the
/// upper-side-only default was already sound: on steep curves (τ = 14) the
/// mean human cost may grow by less than 10% relative to
/// [`TailCalibration::upper_only`].
#[test]
fn steep_curve_cost_regression_vs_upper_only_stays_under_ten_percent() {
    let runs = 10u64;
    let mut two_sided = 0usize;
    let mut upper_only = 0usize;
    for seed in 0..runs {
        let w = workload(14.0, 700 + seed);
        two_sided += run_samp(&w, seed, TailCalibration::default()).total_human_cost;
        upper_only += run_samp(&w, seed, TailCalibration::upper_only()).total_human_cost;
    }
    let ratio = two_sided as f64 / upper_only as f64;
    assert!(
        ratio < 1.10,
        "lower-bound calibration inflated steep-curve SAMP cost by {:.1}% (allowed < 10%): \
         {two_sided} vs {upper_only} pairs over {runs} runs",
        100.0 * (ratio - 1.0)
    );
}

/// The flat-curve recall behaviour must be untouched by the lower-side
/// addition: the two-sided default and the upper-side-only configuration reach
/// identical recall on a flat curve (the saturated-run cap only ever weakens
/// *lower* bounds, which recall certification reads on the kept region too —
/// weaker is more conservative, never less).
#[test]
fn flat_curve_recall_is_no_worse_than_upper_only() {
    for seed in 0..5u64 {
        let w = workload(8.0, 800 + seed);
        let full = run_samp(&w, seed, TailCalibration::default());
        let upper = run_samp(&w, seed, TailCalibration::upper_only());
        assert!(
            full.metrics.recall() >= upper.metrics.recall() - 1e-9,
            "seed {seed}: two-sided recall {} fell below upper-only recall {}",
            full.metrics.recall(),
            upper.metrics.recall()
        );
    }
}

/// Builds a fully-sampled stratified estimator (the ALL path) over `m`
/// subsets with the given per-subset positives, plus the calibrated wrapper.
fn all_path_estimators(
    positives: &[usize],
    samples_per_subset: usize,
    tail: TailCalibration,
) -> (StratifiedCountEstimator, CalibratedEstimator<StratifiedCountEstimator>) {
    let m = positives.len();
    let unit = 50usize;
    let n = m * unit;
    let w = er_core::workload::Workload::from_scores((0..n).map(|i| (i as f64 / n as f64, false)))
        .unwrap();
    let partition = w.partition(unit).unwrap();
    let summaries: Vec<er_stats::SampleSummary> = positives
        .iter()
        .map(|&k| er_stats::SampleSummary::new(samples_per_subset, k.min(samples_per_subset)))
        .collect::<Result<_, _>>()
        .unwrap();
    let base = StratifiedCountEstimator::new(&partition, &summaries);
    let sizes: Vec<usize> = partition.subsets().iter().map(|s| s.len()).collect();
    let inputs: Vec<f64> = partition.subsets().iter().map(|s| s.mean_similarity()).collect();
    let samples: BTreeMap<usize, er_stats::SampleSummary> =
        summaries.iter().copied().enumerate().collect();
    let calibrated = CalibratedEstimator::new(base.clone(), &sizes, &inputs, &samples, 1.0, tail);
    (base, calibrated)
}

/// Deterministic per-subset positives profile: mixes quiet, saturated and
/// mixed strata so both run kinds (and their boundaries) are exercised.
fn profile_for(len: usize, seed: u64) -> Vec<usize> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 21) as usize
        })
        .collect()
}

proptest! {
    /// ALL-path (`ShortfallBaseline::UpperBound`) lower bounds: the calibrated
    /// bound never exceeds the base bound, never goes negative, and enabling
    /// `calibrate_lower` never *narrows* an interval — mirroring the
    /// upper-side monotonicity suite in `er-stats/tests/tail_bounds.rs`.
    #[test]
    fn all_path_lower_bounds_are_conservative(
        len in 8usize..24,
        seed in 0u64..10_000,
        confidence in 0.5..0.99f64,
    ) {
        let profile = profile_for(len, seed);
        let tail = TailCalibration {
            shortfall_baseline: ShortfallBaseline::UpperBound,
            quiet_fraction: 0.1,
            ..TailCalibration::default()
        };
        let upper_only = TailCalibration { calibrate_lower: false, ..tail };
        let (base, calibrated) = all_path_estimators(&profile, 20, tail);
        let (_, reference) = all_path_estimators(&profile, 20, upper_only);
        let m = profile.len();
        for (lo, hi) in [(0usize, m), (0, m / 2), (m / 3, m), (m / 4, (3 * m / 4).max(m / 4 + 1))] {
            let b_lb = base.lower_bound(lo..hi, confidence);
            let b_ub = base.upper_bound(lo..hi, confidence);
            let c_lb = calibrated.lower_bound(lo..hi, confidence);
            let c_ub = calibrated.upper_bound(lo..hi, confidence);
            let r_lb = reference.lower_bound(lo..hi, confidence);
            // Never exceeds the base bound, never negative.
            prop_assert!(c_lb <= b_lb + 1e-9, "calibrated lower {c_lb} above base {b_lb}");
            prop_assert!(c_lb >= 0.0, "calibrated lower bound went negative: {c_lb}");
            // Enabling calibrate_lower never narrows the interval: the lower
            // end can only move down relative to the upper-only reference,
            // and the upper end is shared.
            prop_assert!(c_lb <= r_lb + 1e-9, "calibrate_lower narrowed the interval: {c_lb} > {r_lb}");
            prop_assert!((c_ub - reference.upper_bound(lo..hi, confidence)).abs() < 1e-9);
            // The interval stays an interval.
            prop_assert!(c_lb <= c_ub + 1e-9);
            prop_assert!(b_ub <= c_ub + 1e-9 || c_ub >= b_ub.min(calibrated.pair_count(lo..hi) as f64) - 1e-9);
        }
    }
}
