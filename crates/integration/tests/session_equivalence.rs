//! Session/oracle equivalence: for every `OptimizerKind`, the sans-I/O
//! labeling session driven by hand must be byte-identical with the classic
//! oracle entry point — same labels issued (set, values *and* order), same
//! bounds, same outcome — and a session rebuilt from its answered-label log
//! must resume to the same outcome. Every emitted `NeedLabels` batch must
//! contain only distinct, not-yet-answered pairs.

use er_core::workload::{InstancePair, Label, PairId, Workload};
use er_datagen::synthetic::{SyntheticConfig, SyntheticGenerator};
use humo::{
    GroundTruthOracle, LabelResponse, LabelingSession, NoisyOracle, OptimizationOutcome, Optimizer,
    OptimizerKind, Oracle, QualityRequirement, SessionConfig, Step,
};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// An oracle wrapper recording the ordered sequence of distinct pairs it was
/// asked about, so request order can be compared across drivers.
struct TrackingOracle<O> {
    inner: O,
    order: Vec<(PairId, Label)>,
    seen: BTreeSet<PairId>,
}

impl<O: Oracle> TrackingOracle<O> {
    fn new(inner: O) -> Self {
        Self { inner, order: Vec::new(), seen: BTreeSet::new() }
    }
}

impl<O: Oracle> Oracle for TrackingOracle<O> {
    fn label(&mut self, pair: &InstancePair) -> Label {
        let label = self.inner.label(pair);
        if self.seen.insert(pair.id()) {
            self.order.push((pair.id(), label));
        }
        label
    }

    fn labels_issued(&self) -> usize {
        self.inner.labels_issued()
    }
}

fn workload(n: usize, tau: f64, sigma: f64, seed: u64) -> Workload {
    SyntheticGenerator::new(SyntheticConfig { num_pairs: n, tau, sigma, subset_size: 200, seed })
        .generate()
}

fn optimize_by_kind(
    kind: OptimizerKind,
    requirement: QualityRequirement,
    w: &Workload,
    oracle: &mut dyn Oracle,
) -> OptimizationOutcome {
    match kind {
        OptimizerKind::Baseline => {
            humo::BaselineOptimizer::new(humo::BaselineConfig::new(requirement))
                .unwrap()
                .optimize(w, oracle)
                .unwrap()
        }
        OptimizerKind::AllSampling => {
            humo::AllSamplingOptimizer::new(humo::AllSamplingConfig::new(requirement))
                .unwrap()
                .optimize(w, oracle)
                .unwrap()
        }
        OptimizerKind::PartialSampling => {
            humo::PartialSamplingOptimizer::new(humo::PartialSamplingConfig::new(requirement))
                .unwrap()
                .optimize(w, oracle)
                .unwrap()
        }
        OptimizerKind::Hybrid => humo::HybridOptimizer::new(humo::HybridConfig::new(requirement))
            .unwrap()
            .optimize(w, oracle)
            .unwrap(),
    }
}

/// Drives a session by hand with labels from `label_of`, recording the ordered
/// sequence of requested pairs and checking the batch invariants along the
/// way. Returns the outcome and the ordered request log.
fn drive_manually(
    session: &mut LabelingSession<'_>,
    mut label_of: impl FnMut(&InstancePair) -> Label,
) -> (OptimizationOutcome, Vec<(PairId, Label)>) {
    let workload = session.workload();
    let mut order: Vec<(PairId, Label)> = Vec::new();
    let mut answered: BTreeSet<PairId> = BTreeSet::new();
    let mut responses: Vec<LabelResponse> = Vec::new();
    loop {
        match session.step(&responses).unwrap() {
            Step::Done(outcome) => return (outcome, order),
            Step::NeedLabels(requests) => {
                assert!(!requests.is_empty(), "session emitted an empty batch");
                let mut in_batch = BTreeSet::new();
                responses = requests
                    .iter()
                    .map(|request| {
                        assert!(
                            in_batch.insert(request.pair_id),
                            "duplicate pair {} within one batch",
                            request.pair_id
                        );
                        assert!(
                            !answered.contains(&request.pair_id),
                            "pair {} re-requested after being answered",
                            request.pair_id
                        );
                        let pair = workload.pair(request.index);
                        assert_eq!(pair.id(), request.pair_id, "request index/id mismatch");
                        let label = label_of(pair);
                        order.push((request.pair_id, label));
                        LabelResponse { pair_id: request.pair_id, label }
                    })
                    .collect();
                answered.extend(in_batch);
            }
        }
    }
}

fn assert_outcomes_equal(kind: OptimizerKind, a: &OptimizationOutcome, b: &OptimizationOutcome) {
    assert_eq!(a.solution, b.solution, "{kind:?}: bounds differ");
    assert_eq!(a.assignment, b.assignment, "{kind:?}: label assignments differ");
    assert_eq!(a.metrics, b.metrics, "{kind:?}: metrics differ");
    assert_eq!(a.total_human_cost, b.total_human_cost, "{kind:?}: total cost differs");
    assert_eq!(a.verification_cost, b.verification_cost, "{kind:?}: verification cost differs");
    assert_eq!(a.sampling_cost, b.sampling_cost, "{kind:?}: sampling cost differs");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]
    #[test]
    fn sessions_are_byte_identical_with_oracle_runs(
        tau in 8.0..18.0f64,
        sigma in 0.05..0.25f64,
        seed in 0u64..1_000,
    ) {
        let w = workload(8_000, tau, sigma, seed);
        let requirement = QualityRequirement::new(0.9, 0.9, 0.9).unwrap();
        for kind in OptimizerKind::all() {
            let config = SessionConfig::for_kind(kind, requirement);

            // Oracle-driven reference run, with request order recorded.
            let mut oracle = TrackingOracle::new(GroundTruthOracle::new());
            let reference = optimize_by_kind(kind, requirement, &w, &mut oracle);

            // Manually stepped session answering from the ground truth.
            let mut session = LabelingSession::new(config, &w).unwrap();
            let (outcome, order) = drive_manually(&mut session, |pair| pair.ground_truth());

            assert_outcomes_equal(kind, &outcome, &reference);
            prop_assert!(
                order == oracle.order,
                "{:?}: manual session and oracle run disagree on the labels issued",
                kind
            );
            prop_assert_eq!(outcome.total_human_cost, oracle.labels_issued());

            // Resume from a mid-flight checkpoint: replay a prefix of the
            // answered log into a fresh session and drive the rest.
            let full_log: Vec<LabelResponse> = order
                .iter()
                .map(|&(pair_id, label)| LabelResponse { pair_id, label })
                .collect();
            let prefix = &full_log[..full_log.len() / 2];
            let mut resumed = LabelingSession::resume(config, &w, prefix).unwrap();
            let (resumed_outcome, _) = drive_manually(&mut resumed, |pair| pair.ground_truth());
            assert_outcomes_equal(kind, &resumed_outcome, &reference);
        }
    }
}

#[test]
fn noisy_labels_are_identical_across_drivers() {
    // With an order-independent noisy oracle, the batched session driver and
    // the classic entry point must see the *same* flipped labels — the
    // regression the hash-keyed `NoisyOracle` exists to prevent.
    let w = workload(8_000, 14.0, 0.1, 23);
    let requirement = QualityRequirement::new(0.9, 0.9, 0.9).unwrap();
    for kind in OptimizerKind::all() {
        let config = SessionConfig::for_kind(kind, requirement);
        let mut oracle = TrackingOracle::new(NoisyOracle::new(0.08, 77));
        let reference = optimize_by_kind(kind, requirement, &w, &mut oracle);

        let mut labeler = NoisyOracle::new(0.08, 77);
        let mut session = LabelingSession::new(config, &w).unwrap();
        let (outcome, order) = drive_manually(&mut session, |pair| labeler.label(pair));

        assert_outcomes_equal(kind, &outcome, &reference);
        assert_eq!(order, oracle.order, "{kind:?}: noisy labels depend on the driver");
    }
}

#[test]
fn partial_and_out_of_order_responses_converge_to_the_same_outcome() {
    let w = workload(6_000, 14.0, 0.1, 31);
    let requirement = QualityRequirement::new(0.9, 0.9, 0.9).unwrap();
    for kind in OptimizerKind::all() {
        let config = SessionConfig::for_kind(kind, requirement);
        let mut reference_session = LabelingSession::new(config, &w).unwrap();
        let (reference, _) = drive_manually(&mut reference_session, |pair| pair.ground_truth());

        // Answer each batch in two halves, reversed — simulating labels that
        // trickle back from parallel workers in arbitrary order.
        let mut session = LabelingSession::new(config, &w).unwrap();
        let mut responses: Vec<LabelResponse> = Vec::new();
        let outcome = loop {
            match session.step(&responses).unwrap() {
                Step::Done(outcome) => break outcome,
                Step::NeedLabels(requests) => {
                    let half = requests.len() / 2;
                    let (late, early) = requests.split_at(half);
                    let answer = |r: &humo::LabelRequest| LabelResponse {
                        pair_id: r.pair_id,
                        label: w.pair(r.index).ground_truth(),
                    };
                    // First step gets only the tail half (reversed); the
                    // leading half arrives one step later.
                    responses = early.iter().rev().map(answer).collect();
                    if !late.is_empty() {
                        let stragglers: Vec<LabelResponse> =
                            late.iter().rev().map(answer).collect();
                        match session.step(&responses).unwrap() {
                            Step::Done(outcome) => break outcome,
                            Step::NeedLabels(_) => {}
                        }
                        responses = stragglers;
                    }
                }
            }
        };
        assert_outcomes_equal(kind, &outcome, &reference);
    }
}
