//! Error type of the streaming resolution engine.

use er_core::ErError;
use humo::HumoError;

/// Errors raised by the `er-pipeline` crate.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// An error bubbled up from the entity-resolution substrate.
    Core(ErError),
    /// An error bubbled up from the HUMO optimizer layer.
    Humo(HumoError),
    /// The pipeline configuration is invalid.
    InvalidConfig(String),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Core(e) => write!(f, "core: {e}"),
            PipelineError::Humo(e) => write!(f, "humo: {e}"),
            PipelineError::InvalidConfig(msg) => write!(f, "invalid pipeline config: {msg}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Core(e) => Some(e),
            PipelineError::Humo(e) => Some(e),
            PipelineError::InvalidConfig(_) => None,
        }
    }
}

impl From<ErError> for PipelineError {
    fn from(e: ErError) -> Self {
        PipelineError::Core(e)
    }
}

impl From<HumoError> for PipelineError {
    fn from(e: HumoError) -> Self {
        PipelineError::Humo(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let core: PipelineError = ErError::InvalidArgument("x".to_string()).into();
        assert!(format!("{core}").contains("core:"));
        let humo: PipelineError = HumoError::InvalidConfig("y".to_string()).into();
        assert!(format!("{humo}").contains("humo:"));
        let cfg = PipelineError::InvalidConfig("z".to_string());
        assert!(format!("{cfg}").contains("invalid pipeline config"));
    }
}
