//! Entity clustering: union-find transitive closure of match-labeled pairs,
//! plus cluster-level pairwise quality metrics.
//!
//! Pair labels are only half of an ER system's output — the deliverable is the
//! *entities*: maximal groups of records declared to co-refer. This module
//! closes match-labeled pairs transitively with a disjoint-set forest and
//! scores the resulting clustering against a ground-truth clustering with the
//! standard pairwise precision/recall (every unordered record pair co-clustered
//! by the prediction is a positive; ground truth defines which of those are
//! correct), reusing [`QualityMetrics`] so pair-level and cluster-level numbers
//! read the same way.

use er_core::record::RecordId;
use er_core::workload::QualityMetrics;
use std::collections::BTreeMap;

/// Which source dataset a record came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Side {
    /// The left dataset of the resolution task.
    Left,
    /// The right dataset of the resolution task.
    Right,
}

/// A globally unique record key across the two sources.
pub type RecordKey = (Side, RecordId);

/// A disjoint-set forest with union by rank and path halving.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
}

impl UnionFind {
    /// Creates a forest of `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self { parent: (0..n).collect(), rank: vec![0; n] }
    }

    /// Number of elements in the forest.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the forest holds no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` when they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Whether `a` and `b` are currently in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

/// A partition of record keys into entities, in canonical form: every cluster
/// is sorted, clusters are ordered by their smallest member, and singletons are
/// kept. Two clusterings built from the same edges in any order compare equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityClusters {
    clusters: Vec<Vec<RecordKey>>,
    membership: BTreeMap<RecordKey, usize>,
}

impl EntityClusters {
    /// Builds the transitive closure of `edges` over `nodes`.
    ///
    /// Nodes appearing only in `edges` are added implicitly, so passing an
    /// empty node iterator clusters exactly the records touched by an edge.
    pub fn from_edges(
        nodes: impl IntoIterator<Item = RecordKey>,
        edges: impl IntoIterator<Item = (RecordKey, RecordKey)>,
    ) -> Self {
        let mut index: BTreeMap<RecordKey, usize> = BTreeMap::new();
        let mut keys: Vec<RecordKey> = Vec::new();
        let mut intern = |key: RecordKey, keys: &mut Vec<RecordKey>| -> usize {
            *index.entry(key).or_insert_with(|| {
                keys.push(key);
                keys.len() - 1
            })
        };
        let edges: Vec<(usize, usize)> = {
            let mut dense = Vec::new();
            for key in nodes {
                intern(key, &mut keys);
            }
            for (a, b) in edges {
                let (ia, ib) = (intern(a, &mut keys), intern(b, &mut keys));
                dense.push((ia, ib));
            }
            dense
        };
        let mut forest = UnionFind::new(keys.len());
        for (a, b) in edges {
            forest.union(a, b);
        }
        let mut grouped: BTreeMap<usize, Vec<RecordKey>> = BTreeMap::new();
        for (i, &key) in keys.iter().enumerate() {
            let root = forest.find(i);
            grouped.entry(root).or_default().push(key);
        }
        let mut clusters: Vec<Vec<RecordKey>> = grouped
            .into_values()
            .map(|mut members| {
                members.sort_unstable();
                members
            })
            .collect();
        clusters.sort_unstable();
        let mut membership = BTreeMap::new();
        for (c, members) in clusters.iter().enumerate() {
            for &key in members {
                membership.insert(key, c);
            }
        }
        Self { clusters, membership }
    }

    /// The clusters in canonical order.
    pub fn clusters(&self) -> &[Vec<RecordKey>] {
        &self.clusters
    }

    /// Number of clusters (singletons included).
    pub fn len(&self) -> usize {
        self.clusters.len()
    }

    /// Whether there are no clusters.
    pub fn is_empty(&self) -> bool {
        self.clusters.is_empty()
    }

    /// Number of clusters with at least two members (actual merged entities).
    pub fn non_singleton_count(&self) -> usize {
        self.clusters.iter().filter(|c| c.len() > 1).count()
    }

    /// Index of the cluster containing `key`, if present.
    pub fn cluster_of(&self, key: RecordKey) -> Option<usize> {
        self.membership.get(&key).copied()
    }

    /// Whether two record keys are placed in the same entity.
    pub fn same_entity(&self, a: RecordKey, b: RecordKey) -> bool {
        match (self.membership.get(&a), self.membership.get(&b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Number of unordered record pairs co-clustered by this partition.
    pub fn pair_count(&self) -> usize {
        self.clusters.iter().map(|c| c.len() * (c.len() - 1) / 2).sum()
    }

    /// Pairwise cluster metrics against a ground-truth clustering.
    ///
    /// Positives are unordered record pairs co-clustered by `self`; a positive
    /// is true when `truth` also co-clusters the pair. Negatives are counted
    /// over all unordered pairs of the union of both key sets, so the returned
    /// [`QualityMetrics`] is a complete confusion matrix and its
    /// `precision()`/`recall()`/`f1()` are the standard pairwise cluster
    /// metrics.
    pub fn pairwise_metrics(&self, truth: &EntityClusters) -> QualityMetrics {
        let mut true_positives = 0usize;
        for cluster in &self.clusters {
            for i in 0..cluster.len() {
                for j in (i + 1)..cluster.len() {
                    if truth.same_entity(cluster[i], cluster[j]) {
                        true_positives += 1;
                    }
                }
            }
        }
        let predicted = self.pair_count();
        let actual = truth.pair_count();
        let false_positives = predicted - true_positives;
        let false_negatives = actual - true_positives;
        let universe: std::collections::BTreeSet<RecordKey> =
            self.membership.keys().chain(truth.membership.keys()).copied().collect();
        let n = universe.len();
        let total_pairs = n * n.saturating_sub(1) / 2;
        let true_negatives =
            total_pairs.saturating_sub(true_positives + false_positives + false_negatives);
        QualityMetrics::from_counts(
            true_positives,
            false_positives,
            false_negatives,
            true_negatives,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(side: Side, id: u64) -> RecordKey {
        (side, RecordId(id))
    }

    #[test]
    fn union_find_merges_and_finds() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2), "already merged");
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
        assert_eq!(uf.len(), 6);
    }

    #[test]
    fn transitive_closure_builds_entities() {
        let nodes = (0..4).map(|i| key(Side::Left, i)).chain((0..3).map(|i| key(Side::Right, i)));
        let edges = [
            (key(Side::Left, 0), key(Side::Right, 0)),
            (key(Side::Right, 0), key(Side::Left, 1)), // transitivity: L0-R0-L1
            (key(Side::Left, 2), key(Side::Right, 2)),
        ];
        let clusters = EntityClusters::from_edges(nodes, edges);
        assert!(clusters.same_entity(key(Side::Left, 0), key(Side::Left, 1)));
        assert!(clusters.same_entity(key(Side::Left, 2), key(Side::Right, 2)));
        assert!(!clusters.same_entity(key(Side::Left, 0), key(Side::Left, 2)));
        // 7 nodes: {L0,L1,R0}, {L2,R2}, singletons L3, R1.
        assert_eq!(clusters.len(), 4);
        assert_eq!(clusters.non_singleton_count(), 2);
        assert_eq!(clusters.pair_count(), 3 + 1);
    }

    #[test]
    fn clustering_is_idempotent_and_order_independent() {
        let nodes: Vec<RecordKey> = (0..5).map(|i| key(Side::Left, i)).collect();
        let edges = vec![
            (key(Side::Left, 0), key(Side::Left, 1)),
            (key(Side::Left, 1), key(Side::Left, 2)),
            (key(Side::Left, 3), key(Side::Left, 4)),
        ];
        let forward = EntityClusters::from_edges(nodes.clone(), edges.clone());
        let mut reversed = edges.clone();
        reversed.reverse();
        let backward = EntityClusters::from_edges(nodes.clone(), reversed);
        assert_eq!(forward, backward);
        // Duplicated edges change nothing.
        let doubled: Vec<_> = edges.iter().chain(edges.iter()).copied().collect();
        assert_eq!(forward, EntityClusters::from_edges(nodes, doubled));
    }

    #[test]
    fn pairwise_metrics_score_against_truth() {
        let nodes: Vec<RecordKey> = (0..4).map(|i| key(Side::Left, i)).collect();
        // Prediction merges {0,1,2}; truth is {0,1} and {2,3}.
        let predicted = EntityClusters::from_edges(
            nodes.clone(),
            [(key(Side::Left, 0), key(Side::Left, 1)), (key(Side::Left, 1), key(Side::Left, 2))],
        );
        let truth = EntityClusters::from_edges(
            nodes,
            [(key(Side::Left, 0), key(Side::Left, 1)), (key(Side::Left, 2), key(Side::Left, 3))],
        );
        let m = predicted.pairwise_metrics(&truth);
        // Predicted pairs: (0,1), (0,2), (1,2) → only (0,1) is true.
        assert_eq!(m.true_positives, 1);
        assert_eq!(m.false_positives, 2);
        // Truth pairs: (0,1), (2,3) → (2,3) missed.
        assert_eq!(m.false_negatives, 1);
        assert_eq!(m.total(), 6); // C(4,2)
        assert!((m.precision() - 1.0 / 3.0).abs() < 1e-12);
        assert!((m.recall() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn perfect_clustering_scores_one() {
        let nodes: Vec<RecordKey> =
            (0..3).map(|i| key(Side::Left, i)).chain((0..3).map(|i| key(Side::Right, i))).collect();
        let edges: Vec<_> = (0..3).map(|i| (key(Side::Left, i), key(Side::Right, i))).collect();
        let predicted = EntityClusters::from_edges(nodes.clone(), edges.clone());
        let truth = EntityClusters::from_edges(nodes, edges);
        let m = predicted.pairwise_metrics(&truth);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f1(), 1.0);
    }

    #[test]
    fn empty_clustering_is_well_defined() {
        let clusters = EntityClusters::from_edges(std::iter::empty(), std::iter::empty());
        assert!(clusters.is_empty());
        assert_eq!(clusters.pair_count(), 0);
        let m = clusters.pairwise_metrics(&clusters);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
    }
}
