//! The streaming resolution engine: ingest record batches, maintain the
//! workload incrementally, re-optimize with HUMO, and emit entities.
//!
//! Each [`ResolutionEngine::ingest`] call folds a batch of records into the
//! incremental blocking index, scores only the *delta* candidate pairs on the
//! worker pool, filters them by the blocking threshold and merges them into the
//! similarity-sorted workload without re-sorting. [`ResolutionEngine::resolve`]
//! then re-optimizes the HUMO partition — warm-started from the previous
//! epoch's samples when enabled — resolves pair labels through the oracle, and
//! clusters match-labeled pairs into entities via union-find transitive
//! closure.
//!
//! **Equivalence guarantee:** with warm-starting disabled and a
//! dataset-independent attribute weighting (such as
//! [`AttributeWeighting::Uniform`](er_core::aggregate::AttributeWeighting)),
//! ingesting records in any batch split produces exactly the same workload,
//! thresholds, labels and entity clusters as ingesting everything in one batch
//! — pinned by the `incremental_equivalence` proptest suite. Warm-starting
//! trades that bit-exact reproducibility for a large saving in oracle queries
//! while keeping the statistical quality guarantee (measured by the
//! `pipeline_throughput` harness). With the paper's
//! `DistinctValues` weighting, attribute weights are recomputed from the
//! records seen so far, so earlier epochs score with earlier weights.

use crate::cluster::{EntityClusters, RecordKey, Side};
use crate::pool::WorkerPool;
use crate::{PipelineError, Result};
use er_core::aggregate::{PairScorer, ScoringConfig};
use er_core::blocking::{IncrementalTokenIndex, TokenBlocker};
use er_core::record::{Dataset, Record, RecordId, Schema};
use er_core::text::Tokenizer;
use er_core::workload::{InstancePair, Label, PairId, QualityMetrics, Workload};
use humo::sampling::WarmStart;
use humo::{
    HumoSolution, OptimizationOutcome, Oracle, PartialSamplingConfig, PartialSamplingOptimizer,
    QualityRequirement,
};
use std::collections::BTreeSet;

/// Configuration of the streaming resolution pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// How candidate pairs are scored.
    pub scoring: ScoringConfig,
    /// Attribute the incremental token blocker indexes.
    pub blocking_attribute: String,
    /// Tokenizer of the blocking attribute.
    pub tokenizer: Tokenizer,
    /// Pairs scoring below this aggregated similarity are dropped at ingest
    /// (the paper's per-dataset blocking threshold).
    pub similarity_threshold: f64,
    /// Configuration of the SAMP optimizer driving each resolution epoch.
    /// Inherits the two-sided tail calibration by default, so warm-started
    /// re-optimizations certify precision through the pooled saturated-run
    /// lower bounds too: reused near-pure priors re-enter the calibrated
    /// estimator exactly like fresh samples.
    pub optimizer: PartialSamplingConfig,
    /// Worker threads for delta-pair scoring; `0` selects the machine's
    /// available parallelism.
    pub threads: usize,
    /// Whether re-resolutions seed the optimizer from the previous epoch's
    /// samples (fewer oracle queries) instead of running cold (bit-exact
    /// equivalence with a from-scratch run).
    pub warm_start: bool,
}

impl PipelineConfig {
    /// Creates a configuration with streaming-friendly defaults: word
    /// tokenization, a 0.2 blocking threshold, warm-started re-optimization and
    /// auto-sized scoring parallelism.
    pub fn new(
        scoring: ScoringConfig,
        blocking_attribute: impl Into<String>,
        requirement: QualityRequirement,
    ) -> Self {
        Self {
            scoring,
            blocking_attribute: blocking_attribute.into(),
            tokenizer: Tokenizer::Words,
            similarity_threshold: 0.2,
            optimizer: PartialSamplingConfig::new(requirement),
            threads: 0,
            warm_start: true,
        }
    }

    fn validate(&self) -> Result<()> {
        if !self.similarity_threshold.is_finite()
            || !(0.0..=1.0).contains(&self.similarity_threshold)
        {
            return Err(PipelineError::InvalidConfig(format!(
                "similarity threshold must be in [0,1], got {}",
                self.similarity_threshold
            )));
        }
        // Surface optimizer misconfiguration at engine construction, not at the
        // first resolve.
        PartialSamplingOptimizer::new(self.optimizer)?;
        Ok(())
    }
}

/// What one [`ResolutionEngine::ingest`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReport {
    /// Records added to the left dataset by this batch.
    pub left_records: usize,
    /// Records added to the right dataset by this batch.
    pub right_records: usize,
    /// Delta candidate pairs produced by the incremental blocking index.
    pub delta_candidates: usize,
    /// Delta pairs that survived the similarity threshold and entered the
    /// workload.
    pub retained_pairs: usize,
    /// Workload size after the merge.
    pub workload_len: usize,
    /// Worker threads used for scoring the delta.
    pub scoring_threads: usize,
}

/// What one [`ResolutionEngine::resolve`] call produced.
#[derive(Debug, Clone)]
pub struct ResolutionReport {
    /// The HUMO outcome: partition, pair labels, pair-level metrics and human
    /// cost counters (cumulative over the engine's oracle).
    pub outcome: OptimizationOutcome,
    /// The resolved entities (transitive closure of match-labeled pairs over
    /// all ingested records).
    pub entities: EntityClusters,
    /// Cluster-level pairwise precision/recall against the ground-truth
    /// entities.
    pub cluster_metrics: QualityMetrics,
    /// Oracle queries issued by *this* resolution (delta of the oracle's
    /// distinct-label counter).
    pub oracle_queries: usize,
    /// Whether the optimizer was seeded from a previous epoch's warm start.
    pub used_warm_start: bool,
    /// Whether the workload was too small for the sampling optimizer and was
    /// resolved entirely by the human instead.
    pub fallback_all_human: bool,
}

/// The streaming resolution engine.
#[derive(Debug, Clone)]
pub struct ResolutionEngine {
    config: PipelineConfig,
    left: Dataset,
    right: Dataset,
    index: IncrementalTokenIndex,
    truth: BTreeSet<(RecordId, RecordId)>,
    workload: Workload,
    next_pair_id: u64,
    pool: WorkerPool,
    warm: Option<WarmStart>,
    candidate_count: usize,
}

impl ResolutionEngine {
    /// Creates an empty engine for the two source schemas.
    pub fn new(config: PipelineConfig, left_schema: Schema, right_schema: Schema) -> Result<Self> {
        config.validate()?;
        let blocker = TokenBlocker::new(config.blocking_attribute.clone(), config.tokenizer);
        let pool = WorkerPool::new(config.threads);
        Ok(Self {
            index: blocker.incremental(),
            left: Dataset::new("left", left_schema),
            right: Dataset::new("right", right_schema),
            truth: BTreeSet::new(),
            workload: Workload::from_pairs(Vec::new())?,
            next_pair_id: 0,
            pool,
            warm: None,
            candidate_count: 0,
            config,
        })
    }

    /// The current similarity-sorted workload.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The accumulated left dataset.
    pub fn left(&self) -> &Dataset {
        &self.left
    }

    /// The accumulated right dataset.
    pub fn right(&self) -> &Dataset {
        &self.right
    }

    /// Total delta candidates produced so far (before threshold filtering).
    pub fn candidate_count(&self) -> usize {
        self.candidate_count
    }

    /// The warm-start state captured by the latest resolution, if any.
    pub fn warm_state(&self) -> Option<&WarmStart> {
        self.warm.as_ref()
    }

    /// Ingests a batch of records: updates the blocking index, scores the delta
    /// candidates in parallel, and merges the surviving pairs into the
    /// workload.
    ///
    /// `truth_delta` carries the ground-truth match edges involving records of
    /// this batch (edges may reference records from earlier batches); it labels
    /// the new pairs and feeds the cluster-level evaluation.
    ///
    /// Ingestion is atomic with respect to validation: a batch with a
    /// schema-invalid record or a duplicate record id is rejected as a whole,
    /// leaving the engine untouched.
    pub fn ingest(
        &mut self,
        left_batch: Vec<Record>,
        right_batch: Vec<Record>,
        truth_delta: &[(RecordId, RecordId)],
    ) -> Result<IngestReport> {
        // Pre-flight validation before any state is committed: a record that
        // entered the dataset but not the blocking index would silently miss
        // every future candidate pair involving it.
        for (dataset, batch) in [(&self.left, &left_batch), (&self.right, &right_batch)] {
            let mut batch_ids: BTreeSet<RecordId> = BTreeSet::new();
            for record in batch {
                record.validate(dataset.schema())?;
                if dataset.get(record.id()).is_some() || !batch_ids.insert(record.id()) {
                    return Err(PipelineError::Core(er_core::ErError::InvalidArgument(format!(
                        "duplicate record id {} in ingest batch for dataset '{}'",
                        record.id(),
                        dataset.name()
                    ))));
                }
            }
        }
        self.truth.extend(truth_delta.iter().copied());
        let delta = self.index.add_records(&left_batch, &right_batch);
        let (left_records, right_records) = (left_batch.len(), right_batch.len());
        for record in left_batch {
            self.left.push(record)?;
        }
        for record in right_batch {
            self.right.push(record)?;
        }
        let scorer = PairScorer::new(&self.config.scoring, &[&self.left, &self.right])?;
        let similarities = self.pool.score_pairs(&self.left, &self.right, &scorer, &delta)?;
        let mut new_pairs = Vec::new();
        for (&(l, r), similarity) in delta.iter().zip(similarities) {
            if similarity < self.config.similarity_threshold {
                continue;
            }
            let label = Label::from_bool(self.truth.contains(&(l, r)));
            new_pairs.push(InstancePair::with_records(
                PairId(self.next_pair_id),
                l,
                r,
                similarity,
                label,
            ));
            self.next_pair_id += 1;
        }
        let retained = new_pairs.len();
        self.workload.insert_sorted(new_pairs)?;
        self.candidate_count += delta.len();
        Ok(IngestReport {
            left_records,
            right_records,
            delta_candidates: delta.len(),
            retained_pairs: retained,
            workload_len: self.workload.len(),
            scoring_threads: self.pool.threads(),
        })
    }

    /// Re-resolves the current workload: optimizes the HUMO partition (warm or
    /// cold), draws the human labels for `DH` from `oracle`, and clusters the
    /// match-labeled pairs into entities.
    ///
    /// Passing the *same* oracle across epochs models the streaming deployment:
    /// pairs labeled in earlier epochs are cached, so a re-resolution only pays
    /// for genuinely new questions.
    pub fn resolve(&mut self, oracle: &mut dyn Oracle) -> Result<ResolutionReport> {
        let queries_before = oracle.labels_issued();
        // Workloads with fewer than two subsets cannot drive the sampling
        // optimizer; resolving them entirely by hand is exact, deterministic
        // and — at this size — cheap.
        let too_small = self.workload.len() < 2 * self.config.optimizer.unit_size;
        let all_human = |oracle: &mut dyn Oracle, workload: &Workload| {
            let solution = HumoSolution::all_human(workload.len());
            OptimizationOutcome::from_solution(solution, workload, oracle)
        };
        let (outcome, used_warm, fallback) = if too_small {
            (all_human(oracle, &self.workload)?, false, true)
        } else {
            let optimizer = PartialSamplingOptimizer::new(self.config.optimizer)?;
            let warm = if self.config.warm_start { self.warm.as_ref() } else { None };
            let used_warm = warm.is_some_and(|w| !w.is_empty());
            match optimizer.optimize_with_warm_start(&self.workload, oracle, warm) {
                Ok((outcome, next)) => {
                    self.warm = Some(next);
                    (outcome, used_warm, false)
                }
                // Statistical degeneracy (e.g. a workload whose subsets collapse
                // onto duplicate similarity coordinates and break the GP fit) is
                // a property of the data, so both an incremental and a
                // from-scratch run hit it identically; resolving by hand is the
                // exact, deterministic way out. Real errors still propagate.
                Err(humo::HumoError::Stats(_)) => (all_human(oracle, &self.workload)?, false, true),
                Err(e) => return Err(e.into()),
            }
        };
        let entities = self.entities_of(&outcome);
        let cluster_metrics = entities.pairwise_metrics(&self.truth_entities());
        Ok(ResolutionReport {
            oracle_queries: oracle.labels_issued() - queries_before,
            outcome,
            entities,
            cluster_metrics,
            used_warm_start: used_warm,
            fallback_all_human: fallback,
        })
    }

    /// All ingested records as cluster nodes (so unmatched records appear as
    /// singleton entities).
    fn all_nodes(&self) -> impl Iterator<Item = RecordKey> + '_ {
        self.left
            .iter()
            .map(|r| (Side::Left, r.id()))
            .chain(self.right.iter().map(|r| (Side::Right, r.id())))
    }

    /// The entities induced by an outcome's label assignment.
    fn entities_of(&self, outcome: &OptimizationOutcome) -> EntityClusters {
        let edges = self
            .workload
            .pairs()
            .iter()
            .zip(outcome.assignment.labels())
            .filter(|(_, label)| label.is_match())
            .filter_map(|(pair, _)| {
                Some(((Side::Left, pair.left()?), (Side::Right, pair.right()?)))
            });
        EntityClusters::from_edges(self.all_nodes(), edges)
    }

    /// The ground-truth entities over all ingested records.
    fn truth_entities(&self) -> EntityClusters {
        let edges = self.truth.iter().map(|&(l, r)| ((Side::Left, l), (Side::Right, r)));
        EntityClusters::from_edges(self.all_nodes(), edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::aggregate::{AttributeMeasure, AttributeWeighting};
    use er_core::similarity::StringMeasure;
    use er_datagen::bibliographic::{BibliographicConfig, BibliographicGenerator};
    use humo::GroundTruthOracle;

    fn config(unit_size: usize, warm_start: bool) -> PipelineConfig {
        let scoring = ScoringConfig::new(
            [
                ("title", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
                ("authors", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
            ],
            AttributeWeighting::Uniform,
        );
        let requirement = QualityRequirement::symmetric(0.9).unwrap();
        let mut config = PipelineConfig::new(scoring, "title", requirement);
        config.similarity_threshold = 0.15;
        config.optimizer.unit_size = unit_size;
        config.warm_start = warm_start;
        config
    }

    fn corpus(entities: usize, seed: u64) -> er_datagen::bibliographic::GeneratedCorpus {
        BibliographicGenerator::new(BibliographicConfig {
            num_entities: entities,
            duplicate_probability: 0.6,
            extra_right_entities: entities / 2,
            corruption: 0.3,
            seed,
        })
        .generate()
    }

    #[test]
    fn rejects_invalid_configuration() {
        let mut bad = config(25, true);
        bad.similarity_threshold = f64::NAN;
        let schema = BibliographicGenerator::schema();
        assert!(ResolutionEngine::new(bad, schema.clone(), schema.clone()).is_err());
        let mut bad = config(0, true);
        bad.similarity_threshold = 0.2;
        assert!(ResolutionEngine::new(bad, schema.clone(), schema).is_err());
    }

    #[test]
    fn invalid_batches_are_rejected_atomically() {
        let schema = BibliographicGenerator::schema();
        let mut engine = ResolutionEngine::new(config(25, true), schema.clone(), schema).unwrap();
        let good = Record::new(RecordId(1)).with("title", "entity resolution");
        // A batch whose second record duplicates the first's id is rejected as a
        // whole: no record may enter the dataset without entering the index.
        let duplicate_within_batch =
            vec![good.clone(), Record::new(RecordId(1)).with("title", "other")];
        assert!(engine.ingest(duplicate_within_batch, Vec::new(), &[]).is_err());
        assert_eq!(engine.left().len(), 0);
        assert_eq!(engine.candidate_count(), 0);
        // Same for a schema-invalid record after a valid one.
        let bad_schema = vec![good.clone(), Record::new(RecordId(2)).with("undeclared", "x")];
        assert!(engine.ingest(bad_schema, Vec::new(), &[]).is_err());
        assert_eq!(engine.left().len(), 0);
        // The engine still works afterwards, and re-ingesting an existing id
        // fails without committing the batch.
        engine.ingest(vec![good.clone()], Vec::new(), &[]).unwrap();
        assert_eq!(engine.left().len(), 1);
        assert!(engine.ingest(vec![good], Vec::new(), &[]).is_err());
        assert_eq!(engine.left().len(), 1);
    }

    #[test]
    fn empty_engine_resolves_to_nothing() {
        let schema = BibliographicGenerator::schema();
        let mut engine = ResolutionEngine::new(config(25, true), schema.clone(), schema).unwrap();
        let mut oracle = GroundTruthOracle::new();
        let report = engine.resolve(&mut oracle).unwrap();
        assert_eq!(report.oracle_queries, 0);
        assert!(report.entities.is_empty());
        assert!(report.fallback_all_human);
    }

    #[test]
    fn streaming_ingest_builds_a_growing_workload_and_entities() {
        let corpus = corpus(120, 11);
        let schema = BibliographicGenerator::schema();
        let mut engine = ResolutionEngine::new(config(25, true), schema.clone(), schema).unwrap();
        let truth: Vec<(RecordId, RecordId)> = corpus.ground_truth.iter().copied().collect();
        let mut oracle = GroundTruthOracle::new();
        let halves_l = corpus.left.records().split_at(corpus.left.len() / 2);
        let halves_r = corpus.right.records().split_at(corpus.right.len() / 2);
        let first = engine.ingest(halves_l.0.to_vec(), halves_r.0.to_vec(), &truth).unwrap();
        assert!(first.delta_candidates > 0);
        assert!(first.retained_pairs <= first.delta_candidates);
        let len_after_first = engine.workload().len();
        let second = engine.ingest(halves_l.1.to_vec(), halves_r.1.to_vec(), &[]).unwrap();
        assert!(second.workload_len >= len_after_first);
        assert_eq!(engine.candidate_count(), first.delta_candidates + second.delta_candidates);
        let report = engine.resolve(&mut oracle).unwrap();
        assert!(report.oracle_queries > 0);
        assert!(report.entities.non_singleton_count() > 0);
        assert!(report.cluster_metrics.precision() > 0.5);
        assert!(report.cluster_metrics.recall() > 0.5);
        // The pair-level metrics ride along unchanged.
        assert!(report.outcome.metrics.f1() > 0.5);
    }

    #[test]
    fn warm_resolutions_cost_fewer_queries_than_cold_restarts() {
        let corpus = corpus(400, 13);
        let schema = BibliographicGenerator::schema();
        let truth: Vec<(RecordId, RecordId)> = corpus.ground_truth.iter().copied().collect();
        // Warm engine: ingest in two batches, resolving after each.
        let mut warm_engine =
            ResolutionEngine::new(config(25, true), schema.clone(), schema.clone()).unwrap();
        let mut warm_oracle = GroundTruthOracle::new();
        let (l1, l2) = corpus.left.records().split_at(corpus.left.len() * 2 / 3);
        let (r1, r2) = corpus.right.records().split_at(corpus.right.len() * 2 / 3);
        warm_engine.ingest(l1.to_vec(), r1.to_vec(), &truth).unwrap();
        warm_engine.resolve(&mut warm_oracle).unwrap();
        warm_engine.ingest(l2.to_vec(), r2.to_vec(), &[]).unwrap();
        let warm_report = warm_engine.resolve(&mut warm_oracle).unwrap();
        assert!(warm_report.used_warm_start);
        // From-scratch engine over the same final records, fresh oracle.
        let mut cold_engine =
            ResolutionEngine::new(config(25, false), schema.clone(), schema).unwrap();
        let mut cold_oracle = GroundTruthOracle::new();
        cold_engine
            .ingest(corpus.left.records().to_vec(), corpus.right.records().to_vec(), &truth)
            .unwrap();
        let cold_report = cold_engine.resolve(&mut cold_oracle).unwrap();
        assert!(!cold_report.used_warm_start);
        assert!(
            warm_report.oracle_queries < cold_report.oracle_queries,
            "incremental re-resolution used {} queries, from-scratch used {}",
            warm_report.oracle_queries,
            cold_report.oracle_queries
        );
    }
}
