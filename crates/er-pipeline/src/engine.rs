//! The streaming resolution engine: ingest record batches, maintain the
//! workload incrementally, re-optimize with HUMO, and emit entities.
//!
//! Each [`ResolutionEngine::ingest`] call folds a batch of records into the
//! incremental blocking index, scores only the *delta* candidate pairs on the
//! worker pool, filters them by the blocking threshold and merges them into the
//! similarity-sorted workload without re-sorting. [`ResolutionEngine::resolve`]
//! then re-optimizes the HUMO partition — warm-started from the previous
//! epoch's samples when enabled — resolves pair labels through the oracle, and
//! clusters match-labeled pairs into entities via union-find transitive
//! closure. Any [`Oracle`] drives the resolve step, including a redundantly
//! voted crowd ([`humo::CrowdOracle`]); with `Redundancy::Fixed(1)` and
//! zero-noise workers the crowd path is byte-identical to
//! [`GroundTruthOracle`](humo::GroundTruthOracle) (pinned by the
//! `crowd_oracle_fixed1_zero_noise_resolves_identically` test).
//!
//! **Equivalence guarantee:** with warm-starting disabled and a
//! dataset-independent attribute weighting (such as
//! [`AttributeWeighting::Uniform`](er_core::aggregate::AttributeWeighting)),
//! ingesting records in any batch split produces exactly the same workload,
//! thresholds, labels and entity clusters as ingesting everything in one batch
//! — pinned by the `incremental_equivalence` proptest suite. Warm-starting
//! trades that bit-exact reproducibility for a large saving in oracle queries
//! while keeping the statistical quality guarantee (measured by the
//! `pipeline_throughput` harness). With the paper's
//! `DistinctValues` weighting, attribute weights are recomputed from the
//! records seen so far, so earlier epochs score with earlier weights.

use crate::cluster::{EntityClusters, RecordKey, Side};
use crate::pool::WorkerPool;
use crate::{PipelineError, Result};
use er_core::aggregate::{PairScorer, ScoringConfig, TokenCache};
use er_core::blocking::{IncrementalTokenIndex, TokenBlocker};
use er_core::record::{Dataset, Record, RecordId, Schema};
use er_core::spill::MemoryBudget;
use er_core::text::Tokenizer;
use er_core::workload::{InstancePair, Label, PairId, QualityMetrics, Workload};
use er_obs::ObsHandle;
use humo::sampling::WarmStart;
use humo::wal::{WalRecord, WalWriter};
use humo::{
    HumoError, LabelRequest, LabelResponse, OptimizationOutcome, Oracle, PartialSamplingConfig,
    PartialSamplingOptimizer, QualityRequirement, SessionConfig, SessionState, Step,
};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

/// Configuration of the streaming resolution pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// How candidate pairs are scored.
    pub scoring: ScoringConfig,
    /// Attribute the incremental token blocker indexes.
    pub blocking_attribute: String,
    /// Tokenizer of the blocking attribute.
    pub tokenizer: Tokenizer,
    /// Pairs scoring below this aggregated similarity are dropped at ingest
    /// (the paper's per-dataset blocking threshold).
    pub similarity_threshold: f64,
    /// Configuration of the SAMP optimizer driving each resolution epoch.
    /// Inherits the two-sided tail calibration by default, so warm-started
    /// re-optimizations certify precision through the pooled saturated-run
    /// lower bounds too: reused near-pure priors re-enter the calibrated
    /// estimator exactly like fresh samples.
    pub optimizer: PartialSamplingConfig,
    /// Worker threads for delta-pair scoring; `0` selects the machine's
    /// available parallelism.
    pub threads: usize,
    /// Whether re-resolutions seed the optimizer from the previous epoch's
    /// samples (fewer oracle queries) instead of running cold (bit-exact
    /// equivalence with a from-scratch run).
    pub warm_start: bool,
    /// Out-of-core memory budget for the blocking index's posting lists and
    /// the workload's pair segments. The default is fully resident; a bounded
    /// budget spills cold data to disk without changing any computed value
    /// (candidates, similarities, labels and entities are byte-identical to an
    /// unbounded run).
    pub memory_budget: MemoryBudget,
    /// Observability sink for the engine, its workload, its blocking index
    /// and every resolution session. Defaults to the no-op recorder, which
    /// records nothing and keeps every computed value byte-identical to an
    /// uninstrumented run (pinned by the `noop_recorder_is_inert` suite).
    pub recorder: ObsHandle,
}

impl PipelineConfig {
    /// Creates a configuration with streaming-friendly defaults: word
    /// tokenization, a 0.2 blocking threshold, warm-started re-optimization and
    /// auto-sized scoring parallelism.
    pub fn new(
        scoring: ScoringConfig,
        blocking_attribute: impl Into<String>,
        requirement: QualityRequirement,
    ) -> Self {
        Self {
            scoring,
            blocking_attribute: blocking_attribute.into(),
            tokenizer: Tokenizer::Words,
            similarity_threshold: 0.2,
            optimizer: PartialSamplingConfig::new(requirement),
            threads: 0,
            warm_start: true,
            memory_budget: MemoryBudget::default(),
            recorder: ObsHandle::default(),
        }
    }

    fn validate(&self) -> Result<()> {
        if !self.similarity_threshold.is_finite()
            || !(0.0..=1.0).contains(&self.similarity_threshold)
        {
            return Err(PipelineError::InvalidConfig(format!(
                "similarity threshold must be in [0,1], got {}",
                self.similarity_threshold
            )));
        }
        // Surface optimizer misconfiguration at engine construction, not at the
        // first resolve.
        PartialSamplingOptimizer::new(self.optimizer)?;
        Ok(())
    }
}

/// What one [`ResolutionEngine::ingest`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReport {
    /// Records added to the left dataset by this batch.
    pub left_records: usize,
    /// Records added to the right dataset by this batch.
    pub right_records: usize,
    /// Delta candidate pairs produced by the incremental blocking index.
    pub delta_candidates: usize,
    /// Delta pairs that survived the similarity threshold and entered the
    /// workload.
    pub retained_pairs: usize,
    /// Workload size after the merge.
    pub workload_len: usize,
    /// Worker threads used for scoring the delta.
    pub scoring_threads: usize,
    /// Workload pairs resident in memory after the merge (equals
    /// `workload_len` without a memory budget).
    pub resident_pairs: usize,
    /// Workload pairs spilled out of core after the merge.
    pub spilled_pairs: usize,
    /// Cumulative spill and segment-cache activity up to this ingest.
    pub spill: SpillReport,
}

/// Cumulative out-of-core activity of an engine, as of one report.
///
/// All fields are plain integers kept by the engine's workload and blocking
/// index regardless of any recorder, so spill behaviour is visible with
/// observability off; [`SpillReport::cache_hit_rate`] derives the rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpillReport {
    /// Workload segments written to the spill file.
    pub segments_spilled: u64,
    /// Workload segments read back from the spill file.
    pub segments_loaded: u64,
    /// Bytes written to the workload spill file.
    pub bytes_spilled: u64,
    /// Bytes read back from the workload spill file.
    pub bytes_loaded: u64,
    /// Spilled-segment lookups answered by the read cache.
    pub cache_hits: u64,
    /// Spilled-segment lookups that went to disk.
    pub cache_misses: u64,
    /// Read-cache entries evicted to admit newer segments.
    pub cache_evictions: u64,
    /// Posting generations the blocking index froze to disk.
    pub posting_generations_spilled: u64,
    /// Bytes written to the blocking index's spill file.
    pub posting_bytes_spilled: u64,
}

impl SpillReport {
    /// Fraction of spilled-segment lookups served from the cache
    /// (0 when no spilled segment was ever touched).
    pub fn cache_hit_rate(&self) -> f64 {
        let touches = self.cache_hits + self.cache_misses;
        if touches == 0 {
            0.0
        } else {
            self.cache_hits as f64 / touches as f64
        }
    }
}

/// What one [`ResolutionEngine::resolve`] call produced.
#[derive(Debug, Clone)]
pub struct ResolutionReport {
    /// The HUMO outcome: partition, pair labels, pair-level metrics and human
    /// cost counters. For the oracle-driven [`ResolutionEngine::resolve`]
    /// wrapper the cost counters are cumulative over the oracle's lifetime
    /// (the legacy engine semantics); for session-driven resolutions they are
    /// session-scoped (distinct labels this session absorbed).
    pub outcome: OptimizationOutcome,
    /// The resolved entities (transitive closure of match-labeled pairs over
    /// all ingested records).
    pub entities: EntityClusters,
    /// Cluster-level pairwise precision/recall against the ground-truth
    /// entities.
    pub cluster_metrics: QualityMetrics,
    /// Distinct labels newly supplied to *this* resolution — everything the
    /// engine's cross-epoch label store did not already cover. For the
    /// oracle-driven [`ResolutionEngine::resolve`] wrapper this equals the
    /// delta of the oracle's distinct-label counter.
    pub oracle_queries: usize,
    /// Label round-trips of this resolution: the number of distinct dispatch
    /// waves the underlying labeling session emitted (re-emissions of a
    /// still-outstanding batch do not count). Each wave is one dispatch
    /// latency however many pairs it contains, so this is the latency-proxy
    /// cost metric next to the paper's pair-count cost.
    pub label_rounds: usize,
    /// Rounds of `label_rounds` dispatched while *planning* (the optimizer's
    /// sampling phase). `plan_rounds + refine_rounds == label_rounds`.
    pub plan_rounds: usize,
    /// Rounds of `label_rounds` dispatched while *refining* (boundary search
    /// and verification; all rounds of an all-human fallback count here).
    pub refine_rounds: usize,
    /// Whether the optimizer was seeded from a previous epoch's warm start.
    pub used_warm_start: bool,
    /// Whether the workload was too small for the sampling optimizer and was
    /// resolved entirely by the human instead.
    pub fallback_all_human: bool,
}

/// The streaming resolution engine.
#[derive(Debug)]
pub struct ResolutionEngine {
    config: PipelineConfig,
    left: Dataset,
    right: Dataset,
    index: IncrementalTokenIndex,
    truth: BTreeSet<(RecordId, RecordId)>,
    workload: Workload,
    next_pair_id: u64,
    pool: WorkerPool,
    warm: Option<WarmStart>,
    candidate_count: usize,
    /// Per-record token memo shared by blocking and scoring; records are
    /// admitted once, at ingest.
    cache: TokenCache,
    /// Every manual label received through completed resolution sessions,
    /// keyed by pair id — the engine-side label store that keeps later epochs
    /// from re-requesting pairs answered in earlier ones.
    labels: BTreeMap<PairId, Label>,
    /// The write-ahead label store, when attached: every absorbed response
    /// batch, every session begin and every commit is appended (and fsynced)
    /// here *before* the engine acts on it. See
    /// [`ResolutionEngine::attach_wal`].
    wal: Option<WalWriter>,
}

impl Clone for ResolutionEngine {
    /// Clones everything *except* the write-ahead log: a WAL is an exclusive
    /// append handle on one file, so the clone starts without one (attach its
    /// own with [`ResolutionEngine::attach_wal`] to make it durable).
    fn clone(&self) -> Self {
        Self {
            config: self.config.clone(),
            left: self.left.clone(),
            right: self.right.clone(),
            index: self.index.clone(),
            truth: self.truth.clone(),
            workload: self.workload.clone(),
            next_pair_id: self.next_pair_id,
            pool: self.pool,
            warm: self.warm.clone(),
            candidate_count: self.candidate_count,
            cache: self.cache.clone(),
            labels: self.labels.clone(),
            wal: None,
        }
    }
}

impl ResolutionEngine {
    /// Creates an empty engine for the two source schemas.
    pub fn new(config: PipelineConfig, left_schema: Schema, right_schema: Schema) -> Result<Self> {
        config.validate()?;
        let blocker = TokenBlocker::new(config.blocking_attribute.clone(), config.tokenizer);
        let pool = WorkerPool::new(config.threads);
        let mut index = blocker.incremental();
        index.set_memory_budget(config.memory_budget.clone())?;
        index.set_obs(config.recorder.clone());
        let mut workload = Workload::from_pairs(Vec::new())?;
        workload.set_memory_budget(config.memory_budget.clone())?;
        workload.set_obs(config.recorder.clone());
        Ok(Self {
            index,
            left: Dataset::new("left", left_schema),
            right: Dataset::new("right", right_schema),
            truth: BTreeSet::new(),
            workload,
            next_pair_id: 0,
            pool,
            warm: None,
            candidate_count: 0,
            cache: TokenCache::new(),
            labels: BTreeMap::new(),
            wal: None,
            config,
        })
    }

    /// Attaches a *fresh* write-ahead label store at `path` (truncating any
    /// existing file). From here on every resolution session's begin record,
    /// absorbed response batches and commit are appended and fsynced before
    /// the engine acts on them, so a process killed at any instant can
    /// [`ResolutionEngine::resume`] without re-buying a single label.
    ///
    /// Attach to a freshly built engine (before any `begin_resolve`): the log
    /// must cover every label the engine knows, or a resume from it would
    /// start poorer than the engine that wrote it.
    pub fn attach_wal(&mut self, path: impl AsRef<Path>) -> Result<()> {
        self.wal = Some(WalWriter::create(path)?);
        Ok(())
    }

    /// Whether a write-ahead label store is attached.
    pub fn has_wal(&self) -> bool {
        self.wal.is_some()
    }

    /// Appends a record to the attached WAL (no-op without one), emitting the
    /// `session.wal.*` observability counters.
    fn wal_append(&mut self, record: &WalRecord) -> Result<()> {
        let Some(wal) = &mut self.wal else { return Ok(()) };
        let bytes = wal.append(record)?;
        let obs = &self.config.recorder;
        obs.counter("session.wal.appends", 1);
        obs.counter("session.wal.bytes", bytes);
        match record {
            WalRecord::Labels(responses) => {
                obs.counter("session.wal.labels", responses.len() as u64)
            }
            WalRecord::Commit { .. } => obs.counter("session.wal.commits", 1),
            WalRecord::SessionBegin { .. } => {}
        }
        Ok(())
    }

    /// Rebuilds the engine's durable labeling state from a write-ahead label
    /// store written by a previous process, and re-attaches the log for
    /// appending (recovering from a torn tail first).
    ///
    /// The engine must already hold the same workload the dead process held —
    /// i.e. the caller re-ingests the same record batches first; ingest is
    /// deterministic, so this reproduces the workload bit-exactly. The replay
    /// then folds every *committed* epoch's labels (and the latest warm
    /// start) into the engine's cross-epoch state, and — when the log ends in
    /// an in-flight epoch — rebuilds that mid-flight session and returns it:
    /// driving it to completion produces the byte-identical outcome the dead
    /// process was heading for. Returns `Ok(None)` when the log holds no
    /// in-flight epoch (resume with [`ResolutionEngine::begin_resolve`] as
    /// usual).
    pub fn resume(&mut self, path: impl AsRef<Path>) -> Result<Option<ResolutionSession<'_>>> {
        let (wal, recovery) = WalWriter::recover(path)?;
        let obs = self.config.recorder.clone();
        obs.counter("session.wal.resumes", 1);
        // Fold the log: committed epochs land in the engine's label store and
        // warm state; a trailing uncommitted epoch stays open for rebuild.
        let mut open: Option<(u64, SessionConfig, Option<WarmStart>, Vec<LabelResponse>)> = None;
        for record in recovery.records {
            match record {
                WalRecord::SessionBegin { workload_len, config, warm } => {
                    if open.is_some() {
                        return Err(HumoError::Wal(
                            "log opens a session before committing the previous one".to_string(),
                        )
                        .into());
                    }
                    open = Some((workload_len, config, warm, Vec::new()));
                }
                WalRecord::Labels(responses) => match &mut open {
                    Some((.., log)) => log.extend(responses),
                    None => {
                        return Err(HumoError::Wal(
                            "log holds labels outside any session".to_string(),
                        )
                        .into())
                    }
                },
                WalRecord::Commit { warm } => {
                    let Some((.., log)) = open.take() else {
                        return Err(HumoError::Wal(
                            "log holds a commit outside any session".to_string(),
                        )
                        .into());
                    };
                    for response in log {
                        self.labels.insert(response.pair_id, response.label);
                    }
                    if let Some(warm) = warm {
                        self.warm = Some(warm);
                    }
                }
            }
        }
        self.wal = Some(wal);
        let Some((workload_len, config, warm, log)) = open else {
            return Ok(None);
        };
        if workload_len != self.workload.len() as u64 {
            return Err(HumoError::Wal(format!(
                "in-flight session ran over a {workload_len}-pair workload, \
                 engine holds {} pairs — re-ingest the same batches first",
                self.workload.len()
            ))
            .into());
        }
        let used_warm = warm.as_ref().is_some_and(|w| !w.is_empty());
        let fallback = matches!(config, SessionConfig::AllHuman);
        let mut state = SessionState::resume(config, &self.workload, &log)?.with_warm_start(warm);
        state
            .preload(self.labels.iter().map(|(&pair_id, &label)| LabelResponse { pair_id, label }));
        Ok(Some(ResolutionSession {
            engine: self,
            state,
            completed_rounds: 0,
            completed_plan_rounds: 0,
            completed_refine_rounds: 0,
            used_warm_start: used_warm,
            fallback_all_human: fallback,
            report: None,
        }))
    }

    /// The current similarity-sorted workload.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The accumulated left dataset.
    pub fn left(&self) -> &Dataset {
        &self.left
    }

    /// The accumulated right dataset.
    pub fn right(&self) -> &Dataset {
        &self.right
    }

    /// Total delta candidates produced so far (before threshold filtering).
    pub fn candidate_count(&self) -> usize {
        self.candidate_count
    }

    /// The incremental blocking index — exposes shard count and posting-spill
    /// state for observability.
    pub fn blocking_index(&self) -> &IncrementalTokenIndex {
        &self.index
    }

    /// The warm-start state captured by the latest resolution, if any.
    pub fn warm_state(&self) -> Option<&WarmStart> {
        self.warm.as_ref()
    }

    /// Ingests a batch of records: updates the blocking index, scores the delta
    /// candidates in parallel, and merges the surviving pairs into the
    /// workload.
    ///
    /// `truth_delta` carries the ground-truth match edges involving records of
    /// this batch (edges may reference records from earlier batches); it labels
    /// the new pairs and feeds the cluster-level evaluation.
    ///
    /// Ingestion is atomic with respect to validation: a batch with a
    /// schema-invalid record or a duplicate record id is rejected as a whole,
    /// leaving the engine untouched.
    pub fn ingest(
        &mut self,
        left_batch: Vec<Record>,
        right_batch: Vec<Record>,
        truth_delta: &[(RecordId, RecordId)],
    ) -> Result<IngestReport> {
        let obs = self.config.recorder.clone();
        let _ingest_span = obs.span("pipeline.ingest");
        // Pre-flight validation before any state is committed: a record that
        // entered the dataset but not the blocking index would silently miss
        // every future candidate pair involving it.
        for (dataset, batch) in [(&self.left, &left_batch), (&self.right, &right_batch)] {
            let mut batch_ids: BTreeSet<RecordId> = BTreeSet::new();
            for record in batch {
                record.validate(dataset.schema())?;
                if dataset.get(record.id()).is_some() || !batch_ids.insert(record.id()) {
                    return Err(PipelineError::Core(er_core::ErError::InvalidArgument(format!(
                        "duplicate record id {} in ingest batch for dataset '{}'",
                        record.id(),
                        dataset.name()
                    ))));
                }
            }
        }
        self.truth.extend(truth_delta.iter().copied());
        // Tokenize each record once: the memo feeds both the sharded blocking
        // probes and every token-based scoring measure below.
        self.cache.admit_left(&self.config.blocking_attribute, self.config.tokenizer, &left_batch);
        self.cache.admit_right(
            &self.config.blocking_attribute,
            self.config.tokenizer,
            &right_batch,
        );
        self.cache.admit_scoring(&self.config.scoring, &left_batch, &right_batch);
        let delta = {
            let _block_span = obs.span("ingest.block");
            self.index.add_records_with(&left_batch, &right_batch, &self.pool, Some(&self.cache))
        };
        let (left_records, right_records) = (left_batch.len(), right_batch.len());
        for record in left_batch {
            self.left.push(record)?;
        }
        for record in right_batch {
            self.right.push(record)?;
        }
        if obs.is_enabled() {
            // Chunk balance of the scoring fan-out: one observation per worker
            // chunk, so skew between workers shows up as histogram spread.
            for size in self.pool.chunk_sizes(delta.len()) {
                obs.observe("pool.chunk_pairs", size as f64);
            }
        }
        let score_span = obs.span("ingest.score");
        let scorer = PairScorer::new(&self.config.scoring, &[&self.left, &self.right])?;
        let similarities =
            self.pool.score_pairs_cached(&self.left, &self.right, &scorer, &self.cache, &delta)?;
        drop(score_span);
        let mut new_pairs = Vec::new();
        for (&(l, r), similarity) in delta.iter().zip(similarities) {
            if similarity < self.config.similarity_threshold {
                continue;
            }
            let label = Label::from_bool(self.truth.contains(&(l, r)));
            new_pairs.push(InstancePair::with_records(
                PairId(self.next_pair_id),
                l,
                r,
                similarity,
                label,
            ));
            self.next_pair_id += 1;
        }
        let retained = new_pairs.len();
        {
            let _merge_span = obs.span("ingest.merge");
            self.workload.insert_sorted(new_pairs)?;
        }
        self.candidate_count += delta.len();
        obs.counter("ingest.delta_candidates", delta.len() as u64);
        obs.counter("ingest.retained_pairs", retained as u64);
        if obs.is_enabled() {
            obs.gauge("spill.workload.resident_pairs", self.workload.resident_pairs() as f64);
            obs.gauge("spill.workload.spilled_pairs", self.workload.spilled_pairs() as f64);
        }
        Ok(IngestReport {
            left_records,
            right_records,
            delta_candidates: delta.len(),
            retained_pairs: retained,
            workload_len: self.workload.len(),
            scoring_threads: self.pool.threads(),
            resident_pairs: self.workload.resident_pairs(),
            spilled_pairs: self.workload.spilled_pairs(),
            spill: self.spill_report(),
        })
    }

    /// Cumulative out-of-core activity of the engine's workload and blocking
    /// index (always available; independent of any recorder).
    pub fn spill_report(&self) -> SpillReport {
        let stats = self.workload.spill_stats();
        SpillReport {
            segments_spilled: stats.segments_spilled,
            segments_loaded: stats.segments_loaded,
            bytes_spilled: stats.bytes_spilled,
            bytes_loaded: stats.bytes_loaded,
            cache_hits: stats.cache_hits,
            cache_misses: stats.cache_misses,
            cache_evictions: stats.cache_evictions,
            posting_generations_spilled: self.index.spilled_generations() as u64,
            posting_bytes_spilled: self.index.spilled_bytes(),
        }
    }

    /// Re-resolves the current workload: optimizes the HUMO partition (warm or
    /// cold), draws the human labels for `DH` from `oracle`, and clusters the
    /// match-labeled pairs into entities.
    ///
    /// Passing the *same* oracle across epochs models the streaming deployment:
    /// pairs labeled in earlier epochs are cached, so a re-resolution only pays
    /// for genuinely new questions.
    ///
    /// This is the synchronous driver over [`ResolutionEngine::begin_resolve`]:
    /// it answers every label batch the session emits through
    /// [`Oracle::label_batch`]. Systems whose labels arrive asynchronously
    /// should call [`ResolutionEngine::begin_resolve`] and drive the returned
    /// [`ResolutionSession`] themselves.
    pub fn resolve(&mut self, oracle: &mut dyn Oracle) -> Result<ResolutionReport> {
        let queries_before = oracle.labels_issued();
        let mut session = self.begin_resolve()?;
        let mut report = session.drive(oracle)?;
        // Oracle-driven cost accounting mirrors the pre-session engine: the
        // outcome counters are cumulative over the oracle's lifetime and the
        // per-resolution delta comes from the oracle's distinct-pair counter.
        report.oracle_queries = oracle.labels_issued() - queries_before;
        report.outcome.total_human_cost = oracle.labels_issued();
        report.outcome.sampling_cost =
            report.outcome.total_human_cost.saturating_sub(report.outcome.verification_cost);
        Ok(report)
    }

    /// Starts a sans-I/O resolution session over the current workload: the
    /// engine-side equivalent of [`humo::LabelingSession`], so resolution no
    /// longer requires a blocking oracle in hand.
    ///
    /// The session is seeded with every label the engine received in earlier
    /// epochs (they are never re-requested) and, when warm-starting is
    /// enabled, with the previous epoch's sampling observations. Workloads too
    /// small for the sampling optimizer fall back to an exact all-human
    /// session, and a statistical degeneracy mid-session (e.g. a GP fit
    /// collapsing on duplicate similarity coordinates) falls back the same way
    /// without losing any answered label. On completion the session commits
    /// its labels and warm-start state back to the engine.
    pub fn begin_resolve(&mut self) -> Result<ResolutionSession<'_>> {
        // Workloads with fewer than two subsets cannot drive the sampling
        // optimizer; resolving them entirely by hand is exact, deterministic
        // and — at this size — cheap.
        let too_small = self.workload.len() < 2 * self.config.optimizer.unit_size;
        let (mut state, session_config, warm, used_warm, fallback) = if too_small {
            (
                SessionState::new(SessionConfig::AllHuman)?,
                SessionConfig::AllHuman,
                None,
                false,
                true,
            )
        } else {
            let warm = if self.config.warm_start { self.warm.clone() } else { None };
            let used_warm = warm.as_ref().is_some_and(|w| !w.is_empty());
            let config = SessionConfig::PartialSampling(self.config.optimizer);
            let state = SessionState::new(config)?.with_warm_start(warm.clone());
            (state, config, warm, used_warm, false)
        };
        state
            .preload(self.labels.iter().map(|(&pair_id, &label)| LabelResponse { pair_id, label }));
        // Write-ahead: the epoch's inputs (configuration + warm start) go to
        // disk before any label does, so a resume always knows how to replay.
        self.wal_append(&WalRecord::SessionBegin {
            workload_len: self.workload.len() as u64,
            config: session_config,
            warm,
        })?;
        Ok(ResolutionSession {
            engine: self,
            state,
            completed_rounds: 0,
            completed_plan_rounds: 0,
            completed_refine_rounds: 0,
            used_warm_start: used_warm,
            fallback_all_human: fallback,
            report: None,
        })
    }

    /// All ingested records as cluster nodes (so unmatched records appear as
    /// singleton entities).
    fn all_nodes(&self) -> impl Iterator<Item = RecordKey> + '_ {
        self.left
            .iter()
            .map(|r| (Side::Left, r.id()))
            .chain(self.right.iter().map(|r| (Side::Right, r.id())))
    }

    /// The entities induced by an outcome's label assignment.
    fn entities_of(&self, outcome: &OptimizationOutcome) -> EntityClusters {
        let edges = self
            .workload
            .iter()
            .zip(outcome.assignment.labels())
            .filter(|(_, label)| label.is_match())
            .filter_map(|(pair, _)| {
                Some(((Side::Left, pair.left()?), (Side::Right, pair.right()?)))
            });
        EntityClusters::from_edges(self.all_nodes(), edges)
    }

    /// The ground-truth entities over all ingested records.
    fn truth_entities(&self) -> EntityClusters {
        let edges = self.truth.iter().map(|&(l, r)| ((Side::Left, l), (Side::Right, r)));
        EntityClusters::from_edges(self.all_nodes(), edges)
    }
}

/// What one [`ResolutionSession::step`] call produced.
#[derive(Debug, Clone)]
pub enum ResolutionStep {
    /// The session needs these labels before it can make further progress.
    /// Every batch contains only distinct, not-yet-answered pairs; the pair
    /// payloads are available via
    /// [`session.workload().pair(request.index)`](ResolutionSession::workload)
    /// (the session holds the engine borrow while it is alive).
    NeedLabels(Vec<LabelRequest>),
    /// The resolution finished with this report (labels and warm-start state
    /// are already committed back to the engine).
    Done(ResolutionReport),
}

/// A sans-I/O resolution session over a [`ResolutionEngine`]'s current
/// workload: emits batched label requests and is driven with responses, like
/// [`humo::LabelingSession`], but completes into a full [`ResolutionReport`]
/// (entities, cluster metrics, cost counters) and commits labels plus
/// warm-start state back to the engine.
#[derive(Debug)]
pub struct ResolutionSession<'e> {
    engine: &'e mut ResolutionEngine,
    state: SessionState,
    /// Dispatch waves of session states retired by the all-human fallback;
    /// the live count is `completed_rounds + state.rounds()`.
    completed_rounds: usize,
    /// Plan-stage share of `completed_rounds` (same retirement bookkeeping).
    completed_plan_rounds: usize,
    /// Refine-stage share of `completed_rounds`.
    completed_refine_rounds: usize,
    used_warm_start: bool,
    fallback_all_human: bool,
    /// The assembled report, cached at completion so repeated `step`/`drive`
    /// calls do not re-run the clustering and commit work.
    report: Option<ResolutionReport>,
}

impl ResolutionSession<'_> {
    /// The still-unanswered requests of the most recent batch.
    pub fn pending(&self) -> &[LabelRequest] {
        self.state.pending()
    }

    /// Number of distinct label dispatch waves emitted so far (label
    /// round-trips); re-emissions of a still-outstanding batch do not count.
    pub fn rounds(&self) -> usize {
        self.completed_rounds + self.state.rounds()
    }

    /// Plan-stage (sampling) share of [`ResolutionSession::rounds`].
    pub fn plan_rounds(&self) -> usize {
        self.completed_plan_rounds + self.state.plan_rounds()
    }

    /// Refine-stage (boundary search + verification) share of
    /// [`ResolutionSession::rounds`].
    pub fn refine_rounds(&self) -> usize {
        self.completed_refine_rounds + self.state.refine_rounds()
    }

    /// Whether the session fell back to exact all-human resolution (tiny or
    /// statistically degenerate workload).
    pub fn fallback_all_human(&self) -> bool {
        self.fallback_all_human
    }

    /// The distinct responses absorbed so far — the session's checkpoint log.
    pub fn answered_log(&self) -> &[LabelResponse] {
        self.state.answered_log()
    }

    /// Advances the session with the given responses: either emits the next
    /// batch of label requests or completes into a [`ResolutionReport`].
    ///
    /// Responses may cover any subset of any emitted batch; the session
    /// re-emits whatever is still missing. A statistical degeneracy inside the
    /// sampling optimizer switches the session to the exact all-human fallback
    /// *without* discarding answered labels.
    pub fn step(&mut self, responses: &[LabelResponse]) -> Result<ResolutionStep> {
        if let Some(report) = &self.report {
            return Ok(ResolutionStep::Done(report.clone()));
        }
        let obs = self.engine.config.recorder.clone();
        let _step_span = obs.span("resolve.step");
        let mut responses: Vec<LabelResponse> = responses.to_vec();
        // Labels re-absorbed after the all-human fallback below are already
        // on disk (they were appended when first absorbed), so the fallback
        // turn skips the write-ahead append.
        let mut log_to_wal = true;
        loop {
            // Write-ahead ordering: absorb (validate + dedup into the
            // answered log), persist the newly logged tail, then replay. A
            // crash after the append replays from a log that covers at least
            // everything this process ever acted on.
            let absorbed = self.state.absorb_responses(&self.engine.workload, &responses)?.to_vec();
            if log_to_wal && !absorbed.is_empty() {
                self.engine.wal_append(&WalRecord::Labels(absorbed))?;
            }
            match self.state.poll(&self.engine.workload) {
                Ok(Step::NeedLabels(requests)) => {
                    return Ok(ResolutionStep::NeedLabels(requests));
                }
                Ok(Step::Done(outcome)) => {
                    let report = self.complete(outcome)?;
                    self.report = Some(report.clone());
                    return Ok(ResolutionStep::Done(report));
                }
                // Statistical degeneracy (e.g. a workload whose subsets
                // collapse onto duplicate similarity coordinates and break the
                // GP fit) is a property of the data, so both an incremental
                // and a from-scratch run hit it identically; resolving by hand
                // is the exact, deterministic way out — and because a resumed
                // replay hits the same degeneracy at the same point, the WAL
                // needs no record of the switch. Real errors still propagate.
                // The fallback swaps in an all-human session and loops so the
                // fresh state's first step shares the handling above;
                // re-absorbing the labels already paid for keeps them counting
                // toward the session's cost.
                Err(humo::HumoError::Stats(_)) if !self.fallback_all_human => {
                    let log = self.state.answered_log().to_vec();
                    self.completed_rounds += self.state.rounds();
                    self.completed_plan_rounds += self.state.plan_rounds();
                    self.completed_refine_rounds += self.state.refine_rounds();
                    let mut state = SessionState::new(SessionConfig::AllHuman)?;
                    state.preload(
                        self.engine
                            .labels
                            .iter()
                            .map(|(&pair_id, &label)| LabelResponse { pair_id, label }),
                    );
                    self.state = state;
                    self.fallback_all_human = true;
                    self.used_warm_start = false;
                    responses = log;
                    log_to_wal = false;
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// The workload this session resolves — use it to read the full pair
    /// payloads behind emitted [`LabelRequest`]s while the session (which
    /// exclusively borrows the engine) is alive.
    pub fn workload(&self) -> &Workload {
        &self.engine.workload
    }

    /// Runs the session to completion against a synchronous [`Oracle`].
    pub fn drive(&mut self, oracle: &mut dyn Oracle) -> Result<ResolutionReport> {
        let mut responses: Vec<LabelResponse> = Vec::new();
        loop {
            match self.step(&responses)? {
                ResolutionStep::Done(report) => return Ok(report),
                ResolutionStep::NeedLabels(requests) => {
                    responses =
                        humo::session::answer_requests(&self.engine.workload, &requests, oracle);
                }
            }
        }
    }

    /// Commits a finished outcome back to the engine and assembles the report.
    fn complete(&mut self, outcome: OptimizationOutcome) -> Result<ResolutionReport> {
        // The commit record seals the epoch in the log *before* the engine
        // mutates its cross-epoch state, so a resumed engine either replays
        // the epoch (no commit on disk) or folds it in wholesale.
        self.engine
            .wal_append(&WalRecord::Commit { warm: self.state.next_warm_start().cloned() })?;
        for response in self.state.answered_log() {
            self.engine.labels.insert(response.pair_id, response.label);
        }
        if let Some(warm) = self.state.next_warm_start() {
            self.engine.warm = Some(warm.clone());
        }
        let entities = self.engine.entities_of(&outcome);
        let cluster_metrics = entities.pairwise_metrics(&self.engine.truth_entities());
        let obs = &self.engine.config.recorder;
        obs.counter("pipeline.epochs", 1);
        obs.counter("pipeline.label_rounds", self.rounds() as u64);
        Ok(ResolutionReport {
            oracle_queries: self.state.answered_log().len(),
            label_rounds: self.rounds(),
            plan_rounds: self.plan_rounds(),
            refine_rounds: self.refine_rounds(),
            outcome,
            entities,
            cluster_metrics,
            used_warm_start: self.used_warm_start,
            fallback_all_human: self.fallback_all_human,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::aggregate::{AttributeMeasure, AttributeWeighting};
    use er_core::similarity::StringMeasure;
    use er_datagen::bibliographic::{BibliographicConfig, BibliographicGenerator};
    use humo::GroundTruthOracle;

    fn config(unit_size: usize, warm_start: bool) -> PipelineConfig {
        let scoring = ScoringConfig::new(
            [
                ("title", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
                ("authors", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
            ],
            AttributeWeighting::Uniform,
        );
        let requirement = QualityRequirement::symmetric(0.9).unwrap();
        let mut config = PipelineConfig::new(scoring, "title", requirement);
        config.similarity_threshold = 0.15;
        config.optimizer.unit_size = unit_size;
        config.warm_start = warm_start;
        config
    }

    fn corpus(entities: usize, seed: u64) -> er_datagen::bibliographic::GeneratedCorpus {
        BibliographicGenerator::new(BibliographicConfig {
            num_entities: entities,
            duplicate_probability: 0.6,
            extra_right_entities: entities / 2,
            corruption: 0.3,
            seed,
        })
        .generate()
    }

    #[test]
    fn rejects_invalid_configuration() {
        let mut bad = config(25, true);
        bad.similarity_threshold = f64::NAN;
        let schema = BibliographicGenerator::schema();
        assert!(ResolutionEngine::new(bad, schema.clone(), schema.clone()).is_err());
        let mut bad = config(0, true);
        bad.similarity_threshold = 0.2;
        assert!(ResolutionEngine::new(bad, schema.clone(), schema).is_err());
    }

    #[test]
    fn invalid_batches_are_rejected_atomically() {
        let schema = BibliographicGenerator::schema();
        let mut engine = ResolutionEngine::new(config(25, true), schema.clone(), schema).unwrap();
        let good = Record::new(RecordId(1)).with("title", "entity resolution");
        // A batch whose second record duplicates the first's id is rejected as a
        // whole: no record may enter the dataset without entering the index.
        let duplicate_within_batch =
            vec![good.clone(), Record::new(RecordId(1)).with("title", "other")];
        assert!(engine.ingest(duplicate_within_batch, Vec::new(), &[]).is_err());
        assert_eq!(engine.left().len(), 0);
        assert_eq!(engine.candidate_count(), 0);
        // Same for a schema-invalid record after a valid one.
        let bad_schema = vec![good.clone(), Record::new(RecordId(2)).with("undeclared", "x")];
        assert!(engine.ingest(bad_schema, Vec::new(), &[]).is_err());
        assert_eq!(engine.left().len(), 0);
        // The engine still works afterwards, and re-ingesting an existing id
        // fails without committing the batch.
        engine.ingest(vec![good.clone()], Vec::new(), &[]).unwrap();
        assert_eq!(engine.left().len(), 1);
        assert!(engine.ingest(vec![good], Vec::new(), &[]).is_err());
        assert_eq!(engine.left().len(), 1);
    }

    #[test]
    fn empty_engine_resolves_to_nothing() {
        let schema = BibliographicGenerator::schema();
        let mut engine = ResolutionEngine::new(config(25, true), schema.clone(), schema).unwrap();
        let mut oracle = GroundTruthOracle::new();
        let report = engine.resolve(&mut oracle).unwrap();
        assert_eq!(report.oracle_queries, 0);
        assert!(report.entities.is_empty());
        assert!(report.fallback_all_human);
    }

    #[test]
    fn streaming_ingest_builds_a_growing_workload_and_entities() {
        let corpus = corpus(120, 11);
        let schema = BibliographicGenerator::schema();
        let mut engine = ResolutionEngine::new(config(25, true), schema.clone(), schema).unwrap();
        let truth: Vec<(RecordId, RecordId)> = corpus.ground_truth.iter().copied().collect();
        let mut oracle = GroundTruthOracle::new();
        let halves_l = corpus.left.records().split_at(corpus.left.len() / 2);
        let halves_r = corpus.right.records().split_at(corpus.right.len() / 2);
        let first = engine.ingest(halves_l.0.to_vec(), halves_r.0.to_vec(), &truth).unwrap();
        assert!(first.delta_candidates > 0);
        assert!(first.retained_pairs <= first.delta_candidates);
        let len_after_first = engine.workload().len();
        let second = engine.ingest(halves_l.1.to_vec(), halves_r.1.to_vec(), &[]).unwrap();
        assert!(second.workload_len >= len_after_first);
        assert_eq!(engine.candidate_count(), first.delta_candidates + second.delta_candidates);
        let report = engine.resolve(&mut oracle).unwrap();
        assert!(report.oracle_queries > 0);
        assert!(report.entities.non_singleton_count() > 0);
        assert!(report.cluster_metrics.precision() > 0.5);
        assert!(report.cluster_metrics.recall() > 0.5);
        // The pair-level metrics ride along unchanged.
        assert!(report.outcome.metrics.f1() > 0.5);
    }

    #[test]
    fn crowd_oracle_fixed1_zero_noise_resolves_identically() {
        use humo::{symmetric_pool, Aggregation, CrowdOracle, Redundancy};
        let corpus = corpus(120, 23);
        let schema = BibliographicGenerator::schema();
        let truth: Vec<(RecordId, RecordId)> = corpus.ground_truth.iter().copied().collect();

        let run = |oracle: &mut dyn Oracle| {
            let mut engine =
                ResolutionEngine::new(config(25, false), schema.clone(), schema.clone()).unwrap();
            engine
                .ingest(corpus.left.records().to_vec(), corpus.right.records().to_vec(), &truth)
                .unwrap();
            engine.resolve(oracle).unwrap()
        };
        let mut ground_truth = GroundTruthOracle::new();
        let truth_report = run(&mut ground_truth);
        let mut crowd = CrowdOracle::new(
            symmetric_pool(5, 0.0, 41),
            Redundancy::Fixed(1),
            Aggregation::Majority,
            7,
        );
        let crowd_report = run(&mut crowd);

        assert_eq!(crowd_report.outcome.assignment, truth_report.outcome.assignment);
        assert_eq!(crowd_report.entities, truth_report.entities);
        assert_eq!(crowd_report.oracle_queries, truth_report.oracle_queries);
        assert_eq!(crowd.labels_issued(), ground_truth.labels_issued());
        assert_eq!(crowd.votes_cast(), crowd.labels_issued() as u64, "Fixed(1) = one vote/label");
    }

    #[test]
    fn session_resolution_matches_oracle_resolution_and_reuses_labels() {
        let corpus = corpus(150, 17);
        let schema = BibliographicGenerator::schema();
        let truth: Vec<(RecordId, RecordId)> = corpus.ground_truth.iter().copied().collect();
        let all_left = corpus.left.records().to_vec();
        let all_right = corpus.right.records().to_vec();

        // Engine A: classic oracle-driven resolution.
        let mut a =
            ResolutionEngine::new(config(25, true), schema.clone(), schema.clone()).unwrap();
        let mut oracle = GroundTruthOracle::new();
        a.ingest(all_left.clone(), all_right.clone(), &truth).unwrap();
        let oracle_report = a.resolve(&mut oracle).unwrap();

        // Engine B: the same resolution driven by hand through the session,
        // reading pair payloads through the session's workload accessor.
        let mut b = ResolutionEngine::new(config(25, true), schema.clone(), schema).unwrap();
        b.ingest(all_left, all_right, &truth).unwrap();
        let mut session = b.begin_resolve().unwrap();
        let mut responses = Vec::new();
        let report = loop {
            match session.step(&responses).unwrap() {
                ResolutionStep::Done(report) => break report,
                ResolutionStep::NeedLabels(requests) => {
                    let workload = session.workload();
                    responses = requests
                        .iter()
                        .map(|request| LabelResponse {
                            pair_id: request.pair_id,
                            label: workload.pair(request.index).ground_truth(),
                        })
                        .collect();
                }
            }
        };
        assert_eq!(report.outcome.solution, oracle_report.outcome.solution);
        assert_eq!(report.outcome.assignment, oracle_report.outcome.assignment);
        assert_eq!(report.oracle_queries, oracle_report.oracle_queries);
        assert!(report.label_rounds > 0);

        // A re-resolution on the same engine starts from the engine's label
        // store plus the warm start, so it costs strictly less than the first.
        let mut again = b.begin_resolve().unwrap();
        let mut oracle = GroundTruthOracle::new();
        let second = again.drive(&mut oracle).unwrap();
        assert!(
            second.oracle_queries < report.oracle_queries,
            "re-resolution should reuse the label store ({} vs {})",
            second.oracle_queries,
            report.oracle_queries
        );
    }

    #[test]
    fn warm_resolutions_cost_fewer_queries_than_cold_restarts() {
        let corpus = corpus(400, 13);
        let schema = BibliographicGenerator::schema();
        let truth: Vec<(RecordId, RecordId)> = corpus.ground_truth.iter().copied().collect();
        // Warm engine: ingest in two batches, resolving after each.
        let mut warm_engine =
            ResolutionEngine::new(config(25, true), schema.clone(), schema.clone()).unwrap();
        let mut warm_oracle = GroundTruthOracle::new();
        let (l1, l2) = corpus.left.records().split_at(corpus.left.len() * 2 / 3);
        let (r1, r2) = corpus.right.records().split_at(corpus.right.len() * 2 / 3);
        warm_engine.ingest(l1.to_vec(), r1.to_vec(), &truth).unwrap();
        warm_engine.resolve(&mut warm_oracle).unwrap();
        warm_engine.ingest(l2.to_vec(), r2.to_vec(), &[]).unwrap();
        let warm_report = warm_engine.resolve(&mut warm_oracle).unwrap();
        assert!(warm_report.used_warm_start);
        // From-scratch engine over the same final records, fresh oracle.
        let mut cold_engine =
            ResolutionEngine::new(config(25, false), schema.clone(), schema).unwrap();
        let mut cold_oracle = GroundTruthOracle::new();
        cold_engine
            .ingest(corpus.left.records().to_vec(), corpus.right.records().to_vec(), &truth)
            .unwrap();
        let cold_report = cold_engine.resolve(&mut cold_oracle).unwrap();
        assert!(!cold_report.used_warm_start);
        assert!(
            warm_report.oracle_queries < cold_report.oracle_queries,
            "incremental re-resolution used {} queries, from-scratch used {}",
            warm_report.oracle_queries,
            cold_report.oracle_queries
        );
    }

    fn wal_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(".er-pipeline-wal-test-{}-{name}", std::process::id()))
    }

    fn answer(
        session: &ResolutionSession<'_>,
        requests: &[humo::LabelRequest],
    ) -> Vec<LabelResponse> {
        let workload = session.workload();
        requests
            .iter()
            .map(|request| LabelResponse {
                pair_id: request.pair_id,
                label: workload.pair(request.index).ground_truth(),
            })
            .collect()
    }

    #[test]
    fn wal_resume_mid_epoch_reproduces_the_uninterrupted_outcome() {
        let corpus = corpus(150, 23);
        let schema = BibliographicGenerator::schema();
        let truth: Vec<(RecordId, RecordId)> = corpus.ground_truth.iter().copied().collect();
        let all_left = corpus.left.records().to_vec();
        let all_right = corpus.right.records().to_vec();
        let path = wal_path("mid-epoch");

        // Reference run: no WAL, driven to completion.
        let mut reference =
            ResolutionEngine::new(config(25, true), schema.clone(), schema.clone()).unwrap();
        reference.ingest(all_left.clone(), all_right.clone(), &truth).unwrap();
        let mut oracle = GroundTruthOracle::new();
        let reference_report = reference.resolve(&mut oracle).unwrap();

        // Crashing run: WAL attached, abandoned after two label rounds. The
        // engine is dropped with the session in flight; only the log survives.
        let mut crashed =
            ResolutionEngine::new(config(25, true), schema.clone(), schema.clone()).unwrap();
        crashed.ingest(all_left.clone(), all_right.clone(), &truth).unwrap();
        crashed.attach_wal(&path).unwrap();
        {
            let mut session = crashed.begin_resolve().unwrap();
            let mut responses = Vec::new();
            for _ in 0..2 {
                match session.step(&responses).unwrap() {
                    ResolutionStep::Done(_) => {
                        panic!("session finished before the simulated crash")
                    }
                    ResolutionStep::NeedLabels(requests) => {
                        responses = answer(&session, &requests);
                    }
                }
            }
        }
        drop(crashed);

        // Resume in a fresh engine over the same ingested batches and finish.
        let mut resumed = ResolutionEngine::new(config(25, true), schema.clone(), schema).unwrap();
        resumed.ingest(all_left, all_right, &truth).unwrap();
        let mut session = resumed.resume(&path).unwrap().expect("log holds an in-flight epoch");
        let mut responses = Vec::new();
        let report = loop {
            match session.step(&responses).unwrap() {
                ResolutionStep::Done(report) => break report,
                ResolutionStep::NeedLabels(requests) => {
                    responses = answer(&session, &requests);
                }
            }
        };
        assert_eq!(report.outcome.solution, reference_report.outcome.solution);
        assert_eq!(report.outcome.assignment, reference_report.outcome.assignment);
        assert_eq!(report.oracle_queries, reference_report.oracle_queries);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wal_resume_after_commit_folds_labels_and_warm_state_into_the_engine() {
        let corpus = corpus(150, 29);
        let schema = BibliographicGenerator::schema();
        let truth: Vec<(RecordId, RecordId)> = corpus.ground_truth.iter().copied().collect();
        let all_left = corpus.left.records().to_vec();
        let all_right = corpus.right.records().to_vec();
        let path = wal_path("committed");

        let mut first =
            ResolutionEngine::new(config(25, true), schema.clone(), schema.clone()).unwrap();
        first.ingest(all_left.clone(), all_right.clone(), &truth).unwrap();
        first.attach_wal(&path).unwrap();
        let mut oracle = GroundTruthOracle::new();
        let first_report = first.resolve(&mut oracle).unwrap();
        drop(first);

        // The committed epoch folds into a fresh engine without an in-flight
        // session, so a re-resolution pays only the incremental cost — same
        // behaviour as the engine that never crashed.
        let mut resumed = ResolutionEngine::new(config(25, true), schema.clone(), schema).unwrap();
        resumed.ingest(all_left, all_right, &truth).unwrap();
        assert!(resumed.resume(&path).unwrap().is_none());
        assert!(resumed.has_wal());
        let mut oracle = GroundTruthOracle::new();
        let second = resumed.resolve(&mut oracle).unwrap();
        assert!(second.used_warm_start);
        assert!(
            second.oracle_queries < first_report.oracle_queries,
            "resumed engine should reuse the committed label store ({} vs {})",
            second.oracle_queries,
            first_report.oracle_queries
        );
        std::fs::remove_file(&path).unwrap();
    }
}
