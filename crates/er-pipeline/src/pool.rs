//! A hand-rolled `std::thread` worker pool for chunk-sharded scoring.
//!
//! The build environment is offline (no `rayon`), so parallel pair scoring is
//! implemented directly on scoped threads: the input slice is split into one
//! contiguous chunk per worker, each worker maps its chunk independently, and
//! the per-chunk outputs are concatenated in order. Results are therefore
//! deterministic and identical to the sequential map regardless of the thread
//! count — parallelism changes wall-clock time, never values.
//!
//! Chunks are *balanced*: the remaining work is re-divided at every split so
//! chunk sizes differ by at most one. (The obvious `div_ceil` stride can leave
//! the last worker nearly idle — 10 items over 4 workers strides as 3/3/3/1
//! instead of 3/3/2/2 — which wastes a worker slot on every uneven input.)
//!
//! The pool also implements [`er_core::parallel::ParallelExecutor`], so it can
//! drive the per-shard candidate generation of
//! [`er_core::blocking::IncrementalTokenIndex`] without `er-core` depending on
//! any threading machinery.

use crate::Result;
use er_core::aggregate::{PairScorer, TokenCache};
use er_core::parallel::ParallelExecutor;
use er_core::record::{Dataset, RecordId};

/// A fixed-width pool of scoped worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

/// Splits `len` items over `workers` contiguous chunks whose sizes differ by
/// at most one, largest first. Sizes are computed by re-dividing the remaining
/// work: chunk `w` gets `ceil(remaining / workers_left)` items.
fn balanced_chunk_sizes(len: usize, workers: usize) -> Vec<usize> {
    let workers = workers.max(1).min(len.max(1));
    let mut sizes = Vec::with_capacity(workers);
    let mut start = 0;
    for w in 0..workers {
        let size = (len - start).div_ceil(workers - w);
        sizes.push(size);
        start += size;
    }
    debug_assert_eq!(start, len);
    sizes
}

impl WorkerPool {
    /// Creates a pool with the given number of workers; `0` selects the
    /// machine's available parallelism.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            threads
        };
        Self { threads }
    }

    /// Number of worker threads the pool uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The chunk sizes this pool would split `len` items into — the balance
    /// the engine records as the `pool.chunk_pairs` histogram.
    pub fn chunk_sizes(&self, len: usize) -> Vec<usize> {
        balanced_chunk_sizes(len, self.threads)
    }

    /// Maps `f` over `items` on the pool, preserving input order.
    ///
    /// The slice is sharded into one balanced contiguous chunk per worker;
    /// with one thread (or a trivially small input) the map runs inline
    /// without spawning.
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        if self.threads <= 1 || items.len() < 2 {
            return items.iter().map(&f).collect();
        }
        let mut results: Vec<Vec<U>> = Vec::with_capacity(self.threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.threads);
            let mut rest = items;
            for size in balanced_chunk_sizes(items.len(), self.threads) {
                let (shard, tail) = rest.split_at(size);
                rest = tail;
                let f = &f;
                handles.push(scope.spawn(move || shard.iter().map(f).collect::<Vec<U>>()));
            }
            for handle in handles {
                results.push(handle.join().expect("scoring worker panicked"));
            }
        });
        results.into_iter().flatten().collect()
    }

    /// Scores candidate record pairs in parallel, returning one similarity per
    /// pair in input order.
    pub fn score_pairs(
        &self,
        left: &Dataset,
        right: &Dataset,
        scorer: &PairScorer,
        pairs: &[(RecordId, RecordId)],
    ) -> Result<Vec<f64>> {
        let scored = self.map(pairs, |&(l, r)| -> er_core::Result<f64> {
            Ok(scorer.score(left.require(l)?, right.require(r)?))
        });
        let mut similarities = Vec::with_capacity(scored.len());
        for s in scored {
            similarities.push(s?);
        }
        Ok(similarities)
    }

    /// [`score_pairs`](WorkerPool::score_pairs) reading record token sets from
    /// `cache` where admitted, so repeated scoring passes skip re-tokenizing.
    /// Bit-identical to the uncached path for any cache state.
    pub fn score_pairs_cached(
        &self,
        left: &Dataset,
        right: &Dataset,
        scorer: &PairScorer,
        cache: &TokenCache,
        pairs: &[(RecordId, RecordId)],
    ) -> Result<Vec<f64>> {
        let scored = self.map(pairs, |&(l, r)| -> er_core::Result<f64> {
            Ok(scorer.score_with_cache(left.require(l)?, right.require(r)?, cache))
        });
        let mut similarities = Vec::with_capacity(scored.len());
        for s in scored {
            similarities.push(s?);
        }
        Ok(similarities)
    }
}

impl ParallelExecutor for WorkerPool {
    fn map_mut<T, U, F>(&self, items: &mut [T], f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, &mut T) -> U + Sync,
    {
        if self.threads <= 1 || items.len() < 2 {
            return items.iter_mut().enumerate().map(|(i, item)| f(i, item)).collect();
        }
        let len = items.len();
        let mut results: Vec<Vec<U>> = Vec::with_capacity(self.threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.threads);
            let mut rest = items;
            let mut base = 0;
            for size in balanced_chunk_sizes(len, self.threads) {
                let (shard, tail) = rest.split_at_mut(size);
                rest = tail;
                let f = &f;
                let start = base;
                base += size;
                handles.push(scope.spawn(move || {
                    shard
                        .iter_mut()
                        .enumerate()
                        .map(|(i, item)| f(start + i, item))
                        .collect::<Vec<U>>()
                }));
            }
            for handle in handles {
                results.push(handle.join().expect("executor worker panicked"));
            }
        });
        results.into_iter().flatten().collect()
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::aggregate::{AttributeMeasure, AttributeWeighting, ScoringConfig};
    use er_core::record::{Record, Schema};
    use er_core::similarity::StringMeasure;
    use er_core::text::Tokenizer;

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let pool = WorkerPool::new(0);
        assert!(pool.threads() >= 1);
        assert_eq!(WorkerPool::new(3).threads(), 3);
    }

    #[test]
    fn chunk_sizes_are_balanced_and_cover_the_input() {
        for len in [0usize, 1, 2, 7, 10, 64, 1_003] {
            for workers in [1usize, 2, 3, 4, 7, 16, 64] {
                let sizes = balanced_chunk_sizes(len, workers);
                assert_eq!(sizes.iter().sum::<usize>(), len, "len {len} workers {workers}");
                assert!(sizes.len() <= workers);
                if len > 0 {
                    let max = *sizes.iter().max().unwrap();
                    let min = *sizes.iter().min().unwrap();
                    assert!(max - min <= 1, "len {len} workers {workers}: spread {max}-{min} > 1");
                }
            }
        }
        // The regression this fixes: a fixed div_ceil stride gives 3/3/3/1.
        assert_eq!(balanced_chunk_sizes(10, 4), vec![3, 3, 2, 2]);
    }

    #[test]
    fn map_preserves_order_for_any_thread_count() {
        let items: Vec<u64> = (0..1_003).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let pool = WorkerPool::new(threads);
            assert_eq!(pool.map(&items, |&x| x * x), expected, "threads = {threads}");
        }
        // Inputs smaller than the worker count still work.
        assert_eq!(WorkerPool::new(16).map(&[7u64], |&x| x + 1), vec![8]);
        assert_eq!(WorkerPool::new(4).map(&[] as &[u64], |&x| x), Vec::<u64>::new());
    }

    #[test]
    fn map_mut_mutates_in_place_and_preserves_order() {
        let expected_out: Vec<usize> = (0..101).map(|i| i * 2).collect();
        let expected_items: Vec<u64> = (1..102).collect();
        for threads in [1, 2, 3, 8, 64] {
            let pool = WorkerPool::new(threads);
            let mut items: Vec<u64> = (0..101).collect();
            let out = pool.map_mut(&mut items, |i, item| {
                *item += 1;
                i * 2
            });
            assert_eq!(out, expected_out, "threads = {threads}");
            assert_eq!(items, expected_items, "threads = {threads}");
        }
    }

    fn dataset(name: &str, titles: &[(u64, &str)]) -> Dataset {
        let mut ds = Dataset::new(name, Schema::new(["title"]));
        for &(id, title) in titles {
            ds.push(Record::new(RecordId(id)).with("title", title)).unwrap();
        }
        ds
    }

    #[test]
    fn parallel_scoring_matches_sequential_scoring() {
        let left = dataset("l", &[(1, "entity resolution"), (2, "graph systems")]);
        let right =
            dataset("r", &[(10, "entity resolution"), (11, "stream systems"), (12, "databases")]);
        let config = ScoringConfig::new(
            [("title", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words)))],
            AttributeWeighting::Uniform,
        );
        let scorer = PairScorer::new(&config, &[&left, &right]).unwrap();
        let pairs: Vec<(RecordId, RecordId)> =
            left.iter().flat_map(|a| right.iter().map(move |b| (a.id(), b.id()))).collect();
        let sequential = WorkerPool::new(1).score_pairs(&left, &right, &scorer, &pairs).unwrap();
        for threads in [2, 4] {
            let parallel =
                WorkerPool::new(threads).score_pairs(&left, &right, &scorer, &pairs).unwrap();
            assert_eq!(sequential, parallel);
        }
        assert!((sequential[0] - 1.0).abs() < 1e-12);
        // Cached scoring is bit-identical, warm or cold.
        let mut cache = TokenCache::new();
        cache.admit_left("title", Tokenizer::Words, left.records());
        cache.admit_right("title", Tokenizer::Words, right.records());
        for threads in [1, 2, 4] {
            let cached = WorkerPool::new(threads)
                .score_pairs_cached(&left, &right, &scorer, &cache, &pairs)
                .unwrap();
            assert_eq!(sequential, cached);
        }
    }

    #[test]
    fn score_pairs_propagates_unknown_record_errors() {
        let left = dataset("l", &[(1, "x")]);
        let right = dataset("r", &[(10, "x")]);
        let config = ScoringConfig::new(
            [("title", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words)))],
            AttributeWeighting::Uniform,
        );
        let scorer = PairScorer::new(&config, &[&left, &right]).unwrap();
        let bogus = vec![(RecordId(1), RecordId(10)), (RecordId(99), RecordId(10))];
        assert!(WorkerPool::new(2).score_pairs(&left, &right, &scorer, &bogus).is_err());
    }
}
