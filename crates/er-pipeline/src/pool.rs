//! A hand-rolled `std::thread` worker pool for chunk-sharded scoring.
//!
//! The build environment is offline (no `rayon`), so parallel pair scoring is
//! implemented directly on scoped threads: the input slice is split into one
//! contiguous chunk per worker, each worker maps its chunk independently, and
//! the per-chunk outputs are concatenated in order. Results are therefore
//! deterministic and identical to the sequential map regardless of the thread
//! count — parallelism changes wall-clock time, never values.

use crate::Result;
use er_core::aggregate::PairScorer;
use er_core::record::{Dataset, RecordId};

/// A fixed-width pool of scoped worker threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    threads: usize,
}

impl WorkerPool {
    /// Creates a pool with the given number of workers; `0` selects the
    /// machine's available parallelism.
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        } else {
            threads
        };
        Self { threads }
    }

    /// Number of worker threads the pool uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `items` on the pool, preserving input order.
    ///
    /// The slice is sharded into one contiguous chunk per worker; with one
    /// thread (or a trivially small input) the map runs inline without
    /// spawning.
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        if self.threads <= 1 || items.len() < 2 {
            return items.iter().map(&f).collect();
        }
        let workers = self.threads.min(items.len());
        let chunk_size = items.len().div_ceil(workers);
        let mut results: Vec<Vec<U>> = Vec::with_capacity(workers);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for shard in items.chunks(chunk_size) {
                let f = &f;
                handles.push(scope.spawn(move || shard.iter().map(f).collect::<Vec<U>>()));
            }
            for handle in handles {
                results.push(handle.join().expect("scoring worker panicked"));
            }
        });
        results.into_iter().flatten().collect()
    }

    /// Scores candidate record pairs in parallel, returning one similarity per
    /// pair in input order.
    pub fn score_pairs(
        &self,
        left: &Dataset,
        right: &Dataset,
        scorer: &PairScorer,
        pairs: &[(RecordId, RecordId)],
    ) -> Result<Vec<f64>> {
        let scored = self.map(pairs, |&(l, r)| -> er_core::Result<f64> {
            Ok(scorer.score(left.require(l)?, right.require(r)?))
        });
        let mut similarities = Vec::with_capacity(scored.len());
        for s in scored {
            similarities.push(s?);
        }
        Ok(similarities)
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::aggregate::{AttributeMeasure, AttributeWeighting, ScoringConfig};
    use er_core::record::{Record, Schema};
    use er_core::similarity::StringMeasure;
    use er_core::text::Tokenizer;

    #[test]
    fn zero_threads_resolves_to_available_parallelism() {
        let pool = WorkerPool::new(0);
        assert!(pool.threads() >= 1);
        assert_eq!(WorkerPool::new(3).threads(), 3);
    }

    #[test]
    fn map_preserves_order_for_any_thread_count() {
        let items: Vec<u64> = (0..1_003).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 64] {
            let pool = WorkerPool::new(threads);
            assert_eq!(pool.map(&items, |&x| x * x), expected, "threads = {threads}");
        }
        // Inputs smaller than the worker count still work.
        assert_eq!(WorkerPool::new(16).map(&[7u64], |&x| x + 1), vec![8]);
        assert_eq!(WorkerPool::new(4).map(&[] as &[u64], |&x| x), Vec::<u64>::new());
    }

    fn dataset(name: &str, titles: &[(u64, &str)]) -> Dataset {
        let mut ds = Dataset::new(name, Schema::new(["title"]));
        for &(id, title) in titles {
            ds.push(Record::new(RecordId(id)).with("title", title)).unwrap();
        }
        ds
    }

    #[test]
    fn parallel_scoring_matches_sequential_scoring() {
        let left = dataset("l", &[(1, "entity resolution"), (2, "graph systems")]);
        let right =
            dataset("r", &[(10, "entity resolution"), (11, "stream systems"), (12, "databases")]);
        let config = ScoringConfig::new(
            [("title", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words)))],
            AttributeWeighting::Uniform,
        );
        let scorer = PairScorer::new(&config, &[&left, &right]).unwrap();
        let pairs: Vec<(RecordId, RecordId)> =
            left.iter().flat_map(|a| right.iter().map(move |b| (a.id(), b.id()))).collect();
        let sequential = WorkerPool::new(1).score_pairs(&left, &right, &scorer, &pairs).unwrap();
        for threads in [2, 4] {
            let parallel =
                WorkerPool::new(threads).score_pairs(&left, &right, &scorer, &pairs).unwrap();
            assert_eq!(sequential, parallel);
        }
        assert!((sequential[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn score_pairs_propagates_unknown_record_errors() {
        let left = dataset("l", &[(1, "x")]);
        let right = dataset("r", &[(10, "x")]);
        let config = ScoringConfig::new(
            [("title", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words)))],
            AttributeWeighting::Uniform,
        );
        let scorer = PairScorer::new(&config, &[&left, &right]).unwrap();
        let bogus = vec![(RecordId(1), RecordId(10)), (RecordId(99), RecordId(10))];
        assert!(WorkerPool::new(2).score_pairs(&left, &right, &scorer, &bogus).is_err());
    }
}
