//! `er-pipeline` — a streaming, parallel, end-to-end entity-resolution engine
//! on top of the HUMO reproduction.
//!
//! The paper frames HUMO as a one-shot batch optimization over a fixed,
//! similarity-ordered workload. A production resolution system is a *process*:
//! records arrive over time, candidate pairs must be maintained incrementally,
//! scoring must use all cores, and pair labels must be turned into actual
//! entities. This crate supplies that missing machinery:
//!
//! * [`engine::ResolutionEngine`] — ingest record batches through `er-core`'s
//!   hash-sharded incremental blocking index (per-shard candidate deltas fan
//!   out over the worker pool), score only the delta candidate pairs — with
//!   per-record token sets memoized once at ingest
//!   ([`er_core::aggregate::TokenCache`]) — and maintain the
//!   similarity-sorted workload under insertion (`Workload::insert_sorted`);
//! * [`pool::WorkerPool`] — a hand-rolled `std::thread` chunk-sharded map used
//!   for parallel pair scoring (the environment is offline, so no `rayon`),
//!   with balanced chunk sizes and an
//!   [`er_core::parallel::ParallelExecutor`] implementation so `er-core`'s
//!   sharded blocking can borrow the pool without a dependency cycle;
//! * out-of-core operation — [`engine::PipelineConfig::memory_budget`] caps
//!   resident workload pairs and posting-list entries; past the budget, cold
//!   workload segments and frozen posting generations overflow into
//!   `er-core`'s spill store ([`er_core::spill`]) with **byte-identical**
//!   resolution results (residency never affects computed values);
//! * warm-started re-optimization — each resolution epoch seeds the SAMP
//!   optimizer from the previous epoch's samples
//!   ([`humo::sampling::WarmStart`]), so incremental re-resolution costs far
//!   less human budget than starting from scratch;
//! * [`cluster::EntityClusters`] — union-find transitive closure of
//!   match-labeled pairs into entities, with cluster-level pairwise
//!   precision/recall alongside the existing pair-level metrics;
//! * sans-I/O resolution sessions — [`ResolutionEngine::begin_resolve`]
//!   returns a [`ResolutionSession`] that emits batched label requests and is
//!   driven with responses (the engine-side twin of
//!   [`humo::LabelingSession`]), so resolution does not require a blocking
//!   oracle in hand: labels can come from crowdsourcing dispatch, labeling
//!   UIs, or a checkpoint/resume loop, and the engine's label store keeps
//!   later epochs from re-asking answered pairs.
//!
//! See the `streaming_dedup` example (crate `integration`) for an end-to-end
//! batch-arrival walkthrough and the `pipeline_throughput` bench binary for
//! ingest/resolve throughput, parallel speedup and warm-start savings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod engine;
pub mod error;
pub mod pool;

pub use cluster::{EntityClusters, RecordKey, Side, UnionFind};
pub use engine::{
    IngestReport, PipelineConfig, ResolutionEngine, ResolutionReport, ResolutionSession,
    ResolutionStep, SpillReport,
};
pub use error::PipelineError;
pub use pool::WorkerPool;

/// Convenience result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, PipelineError>;
