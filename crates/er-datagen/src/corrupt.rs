//! Textual corruption utilities for record-level dataset generation.
//!
//! Duplicate records in real ER benchmarks differ from their originals through
//! typos, dropped or abbreviated tokens and truncation. These helpers inject the
//! same classes of noise in a controlled, seeded way so the generated corpora
//! produce realistic similarity distributions.

use crate::rng::{bernoulli, choice};
use rand::Rng;

/// Injects a single character-level typo (substitution, swap, deletion or
/// duplication) at a random position. Strings shorter than two characters are
/// returned unchanged.
pub fn typo<R: Rng + ?Sized>(rng: &mut R, input: &str) -> String {
    let chars: Vec<char> = input.chars().collect();
    if chars.len() < 2 {
        return input.to_string();
    }
    let pos = rng.gen_range(0..chars.len());
    let mut out = chars.clone();
    match rng.gen_range(0..4) {
        0 => {
            // Substitution with a nearby lowercase letter.
            let replacement = (b'a' + rng.gen_range(0..26)) as char;
            out[pos] = replacement;
        }
        1 => {
            // Adjacent swap.
            if pos + 1 < out.len() {
                out.swap(pos, pos + 1);
            } else {
                out.swap(pos - 1, pos);
            }
        }
        2 => {
            // Deletion.
            out.remove(pos);
        }
        _ => {
            // Duplication.
            let c = out[pos];
            out.insert(pos, c);
        }
    }
    out.into_iter().collect()
}

/// Drops one whitespace-delimited token at random. Single-token strings are
/// returned unchanged.
pub fn drop_token<R: Rng + ?Sized>(rng: &mut R, input: &str) -> String {
    let tokens: Vec<&str> = input.split_whitespace().collect();
    if tokens.len() < 2 {
        return input.to_string();
    }
    let drop = rng.gen_range(0..tokens.len());
    tokens
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != drop)
        .map(|(_, t)| *t)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Abbreviates one random token to its first letter followed by a period
/// ("proceedings" → "p."), mimicking venue and first-name abbreviations.
pub fn abbreviate_token<R: Rng + ?Sized>(rng: &mut R, input: &str) -> String {
    let tokens: Vec<&str> = input.split_whitespace().collect();
    if tokens.is_empty() {
        return input.to_string();
    }
    let idx = rng.gen_range(0..tokens.len());
    tokens
        .iter()
        .enumerate()
        .map(|(i, t)| {
            if i == idx && t.len() > 1 {
                let first = t.chars().next().expect("non-empty token");
                format!("{first}.")
            } else {
                (*t).to_string()
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Truncates the string to at most `max_tokens` whitespace-delimited tokens.
pub fn truncate_tokens(input: &str, max_tokens: usize) -> String {
    input.split_whitespace().take(max_tokens.max(1)).collect::<Vec<_>>().join(" ")
}

/// Applies a randomized sequence of corruptions controlled by `severity ∈ [0, 1]`.
///
/// At severity `0` the input is returned unchanged; at severity `1` several typos
/// plus token-level edits are applied. The expected number of edits grows roughly
/// linearly with severity.
pub fn corrupt<R: Rng + ?Sized>(rng: &mut R, input: &str, severity: f64) -> String {
    let severity = severity.clamp(0.0, 1.0);
    if severity == 0.0 {
        return input.to_string();
    }
    let mut out = input.to_string();
    let typo_rounds = 1 + (severity * 3.0).round() as usize;
    for _ in 0..typo_rounds {
        if bernoulli(rng, severity) {
            out = typo(rng, &out);
        }
    }
    if bernoulli(rng, severity * 0.6) {
        out = drop_token(rng, &out);
    }
    if bernoulli(rng, severity * 0.5) {
        out = abbreviate_token(rng, &out);
    }
    if bernoulli(rng, severity * 0.3) {
        let keep = out.split_whitespace().count().saturating_sub(1).max(1);
        out = truncate_tokens(&out, keep);
    }
    out
}

/// Picks a random word from a pool — a convenience helper used by the corpus
/// generators when composing titles and descriptions.
pub fn random_word<'a, R: Rng + ?Sized>(rng: &mut R, pool: &'a [&'a str]) -> &'a str {
    choice::<_, &str>(rng, pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn typo_changes_string_but_keeps_length_close() {
        let mut rng = StdRng::seed_from_u64(1);
        let original = "entity resolution";
        for _ in 0..50 {
            let corrupted = typo(&mut rng, original);
            let diff = corrupted.chars().count().abs_diff(original.chars().count());
            assert!(diff <= 1);
        }
    }

    #[test]
    fn typo_leaves_tiny_strings_alone() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(typo(&mut rng, "a"), "a");
        assert_eq!(typo(&mut rng, ""), "");
    }

    #[test]
    fn drop_token_removes_exactly_one_token() {
        let mut rng = StdRng::seed_from_u64(3);
        let out = drop_token(&mut rng, "one two three four");
        assert_eq!(out.split_whitespace().count(), 3);
        assert_eq!(drop_token(&mut rng, "single"), "single");
    }

    #[test]
    fn abbreviate_token_shortens_one_token() {
        let mut rng = StdRng::seed_from_u64(4);
        let out = abbreviate_token(&mut rng, "very large databases");
        assert_eq!(out.split_whitespace().count(), 3);
        assert!(out.split_whitespace().any(|t| t.len() == 2 && t.ends_with('.')));
    }

    #[test]
    fn truncate_tokens_limits_length() {
        assert_eq!(truncate_tokens("a b c d", 2), "a b");
        assert_eq!(truncate_tokens("a b", 10), "a b");
        assert_eq!(truncate_tokens("a b", 0), "a");
    }

    #[test]
    fn zero_severity_is_identity() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(corrupt(&mut rng, "quality control for er", 0.0), "quality control for er");
    }

    #[test]
    fn higher_severity_degrades_similarity_more() {
        let mut rng = StdRng::seed_from_u64(6);
        let original = "enabling quality control for entity resolution frameworks";
        let sim = |s: &str| {
            er_core::similarity::jaccard_similarity(
                &er_core::text::word_tokens(original),
                &er_core::text::word_tokens(s),
            )
        };
        let mild: f64 = (0..30).map(|_| sim(&corrupt(&mut rng, original, 0.2))).sum::<f64>() / 30.0;
        let harsh: f64 =
            (0..30).map(|_| sim(&corrupt(&mut rng, original, 1.0))).sum::<f64>() / 30.0;
        assert!(mild > harsh, "mild corruption ({mild}) should preserve more similarity ({harsh})");
    }
}
