//! Record-level bibliographic corpus generator (DBLP-Scholar-like).
//!
//! Generates two publication datasets — a clean, curated-looking one ("DBLP")
//! and a noisier one ("Scholar") — together with the ground-truth set of
//! cross-dataset duplicates. The corpora are used to exercise the complete ER
//! pipeline: token blocking → attribute-weighted similarity → HUMO.

use crate::corrupt::corrupt;
use crate::rng::{bernoulli, choice};
use er_core::record::{Dataset, Record, RecordId, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

const TITLE_WORDS: &[&str] = &[
    "entity",
    "resolution",
    "quality",
    "control",
    "record",
    "linkage",
    "query",
    "optimization",
    "distributed",
    "database",
    "systems",
    "learning",
    "active",
    "crowdsourcing",
    "framework",
    "adaptive",
    "indexing",
    "transaction",
    "processing",
    "graph",
    "stream",
    "approximate",
    "sampling",
    "probabilistic",
    "scalable",
    "efficient",
    "incremental",
    "parallel",
    "semantic",
    "integration",
    "cleaning",
    "deduplication",
    "matching",
    "similarity",
    "blocking",
    "schema",
    "provenance",
    "analytics",
    "workload",
    "partitioning",
];

const FIRST_NAMES: &[&str] = &[
    "wei", "lei", "qun", "hong", "jian", "peter", "michael", "anna", "laura", "david", "rajeev",
    "divesh", "felix", "surajit", "jennifer", "hector", "ahmed", "xin", "yu", "chen",
];

const LAST_NAMES: &[&str] = &[
    "chen",
    "li",
    "wang",
    "zhang",
    "liu",
    "christen",
    "naumann",
    "garcia-molina",
    "widom",
    "chaudhuri",
    "srivastava",
    "halevy",
    "doan",
    "stonebraker",
    "dewitt",
    "abadi",
    "kraska",
    "franklin",
    "madden",
    "fan",
];

const VENUES: &[&str] = &[
    "proceedings of the vldb endowment",
    "acm sigmod international conference on management of data",
    "ieee international conference on data engineering",
    "acm transactions on database systems",
    "ieee transactions on knowledge and data engineering",
    "international conference on very large data bases",
    "acm sigkdd conference on knowledge discovery and data mining",
    "conference on information and knowledge management",
];

/// Configuration of the bibliographic corpus generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BibliographicConfig {
    /// Number of distinct real-world publications generated for the clean dataset.
    pub num_entities: usize,
    /// Probability that a publication also appears (corrupted) in the noisy dataset.
    pub duplicate_probability: f64,
    /// Number of additional noisy-dataset-only publications (non-matches).
    pub extra_right_entities: usize,
    /// Corruption severity applied to duplicated records, in `[0, 1]`.
    pub corruption: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BibliographicConfig {
    fn default() -> Self {
        Self {
            num_entities: 400,
            duplicate_probability: 0.6,
            extra_right_entities: 400,
            corruption: 0.35,
            seed: 7,
        }
    }
}

/// A generated pair of datasets plus the cross-dataset ground truth.
#[derive(Debug, Clone)]
pub struct GeneratedCorpus {
    /// The "clean" dataset (left side of the matching task).
    pub left: Dataset,
    /// The "noisy" dataset (right side of the matching task).
    pub right: Dataset,
    /// Ground-truth matches as `(left record id, right record id)` pairs.
    pub ground_truth: BTreeSet<(RecordId, RecordId)>,
}

impl GeneratedCorpus {
    /// Number of ground-truth matching record pairs.
    pub fn match_count(&self) -> usize {
        self.ground_truth.len()
    }
}

/// Generates bibliographic corpora.
#[derive(Debug, Clone)]
pub struct BibliographicGenerator {
    config: BibliographicConfig,
}

impl BibliographicGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: BibliographicConfig) -> Self {
        Self { config }
    }

    /// The schema shared by both generated datasets.
    pub fn schema() -> Schema {
        Schema::new(["title", "authors", "venue", "year"])
    }

    fn random_title<R: Rng + ?Sized>(rng: &mut R) -> String {
        let len = rng.gen_range(4..=8);
        (0..len).map(|_| *choice(rng, TITLE_WORDS)).collect::<Vec<_>>().join(" ")
    }

    fn random_authors<R: Rng + ?Sized>(rng: &mut R) -> String {
        let count = rng.gen_range(1..=3);
        (0..count)
            .map(|_| format!("{} {}", choice(rng, FIRST_NAMES), choice(rng, LAST_NAMES)))
            .collect::<Vec<_>>()
            .join(" and ")
    }

    fn clean_record<R: Rng + ?Sized>(rng: &mut R, id: u64) -> Record {
        Record::new(RecordId(id))
            .with("title", Self::random_title(rng))
            .with("authors", Self::random_authors(rng))
            .with("venue", *choice(rng, VENUES))
            .with("year", rng.gen_range(1995..=2018) as f64)
    }

    fn corrupted_copy<R: Rng + ?Sized>(
        rng: &mut R,
        original: &Record,
        id: u64,
        severity: f64,
    ) -> Record {
        let title = corrupt(rng, original.text("title").unwrap_or(""), severity);
        let authors = corrupt(rng, original.text("authors").unwrap_or(""), severity * 0.8);
        let venue = corrupt(rng, original.text("venue").unwrap_or(""), severity * 1.2);
        let mut record = Record::new(RecordId(id))
            .with("title", title)
            .with("authors", authors)
            .with("venue", venue);
        // Years occasionally drift by one (reprints, preprints).
        if let Some(year) = original.get("year").as_number() {
            let drift = if bernoulli(rng, severity * 0.3) { rng.gen_range(-1..=1) } else { 0 };
            record.set("year", year + drift as f64);
        }
        record
    }

    /// Generates a corpus: the left (clean) dataset, the right (noisy) dataset and
    /// the ground-truth match set.
    pub fn generate(&self) -> GeneratedCorpus {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut left = Dataset::new("dblp-like", Self::schema());
        let mut right = Dataset::new("scholar-like", Self::schema());
        let mut ground_truth = BTreeSet::new();

        let mut right_id = 1_000_000u64;
        for i in 0..cfg.num_entities {
            let record = Self::clean_record(&mut rng, i as u64);
            if bernoulli(&mut rng, cfg.duplicate_probability) {
                let copy = Self::corrupted_copy(&mut rng, &record, right_id, cfg.corruption);
                ground_truth.insert((record.id(), copy.id()));
                right.push(copy).expect("generated record ids are unique");
                right_id += 1;
            }
            left.push(record).expect("generated record ids are unique");
        }
        for _ in 0..cfg.extra_right_entities {
            let record = Self::clean_record(&mut rng, right_id);
            right.push(record).expect("generated record ids are unique");
            right_id += 1;
        }

        GeneratedCorpus { left, right, ground_truth }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::aggregate::{AttributeMeasure, AttributeWeighting, PairScorer, ScoringConfig};
    use er_core::similarity::StringMeasure;
    use er_core::text::Tokenizer;

    fn small_config() -> BibliographicConfig {
        BibliographicConfig {
            num_entities: 120,
            duplicate_probability: 0.5,
            extra_right_entities: 120,
            corruption: 0.3,
            seed: 11,
        }
    }

    #[test]
    fn corpus_sizes_and_ground_truth_are_consistent() {
        let corpus = BibliographicGenerator::new(small_config()).generate();
        assert_eq!(corpus.left.len(), 120);
        assert!(corpus.right.len() >= 120); // extras plus duplicates
        assert!(corpus.match_count() > 0);
        assert!(corpus.match_count() <= 120);
        // Every ground-truth pair references existing records.
        for &(l, r) in &corpus.ground_truth {
            assert!(corpus.left.get(l).is_some());
            assert!(corpus.right.get(r).is_some());
        }
    }

    #[test]
    fn duplicates_are_more_similar_than_random_pairs() {
        let corpus = BibliographicGenerator::new(small_config()).generate();
        let config = ScoringConfig::new(
            [
                ("title", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
                ("authors", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
                ("venue", AttributeMeasure::Text(StringMeasure::JaroWinkler)),
            ],
            AttributeWeighting::DistinctValues,
        );
        let scorer = PairScorer::new(&config, &[&corpus.left, &corpus.right]).unwrap();

        let mut match_sims = Vec::new();
        for &(l, r) in &corpus.ground_truth {
            let a = corpus.left.get(l).unwrap();
            let b = corpus.right.get(r).unwrap();
            match_sims.push(scorer.score(a, b));
        }
        let avg_match: f64 = match_sims.iter().sum::<f64>() / match_sims.len() as f64;

        // Random non-matching pairs.
        let mut nonmatch_sims = Vec::new();
        for (i, a) in corpus.left.iter().enumerate().take(50) {
            let b = &corpus.right.records()[(i * 7) % corpus.right.len()];
            if !corpus.ground_truth.contains(&(a.id(), b.id())) {
                nonmatch_sims.push(scorer.score(a, b));
            }
        }
        let avg_nonmatch: f64 = nonmatch_sims.iter().sum::<f64>() / nonmatch_sims.len() as f64;
        assert!(
            avg_match > avg_nonmatch + 0.2,
            "duplicates ({avg_match}) should score well above non-matches ({avg_nonmatch})"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = BibliographicGenerator::new(small_config()).generate();
        let b = BibliographicGenerator::new(small_config()).generate();
        assert_eq!(a.ground_truth, b.ground_truth);
        assert_eq!(a.left.len(), b.left.len());
    }

    #[test]
    fn records_conform_to_schema() {
        let corpus = BibliographicGenerator::new(small_config()).generate();
        let schema = BibliographicGenerator::schema();
        for r in corpus.left.iter().chain(corpus.right.iter()) {
            assert!(r.validate(&schema).is_ok());
            assert!(r.text("title").is_some());
        }
    }
}
