//! Small random-sampling helpers layered on top of `rand`.
//!
//! Only uniform sampling is taken from the `rand` crate; Gaussian and truncated
//! Gaussian variates are derived here via Box-Muller so no extra distribution
//! crates are needed.

use rand::Rng;

/// Draws a standard normal variate using the Box-Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling the half-open interval away from zero.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Draws a normal variate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Draws a normal variate and rejects (re-draws) until it falls inside `[lo, hi]`.
///
/// Falls back to clamping after 64 rejected draws so pathological parameter
/// combinations cannot loop forever.
pub fn truncated_normal<R: Rng + ?Sized>(
    rng: &mut R,
    mean: f64,
    std_dev: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    debug_assert!(lo <= hi, "truncated_normal requires lo <= hi");
    for _ in 0..64 {
        let x = normal(rng, mean, std_dev);
        if (lo..=hi).contains(&x) {
            return x;
        }
    }
    normal(rng, mean, std_dev).clamp(lo, hi)
}

/// Draws an exponential variate with the given rate, truncated to `[0, max]` by
/// rejection (with a clamping fallback).
pub fn truncated_exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64, max: f64) -> f64 {
    debug_assert!(rate > 0.0 && max > 0.0);
    for _ in 0..64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        let x = -u.ln() / rate;
        if x <= max {
            return x;
        }
    }
    rng.gen_range(0.0..max)
}

/// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    let p = p.clamp(0.0, 1.0);
    rng.gen_range(0.0..1.0) < p
}

/// Picks a uniformly random element of a non-empty slice.
pub fn choice<'a, R: Rng + ?Sized, T>(rng: &mut R, items: &'a [T]) -> &'a T {
    assert!(!items.is_empty(), "choice requires a non-empty slice");
    &items[rng.gen_range(0..items.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_has_roughly_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..20_000).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..5_000 {
            let x = truncated_normal(&mut rng, 0.5, 0.3, 0.0, 1.0);
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn truncated_exponential_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..5_000 {
            let x = truncated_exponential(&mut rng, 5.0, 0.8);
            assert!((0.0..=0.8).contains(&x));
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = StdRng::seed_from_u64(17);
        assert!(!(0..100).any(|_| bernoulli(&mut rng, 0.0)));
        assert!((0..100).all(|_| bernoulli(&mut rng, 1.0)));
    }

    #[test]
    fn bernoulli_rate_close_to_p() {
        let mut rng = StdRng::seed_from_u64(19);
        let hits = (0..20_000).filter(|_| bernoulli(&mut rng, 0.3)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn choice_returns_member() {
        let mut rng = StdRng::seed_from_u64(23);
        let items = ["a", "b", "c"];
        for _ in 0..50 {
            assert!(items.contains(choice(&mut rng, &items)));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        let xs: Vec<f64> = (0..10).map(|_| normal(&mut a, 0.0, 1.0)).collect();
        let ys: Vec<f64> = (0..10).map(|_| normal(&mut b, 0.0, 1.0)).collect();
        assert_eq!(xs, ys);
    }
}
