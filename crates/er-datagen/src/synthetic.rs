//! The paper's synthetic workload generator.
//!
//! Section VIII-A of the paper describes a generator that "uses the logistic
//! function to simulate the function of match proportion with regard to pair
//! similarity":
//!
//! ```text
//! R(v) = 0.95 / (1 + e^(−τ (v − 0.55)))          (Eq. 22)
//! ```
//!
//! where `τ` controls the steepness of the curve (smaller `τ` → flatter curve →
//! harder workload) and a second parameter `σ` controls the *irregularity* of the
//! per-subset match proportions: each subset's match proportion is the logistic
//! value at its mean similarity perturbed by zero-mean Gaussian noise with
//! standard deviation proportional to `σ`. With large `σ` the monotonicity
//! assumption of precision breaks down, which is exactly the regime Figure 10 of
//! the paper explores.

use crate::rng::normal;
use er_core::workload::{InstancePair, Label, PairId, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's logistic match-proportion curve (Eq. 22).
pub fn logistic_match_proportion(similarity: f64, tau: f64) -> f64 {
    0.95 / (1.0 + (-tau * (similarity - 0.55)).exp())
}

/// Configuration of the synthetic workload generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Number of instance pairs to generate.
    pub num_pairs: usize,
    /// Steepness `τ` of the logistic curve (the paper sweeps 8–18).
    pub tau: f64,
    /// Irregularity `σ` of per-subset match proportions (the paper sweeps 0.1–0.5).
    pub sigma: f64,
    /// Number of pairs per subset used when applying the `σ` perturbation;
    /// the paper's experiments use 200-pair subsets.
    pub subset_size: usize,
    /// RNG seed, so workloads are reproducible.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self { num_pairs: 100_000, tau: 14.0, sigma: 0.1, subset_size: 200, seed: 42 }
    }
}

impl SyntheticConfig {
    /// Convenience constructor for the parameters the paper sweeps.
    pub fn new(num_pairs: usize, tau: f64, sigma: f64) -> Self {
        Self { num_pairs, tau, sigma, ..Self::default() }
    }

    /// Returns a copy with a different seed (used to average over runs).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generates synthetic ER workloads following the paper's logistic model.
#[derive(Debug, Clone)]
pub struct SyntheticGenerator {
    config: SyntheticConfig,
}

impl SyntheticGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: SyntheticConfig) -> Self {
        Self { config }
    }

    /// The generator configuration.
    pub fn config(&self) -> &SyntheticConfig {
        &self.config
    }

    /// Generates a workload.
    ///
    /// Pair similarities are uniform over `[0, 1]`; pairs are then grouped into
    /// consecutive similarity-ordered subsets of `subset_size` pairs; each subset
    /// draws its match proportion from the (noise-perturbed) logistic curve and
    /// labels its pairs by independent Bernoulli draws with that proportion.
    pub fn generate(&self) -> Workload {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Similarity values, sorted ascending so subsets are similarity intervals.
        let mut sims: Vec<f64> = (0..cfg.num_pairs).map(|_| rng.gen_range(0.0..=1.0)).collect();
        sims.sort_by(|a, b| a.partial_cmp(b).expect("finite similarities"));

        let subset_size = cfg.subset_size.max(1);
        let mut pairs = Vec::with_capacity(cfg.num_pairs);
        let mut next_id = 0u64;
        for chunk in sims.chunks(subset_size) {
            let mean_sim = chunk.iter().sum::<f64>() / chunk.len() as f64;
            let base = logistic_match_proportion(mean_sim, cfg.tau);
            // The σ parameter perturbs the subset's match proportion. The paper's
            // σ is the *variance scale* of per-subset proportions; we interpret it
            // as the standard deviation of a multiplicative-free additive noise
            // term, clamped back into [0, 1].
            let noise = if cfg.sigma > 0.0 { normal(&mut rng, 0.0, cfg.sigma * 0.5) } else { 0.0 };
            let proportion = (base + noise).clamp(0.0, 1.0);
            for &sim in chunk {
                let is_match = rng.gen_range(0.0..1.0) < proportion;
                pairs.push(InstancePair::new(PairId(next_id), sim, Label::from_bool(is_match)));
                next_id += 1;
            }
        }
        Workload::from_pairs(pairs).expect("generated similarities are always in [0,1]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logistic_curve_shape() {
        // Increasing in similarity.
        assert!(logistic_match_proportion(0.2, 14.0) < logistic_match_proportion(0.5, 14.0));
        assert!(logistic_match_proportion(0.5, 14.0) < logistic_match_proportion(0.9, 14.0));
        // Midpoint at 0.55 gives half the plateau.
        assert!((logistic_match_proportion(0.55, 14.0) - 0.475).abs() < 1e-12);
        // Bounded by the 0.95 plateau.
        assert!(logistic_match_proportion(1.0, 18.0) < 0.95);
        assert!(logistic_match_proportion(0.0, 18.0) > 0.0);
    }

    #[test]
    fn larger_tau_is_steeper() {
        let low_tau_spread =
            logistic_match_proportion(0.7, 8.0) - logistic_match_proportion(0.4, 8.0);
        let high_tau_spread =
            logistic_match_proportion(0.7, 18.0) - logistic_match_proportion(0.4, 18.0);
        assert!(high_tau_spread > low_tau_spread);
    }

    #[test]
    fn generated_workload_has_requested_size_and_valid_range() {
        let w = SyntheticGenerator::new(SyntheticConfig::new(5_000, 14.0, 0.1)).generate();
        assert_eq!(w.len(), 5_000);
        for p in w.pairs() {
            assert!((0.0..=1.0).contains(&p.similarity()));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let cfg = SyntheticConfig::new(2_000, 12.0, 0.2);
        let a = SyntheticGenerator::new(cfg).generate();
        let b = SyntheticGenerator::new(cfg).generate();
        assert_eq!(a.total_matches(), b.total_matches());
        assert_eq!(a.len(), b.len());
        let c = SyntheticGenerator::new(cfg.with_seed(1)).generate();
        // Different seed should (overwhelmingly likely) give a different workload.
        assert_ne!(a.total_matches(), 0);
        assert!(a.total_matches() != c.total_matches() || a.similarity_at(0) != c.similarity_at(0));
    }

    #[test]
    fn match_proportion_increases_with_similarity_when_sigma_small() {
        let w = SyntheticGenerator::new(SyntheticConfig::new(40_000, 14.0, 0.05)).generate();
        let n = w.len();
        let low = w.match_proportion(0..n / 4);
        let mid = w.match_proportion(n / 4..3 * n / 4);
        let high = w.match_proportion(3 * n / 4..n);
        assert!(low < mid, "low {low} should be below mid {mid}");
        assert!(mid < high, "mid {mid} should be below high {high}");
    }

    #[test]
    fn overall_match_rate_tracks_logistic_integral() {
        // With uniform similarities the expected match rate is the average of the
        // logistic curve over [0,1]; for τ=14 that is roughly 0.43.
        let w = SyntheticGenerator::new(SyntheticConfig::new(60_000, 14.0, 0.0)).generate();
        let rate = w.total_matches() as f64 / w.len() as f64;
        assert!((rate - 0.43).abs() < 0.03, "match rate {rate} too far from expectation");
    }

    #[test]
    fn larger_sigma_creates_more_irregularity() {
        // Measure irregularity as the number of adjacent 200-pair subsets whose
        // match proportion *decreases* as similarity increases.
        fn inversions(w: &Workload) -> usize {
            let p = w.partition(200).unwrap();
            let props: Vec<f64> =
                p.subsets().iter().map(|s| w.match_proportion(s.range())).collect();
            props.windows(2).filter(|w| w[1] + 1e-9 < w[0]).count()
        }
        let smooth = SyntheticGenerator::new(SyntheticConfig::new(30_000, 14.0, 0.0)).generate();
        let rough = SyntheticGenerator::new(SyntheticConfig::new(30_000, 14.0, 0.5).with_seed(7))
            .generate();
        assert!(inversions(&rough) > inversions(&smooth));
    }
}
