//! Dataset and workload generators for the HUMO reproduction.
//!
//! Three families of generators are provided:
//!
//! * [`synthetic`] — the paper's synthetic workload generator: pair similarities
//!   spread over `[0, 1]` whose match proportion follows the logistic curve of
//!   Eq. 22, with a steepness parameter `τ` and an irregularity parameter `σ`;
//! * [`calibrated`] — pair-level workloads calibrated to the statistics the paper
//!   reports for its two real datasets (DBLP-Scholar and Abt-Buy): total pair
//!   count, number of matching pairs, blocking threshold and the match-similarity
//!   distribution shapes of Fig. 4. These stand in for the original datasets,
//!   which are external downloads, while preserving the experimental conditions
//!   HUMO is sensitive to (see DESIGN.md, "Substitutions");
//! * [`bibliographic`] / [`product`] — record-level corpus generators with
//!   controlled corruption and duplicate injection, used to exercise the full
//!   records → blocking → scoring → HUMO pipeline end to end.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bibliographic;
pub mod calibrated;
pub mod corrupt;
pub mod product;
pub mod rng;
pub mod synthetic;

pub use bibliographic::{BibliographicConfig, BibliographicGenerator, GeneratedCorpus};
pub use calibrated::{ab_like, ds_like, CalibratedConfig, MatchSimilarityModel};
pub use product::{ProductConfig, ProductGenerator};
pub use synthetic::{logistic_match_proportion, SyntheticConfig, SyntheticGenerator};
