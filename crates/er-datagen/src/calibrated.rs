//! Pair-level workloads calibrated to the statistics of the paper's real datasets.
//!
//! The paper evaluates HUMO on two benchmark ER datasets (DBLP-Scholar and
//! Abt-Buy) that are distributed as external downloads. Following the
//! substitution policy in DESIGN.md, this module generates workloads that match
//! the *reported statistics* of those datasets after blocking:
//!
//! | dataset | pairs after blocking | matching pairs | blocking threshold | match distribution (Fig. 4) |
//! |---|---|---|---|---|
//! | DBLP-Scholar (DS) | 100 077 | 5 267 | 0.20 | concentrated at high similarity |
//! | Abt-Buy (AB) | 313 040 | 1 085 | 0.05 | spread over low/medium similarity |
//!
//! HUMO and its optimizers only consume `(similarity, ground-truth)` pairs, so a
//! workload reproducing the pair count, match count and the match-proportion
//! shape reproduces the experimental conditions that drive the paper's results:
//! DS is an "easy" workload (monotone, steep match-proportion curve), AB is a
//! "hard" one (matches living in the middle of a sea of non-matches).

use crate::rng::{bernoulli, truncated_exponential, truncated_normal};
use er_core::workload::{InstancePair, Label, PairId, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One truncated-normal component of the match-similarity mixture.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixtureComponent {
    /// Relative weight of the component (normalized internally).
    pub weight: f64,
    /// Mean similarity of matching pairs drawn from this component.
    pub mean: f64,
    /// Standard deviation of the component.
    pub std_dev: f64,
    /// Lower truncation bound.
    pub lo: f64,
    /// Upper truncation bound.
    pub hi: f64,
}

/// Mixture model describing where matching pairs live on the similarity axis.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchSimilarityModel {
    components: Vec<MixtureComponent>,
}

impl MatchSimilarityModel {
    /// Creates a mixture model from components (weights are normalized).
    ///
    /// # Panics
    /// Panics if no components are provided or all weights are zero.
    pub fn new(components: Vec<MixtureComponent>) -> Self {
        assert!(!components.is_empty(), "mixture model needs at least one component");
        let total: f64 = components.iter().map(|c| c.weight).sum();
        assert!(total > 0.0, "mixture weights must not all be zero");
        Self { components }
    }

    /// The mixture components.
    pub fn components(&self) -> &[MixtureComponent] {
        &self.components
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let total: f64 = self.components.iter().map(|c| c.weight).sum();
        let mut pick = rng.gen_range(0.0..total);
        for c in &self.components {
            if pick < c.weight {
                return truncated_normal(rng, c.mean, c.std_dev, c.lo, c.hi);
            }
            pick -= c.weight;
        }
        let c = self.components.last().expect("non-empty mixture");
        truncated_normal(rng, c.mean, c.std_dev, c.lo, c.hi)
    }
}

/// Configuration of a calibrated workload generator.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibratedConfig {
    /// Human-readable dataset name (e.g. `"DS"`).
    pub name: String,
    /// Total number of pairs after blocking.
    pub total_pairs: usize,
    /// Number of ground-truth matching pairs.
    pub total_matches: usize,
    /// Blocking threshold: no generated pair has similarity below this value.
    pub min_similarity: f64,
    /// Similarity distribution of matching pairs.
    pub match_model: MatchSimilarityModel,
    /// Exponential decay rate of non-matching pair similarities above the
    /// blocking threshold (larger → non-matches concentrate just above the
    /// threshold).
    pub unmatch_decay_rate: f64,
    /// Fraction of non-matching pairs drawn as "hard negatives" spread uniformly
    /// over the upper similarity band (these are what keep machine precision
    /// below 1 even at high similarity).
    pub hard_negative_fraction: f64,
    /// Band `[lo, hi]` from which hard-negative similarities are drawn.
    pub hard_negative_band: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl CalibratedConfig {
    /// The DBLP-Scholar-like configuration (paper statistics, Fig. 4a shape).
    pub fn ds(seed: u64) -> Self {
        Self {
            name: "DS".to_string(),
            total_pairs: 100_077,
            total_matches: 5_267,
            min_similarity: 0.20,
            match_model: MatchSimilarityModel::new(vec![
                MixtureComponent { weight: 0.80, mean: 0.82, std_dev: 0.10, lo: 0.30, hi: 1.0 },
                MixtureComponent { weight: 0.20, mean: 0.55, std_dev: 0.15, lo: 0.20, hi: 0.95 },
            ]),
            unmatch_decay_rate: 15.0,
            hard_negative_fraction: 0.01,
            hard_negative_band: (0.45, 0.90),
            seed,
        }
    }

    /// The Abt-Buy-like configuration (paper statistics, Fig. 4b shape).
    pub fn ab(seed: u64) -> Self {
        Self {
            name: "AB".to_string(),
            total_pairs: 313_040,
            total_matches: 1_085,
            min_similarity: 0.05,
            match_model: MatchSimilarityModel::new(vec![
                MixtureComponent { weight: 0.60, mean: 0.30, std_dev: 0.10, lo: 0.12, hi: 0.60 },
                MixtureComponent { weight: 0.30, mean: 0.45, std_dev: 0.12, lo: 0.15, hi: 0.75 },
                MixtureComponent { weight: 0.10, mean: 0.22, std_dev: 0.04, lo: 0.12, hi: 0.35 },
            ]),
            unmatch_decay_rate: 40.0,
            hard_negative_fraction: 0.006,
            hard_negative_band: (0.10, 0.50),
            seed,
        }
    }

    /// Returns a copy scaled down to `fraction` of the original pair and match
    /// counts (used to keep unit tests fast); at least one match is retained.
    pub fn scaled(mut self, fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0,1]");
        self.total_pairs = ((self.total_pairs as f64 * fraction).round() as usize).max(10);
        self.total_matches = ((self.total_matches as f64 * fraction).round() as usize).max(1);
        self
    }

    /// Generates the workload described by this configuration.
    pub fn generate(&self) -> Workload {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut pairs = Vec::with_capacity(self.total_pairs);
        let mut next_id = 0u64;

        // Matching pairs.
        for _ in 0..self.total_matches.min(self.total_pairs) {
            let sim = self.match_model.sample(&mut rng).clamp(self.min_similarity, 1.0);
            pairs.push(InstancePair::new(PairId(next_id), sim, Label::Match));
            next_id += 1;
        }

        // Non-matching pairs.
        let num_unmatch = self.total_pairs.saturating_sub(self.total_matches);
        let span = 1.0 - self.min_similarity;
        for _ in 0..num_unmatch {
            let sim = if bernoulli(&mut rng, self.hard_negative_fraction) {
                let (lo, hi) = self.hard_negative_band;
                rng.gen_range(lo..hi)
            } else {
                self.min_similarity + truncated_exponential(&mut rng, self.unmatch_decay_rate, span)
            };
            pairs.push(InstancePair::new(PairId(next_id), sim.clamp(0.0, 1.0), Label::Unmatch));
            next_id += 1;
        }

        Workload::from_pairs(pairs).expect("calibrated similarities are always in [0,1]")
    }
}

/// Full-size DBLP-Scholar-like workload (100 077 pairs, 5 267 matches).
pub fn ds_like(seed: u64) -> Workload {
    CalibratedConfig::ds(seed).generate()
}

/// Full-size Abt-Buy-like workload (313 040 pairs, 1 085 matches).
pub fn ab_like(seed: u64) -> Workload {
    CalibratedConfig::ab(seed).generate()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ds_statistics_match_the_paper() {
        let w = ds_like(1);
        assert_eq!(w.len(), 100_077);
        assert_eq!(w.total_matches(), 5_267);
        for p in w.pairs() {
            assert!(p.similarity() >= 0.20 - 1e-12);
            assert!(p.similarity() <= 1.0);
        }
    }

    #[test]
    fn ab_statistics_match_the_paper() {
        let w = ab_like(1);
        assert_eq!(w.len(), 313_040);
        assert_eq!(w.total_matches(), 1_085);
        for p in w.pairs() {
            assert!(p.similarity() >= 0.05 - 1e-12);
        }
    }

    #[test]
    fn ds_matches_concentrate_at_high_similarity() {
        // Figure 4a: the majority of DS matching pairs have high similarity.
        let w = CalibratedConfig::ds(2).scaled(0.2).generate();
        let matches: Vec<f64> =
            w.pairs().iter().filter(|p| p.is_match()).map(|p| p.similarity()).collect();
        let high = matches.iter().filter(|&&s| s >= 0.6).count();
        assert!(
            high as f64 / matches.len() as f64 > 0.6,
            "expected most DS matches above 0.6 similarity"
        );
    }

    #[test]
    fn ab_matches_concentrate_at_low_and_medium_similarity() {
        // Figure 4b: many AB matching pairs have medium and low similarity.
        let w = CalibratedConfig::ab(2).scaled(0.2).generate();
        let matches: Vec<f64> =
            w.pairs().iter().filter(|p| p.is_match()).map(|p| p.similarity()).collect();
        let low_mid = matches.iter().filter(|&&s| s < 0.5).count();
        assert!(
            low_mid as f64 / matches.len() as f64 > 0.6,
            "expected most AB matches below 0.5 similarity"
        );
    }

    #[test]
    fn monotonicity_of_precision_holds_broadly_on_ds() {
        // The match proportion of the top similarity quartile must dominate the
        // bottom quartile by a wide margin — this is what makes DS "easy".
        let w = CalibratedConfig::ds(3).scaled(0.1).generate();
        let n = w.len();
        let bottom = w.match_proportion(0..n / 4);
        let top = w.match_proportion(3 * n / 4..n);
        assert!(top > 10.0 * bottom.max(1e-6), "top {top} vs bottom {bottom}");
    }

    #[test]
    fn ab_is_harder_than_ds_for_a_machine_classifier() {
        // Best-achievable F1 of a pure similarity threshold classifier should be
        // clearly higher on DS than on AB, mirroring Table I.
        fn best_f1(w: &Workload) -> f64 {
            let n = w.len();
            let mut best: f64 = 0.0;
            for idx in (0..n).step_by((n / 200).max(1)) {
                let assignment = er_core::workload::LabelAssignment::from_threshold_index(n, idx);
                let m = w.evaluate(&assignment).unwrap();
                best = best.max(m.f1());
            }
            best
        }
        let ds = CalibratedConfig::ds(4).scaled(0.1).generate();
        let ab = CalibratedConfig::ab(4).scaled(0.1).generate();
        let f1_ds = best_f1(&ds);
        let f1_ab = best_f1(&ab);
        assert!(f1_ds > f1_ab + 0.15, "DS best F1 {f1_ds} should exceed AB best F1 {f1_ab}");
        assert!(f1_ds > 0.6, "DS should be reasonably easy, got best F1 {f1_ds}");
        assert!(f1_ab < 0.75, "AB should be hard, got best F1 {f1_ab}");
    }

    #[test]
    fn scaled_preserves_shape() {
        let w = CalibratedConfig::ds(5).scaled(0.05).generate();
        assert_eq!(w.len(), (100_077.0_f64 * 0.05).round() as usize);
        assert_eq!(w.total_matches(), (5_267.0_f64 * 0.05).round() as usize);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = CalibratedConfig::ds(9).scaled(0.02).generate();
        let b = CalibratedConfig::ds(9).scaled(0.02).generate();
        assert_eq!(
            a.pairs().iter().map(|p| p.similarity()).collect::<Vec<_>>(),
            b.pairs().iter().map(|p| p.similarity()).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn scaled_rejects_bad_fraction() {
        let _ = CalibratedConfig::ds(1).scaled(0.0);
    }
}
