//! Record-level product corpus generator (Abt-Buy-like).
//!
//! Generates two product catalogues — a terse one ("Abt") and a verbose one
//! ("Buy") — with overlapping offers. Product matching is intentionally harder
//! than bibliographic matching: descriptions differ in vocabulary, prices drift
//! between shops and names are heavily abbreviated, so matching pairs end up with
//! medium similarity values (the regime where HUMO's human region earns its keep).

use crate::corrupt::{corrupt, truncate_tokens};
use crate::rng::{bernoulli, choice};
use er_core::record::{Dataset, Record, RecordId, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

const BRANDS: &[&str] = &[
    "sony",
    "panasonic",
    "samsung",
    "canon",
    "nikon",
    "bose",
    "yamaha",
    "logitech",
    "philips",
    "toshiba",
    "garmin",
    "netgear",
    "linksys",
    "olympus",
    "sanus",
    "denon",
];

const CATEGORIES: &[&str] = &[
    "digital camera",
    "wireless router",
    "home theater system",
    "noise cancelling headphones",
    "portable speaker",
    "lcd television",
    "camcorder",
    "gps navigator",
    "blu ray player",
    "surround sound receiver",
    "wall mount bracket",
    "cordless phone",
];

const DESCRIPTION_WORDS: &[&str] = &[
    "black",
    "silver",
    "compact",
    "megapixel",
    "optical",
    "zoom",
    "wireless",
    "bluetooth",
    "rechargeable",
    "battery",
    "remote",
    "control",
    "hdmi",
    "input",
    "output",
    "warranty",
    "digital",
    "stereo",
    "channel",
    "watt",
    "inch",
    "display",
    "widescreen",
    "portable",
    "energy",
    "efficient",
    "premium",
    "professional",
    "series",
    "edition",
];

/// Configuration of the product corpus generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProductConfig {
    /// Number of products in the left catalogue.
    pub num_entities: usize,
    /// Probability that a left product also appears in the right catalogue.
    pub duplicate_probability: f64,
    /// Number of right-catalogue-only products.
    pub extra_right_entities: usize,
    /// Corruption severity applied to duplicated offers, in `[0, 1]`. Product
    /// duplicates are corrupted more aggressively than bibliographic ones.
    pub corruption: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProductConfig {
    fn default() -> Self {
        Self {
            num_entities: 400,
            duplicate_probability: 0.5,
            extra_right_entities: 500,
            corruption: 0.6,
            seed: 21,
        }
    }
}

/// Generates product corpora.
#[derive(Debug, Clone)]
pub struct ProductGenerator {
    config: ProductConfig,
}

impl ProductGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: ProductConfig) -> Self {
        Self { config }
    }

    /// The schema shared by both generated catalogues.
    pub fn schema() -> Schema {
        Schema::new(["name", "description", "price"])
    }

    fn random_name<R: Rng + ?Sized>(rng: &mut R) -> String {
        let brand = *choice(rng, BRANDS);
        let category = *choice(rng, CATEGORIES);
        let model: String = (0..rng.gen_range(2..=4))
            .map(|_| char::from(b'a' + rng.gen_range(0..26)))
            .collect::<String>()
            .to_uppercase();
        let number = rng.gen_range(100..9999);
        format!("{brand} {category} {model}{number}")
    }

    fn random_description<R: Rng + ?Sized>(rng: &mut R, name: &str) -> String {
        let extra_len = rng.gen_range(6..=14);
        let extras: Vec<&str> = (0..extra_len).map(|_| *choice(rng, DESCRIPTION_WORDS)).collect();
        format!("{name} {}", extras.join(" "))
    }

    fn clean_record<R: Rng + ?Sized>(rng: &mut R, id: u64) -> Record {
        let name = Self::random_name(rng);
        let description = Self::random_description(rng, &name);
        Record::new(RecordId(id))
            .with("name", name)
            .with("description", description)
            .with("price", (rng.gen_range(20.0..1500.0_f64) * 100.0).round() / 100.0)
    }

    fn corrupted_copy<R: Rng + ?Sized>(
        rng: &mut R,
        original: &Record,
        id: u64,
        severity: f64,
    ) -> Record {
        // The other shop writes its own name (drops the model number half the
        // time) and a largely different description.
        let mut name = corrupt(rng, original.text("name").unwrap_or(""), severity);
        if bernoulli(rng, 0.5) {
            let keep = name.split_whitespace().count().saturating_sub(1).max(1);
            name = truncate_tokens(&name, keep);
        }
        let new_description = {
            let base = corrupt(rng, original.text("description").unwrap_or(""), severity);
            let extras: Vec<&str> =
                (0..rng.gen_range(3..=8)).map(|_| *choice(rng, DESCRIPTION_WORDS)).collect();
            format!("{} {}", truncate_tokens(&base, 8), extras.join(" "))
        };
        let price = original.get("price").as_number().unwrap_or(100.0);
        let drift = 1.0 + (rng.gen_range(-0.15..0.15));
        Record::new(RecordId(id))
            .with("name", name)
            .with("description", new_description)
            .with("price", (price * drift * 100.0).round() / 100.0)
    }

    /// Generates a corpus: left catalogue, right catalogue and ground truth.
    pub fn generate(&self) -> crate::bibliographic::GeneratedCorpus {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut left = Dataset::new("abt-like", Self::schema());
        let mut right = Dataset::new("buy-like", Self::schema());
        let mut ground_truth = BTreeSet::new();

        let mut right_id = 2_000_000u64;
        for i in 0..cfg.num_entities {
            let record = Self::clean_record(&mut rng, i as u64);
            if bernoulli(&mut rng, cfg.duplicate_probability) {
                let copy = Self::corrupted_copy(&mut rng, &record, right_id, cfg.corruption);
                ground_truth.insert((record.id(), copy.id()));
                right.push(copy).expect("generated record ids are unique");
                right_id += 1;
            }
            left.push(record).expect("generated record ids are unique");
        }
        for _ in 0..cfg.extra_right_entities {
            let record = Self::clean_record(&mut rng, right_id);
            right.push(record).expect("generated record ids are unique");
            right_id += 1;
        }

        crate::bibliographic::GeneratedCorpus { left, right, ground_truth }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::aggregate::{AttributeMeasure, AttributeWeighting, PairScorer, ScoringConfig};
    use er_core::similarity::StringMeasure;
    use er_core::text::Tokenizer;

    fn small_config() -> ProductConfig {
        ProductConfig {
            num_entities: 100,
            duplicate_probability: 0.5,
            extra_right_entities: 120,
            corruption: 0.6,
            seed: 33,
        }
    }

    fn product_scorer(corpus: &crate::bibliographic::GeneratedCorpus) -> PairScorer {
        let config = ScoringConfig::new(
            [
                ("name", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
                ("description", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
            ],
            AttributeWeighting::DistinctValues,
        );
        PairScorer::new(&config, &[&corpus.left, &corpus.right]).unwrap()
    }

    #[test]
    fn corpus_structure_is_consistent() {
        let corpus = ProductGenerator::new(small_config()).generate();
        assert_eq!(corpus.left.len(), 100);
        assert!(corpus.match_count() > 10);
        for &(l, r) in &corpus.ground_truth {
            assert!(corpus.left.get(l).is_some());
            assert!(corpus.right.get(r).is_some());
        }
    }

    #[test]
    fn product_matches_score_lower_than_bibliographic_matches() {
        // This is the property that makes the AB-style workload harder (Fig. 4).
        let products = ProductGenerator::new(small_config()).generate();
        let papers = crate::bibliographic::BibliographicGenerator::new(
            crate::bibliographic::BibliographicConfig {
                num_entities: 100,
                duplicate_probability: 0.5,
                extra_right_entities: 120,
                corruption: 0.3,
                seed: 33,
            },
        )
        .generate();

        let product_scorer = product_scorer(&products);
        let paper_config = ScoringConfig::new(
            [
                ("title", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
                ("authors", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
            ],
            AttributeWeighting::DistinctValues,
        );
        let paper_scorer = PairScorer::new(&paper_config, &[&papers.left, &papers.right]).unwrap();

        let avg = |corpus: &crate::bibliographic::GeneratedCorpus, scorer: &PairScorer| {
            let sims: Vec<f64> = corpus
                .ground_truth
                .iter()
                .map(|&(l, r)| {
                    scorer.score(corpus.left.get(l).unwrap(), corpus.right.get(r).unwrap())
                })
                .collect();
            sims.iter().sum::<f64>() / sims.len() as f64
        };
        let product_avg = avg(&products, &product_scorer);
        let paper_avg = avg(&papers, &paper_scorer);
        assert!(
            product_avg < paper_avg,
            "product matches ({product_avg}) should be less similar than paper matches ({paper_avg})"
        );
    }

    #[test]
    fn prices_are_positive_and_drift_bounded() {
        let corpus = ProductGenerator::new(small_config()).generate();
        for r in corpus.left.iter().chain(corpus.right.iter()) {
            let price = r.get("price").as_number().unwrap();
            assert!(price > 0.0);
            assert!(price < 2000.0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ProductGenerator::new(small_config()).generate();
        let b = ProductGenerator::new(small_config()).generate();
        assert_eq!(a.ground_truth, b.ground_truth);
    }
}
