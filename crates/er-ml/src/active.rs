//! ACTL: the active-learning baseline HUMO is compared against.
//!
//! The techniques of Arasu et al. (SIGMOD'10) and Bellare et al. (KDD'12)
//! maximize recall subject to a user-specified *precision* constraint. They share
//! two properties this implementation reproduces:
//!
//! * the decision rule is a threshold on a similarity-like machine metric — every
//!   pair at or above the learned threshold is labeled a match;
//! * the achieved precision of a candidate threshold is *estimated by sampling*:
//!   pairs are drawn from the candidate match region and labeled manually, so the
//!   method consumes human labels just like HUMO does (this is the `ψ` human-cost
//!   column of Tables V and VI).
//!
//! Unlike HUMO, ACTL cannot enforce a recall requirement: the paper's Tables V
//! and VI quantify how much recall it gives up at matched precision levels.

use crate::{MlError, Result};
use er_core::workload::{LabelAssignment, QualityMetrics, Workload};
use er_stats::Normal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Configuration of the ACTL baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActlConfig {
    /// Precision level the learned classifier must (statistically) satisfy.
    pub target_precision: f64,
    /// Confidence of the precision lower bound used to accept a threshold.
    pub confidence: f64,
    /// Number of manual labels drawn per threshold probe.
    pub samples_per_probe: usize,
    /// Maximum number of threshold probes (bisection steps).
    pub max_probes: usize,
    /// RNG seed for sampling.
    pub seed: u64,
}

impl Default for ActlConfig {
    fn default() -> Self {
        Self {
            target_precision: 0.9,
            confidence: 0.9,
            samples_per_probe: 200,
            max_probes: 20,
            seed: 17,
        }
    }
}

/// The outcome of running ACTL on a workload.
#[derive(Debug, Clone)]
pub struct ActlResult {
    /// Smallest workload index labeled match (pairs at or above it are matches).
    pub threshold_index: usize,
    /// The produced label assignment.
    pub assignment: LabelAssignment,
    /// Quality of the assignment against the ground truth.
    pub metrics: QualityMetrics,
    /// Number of distinct pairs manually labeled while estimating precision.
    pub human_labels_used: usize,
    /// The sampled precision estimate at the accepted threshold.
    pub estimated_precision: f64,
}

impl ActlResult {
    /// Human cost as a fraction of the workload size (the `ψ` of Tables V/VI).
    pub fn human_cost_fraction(&self, workload_size: usize) -> f64 {
        if workload_size == 0 {
            0.0
        } else {
            self.human_labels_used as f64 / workload_size as f64
        }
    }
}

/// The ACTL active-learning classifier.
#[derive(Debug, Clone)]
pub struct ActiveLearningClassifier {
    config: ActlConfig,
}

impl ActiveLearningClassifier {
    /// Creates a classifier with the given configuration.
    pub fn new(config: ActlConfig) -> Result<Self> {
        if !(0.0..=1.0).contains(&config.target_precision) {
            return Err(MlError::InvalidConfig(format!(
                "target precision must be in [0,1], got {}",
                config.target_precision
            )));
        }
        if !(0.0..1.0).contains(&config.confidence) {
            return Err(MlError::InvalidConfig(format!(
                "confidence must be in [0,1), got {}",
                config.confidence
            )));
        }
        if config.samples_per_probe == 0 || config.max_probes == 0 {
            return Err(MlError::InvalidConfig(
                "samples_per_probe and max_probes must be positive".to_string(),
            ));
        }
        Ok(Self { config })
    }

    /// The configuration.
    pub fn config(&self) -> &ActlConfig {
        &self.config
    }

    /// Runs the precision-constrained threshold search on a workload.
    ///
    /// The workload's ground-truth labels are consulted only for the sampled
    /// pairs (this is the simulated manual verification) and for the final
    /// quality evaluation.
    pub fn run(&self, workload: &Workload) -> Result<ActlResult> {
        let n = workload.len();
        if n == 0 {
            return Err(MlError::InvalidTrainingData("empty workload".to_string()));
        }
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        // Cache of manually labeled pairs: workload index → is_match.
        let mut labeled: BTreeMap<usize, bool> = BTreeMap::new();

        let z = Normal::two_sided_critical_value(self.config.confidence)
            .map_err(|e| MlError::InvalidConfig(e.to_string()))?;

        // Bisection for the smallest threshold index whose match region satisfies
        // the precision constraint. `hi` is always feasible (labelling nothing is
        // vacuously precise); `lo` is the first index known infeasible + 1 ... we
        // maintain lo <= answer <= hi.
        let mut lo = 0usize;
        let mut hi = n; // empty match region
        let mut estimated_precision = 1.0;
        for _ in 0..self.config.max_probes {
            if lo >= hi {
                break;
            }
            let mid = lo + (hi - lo) / 2;
            let (estimate, lower_bound) =
                self.estimate_precision(workload, mid, &mut labeled, &mut rng, z);
            if lower_bound >= self.config.target_precision {
                hi = mid;
                estimated_precision = estimate;
            } else {
                lo = mid + 1;
            }
        }
        let threshold_index = hi;
        let assignment = LabelAssignment::from_threshold_index(n, threshold_index);
        let metrics = workload
            .evaluate(&assignment)
            .map_err(|e| MlError::InvalidTrainingData(e.to_string()))?;
        Ok(ActlResult {
            threshold_index,
            assignment,
            metrics,
            human_labels_used: labeled.len(),
            estimated_precision,
        })
    }

    /// Estimates the precision of the region `[threshold, n)` by sampling, and
    /// returns `(point estimate, lower confidence bound)`.
    fn estimate_precision(
        &self,
        workload: &Workload,
        threshold: usize,
        labeled: &mut BTreeMap<usize, bool>,
        rng: &mut StdRng,
        z: f64,
    ) -> (f64, f64) {
        let n = workload.len();
        let region = n - threshold;
        if region == 0 {
            return (1.0, 1.0);
        }
        let sample_size = self.config.samples_per_probe.min(region);
        // Draw (approximately) without replacement; duplicates are simply skipped,
        // already-labeled pairs are reused at no extra cost.
        let mut drawn = std::collections::BTreeSet::new();
        let mut attempts = 0usize;
        while drawn.len() < sample_size && attempts < sample_size * 20 {
            let idx = rng.gen_range(threshold..n);
            drawn.insert(idx);
            attempts += 1;
        }
        let mut positives = 0usize;
        for &idx in &drawn {
            let is_match = *labeled.entry(idx).or_insert_with(|| workload.pair(idx).is_match());
            if is_match {
                positives += 1;
            }
        }
        let k = drawn.len().max(1);
        let p = positives as f64 / k as f64;
        let std_err = (p * (1.0 - p) / k as f64).sqrt();
        // Finite population correction keeps the bound tight when the region is small.
        let fpc = if region > 1 {
            (((region - k) as f64) / ((region - 1) as f64)).max(0.0).sqrt()
        } else {
            0.0
        };
        (p, (p - z * std_err * fpc).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_datagen::synthetic::{SyntheticConfig, SyntheticGenerator};

    fn synthetic_workload() -> Workload {
        SyntheticGenerator::new(SyntheticConfig::new(20_000, 14.0, 0.05)).generate()
    }

    #[test]
    fn rejects_invalid_configuration() {
        assert!(ActiveLearningClassifier::new(ActlConfig {
            target_precision: 1.5,
            ..Default::default()
        })
        .is_err());
        assert!(ActiveLearningClassifier::new(ActlConfig {
            confidence: 1.0,
            ..Default::default()
        })
        .is_err());
        assert!(ActiveLearningClassifier::new(ActlConfig {
            samples_per_probe: 0,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn satisfies_the_precision_target_on_a_monotone_workload() {
        let w = synthetic_workload();
        for target in [0.8, 0.9, 0.95] {
            let actl = ActiveLearningClassifier::new(ActlConfig {
                target_precision: target,
                ..Default::default()
            })
            .unwrap();
            let result = actl.run(&w).unwrap();
            assert!(
                result.metrics.precision() >= target - 0.05,
                "target {target}: achieved precision {} too low",
                result.metrics.precision()
            );
            assert!(result.human_labels_used > 0);
            assert!(result.human_labels_used < w.len() / 2);
        }
    }

    #[test]
    fn higher_precision_targets_cost_recall() {
        let w = synthetic_workload();
        let recall_at = |target: f64| {
            let actl = ActiveLearningClassifier::new(ActlConfig {
                target_precision: target,
                ..Default::default()
            })
            .unwrap();
            actl.run(&w).unwrap().metrics.recall()
        };
        let low = recall_at(0.75);
        let high = recall_at(0.97);
        assert!(
            low >= high,
            "recall should not increase with a stricter precision target ({low} vs {high})"
        );
    }

    #[test]
    fn human_cost_is_bounded_by_probe_budget() {
        let w = synthetic_workload();
        let config = ActlConfig { samples_per_probe: 100, max_probes: 10, ..Default::default() };
        let actl = ActiveLearningClassifier::new(config).unwrap();
        let result = actl.run(&w).unwrap();
        assert!(result.human_labels_used <= 100 * 10);
        assert!(result.human_cost_fraction(w.len()) < 0.06);
    }

    #[test]
    fn empty_workload_is_rejected() {
        let w = Workload::from_pairs(vec![]).unwrap();
        let actl = ActiveLearningClassifier::new(ActlConfig::default()).unwrap();
        assert!(actl.run(&w).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let w = synthetic_workload();
        let actl = ActiveLearningClassifier::new(ActlConfig::default()).unwrap();
        let a = actl.run(&w).unwrap();
        let b = actl.run(&w).unwrap();
        assert_eq!(a.threshold_index, b.threshold_index);
        assert_eq!(a.human_labels_used, b.human_labels_used);
    }
}
