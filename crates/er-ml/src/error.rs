//! Error type for the machine-learning substrate.

/// Errors raised by the `er-ml` crate.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// Training data was empty, single-class, or otherwise unusable.
    InvalidTrainingData(String),
    /// A configuration parameter was outside of its valid domain.
    InvalidConfig(String),
    /// Feature vectors of inconsistent dimensionality were supplied.
    DimensionMismatch {
        /// Expected feature dimensionality.
        expected: usize,
        /// Dimensionality that was actually provided.
        actual: usize,
    },
}

impl std::fmt::Display for MlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlError::InvalidTrainingData(msg) => write!(f, "invalid training data: {msg}"),
            MlError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            MlError::DimensionMismatch { expected, actual } => {
                write!(f, "feature dimension mismatch: expected {expected}, got {actual}")
            }
        }
    }
}

impl std::error::Error for MlError {}
