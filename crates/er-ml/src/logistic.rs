//! Logistic regression trained by stochastic gradient descent.
//!
//! Provides the "match probability" machine metric the paper lists as an
//! alternative to raw pair similarity: HUMO only requires a metric under which
//! precision is (statistically) monotone, and a calibrated match probability is
//! exactly that.

use crate::features::LabeledExample;
use crate::svm::validate_training_set;
use crate::{MlError, Result};
use er_core::workload::QualityMetrics;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the logistic-regression trainer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogisticConfig {
    /// Learning rate of the SGD updates.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
    /// Number of stochastic epochs over the training set.
    pub epochs: usize,
    /// RNG seed for example sampling.
    pub seed: u64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        Self { learning_rate: 0.5, l2: 1e-6, epochs: 40, seed: 1 }
    }
}

/// A trained logistic-regression model: `P(match | x) = σ(w · x + b)`.
#[derive(Debug, Clone, PartialEq)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// Trains the model on the given examples.
    pub fn train(examples: &[LabeledExample], config: LogisticConfig) -> Result<Self> {
        validate_training_set(examples)?;
        if config.learning_rate <= 0.0 || !config.learning_rate.is_finite() {
            return Err(MlError::InvalidConfig("learning rate must be positive".to_string()));
        }
        if config.epochs == 0 {
            return Err(MlError::InvalidConfig("epochs must be at least 1".to_string()));
        }
        let dim = examples[0].features.len();
        let mut weights = vec![0.0; dim];
        let mut bias = 0.0;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = examples.len();
        for epoch in 0..config.epochs {
            // Simple inverse-scaling learning-rate schedule.
            let lr = config.learning_rate / (1.0 + epoch as f64 * 0.1);
            for _ in 0..n {
                let e = &examples[rng.gen_range(0..n)];
                let y = if e.label { 1.0 } else { 0.0 };
                let p = sigmoid(dot(&weights, &e.features) + bias);
                let error = p - y;
                for (w, &x) in weights.iter_mut().zip(&e.features) {
                    *w -= lr * (error * x + config.l2 * *w);
                }
                bias -= lr * error;
            }
        }
        Ok(Self { weights, bias })
    }

    /// The learned weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Predicted match probability in `[0, 1]` — the "match probability" machine metric.
    pub fn predict_probability(&self, features: &[f64]) -> f64 {
        sigmoid(dot(&self.weights, features) + self.bias)
    }

    /// Predicted label using the 0.5 probability threshold.
    pub fn predict(&self, features: &[f64]) -> bool {
        self.predict_probability(features) >= 0.5
    }

    /// Evaluates the classifier on labeled examples.
    pub fn evaluate(&self, examples: &[LabeledExample]) -> QualityMetrics {
        let mut tp = 0;
        let mut fp = 0;
        let mut fn_ = 0;
        let mut tn = 0;
        for e in examples {
            match (e.label, self.predict(&e.features)) {
                (true, true) => tp += 1,
                (false, true) => fp += 1,
                (true, false) => fn_ += 1,
                (false, false) => tn += 1,
            }
        }
        QualityMetrics::from_counts(tp, fp, fn_, tn)
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_threshold_examples(n: usize) -> Vec<LabeledExample> {
        // Probability of a match rises with the single feature; mimics an ER
        // similarity feature.
        let mut rng = StdRng::seed_from_u64(9);
        (0..n)
            .map(|_| {
                let x: f64 = rng.gen_range(0.0..1.0);
                let p = 1.0 / (1.0 + (-12.0 * (x - 0.5)).exp());
                LabeledExample::new(vec![x], rng.gen_range(0.0..1.0) < p)
            })
            .collect()
    }

    #[test]
    fn sigmoid_is_stable_and_bounded() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(100.0) <= 1.0);
        assert!(sigmoid(-100.0) >= 0.0);
        assert!(sigmoid(-1000.0).is_finite());
    }

    #[test]
    fn learns_monotone_probability() {
        let examples = noisy_threshold_examples(4_000);
        let model = LogisticRegression::train(&examples, LogisticConfig::default()).unwrap();
        let low = model.predict_probability(&[0.1]);
        let mid = model.predict_probability(&[0.5]);
        let high = model.predict_probability(&[0.9]);
        assert!(low < mid && mid < high, "probabilities should increase: {low} {mid} {high}");
        assert!(low < 0.3, "low-similarity pairs should get low probability, got {low}");
        assert!(high > 0.7, "high-similarity pairs should get high probability, got {high}");
    }

    #[test]
    fn evaluation_beats_chance_on_learnable_data() {
        let examples = noisy_threshold_examples(4_000);
        let model = LogisticRegression::train(&examples, LogisticConfig::default()).unwrap();
        let metrics = model.evaluate(&examples);
        assert!(metrics.f1() > 0.8, "expected decent fit, got F1 {}", metrics.f1());
    }

    #[test]
    fn rejects_bad_inputs() {
        let examples = noisy_threshold_examples(100);
        assert!(LogisticRegression::train(&[], LogisticConfig::default()).is_err());
        assert!(LogisticRegression::train(
            &examples,
            LogisticConfig { learning_rate: 0.0, ..Default::default() }
        )
        .is_err());
        assert!(LogisticRegression::train(
            &examples,
            LogisticConfig { epochs: 0, ..Default::default() }
        )
        .is_err());
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let examples = noisy_threshold_examples(500);
        let a = LogisticRegression::train(&examples, LogisticConfig::default()).unwrap();
        let b = LogisticRegression::train(&examples, LogisticConfig::default()).unwrap();
        assert_eq!(a, b);
    }
}
