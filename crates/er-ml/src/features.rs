//! Feature extraction and dataset splitting for the machine classifiers.

use crate::{MlError, Result};
use er_core::aggregate::PairScorer;
use er_core::record::Record;
use er_core::workload::Workload;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A labeled training/evaluation example.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledExample {
    /// Numeric features, typically attribute similarities in `[0, 1]`.
    pub features: Vec<f64>,
    /// Ground-truth label: `true` for a matching pair.
    pub label: bool,
}

impl LabeledExample {
    /// Creates an example.
    pub fn new(features: Vec<f64>, label: bool) -> Self {
        Self { features, label }
    }
}

/// Extracts the attribute-similarity feature vector of a record pair.
///
/// Missing attribute comparisons are encoded as `0.0` similarity plus a trailing
/// companion feature counting the fraction of missing attributes, so classifiers
/// can distinguish "dissimilar" from "unknown".
pub fn pair_features(scorer: &PairScorer, a: &Record, b: &Record) -> Vec<f64> {
    let raw = scorer.attribute_scores(a, b);
    let missing = raw.iter().filter(|s| s.is_none()).count();
    let mut features: Vec<f64> = raw.into_iter().map(|s| s.unwrap_or(0.0)).collect();
    let denom = features.len().max(1) as f64;
    features.push(missing as f64 / denom);
    features
}

/// Builds single-feature examples (the pair similarity) from a pair-level workload.
///
/// This is how the SVM quality-reference experiment (Table I) is driven on the
/// calibrated DS/AB workloads, where the aggregated similarity is the only
/// machine metric available.
pub fn workload_examples(workload: &Workload) -> Vec<LabeledExample> {
    workload
        .pairs()
        .iter()
        .map(|p| LabeledExample::new(vec![p.similarity()], p.is_match()))
        .collect()
}

/// A shuffled train/test split of labeled examples.
#[derive(Debug, Clone)]
pub struct TrainTestSplit {
    /// Training examples.
    pub train: Vec<LabeledExample>,
    /// Held-out evaluation examples.
    pub test: Vec<LabeledExample>,
}

impl TrainTestSplit {
    /// Splits `examples` into a training fraction and a test remainder after a
    /// seeded shuffle.
    ///
    /// Returns an error if `train_fraction` is outside `(0, 1)` or either side of
    /// the split would be empty.
    pub fn new(examples: &[LabeledExample], train_fraction: f64, seed: u64) -> Result<Self> {
        if !(0.0..1.0).contains(&train_fraction) || train_fraction == 0.0 {
            return Err(MlError::InvalidConfig(format!(
                "train fraction must be in (0,1), got {train_fraction}"
            )));
        }
        if examples.len() < 2 {
            return Err(MlError::InvalidTrainingData(
                "need at least two examples to split".to_string(),
            ));
        }
        let mut shuffled: Vec<LabeledExample> = examples.to_vec();
        let mut rng = StdRng::seed_from_u64(seed);
        shuffled.shuffle(&mut rng);
        let cut = ((examples.len() as f64) * train_fraction).round() as usize;
        let cut = cut.clamp(1, examples.len() - 1);
        let test = shuffled.split_off(cut);
        Ok(Self { train: shuffled, test })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_core::aggregate::{AttributeMeasure, AttributeWeighting, ScoringConfig};
    use er_core::record::{Record, RecordId};
    use er_core::similarity::StringMeasure;
    use er_core::text::Tokenizer;

    fn scorer() -> PairScorer {
        let config = ScoringConfig::new(
            [
                ("title", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
                ("venue", AttributeMeasure::Text(StringMeasure::JaroWinkler)),
            ],
            AttributeWeighting::Uniform,
        );
        PairScorer::new(&config, &[]).unwrap()
    }

    #[test]
    fn pair_features_include_missing_indicator() {
        let s = scorer();
        let a = Record::new(RecordId(1)).with("title", "entity resolution").with("venue", "icde");
        let b = Record::new(RecordId(2)).with("title", "entity resolution");
        let f = pair_features(&s, &a, &b);
        assert_eq!(f.len(), 3); // two attributes + missing fraction
        assert!((f[0] - 1.0).abs() < 1e-12);
        assert_eq!(f[1], 0.0); // missing venue encoded as zero similarity
        assert!((f[2] - 0.5).abs() < 1e-12); // one of two attributes missing
    }

    #[test]
    fn workload_examples_copy_similarity_and_label() {
        let w = Workload::from_scores(vec![(0.2, false), (0.9, true)]).unwrap();
        let ex = workload_examples(&w);
        assert_eq!(ex.len(), 2);
        assert_eq!(ex[0].features, vec![0.2]);
        assert!(!ex[0].label);
        assert!(ex[1].label);
    }

    #[test]
    fn split_sizes_and_determinism() {
        let examples: Vec<LabeledExample> =
            (0..100).map(|i| LabeledExample::new(vec![i as f64], i % 2 == 0)).collect();
        let s1 = TrainTestSplit::new(&examples, 0.7, 5).unwrap();
        let s2 = TrainTestSplit::new(&examples, 0.7, 5).unwrap();
        assert_eq!(s1.train.len(), 70);
        assert_eq!(s1.test.len(), 30);
        assert_eq!(s1.train, s2.train);
        // All examples preserved.
        assert_eq!(s1.train.len() + s1.test.len(), examples.len());
    }

    #[test]
    fn split_rejects_bad_input() {
        let examples: Vec<LabeledExample> =
            (0..10).map(|i| LabeledExample::new(vec![i as f64], true)).collect();
        assert!(TrainTestSplit::new(&examples, 0.0, 1).is_err());
        assert!(TrainTestSplit::new(&examples, 1.0, 1).is_err());
        assert!(TrainTestSplit::new(&examples[..1], 0.5, 1).is_err());
    }
}
