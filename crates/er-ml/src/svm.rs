//! Linear support-vector machine trained with Pegasos.
//!
//! The paper uses an SVM-based classifier (Köpcke et al.'s evaluation setup) as a
//! quality reference point (Table I) and mentions "SVM distance" — the signed
//! distance to the separating hyperplane — as one of the machine metrics HUMO can
//! be driven by. This implementation trains a linear SVM with the Pegasos
//! stochastic sub-gradient solver (Shalev-Shwartz et al.), which is simple,
//! dependency-free and plenty accurate for similarity-feature spaces.

use crate::features::LabeledExample;
use crate::{MlError, Result};
use er_core::workload::QualityMetrics;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the Pegasos SVM trainer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmConfig {
    /// Regularization strength `λ` (larger → simpler model).
    pub lambda: f64,
    /// Number of stochastic epochs over the training set.
    pub epochs: usize,
    /// RNG seed for example sampling.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self { lambda: 1e-4, epochs: 30, seed: 1 }
    }
}

/// A trained linear SVM: `f(x) = w · x + b`, predicted match when `f(x) ≥ 0`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearSvm {
    weights: Vec<f64>,
    bias: f64,
}

impl LinearSvm {
    /// Trains a linear SVM on the given examples.
    ///
    /// Returns an error if the training set is empty, contains a single class
    /// only, or mixes feature dimensionalities.
    pub fn train(examples: &[LabeledExample], config: SvmConfig) -> Result<Self> {
        validate_training_set(examples)?;
        if config.lambda <= 0.0 || !config.lambda.is_finite() {
            return Err(MlError::InvalidConfig(format!(
                "lambda must be positive, got {}",
                config.lambda
            )));
        }
        if config.epochs == 0 {
            return Err(MlError::InvalidConfig("epochs must be at least 1".to_string()));
        }
        let dim = examples[0].features.len();
        let mut weights = vec![0.0; dim];
        let mut bias = 0.0;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let n = examples.len();
        let total_steps = config.epochs * n;
        for t in 1..=total_steps {
            let example = &examples[rng.gen_range(0..n)];
            let y = if example.label { 1.0 } else { -1.0 };
            let eta = 1.0 / (config.lambda * t as f64);
            let margin = y * (dot(&weights, &example.features) + bias);
            // Sub-gradient step on the regularizer...
            for w in weights.iter_mut() {
                *w *= 1.0 - eta * config.lambda;
            }
            // ...plus the hinge-loss term when the margin is violated.
            if margin < 1.0 {
                for (w, &x) in weights.iter_mut().zip(&example.features) {
                    *w += eta * y * x;
                }
                bias += eta * y;
            }
        }
        Ok(Self { weights, bias })
    }

    /// The learned weight vector.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The learned bias term.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// Signed decision value `w · x + b` — the "SVM distance" machine metric.
    pub fn decision_value(&self, features: &[f64]) -> f64 {
        dot(&self.weights, features) + self.bias
    }

    /// Predicted label (`true` = match).
    pub fn predict(&self, features: &[f64]) -> bool {
        self.decision_value(features) >= 0.0
    }

    /// Maps the decision value through a logistic link into `[0, 1]`, usable as a
    /// normalized machine metric for HUMO.
    pub fn normalized_score(&self, features: &[f64]) -> f64 {
        1.0 / (1.0 + (-self.decision_value(features)).exp())
    }

    /// Evaluates the classifier on labeled examples.
    pub fn evaluate(&self, examples: &[LabeledExample]) -> QualityMetrics {
        let mut tp = 0;
        let mut fp = 0;
        let mut fn_ = 0;
        let mut tn = 0;
        for e in examples {
            match (e.label, self.predict(&e.features)) {
                (true, true) => tp += 1,
                (false, true) => fp += 1,
                (true, false) => fn_ += 1,
                (false, false) => tn += 1,
            }
        }
        QualityMetrics::from_counts(tp, fp, fn_, tn)
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

pub(crate) fn validate_training_set(examples: &[LabeledExample]) -> Result<()> {
    if examples.is_empty() {
        return Err(MlError::InvalidTrainingData("empty training set".to_string()));
    }
    let dim = examples[0].features.len();
    if dim == 0 {
        return Err(MlError::InvalidTrainingData("zero-dimensional features".to_string()));
    }
    for e in examples {
        if e.features.len() != dim {
            return Err(MlError::DimensionMismatch { expected: dim, actual: e.features.len() });
        }
        if e.features.iter().any(|f| !f.is_finite()) {
            return Err(MlError::InvalidTrainingData("non-finite feature value".to_string()));
        }
    }
    let positives = examples.iter().filter(|e| e.label).count();
    if positives == 0 || positives == examples.len() {
        return Err(MlError::InvalidTrainingData(
            "training set must contain both classes".to_string(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linearly separable two-feature data: match iff x0 + x1 > 1.
    fn separable_examples(n: usize) -> Vec<LabeledExample> {
        let mut rng = StdRng::seed_from_u64(3);
        (0..n)
            .map(|_| {
                let x0: f64 = rng.gen_range(0.0..1.0);
                let x1: f64 = rng.gen_range(0.0..1.0);
                LabeledExample::new(vec![x0, x1], x0 + x1 > 1.0)
            })
            .collect()
    }

    #[test]
    fn learns_a_separable_problem() {
        let examples = separable_examples(2_000);
        let svm = LinearSvm::train(&examples, SvmConfig::default()).unwrap();
        let metrics = svm.evaluate(&examples);
        assert!(metrics.f1() > 0.95, "expected near-perfect fit, got F1 {}", metrics.f1());
    }

    #[test]
    fn decision_value_orders_examples_by_confidence() {
        let examples = separable_examples(2_000);
        let svm = LinearSvm::train(&examples, SvmConfig::default()).unwrap();
        // A clearly-positive point should have a larger decision value than a
        // borderline one, which in turn exceeds a clearly-negative one.
        let strong = svm.decision_value(&[1.0, 1.0]);
        let weak = svm.decision_value(&[0.55, 0.5]);
        let negative = svm.decision_value(&[0.0, 0.0]);
        assert!(strong > weak);
        assert!(weak > negative);
    }

    #[test]
    fn normalized_score_is_a_probability() {
        let examples = separable_examples(500);
        let svm = LinearSvm::train(&examples, SvmConfig::default()).unwrap();
        for e in &examples {
            let s = svm.normalized_score(&e.features);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn rejects_degenerate_training_sets() {
        assert!(LinearSvm::train(&[], SvmConfig::default()).is_err());
        let single_class: Vec<LabeledExample> =
            (0..10).map(|i| LabeledExample::new(vec![i as f64], true)).collect();
        assert!(LinearSvm::train(&single_class, SvmConfig::default()).is_err());
        let ragged =
            vec![LabeledExample::new(vec![1.0], true), LabeledExample::new(vec![1.0, 2.0], false)];
        assert!(LinearSvm::train(&ragged, SvmConfig::default()).is_err());
    }

    #[test]
    fn rejects_bad_config() {
        let examples = separable_examples(50);
        assert!(
            LinearSvm::train(&examples, SvmConfig { lambda: 0.0, ..Default::default() }).is_err()
        );
        assert!(LinearSvm::train(&examples, SvmConfig { epochs: 0, ..Default::default() }).is_err());
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let examples = separable_examples(300);
        let a = LinearSvm::train(&examples, SvmConfig::default()).unwrap();
        let b = LinearSvm::train(&examples, SvmConfig::default()).unwrap();
        assert_eq!(a, b);
    }
}
