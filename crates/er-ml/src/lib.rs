//! Machine-learning substrate for entity resolution.
//!
//! The HUMO paper compares against two machine-side baselines and this crate
//! provides both, plus the plumbing to feed them:
//!
//! * [`features`] — turning record pairs (or pair-level workloads) into numeric
//!   feature vectors, and splitting labeled examples into train/test sets;
//! * [`svm`] — a linear SVM trained with the Pegasos stochastic sub-gradient
//!   algorithm; its signed decision value is one of the "machine metrics" the
//!   paper mentions (SVM distance) and its precision/recall/F1 reproduce the
//!   quality-reference numbers of Table I;
//! * [`logistic`] — logistic regression, providing the "match probability"
//!   machine metric;
//! * [`active`] — the ACTL baseline: an active-learning threshold classifier that
//!   maximizes recall subject to a user-specified precision level, estimating
//!   precision by sampling manually labeled pairs (Arasu et al. SIGMOD'10 /
//!   Bellare et al. KDD'12 style). Tables V, VI and Figure 11 compare HUMO
//!   against it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod active;
pub mod error;
pub mod features;
pub mod logistic;
pub mod svm;

pub use active::{ActiveLearningClassifier, ActlConfig, ActlResult};
pub use error::MlError;
pub use features::{pair_features, LabeledExample, TrainTestSplit};
pub use logistic::{LogisticConfig, LogisticRegression};
pub use svm::{LinearSvm, SvmConfig};

/// Convenience result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, MlError>;
