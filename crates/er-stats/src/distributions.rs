//! Univariate probability distributions: Normal and Student's t.
//!
//! HUMO needs two things from these distributions:
//!
//! * the two-sided critical value `t_(1-θ, d.f.)` of Student's t distribution
//!   used in the stratified-sampling confidence interval of Eq. 12;
//! * the two-sided critical value `Z_(1-θ)` of the standard normal distribution
//!   used in the Gaussian-process confidence interval of Eq. 21.
//!
//! Both are exposed via [`Normal::two_sided_critical_value`] and
//! [`StudentT::two_sided_critical_value`].

use crate::special::{erfc, ln_gamma, regularized_incomplete_beta};
use crate::{Result, StatsError};

/// A normal (Gaussian) distribution parameterized by mean and standard deviation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard deviation.
    ///
    /// Returns an error if `std_dev` is not strictly positive or not finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self> {
        if !mean.is_finite() || !std_dev.is_finite() {
            return Err(StatsError::InvalidArgument(
                "normal parameters must be finite".to_string(),
            ));
        }
        if std_dev <= 0.0 {
            return Err(StatsError::InvalidArgument(format!(
                "standard deviation must be positive, got {std_dev}"
            )));
        }
        Ok(Self { mean, std_dev })
    }

    /// The standard normal distribution `N(0, 1)`.
    pub fn standard() -> Self {
        Self { mean: 0.0, std_dev: 1.0 }
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std_dev;
        (-0.5 * z * z).exp() / (self.std_dev * (2.0 * std::f64::consts::PI).sqrt())
    }

    /// Cumulative distribution function.
    pub fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mean) / self.std_dev;
        0.5 * erfc(-z / std::f64::consts::SQRT_2)
    }

    /// Inverse CDF (quantile function) for `p ∈ (0, 1)`.
    ///
    /// Uses Acklam's rational approximation refined by one Halley iteration,
    /// giving close to machine-precision results.
    pub fn inverse_cdf(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(StatsError::InvalidArgument(format!(
                "quantile probability must be in [0,1], got {p}"
            )));
        }
        if p == 0.0 {
            return Ok(f64::NEG_INFINITY);
        }
        if p == 1.0 {
            return Ok(f64::INFINITY);
        }
        let z = standard_normal_quantile(p);
        Ok(self.mean + self.std_dev * z)
    }

    /// Two-sided critical value `z` such that `P(-z < Z < z) = confidence`
    /// for the standard form of this distribution.
    ///
    /// This is the `Z_(1-θ)` of Eq. 21 in the paper, i.e. the
    /// `(1 - (1-θ)/2)` quantile of the standard normal distribution.
    pub fn two_sided_critical_value(confidence: f64) -> Result<f64> {
        if !(0.0..1.0).contains(&confidence) {
            return Err(StatsError::InvalidArgument(format!(
                "confidence must be in [0,1), got {confidence}"
            )));
        }
        let p = 1.0 - (1.0 - confidence) / 2.0;
        Normal::standard().inverse_cdf(p)
    }
}

/// Acklam's inverse normal CDF approximation with one step of Halley refinement.
fn standard_normal_quantile(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);

    // Acklam's coefficients, quoted at full published precision.
    #[allow(clippy::excessive_precision)]
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_690e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.024_25;
    const P_HIGH: f64 = 1.0 - P_LOW;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= P_HIGH {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement using the exact CDF.
    let e = 0.5 * erfc(-x / std::f64::consts::SQRT_2) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

/// Student's t distribution with `ν` degrees of freedom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudentT {
    degrees_of_freedom: f64,
}

impl StudentT {
    /// Creates a Student's t distribution with the given degrees of freedom.
    pub fn new(degrees_of_freedom: f64) -> Result<Self> {
        if !degrees_of_freedom.is_finite() || degrees_of_freedom <= 0.0 {
            return Err(StatsError::InvalidArgument(format!(
                "degrees of freedom must be positive and finite, got {degrees_of_freedom}"
            )));
        }
        Ok(Self { degrees_of_freedom })
    }

    /// The degrees of freedom `ν`.
    pub fn degrees_of_freedom(&self) -> f64 {
        self.degrees_of_freedom
    }

    /// Probability density function.
    pub fn pdf(&self, x: f64) -> f64 {
        let nu = self.degrees_of_freedom;
        let ln_coef = ln_gamma((nu + 1.0) / 2.0)
            - ln_gamma(nu / 2.0)
            - 0.5 * (nu * std::f64::consts::PI).ln();
        (ln_coef - (nu + 1.0) / 2.0 * (1.0 + x * x / nu).ln()).exp()
    }

    /// Cumulative distribution function, via the regularized incomplete beta function.
    pub fn cdf(&self, x: f64) -> f64 {
        let nu = self.degrees_of_freedom;
        if x == 0.0 {
            return 0.5;
        }
        let t2 = x * x;
        let ib = regularized_incomplete_beta(nu / 2.0, 0.5, nu / (nu + t2));
        if x > 0.0 {
            1.0 - 0.5 * ib
        } else {
            0.5 * ib
        }
    }

    /// Inverse CDF (quantile function) for `p ∈ (0, 1)`.
    ///
    /// Computed by a bracketing bisection/Newton hybrid on the CDF; the CDF is
    /// smooth and strictly increasing so this converges to ~1e-12.
    pub fn inverse_cdf(&self, p: f64) -> Result<f64> {
        if !(0.0..=1.0).contains(&p) {
            return Err(StatsError::InvalidArgument(format!(
                "quantile probability must be in [0,1], got {p}"
            )));
        }
        if p == 0.0 {
            return Ok(f64::NEG_INFINITY);
        }
        if p == 1.0 {
            return Ok(f64::INFINITY);
        }
        if (p - 0.5).abs() < 1e-15 {
            return Ok(0.0);
        }
        // Initial guess from the normal quantile, then expand a bracket.
        let guess = standard_normal_quantile(p);
        let mut lo = guess - 1.0;
        let mut hi = guess + 1.0;
        for _ in 0..200 {
            if self.cdf(lo) <= p {
                break;
            }
            lo = lo * 2.0 - 1.0;
        }
        for _ in 0..200 {
            if self.cdf(hi) >= p {
                break;
            }
            hi = hi * 2.0 + 1.0;
        }
        let mut x = guess.clamp(lo, hi);
        for _ in 0..200 {
            let f = self.cdf(x) - p;
            if f.abs() < 1e-14 {
                return Ok(x);
            }
            if f > 0.0 {
                hi = x;
            } else {
                lo = x;
            }
            // Newton step with bisection fallback.
            let dfdx = self.pdf(x);
            let newton = if dfdx > 1e-300 { x - f / dfdx } else { f64::NAN };
            x = if newton.is_finite() && newton > lo && newton < hi {
                newton
            } else {
                0.5 * (lo + hi)
            };
            if (hi - lo).abs() < 1e-13 * (1.0 + x.abs()) {
                return Ok(x);
            }
        }
        Ok(x)
    }

    /// Two-sided critical value `t` such that `P(-t < T < t) = confidence`.
    ///
    /// This is the `t_(1-θ, d.f.)` used in Eq. 12 of the paper.
    pub fn two_sided_critical_value(&self, confidence: f64) -> Result<f64> {
        if !(0.0..1.0).contains(&confidence) {
            return Err(StatsError::InvalidArgument(format!(
                "confidence must be in [0,1), got {confidence}"
            )));
        }
        self.inverse_cdf(1.0 - (1.0 - confidence) / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!((actual - expected).abs() <= tol, "expected {expected}, got {actual} (tol {tol})");
    }

    #[test]
    fn normal_rejects_bad_parameters() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(3.0, 2.0).is_ok());
    }

    #[test]
    fn standard_normal_cdf_known_values() {
        let n = Normal::standard();
        assert_close(n.cdf(0.0), 0.5, 2e-7);
        assert_close(n.cdf(1.0), 0.841_344_746_068_543, 1e-6);
        assert_close(n.cdf(-1.0), 0.158_655_253_931_457, 1e-6);
        assert_close(n.cdf(1.96), 0.975_002_104_851_780, 1e-6);
    }

    #[test]
    fn normal_quantile_round_trip() {
        let n = Normal::new(2.0, 3.0).unwrap();
        for p in [0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.975, 0.999] {
            let x = n.inverse_cdf(p).unwrap();
            assert_close(n.cdf(x), p, 1e-7);
        }
    }

    #[test]
    fn normal_two_sided_critical_values() {
        // Classical z critical values.
        assert_close(Normal::two_sided_critical_value(0.95).unwrap(), 1.959_963_985, 1e-4);
        assert_close(Normal::two_sided_critical_value(0.90).unwrap(), 1.644_853_627, 1e-4);
        assert_close(Normal::two_sided_critical_value(0.99).unwrap(), 2.575_829_304, 1e-4);
    }

    #[test]
    fn student_t_pdf_symmetry_and_cdf_center() {
        let t = StudentT::new(7.0).unwrap();
        assert_close(t.pdf(1.3), t.pdf(-1.3), 1e-12);
        assert_close(t.cdf(0.0), 0.5, 1e-12);
    }

    #[test]
    fn student_t_known_critical_values() {
        // Textbook two-sided 95% critical values.
        let t5 = StudentT::new(5.0).unwrap();
        assert_close(t5.two_sided_critical_value(0.95).unwrap(), 2.570_58, 1e-3);
        let t10 = StudentT::new(10.0).unwrap();
        assert_close(t10.two_sided_critical_value(0.95).unwrap(), 2.228_14, 1e-3);
        let t30 = StudentT::new(30.0).unwrap();
        assert_close(t30.two_sided_critical_value(0.95).unwrap(), 2.042_27, 1e-3);
    }

    #[test]
    fn student_t_cdf_quantile_round_trip() {
        let t = StudentT::new(4.0).unwrap();
        for p in [0.01, 0.05, 0.2, 0.5, 0.8, 0.95, 0.99] {
            let x = t.inverse_cdf(p).unwrap();
            assert_close(t.cdf(x), p, 1e-9);
        }
    }

    #[test]
    fn student_t_approaches_normal_for_large_df() {
        let t = StudentT::new(10_000.0).unwrap();
        let n = Normal::standard();
        for x in [-2.0, -1.0, 0.5, 1.5, 2.5] {
            assert_close(t.cdf(x), n.cdf(x), 1e-3);
        }
    }

    #[test]
    fn extreme_quantiles_are_infinite() {
        let n = Normal::standard();
        assert_eq!(n.inverse_cdf(0.0).unwrap(), f64::NEG_INFINITY);
        assert_eq!(n.inverse_cdf(1.0).unwrap(), f64::INFINITY);
        let t = StudentT::new(3.0).unwrap();
        assert_eq!(t.inverse_cdf(0.0).unwrap(), f64::NEG_INFINITY);
        assert_eq!(t.inverse_cdf(1.0).unwrap(), f64::INFINITY);
    }
}
