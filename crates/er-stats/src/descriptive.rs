//! Descriptive statistics helpers shared across the workspace.

/// Arithmetic mean of a slice. Returns `0.0` for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Unbiased sample variance (denominator `n - 1`). Returns `0.0` when fewer
/// than two values are provided.
pub fn sample_variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64
}

/// Population variance (denominator `n`). Returns `0.0` for an empty slice.
pub fn population_variance(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Sample standard deviation (square root of [`sample_variance`]).
pub fn standard_deviation(values: &[f64]) -> f64 {
    sample_variance(values).sqrt()
}

/// Median of a slice (averaging the two central elements for even lengths).
/// Returns `0.0` for an empty slice.
pub fn median(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("median requires non-NaN values"));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        0.5 * (sorted[n / 2 - 1] + sorted[n / 2])
    }
}

/// Minimum of a slice, ignoring NaNs. Returns `None` for an empty slice.
pub fn min(values: &[f64]) -> Option<f64> {
    values.iter().copied().filter(|v| !v.is_nan()).reduce(f64::min)
}

/// Maximum of a slice, ignoring NaNs. Returns `None` for an empty slice.
pub fn max(values: &[f64]) -> Option<f64> {
    values.iter().copied().filter(|v| !v.is_nan()).reduce(f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn mean_simple() {
        assert_eq!(mean(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn variance_of_constant_is_zero() {
        assert_eq!(sample_variance(&[3.0, 3.0, 3.0]), 0.0);
        assert_eq!(population_variance(&[3.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    fn sample_vs_population_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((population_variance(&xs) - 4.0).abs() < 1e-12);
        assert!((sample_variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn min_max() {
        assert_eq!(min(&[3.0, -1.0, 2.0]), Some(-1.0));
        assert_eq!(max(&[3.0, -1.0, 2.0]), Some(3.0));
        assert_eq!(min(&[]), None);
    }
}
