//! Confidence-interval value type shared by the sampling and GP estimators.

/// A two-sided confidence interval `[lower, upper]` at a given confidence level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower endpoint.
    pub lower: f64,
    /// Upper endpoint.
    pub upper: f64,
    /// Confidence level in `[0, 1)` at which the interval was constructed.
    pub confidence: f64,
}

impl ConfidenceInterval {
    /// Creates an interval, swapping the endpoints if they were given out of order.
    pub fn new(lower: f64, upper: f64, confidence: f64) -> Self {
        if lower <= upper {
            Self { lower, upper, confidence }
        } else {
            Self { lower: upper, upper: lower, confidence }
        }
    }

    /// Interval width (`upper - lower`).
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Midpoint of the interval.
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lower + self.upper)
    }

    /// Whether the interval contains `value` (inclusive on both ends).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }

    /// Clamps both endpoints to the given range (useful for proportions in `[0,1]`
    /// or counts in `[0, N]`).
    pub fn clamp(&self, min: f64, max: f64) -> Self {
        Self {
            lower: self.lower.clamp(min, max),
            upper: self.upper.clamp(min, max),
            confidence: self.confidence,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_orders_endpoints() {
        let ci = ConfidenceInterval::new(3.0, 1.0, 0.9);
        assert_eq!(ci.lower, 1.0);
        assert_eq!(ci.upper, 3.0);
    }

    #[test]
    fn width_midpoint_contains() {
        let ci = ConfidenceInterval::new(2.0, 6.0, 0.95);
        assert_eq!(ci.width(), 4.0);
        assert_eq!(ci.midpoint(), 4.0);
        assert!(ci.contains(2.0));
        assert!(ci.contains(6.0));
        assert!(ci.contains(4.2));
        assert!(!ci.contains(6.1));
    }

    #[test]
    fn clamp_restricts_both_ends() {
        let ci = ConfidenceInterval::new(-1.0, 2.0, 0.9).clamp(0.0, 1.0);
        assert_eq!(ci.lower, 0.0);
        assert_eq!(ci.upper, 1.0);
    }
}
