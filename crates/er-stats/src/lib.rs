//! Statistics substrate for the HUMO entity-resolution framework.
//!
//! The HUMO optimizers (see the `humo` crate) need a small but complete statistical
//! toolbox:
//!
//! * univariate distributions with accurate quantile functions
//!   ([`distributions::Normal`], [`distributions::StudentT`]) — used to turn a
//!   confidence level `θ` into critical values for the sampling-based bounds
//!   (Eq. 12 and Eq. 21 of the paper);
//! * stratified random sampling estimators ([`sampling`]) following Cochran's
//!   *Sampling Techniques* — used by the all-sampling solution (Section VI-A);
//! * dense linear algebra ([`linalg`]) with a Cholesky factorization — the only
//!   decomposition needed by Gaussian-process regression;
//! * Gaussian-process regression ([`gp`]) with an RBF kernel — used by the
//!   partial-sampling solution (Section VI-B, Algorithm 1) to approximate the
//!   match-proportion function from a handful of sampled subsets;
//! * one-sided binomial Clopper–Pearson limits ([`binomial`]) and
//!   distance-dependent posterior inflation ([`gp::posterior_inflation_factor`])
//!   — the detection-limit machinery behind the tail-calibrated estimator that
//!   keeps the recall guarantee honest on flat match-proportion curves.
//!
//! Everything is implemented from scratch on top of `std`; no external numerical
//! libraries are used.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binomial;
pub mod descriptive;
pub mod distributions;
pub mod gp;
pub mod interval;
pub mod linalg;
pub mod sampling;
pub mod special;

pub use binomial::{
    beta_quantile, clopper_pearson_lower, clopper_pearson_upper, detection_limit,
    detection_limit_lower, effective_sample_size, pooled_lower_limit, pooled_upper_limit,
};
pub use descriptive::{mean, population_variance, sample_variance, standard_deviation};
pub use distributions::{Normal, StudentT};
pub use gp::{
    posterior_inflation_factor, GaussianProcess, GpConfig, GpPosterior, Kernel, RbfKernel,
};
pub use interval::ConfidenceInterval;
pub use linalg::{CholeskyError, Matrix, Vector};
pub use sampling::{SampleSummary, StratifiedEstimate, Stratum};

/// Error type shared by the numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// An argument was outside of the mathematically valid domain.
    InvalidArgument(String),
    /// A matrix operation failed (e.g. Cholesky of a non-SPD matrix).
    Linalg(String),
    /// An iterative routine failed to converge.
    NoConvergence(String),
}

impl std::fmt::Display for StatsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StatsError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            StatsError::Linalg(msg) => write!(f, "linear algebra error: {msg}"),
            StatsError::NoConvergence(msg) => write!(f, "no convergence: {msg}"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Convenience result alias for fallible statistics routines.
pub type Result<T> = std::result::Result<T, StatsError>;
