//! Special mathematical functions used by the distribution implementations.
//!
//! All routines are classical numerical recipes implemented from scratch:
//! Lanczos log-gamma, the regularized incomplete beta function via Lentz's
//! continued fraction, and the error function pair `erf`/`erfc`.

/// Lanczos coefficients for `g = 7`, `n = 9` (Boost/Numerical-Recipes flavour).
const LANCZOS_G: f64 = 7.0;
// Quoted at full published precision.
#[allow(clippy::excessive_precision)]
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_571_6e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation; absolute error is below `1e-13` over the
/// range used by this crate.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument, got {x}");
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` for `a, b > 0`, `x ∈ [0, 1]`.
///
/// Evaluated with the continued-fraction expansion (Lentz's method), switching
/// to the symmetric form when `x` is past the distribution mean so the
/// continued fraction converges quickly.
pub fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "incomplete beta requires positive shape parameters");
    assert!((0.0..=1.0).contains(&x), "incomplete beta requires x in [0,1], got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_continued_fraction(a, b, x) / a
    } else {
        1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta function (Numerical Recipes `betacf`).
fn beta_continued_fraction(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-15;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            return h;
        }
    }
    h
}

/// Complementary error function `erfc(x)` with fractional error below `1.2e-7`.
///
/// Chebyshev fitting from Numerical Recipes, extended to full `f64` range by
/// exploiting `erfc(-x) = 2 - erfc(x)`.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.265_512_23
            + t * (1.000_023_68
                + t * (0.374_091_96
                    + t * (0.096_784_18
                        + t * (-0.186_288_06
                            + t * (0.278_868_07
                                + t * (-1.135_203_98
                                    + t * (1.488_515_87
                                        + t * (-0.822_152_23 + t * 0.170_872_77)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function `erf(x)`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!((actual - expected).abs() <= tol, "expected {expected}, got {actual} (tol {tol})");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)! for integers.
        let factorials = [1.0f64, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (i, &f) in factorials.iter().enumerate() {
            let n = (i + 1) as f64;
            assert_close(ln_gamma(n), f.ln(), 1e-10);
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = sqrt(π).
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-10);
        // Γ(3/2) = sqrt(π)/2.
        assert_close(ln_gamma(1.5), (std::f64::consts::PI.sqrt() / 2.0).ln(), 1e-10);
    }

    #[test]
    fn incomplete_beta_boundaries() {
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
    }

    #[test]
    fn incomplete_beta_symmetry() {
        // I_x(a,b) = 1 - I_{1-x}(b,a).
        for &(a, b, x) in &[(2.0, 5.0, 0.3), (0.5, 0.5, 0.7), (10.0, 2.0, 0.9)] {
            let lhs = regularized_incomplete_beta(a, b, x);
            let rhs = 1.0 - regularized_incomplete_beta(b, a, 1.0 - x);
            assert_close(lhs, rhs, 1e-12);
        }
    }

    #[test]
    fn incomplete_beta_uniform_case() {
        // I_x(1,1) = x (Beta(1,1) is the uniform distribution).
        for x in [0.1, 0.25, 0.5, 0.75, 0.9] {
            assert_close(regularized_incomplete_beta(1.0, 1.0, x), x, 1e-12);
        }
    }

    #[test]
    fn erf_known_values() {
        assert_close(erf(0.0), 0.0, 2e-7);
        assert_close(erf(1.0), 0.842_700_792_949_714_9, 2e-7);
        assert_close(erf(2.0), 0.995_322_265_018_952_7, 2e-7);
        assert_close(erf(-1.0), -0.842_700_792_949_714_9, 2e-7);
    }

    #[test]
    fn erfc_complements_erf() {
        for x in [-2.0, -0.5, 0.0, 0.3, 1.7, 3.0] {
            assert_close(erf(x) + erfc(x), 1.0, 1e-12);
        }
    }
}
