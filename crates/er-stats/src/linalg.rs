//! Minimal dense linear algebra: row-major matrices, Cholesky factorization and
//! the triangular solves needed by Gaussian-process regression.
//!
//! The Gaussian process in [`crate::gp`] only needs to factor symmetric
//! positive-definite covariance matrices, solve linear systems against the
//! factor, and form quadratic products — all of which are provided here without
//! pulling in an external BLAS/LAPACK dependency.

use crate::{Result, StatsError};

/// A dense column vector (thin wrapper over `Vec<f64>` used for clarity in GP code).
pub type Vector = Vec<f64>;

/// Error returned when a Cholesky factorization fails because the matrix is not
/// (numerically) symmetric positive definite.
#[derive(Debug, Clone, PartialEq)]
pub struct CholeskyError {
    /// The pivot index at which a non-positive diagonal was encountered.
    pub pivot: usize,
    /// The offending diagonal value.
    pub value: f64,
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is not positive definite: pivot {} has value {}", self.pivot, self.value)
    }
}

impl std::error::Error for CholeskyError {}

/// A dense, row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the identity matrix of the given order.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(StatsError::Linalg(format!(
                "expected {} elements for a {rows}x{cols} matrix, got {}",
                rows * cols,
                data.len()
            )));
        }
        Ok(Self { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of the underlying row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Returns the transpose of this matrix.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix-matrix product `self * other`.
    ///
    /// # Panics
    /// Panics if the inner dimensions do not match.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vector {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let mut acc = 0.0;
            for j in 0..self.cols {
                acc += self[(i, j)] * v[j];
            }
            out[i] = acc;
        }
        out
    }

    /// Adds `value` to every diagonal entry (useful for jitter/nugget terms).
    pub fn add_diagonal(&mut self, value: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += value;
        }
    }

    /// Computes the lower-triangular Cholesky factor `L` with `L * Lᵀ = self`.
    ///
    /// The matrix must be square and numerically symmetric positive definite.
    pub fn cholesky(&self) -> std::result::Result<Cholesky, CholeskyError> {
        assert_eq!(self.rows, self.cols, "cholesky requires a square matrix");
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(CholeskyError { pivot: i, value: sum });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

/// The lower-triangular Cholesky factor of a symmetric positive-definite matrix.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Order of the factored matrix.
    pub fn order(&self) -> usize {
        self.l.rows()
    }

    /// Solves `A x = b` where `A = L Lᵀ` is the factored matrix.
    pub fn solve(&self, b: &[f64]) -> Vector {
        let y = self.forward_substitute(b);
        self.backward_substitute(&y)
    }

    /// Solves `L y = b` (forward substitution).
    #[allow(clippy::needless_range_loop)] // triangular solve reads clearest with indices
    pub fn forward_substitute(&self, b: &[f64]) -> Vector {
        let n = self.order();
        assert_eq!(b.len(), n, "solve dimension mismatch");
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        y
    }

    /// Solves `Lᵀ x = y` (backward substitution).
    #[allow(clippy::needless_range_loop)]
    pub fn backward_substitute(&self, y: &[f64]) -> Vector {
        let n = self.order();
        assert_eq!(y.len(), n, "solve dimension mismatch");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// Solves `A X = B` column-by-column for a matrix right-hand side.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        let n = self.order();
        assert_eq!(b.rows(), n, "solve_matrix dimension mismatch");
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col: Vec<f64> = (0..n).map(|i| b[(i, j)]).collect();
            let x = self.solve(&col);
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        out
    }

    /// Log-determinant of the factored matrix, `ln det(A) = 2 Σ ln L_ii`.
    pub fn log_determinant(&self) -> f64 {
        (0..self.order()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Appends one row/column to the factored matrix in O(n²).
    ///
    /// Given the factor `L` of an `n × n` matrix `A`, extends it to the factor
    /// of the `(n+1) × (n+1)` matrix whose leading block is `A`, whose new
    /// off-diagonal row/column is `row` and whose new diagonal entry is
    /// `diagonal`. Because every entry of a Cholesky factor depends only on
    /// the leading submatrix, the grown factor is **bit-identical** to
    /// re-factorizing the extended matrix from scratch with
    /// [`Matrix::cholesky`] — at O(n²) cost instead of O(n³).
    ///
    /// Fails with the same [`CholeskyError`] (pivot `n`, the offending value)
    /// that a from-scratch factorization of the extended matrix would report
    /// at its last pivot; on failure `self` is left unchanged.
    ///
    /// # Panics
    /// Panics if `row.len()` differs from the current order.
    #[allow(clippy::needless_range_loop)] // mirrors cholesky(), clearest with indices
    pub fn extend_row(
        &mut self,
        row: &[f64],
        diagonal: f64,
    ) -> std::result::Result<(), CholeskyError> {
        let n = self.order();
        assert_eq!(row.len(), n, "extend_row dimension mismatch");
        // New off-diagonal entries y = L⁻¹ row, with the exact operand order
        // of `Matrix::cholesky` so the result is bit-identical to it.
        let mut y = vec![0.0; n];
        for j in 0..n {
            let mut sum = row[j];
            for k in 0..j {
                sum -= y[k] * self.l[(j, k)];
            }
            y[j] = sum / self.l[(j, j)];
        }
        let mut pivot = diagonal;
        for k in 0..n {
            pivot -= y[k] * y[k];
        }
        if pivot <= 0.0 || !pivot.is_finite() {
            return Err(CholeskyError { pivot: n, value: pivot });
        }
        // Commit only after the pivot check: grow L row-major in place.
        let mut l = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            for j in 0..=i {
                l[(i, j)] = self.l[(i, j)];
            }
        }
        for j in 0..n {
            l[(n, j)] = y[j];
        }
        l[(n, n)] = pivot.sqrt();
        self.l = l;
        Ok(())
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!((actual - expected).abs() <= tol, "expected {expected}, got {actual} (tol {tol})");
    }

    fn spd_example() -> Matrix {
        Matrix::from_rows(3, 3, vec![4.0, 12.0, -16.0, 12.0, 37.0, -43.0, -16.0, -43.0, 98.0])
            .unwrap()
    }

    #[test]
    fn identity_times_matrix_is_matrix() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let i = Matrix::identity(2);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matvec_matches_manual_computation() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(a.matvec(&[5.0, 6.0]), vec![17.0, 39.0]);
    }

    #[test]
    fn cholesky_wikipedia_example() {
        // Classical example: L = [[2,0,0],[6,1,0],[-8,5,3]].
        let chol = spd_example().cholesky().unwrap();
        let l = chol.factor();
        assert_close(l[(0, 0)], 2.0, 1e-12);
        assert_close(l[(1, 0)], 6.0, 1e-12);
        assert_close(l[(1, 1)], 1.0, 1e-12);
        assert_close(l[(2, 0)], -8.0, 1e-12);
        assert_close(l[(2, 1)], 5.0, 1e-12);
        assert_close(l[(2, 2)], 3.0, 1e-12);
    }

    #[test]
    fn cholesky_reconstructs_original() {
        let a = spd_example();
        let chol = a.cholesky().unwrap();
        let l = chol.factor();
        let reconstructed = l.matmul(&l.transpose());
        for i in 0..3 {
            for j in 0..3 {
                assert_close(reconstructed[(i, j)], a[(i, j)], 1e-10);
            }
        }
    }

    #[test]
    fn cholesky_rejects_non_spd() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert!(a.cholesky().is_err());
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = spd_example();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = a.cholesky().unwrap().solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert_close(*xi, *ti, 1e-10);
        }
    }

    #[test]
    fn solve_matrix_against_identity_gives_inverse() {
        let a = spd_example();
        let inv = a.cholesky().unwrap().solve_matrix(&Matrix::identity(3));
        let product = a.matmul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j { 1.0 } else { 0.0 };
                assert_close(product[(i, j)], expected, 1e-9);
            }
        }
    }

    #[test]
    fn log_determinant_matches_product_of_pivots() {
        let a = spd_example();
        // det = (2*1*3)^2 = 36.
        let chol = a.cholesky().unwrap();
        assert_close(chol.log_determinant(), 36.0_f64.ln(), 1e-10);
    }

    #[test]
    fn add_diagonal_adds_jitter() {
        let mut a = Matrix::identity(2);
        a.add_diagonal(0.5);
        assert_eq!(a[(0, 0)], 1.5);
        assert_eq!(a[(1, 1)], 1.5);
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    fn dot_product() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn extend_row_is_bit_identical_to_refactorization() {
        let a = spd_example();
        // Factor the 2x2 leading block, then append A's last row.
        let leading = Matrix::from_fn(2, 2, |i, j| a[(i, j)]);
        let mut grown = leading.cholesky().unwrap();
        grown.extend_row(&[a[(2, 0)], a[(2, 1)]], a[(2, 2)]).unwrap();
        let scratch = a.cholesky().unwrap();
        assert_eq!(grown.factor(), scratch.factor());
        // And grown solves behave like the from-scratch factor's.
        let b = vec![1.0, -2.0, 0.5];
        assert_eq!(grown.solve(&b), scratch.solve(&b));
    }

    #[test]
    fn extend_row_grows_from_an_empty_factor() {
        let a = spd_example();
        let mut chol = Matrix::zeros(0, 0).cholesky().unwrap();
        for i in 0..3 {
            let row: Vec<f64> = (0..i).map(|j| a[(i, j)]).collect();
            chol.extend_row(&row, a[(i, i)]).unwrap();
        }
        assert_eq!(chol.factor(), a.cholesky().unwrap().factor());
    }

    #[test]
    fn extend_row_rejects_non_spd_and_leaves_factor_unchanged() {
        // Extending the identity with a row making the matrix singular:
        // [[1, 2], [2, 4]] has a zero Schur complement.
        let mut chol = Matrix::identity(1).cholesky().unwrap();
        let before = chol.factor().clone();
        let err = chol.extend_row(&[2.0], 4.0).unwrap_err();
        assert_eq!(err.pivot, 1);
        assert!(err.value <= 0.0);
        assert_eq!(chol.factor(), &before);
        // The error matches what a from-scratch factorization reports.
        let scratch =
            Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap().cholesky().unwrap_err();
        assert_eq!(err, scratch);
    }
}
