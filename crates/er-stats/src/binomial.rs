//! One-sided binomial confidence limits (Clopper–Pearson) and the
//! detection-limit arithmetic behind HUMO's tail-calibrated match estimation.
//!
//! # Why this module exists
//!
//! A sampled workload subset whose `k` drawn pairs are *all* non-matches
//! (`positives = 0`) carries an observed match proportion of exactly zero — and
//! a naive binomial variance `p̂(1−p̂)/k` of exactly zero as well. Plugging that
//! into a Gaussian-process fit makes the posterior overconfident in the very
//! regions the sample says nothing about: a `0/k` sample is perfectly
//! compatible with any true proportion up to the *detection limit* of the
//! sample size (about `3/k` at 95% one-sided confidence, the classical "rule of
//! three"). On flat match-proportion curves this overconfidence translated
//! directly into recall under-coverage (see the `humo` crate's
//! `CalibratedEstimator`).
//!
//! The exact frequentist answer is the Clopper–Pearson interval: the one-sided
//! upper limit for `k` positives out of `n` draws at confidence `c` is the
//! `c`-quantile of a `Beta(k + 1, n − k)` distribution, and the lower limit is
//! the `(1 − c)`-quantile of `Beta(k, n − k + 1)`. Both are exposed here over
//! *real-valued* `n` and `k` so callers can deflate the effective sample size
//! of a bound that is being extrapolated away from where the sample was drawn
//! (see [`effective_sample_size`]).

use crate::special::{ln_gamma, regularized_incomplete_beta};
use crate::{Result, StatsError};

/// Quantile function (inverse CDF) of the `Beta(a, b)` distribution.
///
/// Inverts the regularized incomplete beta function `I_x(a, b)` with a
/// bracketed Newton iteration (bisection fallback), accurate to ~1e-12 over the
/// shape parameters used by the confidence limits below.
pub fn beta_quantile(a: f64, b: f64, p: f64) -> Result<f64> {
    if !(a > 0.0 && a.is_finite() && b > 0.0 && b.is_finite()) {
        return Err(StatsError::InvalidArgument(format!(
            "beta quantile requires positive finite shapes, got a={a}, b={b}"
        )));
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(StatsError::InvalidArgument(format!(
            "beta quantile requires p in [0,1], got {p}"
        )));
    }
    if p == 0.0 {
        return Ok(0.0);
    }
    if p == 1.0 {
        return Ok(1.0);
    }
    let ln_beta = ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b);
    let pdf = |x: f64| -> f64 {
        if x <= 0.0 || x >= 1.0 {
            return 0.0;
        }
        ((a - 1.0) * x.ln() + (b - 1.0) * (1.0 - x).ln() - ln_beta).exp()
    };
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    // Mean of Beta(a, b) as the starting point.
    let mut x = (a / (a + b)).clamp(1e-12, 1.0 - 1e-12);
    for _ in 0..200 {
        let f = regularized_incomplete_beta(a, b, x) - p;
        if f > 0.0 {
            hi = x;
        } else {
            lo = x;
        }
        if f.abs() < 1e-14 || (hi - lo) < 1e-14 {
            return Ok(x);
        }
        let d = pdf(x);
        let newton = if d > 1e-300 { x - f / d } else { f64::NAN };
        x = if newton.is_finite() && newton > lo && newton < hi { newton } else { 0.5 * (lo + hi) };
    }
    Ok(x)
}

fn validate_limit_args(sample_size: f64, positives: f64, confidence: f64) -> Result<()> {
    if !(sample_size > 0.0 && sample_size.is_finite()) {
        return Err(StatsError::InvalidArgument(format!(
            "sample size must be positive and finite, got {sample_size}"
        )));
    }
    if !(0.0..=sample_size).contains(&positives) {
        return Err(StatsError::InvalidArgument(format!(
            "positives must lie in [0, sample size], got {positives} of {sample_size}"
        )));
    }
    if !(0.0..1.0).contains(&confidence) {
        return Err(StatsError::InvalidArgument(format!(
            "confidence must be in [0,1), got {confidence}"
        )));
    }
    Ok(())
}

/// One-sided Clopper–Pearson **upper** confidence limit on a binomial
/// proportion: the smallest `u` such that `P(p ≤ u) ≥ confidence` when
/// `positives` successes were observed in `sample_size` draws.
///
/// Accepts real-valued `sample_size`/`positives` so callers can use a deflated
/// *effective* sample size when extrapolating a sample to a region it was not
/// drawn from; with `positives = 0` this is the sample's detection limit
/// `1 − (1 − confidence)^(1/n)` (the "rule of three" for `confidence = 0.95`).
pub fn clopper_pearson_upper(sample_size: f64, positives: f64, confidence: f64) -> Result<f64> {
    validate_limit_args(sample_size, positives, confidence)?;
    if confidence == 0.0 {
        return Ok(positives / sample_size);
    }
    if positives >= sample_size {
        return Ok(1.0);
    }
    beta_quantile(positives + 1.0, sample_size - positives, confidence)
}

/// One-sided Clopper–Pearson **lower** confidence limit on a binomial
/// proportion: the largest `l` such that `P(p ≥ l) ≥ confidence`.
///
/// Returns `0` for all-zero samples (they carry no lower-tail information).
pub fn clopper_pearson_lower(sample_size: f64, positives: f64, confidence: f64) -> Result<f64> {
    validate_limit_args(sample_size, positives, confidence)?;
    if confidence == 0.0 {
        return Ok(positives / sample_size);
    }
    if positives <= 0.0 {
        return Ok(0.0);
    }
    beta_quantile(positives, sample_size - positives + 1.0, 1.0 - confidence)
}

/// Detection limit of an all-negative sample: the largest true proportion that
/// still has at least `1 − confidence` probability of producing `0/n`
/// positives. Shorthand for [`clopper_pearson_upper`] with `positives = 0`.
pub fn detection_limit(sample_size: f64, confidence: f64) -> Result<f64> {
    clopper_pearson_upper(sample_size, 0.0, confidence)
}

/// Lower-side detection limit of an all-*positive* sample: the smallest true
/// proportion that still has at least `1 − confidence` probability of
/// producing `n/n` positives, `(1 − confidence)^(1/n)`. This is the mirror of
/// [`detection_limit`]: a pure-one sample of size `n` cannot distinguish
/// `p = 1` from `p = 1 − 3/n` (at 95%), so a lower bound trusting it beyond
/// this limit is overconfident. Shorthand for [`clopper_pearson_lower`] with
/// `positives = sample_size`.
pub fn detection_limit_lower(sample_size: f64, confidence: f64) -> Result<f64> {
    clopper_pearson_lower(sample_size, sample_size, confidence)
}

/// One-sided Clopper–Pearson **upper** limit of a pooled sample extrapolated
/// `distance` away from where its draws were taken: the sample size is
/// deflated through [`effective_sample_size`] (positives scaled
/// proportionally, so the observed proportion is preserved) before the limit
/// is computed. This is the limit the tail-calibrated estimator assigns to a
/// pooled quiet run.
pub fn pooled_upper_limit(
    sample_size: f64,
    positives: f64,
    distance: f64,
    length_scale: f64,
    strength: f64,
    confidence: f64,
) -> Result<f64> {
    validate_limit_args(sample_size, positives, confidence)?;
    let eff = effective_sample_size(sample_size, distance, length_scale, strength);
    // The proportional rescaling can overshoot `eff` by one ulp when
    // `positives == sample_size`; clamp so the limit stays well-defined.
    clopper_pearson_upper(eff, (positives * eff / sample_size).clamp(0.0, eff), confidence)
}

/// One-sided Clopper–Pearson **lower** limit of a pooled sample extrapolated
/// `distance` away from where its draws were taken — the mirror of
/// [`pooled_upper_limit`], assigned by the tail-calibrated estimator to a
/// pooled *saturated* (near-pure) run. Deflating the effective size can only
/// lower (widen) this limit.
pub fn pooled_lower_limit(
    sample_size: f64,
    positives: f64,
    distance: f64,
    length_scale: f64,
    strength: f64,
    confidence: f64,
) -> Result<f64> {
    validate_limit_args(sample_size, positives, confidence)?;
    let eff = effective_sample_size(sample_size, distance, length_scale, strength);
    // Same one-ulp overshoot guard as in [`pooled_upper_limit`].
    clopper_pearson_lower(eff, (positives * eff / sample_size).clamp(0.0, eff), confidence)
}

/// Deflates a sample size for use at a distance from where the sample was
/// drawn.
///
/// A sample of `n` pairs pins down the match proportion *where it was taken*;
/// extrapolated `distance` length-scales away it is worth fewer observations.
/// The effective size decays as `n / (1 + strength · d²)` with
/// `d = distance / length_scale`, so Clopper–Pearson limits computed from it
/// widen smoothly (and monotonically) with distance: at `d = 0` the full
/// sample counts, far away the limits open toward the uninformative `[0, 1]`.
///
/// The result is floored at `1.0` so downstream Beta quantiles stay well
/// conditioned.
pub fn effective_sample_size(
    sample_size: f64,
    distance: f64,
    length_scale: f64,
    strength: f64,
) -> f64 {
    debug_assert!(sample_size > 0.0);
    let ls = length_scale.max(1e-12);
    let d = (distance / ls).abs();
    (sample_size / (1.0 + strength.max(0.0) * d * d)).max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!((actual - expected).abs() <= tol, "expected {expected}, got {actual} (tol {tol})");
    }

    #[test]
    fn beta_quantile_round_trips_through_the_cdf() {
        for &(a, b) in &[(1.0, 100.0), (3.0, 7.0), (0.5, 0.5), (101.0, 1.0), (2.5, 40.0)] {
            for p in [0.01, 0.1, 0.5, 0.9, 0.949, 0.999] {
                let x = beta_quantile(a, b, p).unwrap();
                assert_close(regularized_incomplete_beta(a, b, x), p, 1e-9);
            }
        }
    }

    #[test]
    fn beta_quantile_boundaries_and_validation() {
        assert_eq!(beta_quantile(2.0, 3.0, 0.0).unwrap(), 0.0);
        assert_eq!(beta_quantile(2.0, 3.0, 1.0).unwrap(), 1.0);
        assert!(beta_quantile(0.0, 1.0, 0.5).is_err());
        assert!(beta_quantile(1.0, -1.0, 0.5).is_err());
        assert!(beta_quantile(1.0, 1.0, 1.5).is_err());
    }

    #[test]
    fn rule_of_three_for_all_zero_samples() {
        // Classical rule of three: CP upper limit of 0/n at 95% ≈ 3/n.
        let u = clopper_pearson_upper(100.0, 0.0, 0.95).unwrap();
        assert_close(u, 1.0 - 0.05f64.powf(0.01), 1e-10);
        assert!((0.028..0.032).contains(&u), "rule of three violated: {u}");
        assert_eq!(u, detection_limit(100.0, 0.95).unwrap());
    }

    #[test]
    fn limits_bracket_the_observed_proportion() {
        for &(n, k) in &[(20.0, 0.0), (20.0, 5.0), (20.0, 20.0), (100.0, 37.0), (7.0, 3.0)] {
            let u = clopper_pearson_upper(n, k, 0.9).unwrap();
            let l = clopper_pearson_lower(n, k, 0.9).unwrap();
            let p_hat = k / n;
            assert!(l <= p_hat + 1e-12, "lower {l} above observed {p_hat}");
            assert!(u >= p_hat - 1e-12, "upper {u} below observed {p_hat}");
            assert!((0.0..=1.0).contains(&u) && (0.0..=1.0).contains(&l));
        }
    }

    #[test]
    fn degenerate_samples_hit_the_interval_ends() {
        assert_eq!(clopper_pearson_upper(50.0, 50.0, 0.9).unwrap(), 1.0);
        assert_eq!(clopper_pearson_lower(50.0, 0.0, 0.9).unwrap(), 0.0);
        // Zero confidence collapses to the point estimate.
        assert_close(clopper_pearson_upper(50.0, 10.0, 0.0).unwrap(), 0.2, 1e-12);
        assert_close(clopper_pearson_lower(50.0, 10.0, 0.0).unwrap(), 0.2, 1e-12);
    }

    #[test]
    fn higher_confidence_widens_one_sided_limits() {
        let u_low = clopper_pearson_upper(60.0, 6.0, 0.8).unwrap();
        let u_high = clopper_pearson_upper(60.0, 6.0, 0.99).unwrap();
        assert!(u_high > u_low);
        let l_low = clopper_pearson_lower(60.0, 6.0, 0.8).unwrap();
        let l_high = clopper_pearson_lower(60.0, 6.0, 0.99).unwrap();
        assert!(l_high < l_low);
    }

    #[test]
    fn invalid_limit_arguments_are_rejected() {
        assert!(clopper_pearson_upper(0.0, 0.0, 0.9).is_err());
        assert!(clopper_pearson_upper(10.0, 11.0, 0.9).is_err());
        assert!(clopper_pearson_upper(10.0, 5.0, 1.0).is_err());
        assert!(clopper_pearson_lower(10.0, -1.0, 0.9).is_err());
    }

    #[test]
    fn effective_sample_size_decays_with_distance() {
        let full = effective_sample_size(100.0, 0.0, 0.1, 1.0);
        assert_close(full, 100.0, 1e-12);
        let near = effective_sample_size(100.0, 0.05, 0.1, 1.0);
        let far = effective_sample_size(100.0, 0.5, 0.1, 1.0);
        assert!(near < full && far < near, "sizes must decay: {full} {near} {far}");
        // Floored at one observation so Beta shapes stay valid.
        assert_close(effective_sample_size(2.0, 100.0, 0.1, 1.0), 1.0, 1e-12);
        // Distance widens the detection limit through the deflated size.
        let dl_near = detection_limit(near, 0.95).unwrap();
        let dl_far = detection_limit(far, 0.95).unwrap();
        assert!(dl_far > dl_near);
    }
}
