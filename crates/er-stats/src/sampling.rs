//! Stratified random sampling estimators (Cochran, *Sampling Techniques*, 3rd ed.).
//!
//! The HUMO sampling-based optimizer divides an ER workload into similarity-ordered
//! subsets (strata), samples pairs from some strata, and needs confidence bounds on
//! the **total number of matching pairs** inside an arbitrary union of strata
//! (Eq. 12–14 of the paper). This module provides:
//!
//! * [`SampleSummary`] — the outcome of sampling one stratum (sample size and number
//!   of observed positives), with finite-population-corrected variance;
//! * [`Stratum`] — a stratum (its population size) together with its sample;
//! * [`StratifiedEstimate`] — the aggregated estimate over a set of strata, exposing
//!   the mean, standard deviation and Student-t confidence bounds used by the
//!   all-sampling search.

use crate::distributions::StudentT;
use crate::{Result, StatsError};

/// The result of drawing a simple random sample from a single stratum and counting
/// how many sampled items are positives (matching pairs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleSummary {
    /// Number of items drawn from the stratum.
    pub sample_size: usize,
    /// Number of sampled items that were positive (matches).
    pub positives: usize,
}

impl SampleSummary {
    /// Creates a sample summary, validating that `positives <= sample_size`.
    pub fn new(sample_size: usize, positives: usize) -> Result<Self> {
        if positives > sample_size {
            return Err(StatsError::InvalidArgument(format!(
                "positives ({positives}) cannot exceed sample size ({sample_size})"
            )));
        }
        Ok(Self { sample_size, positives })
    }

    /// Observed proportion of positives. Returns `0.0` for an empty sample.
    pub fn proportion(&self) -> f64 {
        if self.sample_size == 0 {
            0.0
        } else {
            self.positives as f64 / self.sample_size as f64
        }
    }
}

/// A stratum: its total population size and the sample drawn from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stratum {
    /// Total number of items in the stratum (`n_i` in the paper).
    pub population_size: usize,
    /// Sample drawn from the stratum.
    pub sample: SampleSummary,
}

impl Stratum {
    /// Creates a stratum, validating that the sample is not larger than the population.
    pub fn new(population_size: usize, sample: SampleSummary) -> Result<Self> {
        if sample.sample_size > population_size {
            return Err(StatsError::InvalidArgument(format!(
                "sample size ({}) cannot exceed population size ({population_size})",
                sample.sample_size
            )));
        }
        Ok(Self { population_size, sample })
    }

    /// Estimated proportion of positives in the stratum.
    pub fn estimated_proportion(&self) -> f64 {
        self.sample.proportion()
    }

    /// Estimated number of positives in the stratum (`n_i · p̂_i`).
    pub fn estimated_positives(&self) -> f64 {
        self.population_size as f64 * self.estimated_proportion()
    }

    /// Variance of the estimated proportion `p̂_i`, with finite population correction:
    /// `Var(p̂) = (1 − s/N) · p̂(1−p̂) / (s − 1)` (Cochran Eq. 3.8 adapted to proportions).
    ///
    /// Returns `0.0` when the sample has fewer than two items (no information about
    /// spread) or when the whole stratum was sampled.
    pub fn proportion_variance(&self) -> f64 {
        let s = self.sample.sample_size;
        if s < 2 || self.population_size == 0 {
            return 0.0;
        }
        let p = self.estimated_proportion();
        let fpc = 1.0 - s as f64 / self.population_size as f64;
        (fpc.max(0.0)) * p * (1.0 - p) / (s as f64 - 1.0)
    }

    /// Variance of the estimated number of positives in the stratum
    /// (`n_i² · Var(p̂_i)`).
    pub fn positives_variance(&self) -> f64 {
        let n = self.population_size as f64;
        n * n * self.proportion_variance()
    }

    /// Degrees of freedom contributed by this stratum (`s_i − 1`, floored at 0).
    pub fn degrees_of_freedom(&self) -> usize {
        self.sample.sample_size.saturating_sub(1)
    }
}

/// Aggregated stratified estimate of the number of positives in a union of strata.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StratifiedEstimate {
    /// Total population size of the aggregated strata.
    pub population_size: usize,
    /// Point estimate of the total number of positives.
    pub estimated_positives: f64,
    /// Standard deviation of the estimate.
    pub std_dev: f64,
    /// Pooled degrees of freedom (`Σ (s_i − 1)`).
    pub degrees_of_freedom: usize,
}

impl StratifiedEstimate {
    /// Aggregates an iterator of strata into a single estimate.
    pub fn from_strata<'a>(strata: impl IntoIterator<Item = &'a Stratum>) -> Self {
        let mut population_size = 0usize;
        let mut estimated_positives = 0.0;
        let mut variance = 0.0;
        let mut degrees_of_freedom = 0usize;
        for stratum in strata {
            population_size += stratum.population_size;
            estimated_positives += stratum.estimated_positives();
            variance += stratum.positives_variance();
            degrees_of_freedom += stratum.degrees_of_freedom();
        }
        Self { population_size, estimated_positives, std_dev: variance.sqrt(), degrees_of_freedom }
    }

    /// An estimate representing an empty union of strata.
    pub fn empty() -> Self {
        Self { population_size: 0, estimated_positives: 0.0, std_dev: 0.0, degrees_of_freedom: 0 }
    }

    /// Estimated proportion of positives in the aggregated population.
    pub fn estimated_proportion(&self) -> f64 {
        if self.population_size == 0 {
            0.0
        } else {
            self.estimated_positives / self.population_size as f64
        }
    }

    /// Student-t critical value for the requested two-sided confidence level.
    ///
    /// Falls back to the normal critical value when the degrees of freedom are
    /// very large, and to a conservative `t` with 1 d.f. when no degrees of
    /// freedom are available.
    fn critical_value(&self, confidence: f64) -> Result<f64> {
        if confidence <= 0.0 {
            return Ok(0.0);
        }
        let df = self.degrees_of_freedom.max(1) as f64;
        StudentT::new(df)?.two_sided_critical_value(confidence)
    }

    /// Lower confidence bound on the number of positives
    /// (`lb(n⁺, confidence)` in Eq. 13–14 of the paper), clamped at zero.
    pub fn lower_bound(&self, confidence: f64) -> Result<f64> {
        let t = self.critical_value(confidence)?;
        Ok((self.estimated_positives - t * self.std_dev).max(0.0))
    }

    /// Upper confidence bound on the number of positives
    /// (`ub(n⁺, confidence)`), clamped at the population size.
    pub fn upper_bound(&self, confidence: f64) -> Result<f64> {
        let t = self.critical_value(confidence)?;
        Ok((self.estimated_positives + t * self.std_dev).min(self.population_size as f64))
    }

    /// The symmetric two-sided confidence interval on the number of positives
    /// (Eq. 12 of the paper).
    pub fn confidence_interval(&self, confidence: f64) -> Result<crate::ConfidenceInterval> {
        Ok(crate::ConfidenceInterval {
            lower: self.lower_bound(confidence)?,
            upper: self.upper_bound(confidence)?,
            confidence,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_summary_validation() {
        assert!(SampleSummary::new(10, 11).is_err());
        assert!(SampleSummary::new(10, 10).is_ok());
        assert_eq!(SampleSummary::new(0, 0).unwrap().proportion(), 0.0);
        assert_eq!(SampleSummary::new(20, 5).unwrap().proportion(), 0.25);
    }

    #[test]
    fn stratum_validation_and_estimates() {
        let s = Stratum::new(200, SampleSummary::new(20, 10).unwrap()).unwrap();
        assert_eq!(s.estimated_proportion(), 0.5);
        assert_eq!(s.estimated_positives(), 100.0);
        assert!(Stratum::new(10, SampleSummary::new(20, 5).unwrap()).is_err());
    }

    #[test]
    fn fully_sampled_stratum_has_zero_variance() {
        let s = Stratum::new(50, SampleSummary::new(50, 25).unwrap()).unwrap();
        assert_eq!(s.proportion_variance(), 0.0);
    }

    #[test]
    fn pure_stratum_has_zero_variance() {
        // All sampled items positive → p̂(1-p̂) = 0.
        let s = Stratum::new(500, SampleSummary::new(30, 30).unwrap()).unwrap();
        assert_eq!(s.proportion_variance(), 0.0);
    }

    #[test]
    fn variance_decreases_with_sample_size() {
        let small = Stratum::new(1000, SampleSummary::new(10, 5).unwrap()).unwrap();
        let large = Stratum::new(1000, SampleSummary::new(100, 50).unwrap()).unwrap();
        assert!(large.proportion_variance() < small.proportion_variance());
    }

    #[test]
    fn aggregate_point_estimate_is_sum_of_strata() {
        let strata = vec![
            Stratum::new(100, SampleSummary::new(10, 2).unwrap()).unwrap(),
            Stratum::new(300, SampleSummary::new(30, 15).unwrap()).unwrap(),
        ];
        let est = StratifiedEstimate::from_strata(&strata);
        assert_eq!(est.population_size, 400);
        assert!((est.estimated_positives - (20.0 + 150.0)).abs() < 1e-12);
        assert_eq!(est.degrees_of_freedom, 9 + 29);
    }

    #[test]
    fn bounds_bracket_the_point_estimate_and_are_clamped() {
        let strata = vec![Stratum::new(1000, SampleSummary::new(50, 10).unwrap()).unwrap()];
        let est = StratifiedEstimate::from_strata(&strata);
        let lb = est.lower_bound(0.95).unwrap();
        let ub = est.upper_bound(0.95).unwrap();
        assert!(lb <= est.estimated_positives);
        assert!(ub >= est.estimated_positives);
        assert!(lb >= 0.0);
        assert!(ub <= 1000.0);
    }

    #[test]
    fn higher_confidence_widens_the_interval() {
        let strata = vec![Stratum::new(1000, SampleSummary::new(40, 12).unwrap()).unwrap()];
        let est = StratifiedEstimate::from_strata(&strata);
        let narrow = est.confidence_interval(0.8).unwrap();
        let wide = est.confidence_interval(0.99).unwrap();
        assert!(wide.width() > narrow.width());
    }

    #[test]
    fn empty_estimate_is_all_zero() {
        let est = StratifiedEstimate::empty();
        assert_eq!(est.estimated_positives, 0.0);
        assert_eq!(est.lower_bound(0.9).unwrap(), 0.0);
        assert_eq!(est.upper_bound(0.9).unwrap(), 0.0);
    }

    #[test]
    fn zero_confidence_collapses_to_point_estimate() {
        let strata = vec![Stratum::new(500, SampleSummary::new(25, 5).unwrap()).unwrap()];
        let est = StratifiedEstimate::from_strata(&strata);
        assert_eq!(est.lower_bound(0.0).unwrap(), est.estimated_positives);
        assert_eq!(est.upper_bound(0.0).unwrap(), est.estimated_positives);
    }
}
