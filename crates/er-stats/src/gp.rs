//! Gaussian-process regression over a one-dimensional input (pair similarity).
//!
//! The HUMO partial-sampling optimizer (paper Section VI-B, Algorithm 1)
//! approximates the *match-proportion function* — the probability that an
//! instance pair with a given similarity value is a true match — from a small
//! number of sampled workload subsets. The approximation must provide both a
//! posterior mean and a posterior **covariance** between predictions, because
//! Eq. 20 of the paper aggregates the match-count estimate of many unsampled
//! subsets and needs the full covariance matrix
//! `K(V*,V*) − K(V*,V) K(V,V)⁻¹ K(V,V*)` to derive the standard deviation of
//! the aggregate.
//!
//! The implementation uses a squared-exponential (RBF) kernel plus a noise
//! (nugget) term, and a Cholesky factorization of the training covariance.

use crate::linalg::{dot, Cholesky, Matrix};
use crate::{Result, StatsError};

/// A covariance kernel over scalar inputs.
pub trait Kernel {
    /// Covariance between two inputs.
    fn eval(&self, a: f64, b: f64) -> f64;

    /// Builds the covariance matrix between two sets of inputs.
    fn matrix(&self, xs: &[f64], ys: &[f64]) -> Matrix {
        Matrix::from_fn(xs.len(), ys.len(), |i, j| self.eval(xs[i], ys[j]))
    }
}

/// Squared-exponential (RBF) kernel
/// `k(a, b) = σ² · exp(−(a−b)² / (2ℓ²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RbfKernel {
    /// Signal variance `σ²` (the kernel value at zero distance).
    pub signal_variance: f64,
    /// Length scale `ℓ` controlling how quickly correlation decays with distance.
    pub length_scale: f64,
}

impl RbfKernel {
    /// Creates an RBF kernel, validating that both parameters are positive.
    pub fn new(signal_variance: f64, length_scale: f64) -> Result<Self> {
        if signal_variance <= 0.0 || !signal_variance.is_finite() {
            return Err(StatsError::InvalidArgument(format!(
                "signal variance must be positive, got {signal_variance}"
            )));
        }
        if length_scale <= 0.0 || !length_scale.is_finite() {
            return Err(StatsError::InvalidArgument(format!(
                "length scale must be positive, got {length_scale}"
            )));
        }
        Ok(Self { signal_variance, length_scale })
    }
}

impl Kernel for RbfKernel {
    fn eval(&self, a: f64, b: f64) -> f64 {
        let d = a - b;
        self.signal_variance * (-(d * d) / (2.0 * self.length_scale * self.length_scale)).exp()
    }
}

/// How the length scale is chosen when [`GpConfig::length_scale`] is `None` and
/// optimization is enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LengthScaleSelection {
    /// Maximize the log marginal likelihood over the candidate grid (the
    /// textbook criterion).
    #[default]
    MarginalLikelihood,
    /// Minimize the held-out squared prediction error of a two-fold
    /// (alternating-point) split over the candidate grid. More robust than the
    /// marginal likelihood when the per-point noise model is approximate — e.g.
    /// sampled proportions whose observed value is exactly 0 or 1.
    HeldOutError,
}

/// Configuration for fitting a [`GaussianProcess`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpConfig {
    /// Signal variance of the RBF kernel. Defaults to `0.05` which suits
    /// match-proportion curves living in `[0, 1]`.
    pub signal_variance: f64,
    /// Length scale of the RBF kernel. When `None`, a heuristic based on the
    /// spread of the training inputs is used (one quarter of the input range).
    pub length_scale: Option<f64>,
    /// Observation-noise variance added to the diagonal of the training
    /// covariance (the "nugget"); models sampling error of the observed match
    /// proportions.
    pub noise_variance: f64,
    /// Whether to select the length scale over a small grid around the heuristic
    /// value.
    pub optimize_length_scale: bool,
    /// The criterion used when selecting the length scale.
    pub selection: LengthScaleSelection,
}

impl Default for GpConfig {
    fn default() -> Self {
        Self {
            signal_variance: 0.05,
            length_scale: None,
            noise_variance: 1e-4,
            optimize_length_scale: true,
            selection: LengthScaleSelection::MarginalLikelihood,
        }
    }
}

/// The posterior of a Gaussian process at a set of query points.
#[derive(Debug, Clone)]
pub struct GpPosterior {
    /// Posterior means, one per query point.
    pub mean: Vec<f64>,
    /// Posterior covariance matrix between the query points.
    pub covariance: Matrix,
}

impl GpPosterior {
    /// Posterior variance at each query point (diagonal of the covariance,
    /// clamped at zero to absorb numerical round-off).
    pub fn variances(&self) -> Vec<f64> {
        (0..self.mean.len()).map(|i| self.covariance[(i, i)].max(0.0)).collect()
    }

    /// Posterior standard deviation at each query point.
    pub fn std_devs(&self) -> Vec<f64> {
        self.variances().into_iter().map(f64::sqrt).collect()
    }

    /// Inflates the per-point posterior variance by the given multiplicative
    /// factors (one per query point), e.g. the output of
    /// [`posterior_inflation_factor`] for points far from any observation.
    ///
    /// Factors are clamped at `1.0` from below, so inflation can only *widen*
    /// downstream confidence intervals, never shrink them. Only the diagonal is
    /// touched — adding a non-negative diagonal term keeps the covariance
    /// positive semi-definite.
    ///
    /// This is the library form of the operation for consumers holding a
    /// [`GpPosterior`] directly. The HUMO partial-sampling optimizer applies
    /// the equivalent inflation inside its count-estimator construction (the
    /// noise-model closure of `GpCountEstimator::with_noise_model` adds
    /// `(factor − 1) · var` to the diagonal), not through this method.
    pub fn inflate_variances(&mut self, factors: &[f64]) {
        assert_eq!(factors.len(), self.mean.len(), "one inflation factor per query point");
        for (i, &factor) in factors.iter().enumerate() {
            let var = self.covariance[(i, i)].max(0.0);
            self.covariance[(i, i)] = var * factor.max(1.0);
        }
    }
}

/// Multiplicative posterior-variance inflation for a query point at `distance`
/// from the nearest observed input, relative to the kernel length scale.
///
/// The GP posterior variance already reverts to the prior far from all
/// observations, but *between* observations it can be arbitrarily small even
/// when the observations themselves are uninformative (e.g. sampled proportions
/// of exactly `0/k`, whose naive binomial noise vanishes). This factor
/// `1 + strength · (distance / length_scale)²` re-widens the posterior
/// smoothly with distance from the nearest sample; it is `1` at distance zero,
/// strictly increasing in `distance`, and never below `1`.
pub fn posterior_inflation_factor(distance: f64, length_scale: f64, strength: f64) -> f64 {
    let ls = length_scale.max(1e-12);
    let d = (distance / ls).abs();
    1.0 + strength.max(0.0) * d * d
}

/// A fitted Gaussian-process regression model over scalar inputs.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    kernel: RbfKernel,
    train_x: Vec<f64>,
    /// Training targets, kept so [`GaussianProcess::extend_with_noise`] can
    /// re-centre and re-solve after appending observations.
    train_y: Vec<f64>,
    /// Per-observation noise variances, aligned with `train_y`.
    train_noise: Vec<f64>,
    /// Mean of the training targets; the GP is fit on centred targets and the
    /// mean is added back at prediction time (a constant-mean GP).
    target_mean: f64,
    /// `K(V,V) + σ_n² I` factored.
    factor: Cholesky,
    /// `(K + σ_n² I)⁻¹ (y − mean)`.
    alpha: Vec<f64>,
    noise_variance: f64,
    log_marginal_likelihood: f64,
}

impl GaussianProcess {
    /// Fits a GP to the observations `(xs[i], ys[i])` with the given configuration.
    ///
    /// Returns an error if fewer than two observations are provided, the slices
    /// differ in length, or the covariance matrix cannot be factored.
    pub fn fit(xs: &[f64], ys: &[f64], config: GpConfig) -> Result<Self> {
        let noise = vec![config.noise_variance; xs.len()];
        Self::fit_with_noise(xs, ys, &noise, config)
    }

    /// Fits a GP with a per-observation noise variance (a heteroscedastic nugget).
    ///
    /// This matters when the observations are sampled proportions: a proportion
    /// near 0 or 1 carries far less sampling error than one near 0.5, and treating
    /// them alike makes the posterior either overconfident in the middle or far
    /// too loose at the extremes.
    pub fn fit_with_noise(
        xs: &[f64],
        ys: &[f64],
        noise_variances: &[f64],
        config: GpConfig,
    ) -> Result<Self> {
        if xs.len() != ys.len() || xs.len() != noise_variances.len() {
            return Err(StatsError::InvalidArgument(format!(
                "input/target/noise length mismatch: {} vs {} vs {}",
                xs.len(),
                ys.len(),
                noise_variances.len()
            )));
        }
        if xs.len() < 2 {
            return Err(StatsError::InvalidArgument(
                "Gaussian process requires at least two observations".to_string(),
            ));
        }
        if xs.iter().chain(ys.iter()).chain(noise_variances.iter()).any(|v| !v.is_finite()) {
            return Err(StatsError::InvalidArgument(
                "Gaussian process inputs must be finite".to_string(),
            ));
        }
        if noise_variances.iter().any(|v| *v < 0.0) {
            return Err(StatsError::InvalidArgument(
                "noise variances must be non-negative".to_string(),
            ));
        }
        let heuristic = Self::heuristic_length_scale(xs);
        let base_scale = config.length_scale.unwrap_or(heuristic);

        if config.optimize_length_scale && config.length_scale.is_none() {
            // Small log-spaced grid around the heuristic.
            let candidates = [0.125, 0.25, 0.5, 1.0, 2.0, 4.0].map(|f| base_scale * f);
            match config.selection {
                LengthScaleSelection::MarginalLikelihood => {
                    let mut best: Option<GaussianProcess> = None;
                    for ls in candidates {
                        if let Ok(gp) = Self::fit_with_scale(xs, ys, noise_variances, &config, ls) {
                            let better = best
                                .as_ref()
                                .map(|b| gp.log_marginal_likelihood > b.log_marginal_likelihood)
                                .unwrap_or(true);
                            if better {
                                best = Some(gp);
                            }
                        }
                    }
                    best.ok_or_else(|| {
                        StatsError::Linalg(
                            "failed to fit GP for any candidate length scale".to_string(),
                        )
                    })
                }
                LengthScaleSelection::HeldOutError => {
                    let mut best: Option<(f64, f64)> = None; // (error, length scale)
                    for ls in candidates {
                        if let Some(error) =
                            Self::held_out_error(xs, ys, noise_variances, &config, ls)
                        {
                            let better = best.map(|(e, _)| error < e).unwrap_or(true);
                            if better {
                                best = Some((error, ls));
                            }
                        }
                    }
                    let (_, ls) = best.ok_or_else(|| {
                        StatsError::Linalg(
                            "failed to fit GP for any candidate length scale".to_string(),
                        )
                    })?;
                    Self::fit_with_scale(xs, ys, noise_variances, &config, ls)
                }
            }
        } else {
            Self::fit_with_scale(xs, ys, noise_variances, &config, base_scale)
        }
    }

    /// Two-fold (alternating points in input order) held-out squared prediction
    /// error of a candidate length scale. Returns `None` when either fold cannot
    /// be fitted.
    fn held_out_error(
        xs: &[f64],
        ys: &[f64],
        noise_variances: &[f64],
        config: &GpConfig,
        length_scale: f64,
    ) -> Option<f64> {
        let mut order: Vec<usize> = (0..xs.len()).collect();
        order.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("finite inputs"));
        let mut total = 0.0;
        let mut count = 0usize;
        for parity in 0..2usize {
            let mut fit_idx: Vec<usize> = Vec::with_capacity(xs.len() / 2 + 1);
            let mut held_idx: Vec<usize> = Vec::with_capacity(xs.len() / 2 + 1);
            for (position, &i) in order.iter().enumerate() {
                if position % 2 == parity {
                    fit_idx.push(i);
                } else {
                    held_idx.push(i);
                }
            }
            if fit_idx.len() < 2 || held_idx.is_empty() {
                return None;
            }
            let fx: Vec<f64> = fit_idx.iter().map(|&i| xs[i]).collect();
            let fy: Vec<f64> = fit_idx.iter().map(|&i| ys[i]).collect();
            let fn_: Vec<f64> = fit_idx.iter().map(|&i| noise_variances[i]).collect();
            let gp = Self::fit_with_scale(&fx, &fy, &fn_, config, length_scale).ok()?;
            for &i in &held_idx {
                let err = ys[i] - gp.predict_mean(xs[i]);
                total += err * err;
                count += 1;
            }
        }
        if count == 0 {
            None
        } else {
            Some(total / count as f64)
        }
    }

    fn fit_with_scale(
        xs: &[f64],
        ys: &[f64],
        noise_variances: &[f64],
        config: &GpConfig,
        length_scale: f64,
    ) -> Result<Self> {
        let kernel = RbfKernel::new(config.signal_variance, length_scale)?;
        let n = xs.len();
        let target_mean = crate::descriptive::mean(ys);
        let centred: Vec<f64> = ys.iter().map(|y| y - target_mean).collect();

        let mut k = kernel.matrix(xs, xs);
        // Per-observation noise plus a tiny jitter for numerical stability.
        for (i, noise) in noise_variances.iter().enumerate() {
            k[(i, i)] += noise.max(0.0) + 1e-10;
        }
        let factor = k
            .cholesky()
            .map_err(|e| StatsError::Linalg(format!("training covariance not SPD: {e}")))?;
        let alpha = factor.solve(&centred);

        // log p(y|X) = -1/2 yᵀ α - 1/2 log|K| - n/2 log 2π.
        let log_marginal_likelihood = -0.5 * dot(&centred, &alpha)
            - 0.5 * factor.log_determinant()
            - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();

        Ok(Self {
            kernel,
            train_x: xs.to_vec(),
            train_y: ys.to_vec(),
            train_noise: noise_variances.to_vec(),
            target_mean,
            factor,
            alpha,
            noise_variance: crate::descriptive::mean(noise_variances),
            log_marginal_likelihood,
        })
    }

    /// Appends observations to a fitted GP in O(n²) per point, keeping the
    /// kernel hyperparameters fixed.
    ///
    /// New points are assigned the model's current (average) observation-noise
    /// variance; use [`GaussianProcess::extend_with_noise`] for explicit
    /// per-point noise.
    pub fn extend(&mut self, xs: &[f64], ys: &[f64]) -> Result<()> {
        let noise = vec![self.noise_variance; xs.len()];
        self.extend_with_noise(xs, ys, &noise)
    }

    /// Appends observations with per-point noise variances to a fitted GP.
    ///
    /// The covariance factor grows via [`Cholesky::extend_row`] — O(n²) per
    /// appended point instead of the O(n³) of re-factorizing from scratch —
    /// and the centred targets, `alpha` weights and log marginal likelihood
    /// are recomputed against the grown factor. The kernel (signal variance
    /// and length scale) is **not** re-selected: the resulting model is
    /// bit-identical to [`GaussianProcess::fit_with_noise`] on the
    /// concatenated data with the same fixed length scale
    /// (`length_scale: Some(self.kernel().length_scale)`,
    /// `optimize_length_scale: false`), because every entry of a Cholesky
    /// factor depends only on the leading submatrix. Appending points one at
    /// a time or all in one call yields the same model.
    ///
    /// An empty append is a no-op. On error (length mismatch, non-finite
    /// input, negative noise, or a covariance that stops being positive
    /// definite) the model is left unchanged.
    pub fn extend_with_noise(
        &mut self,
        xs: &[f64],
        ys: &[f64],
        noise_variances: &[f64],
    ) -> Result<()> {
        if xs.len() != ys.len() || xs.len() != noise_variances.len() {
            return Err(StatsError::InvalidArgument(format!(
                "input/target/noise length mismatch: {} vs {} vs {}",
                xs.len(),
                ys.len(),
                noise_variances.len()
            )));
        }
        if xs.iter().chain(ys.iter()).chain(noise_variances.iter()).any(|v| !v.is_finite()) {
            return Err(StatsError::InvalidArgument(
                "Gaussian process inputs must be finite".to_string(),
            ));
        }
        if noise_variances.iter().any(|v| *v < 0.0) {
            return Err(StatsError::InvalidArgument(
                "noise variances must be non-negative".to_string(),
            ));
        }
        if xs.is_empty() {
            return Ok(());
        }
        // Grow copies first so a failed extension leaves `self` untouched.
        let mut factor = self.factor.clone();
        let mut train_x = self.train_x.clone();
        for (&x, &noise) in xs.iter().zip(noise_variances) {
            // The same entries `Matrix::cholesky` would see for the new row of
            // `K + σ_n² I` (kernel row plus nugget on the diagonal).
            let row: Vec<f64> = train_x.iter().map(|&t| self.kernel.eval(x, t)).collect();
            let diagonal = self.kernel.eval(x, x) + (noise.max(0.0) + 1e-10);
            factor
                .extend_row(&row, diagonal)
                .map_err(|e| StatsError::Linalg(format!("training covariance not SPD: {e}")))?;
            train_x.push(x);
        }
        self.factor = factor;
        self.train_x = train_x;
        self.train_y.extend_from_slice(ys);
        self.train_noise.extend_from_slice(noise_variances);

        // Re-centre and re-solve against the grown factor — O(n²), and the
        // same arithmetic `fit_with_scale` performs on the concatenated data.
        let n = self.train_x.len();
        self.target_mean = crate::descriptive::mean(&self.train_y);
        let centred: Vec<f64> = self.train_y.iter().map(|y| y - self.target_mean).collect();
        self.alpha = self.factor.solve(&centred);
        self.log_marginal_likelihood = -0.5 * dot(&centred, &self.alpha)
            - 0.5 * self.factor.log_determinant()
            - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();
        self.noise_variance = crate::descriptive::mean(&self.train_noise);
        Ok(())
    }

    /// Heuristic length scale: a quarter of the input range (with a small floor).
    fn heuristic_length_scale(xs: &[f64]) -> f64 {
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        ((max - min) / 4.0).max(1e-3)
    }

    /// The kernel used by this model.
    pub fn kernel(&self) -> &RbfKernel {
        &self.kernel
    }

    /// Distance from `x` to the nearest training input.
    ///
    /// Used by the tail-calibrated estimators to decide how far a query point
    /// is from any actual sample (and hence how much to widen its bounds).
    pub fn distance_to_nearest_observation(&self, x: f64) -> f64 {
        self.train_x.iter().map(|&t| (x - t).abs()).fold(f64::INFINITY, f64::min)
    }

    /// The (average) observation-noise variance used when fitting.
    pub fn noise_variance(&self) -> f64 {
        self.noise_variance
    }

    /// Number of training observations.
    pub fn training_size(&self) -> usize {
        self.train_x.len()
    }

    /// Log marginal likelihood of the training data under the fitted model.
    pub fn log_marginal_likelihood(&self) -> f64 {
        self.log_marginal_likelihood
    }

    /// Posterior mean at a single query point (Eq. 16 of the paper).
    pub fn predict_mean(&self, x: f64) -> f64 {
        let k_star: Vec<f64> = self.train_x.iter().map(|&t| self.kernel.eval(x, t)).collect();
        self.target_mean + dot(&k_star, &self.alpha)
    }

    /// Posterior variance at a single query point (Eq. 17 of the paper),
    /// clamped at zero.
    pub fn predict_variance(&self, x: f64) -> f64 {
        let k_star: Vec<f64> = self.train_x.iter().map(|&t| self.kernel.eval(x, t)).collect();
        let v = self.factor.forward_substitute(&k_star);
        (self.kernel.eval(x, x) - dot(&v, &v)).max(0.0)
    }

    /// Full posterior (means and joint covariance) at a set of query points
    /// (Eq. 15–20 of the paper).
    pub fn predict_joint(&self, query: &[f64]) -> GpPosterior {
        let m = query.len();
        let mean: Vec<f64> = query.iter().map(|&x| self.predict_mean(x)).collect();

        // Covariance: K(X*,X*) − K(X*,X) (K+σ²I)⁻¹ K(X,X*)
        // computed as K** − Vᵀ V with V = L⁻¹ K(X,X*).
        let k_star = self.kernel.matrix(&self.train_x, query); // n × m
        let mut v_cols: Vec<Vec<f64>> = Vec::with_capacity(m);
        for j in 0..m {
            let col: Vec<f64> = (0..self.train_x.len()).map(|i| k_star[(i, j)]).collect();
            v_cols.push(self.factor.forward_substitute(&col));
        }
        let covariance = Matrix::from_fn(m, m, |i, j| {
            let prior = self.kernel.eval(query[i], query[j]);
            let reduction = dot(&v_cols[i], &v_cols[j]);
            let value = prior - reduction;
            if i == j {
                value.max(0.0)
            } else {
                value
            }
        });
        GpPosterior { mean, covariance }
    }

    /// Convenience wrapper returning `(mean, std_dev)` at a single point.
    pub fn predict(&self, x: f64) -> (f64, f64) {
        (self.predict_mean(x), self.predict_variance(x).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!((actual - expected).abs() <= tol, "expected {expected}, got {actual} (tol {tol})");
    }

    fn config_no_opt() -> GpConfig {
        GpConfig { optimize_length_scale: false, ..GpConfig::default() }
    }

    #[test]
    fn rbf_kernel_properties() {
        let k = RbfKernel::new(2.0, 0.5).unwrap();
        // Maximal at zero distance.
        assert_close(k.eval(0.3, 0.3), 2.0, 1e-12);
        // Symmetric.
        assert_close(k.eval(0.1, 0.7), k.eval(0.7, 0.1), 1e-15);
        // Decays with distance.
        assert!(k.eval(0.0, 0.1) > k.eval(0.0, 0.5));
        assert!(k.eval(0.0, 0.5) > k.eval(0.0, 2.0));
    }

    #[test]
    fn rbf_kernel_rejects_invalid_parameters() {
        assert!(RbfKernel::new(0.0, 1.0).is_err());
        assert!(RbfKernel::new(1.0, 0.0).is_err());
        assert!(RbfKernel::new(-1.0, 1.0).is_err());
    }

    #[test]
    fn gp_requires_two_points() {
        assert!(GaussianProcess::fit(&[0.5], &[0.5], GpConfig::default()).is_err());
        assert!(GaussianProcess::fit(&[0.1, 0.9], &[0.0, 1.0], GpConfig::default()).is_ok());
    }

    #[test]
    fn gp_rejects_mismatched_lengths() {
        assert!(GaussianProcess::fit(&[0.1, 0.2, 0.3], &[0.0, 1.0], GpConfig::default()).is_err());
    }

    #[test]
    fn gp_interpolates_training_points_with_small_noise() {
        let xs = [0.0, 0.25, 0.5, 0.75, 1.0];
        let ys = [0.05, 0.2, 0.5, 0.8, 0.95];
        let config = GpConfig { noise_variance: 1e-8, ..config_no_opt() };
        let gp = GaussianProcess::fit(&xs, &ys, config).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            assert_close(gp.predict_mean(*x), *y, 1e-2);
        }
    }

    #[test]
    fn gp_posterior_variance_smaller_near_training_points() {
        let xs = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
        let ys = [0.1, 0.2, 0.4, 0.6, 0.8, 0.9];
        let gp = GaussianProcess::fit(&xs, &ys, config_no_opt()).unwrap();
        // Variance at a training point should be below variance far outside the data.
        assert!(gp.predict_variance(0.4) < gp.predict_variance(3.0));
    }

    #[test]
    fn gp_variance_nonnegative_everywhere() {
        let xs = [0.0, 0.1, 0.3, 0.55, 0.8, 1.0];
        let ys = [0.02, 0.05, 0.2, 0.5, 0.85, 0.97];
        let gp = GaussianProcess::fit(&xs, &ys, GpConfig::default()).unwrap();
        for i in 0..=50 {
            let x = i as f64 / 50.0;
            assert!(gp.predict_variance(x) >= 0.0);
        }
    }

    #[test]
    fn gp_predicts_monotone_trend_between_points() {
        // A smooth increasing curve should stay roughly increasing between samples.
        let xs: Vec<f64> = (0..11).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 / (1.0 + (-10.0 * (x - 0.5)).exp())).collect();
        let gp = GaussianProcess::fit(&xs, &ys, GpConfig::default()).unwrap();
        let y_low = gp.predict_mean(0.25);
        let y_mid = gp.predict_mean(0.5);
        let y_high = gp.predict_mean(0.75);
        assert!(y_low < y_mid && y_mid < y_high);
    }

    #[test]
    fn gp_joint_covariance_is_symmetric_and_psd_on_diagonal() {
        let xs = [0.0, 0.25, 0.5, 0.75, 1.0];
        let ys = [0.1, 0.3, 0.5, 0.7, 0.9];
        let gp = GaussianProcess::fit(&xs, &ys, config_no_opt()).unwrap();
        let query = [0.1, 0.4, 0.6, 0.9];
        let post = gp.predict_joint(&query);
        assert_eq!(post.mean.len(), 4);
        for i in 0..4 {
            assert!(post.covariance[(i, i)] >= 0.0);
            for j in 0..4 {
                assert_close(post.covariance[(i, j)], post.covariance[(j, i)], 1e-9);
            }
        }
    }

    #[test]
    fn gp_joint_mean_matches_pointwise_mean() {
        let xs = [0.0, 0.3, 0.6, 1.0];
        let ys = [0.0, 0.25, 0.65, 1.0];
        let gp = GaussianProcess::fit(&xs, &ys, config_no_opt()).unwrap();
        let query = [0.15, 0.45, 0.85];
        let post = gp.predict_joint(&query);
        for (i, &q) in query.iter().enumerate() {
            assert_close(post.mean[i], gp.predict_mean(q), 1e-12);
        }
    }

    #[test]
    fn gp_length_scale_optimization_picks_reasonable_fit() {
        // Data from a smooth sigmoid; the optimized fit should track it closely.
        let xs: Vec<f64> = (0..21).map(|i| i as f64 / 20.0).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 0.95 / (1.0 + (-14.0 * (x - 0.55)).exp())).collect();
        let gp = GaussianProcess::fit(&xs, &ys, GpConfig::default()).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            assert!((gp.predict_mean(*x) - y).abs() < 0.08, "poor fit at {x}");
        }
    }

    #[test]
    fn heteroscedastic_fit_trusts_low_noise_points_more() {
        // Two conflicting observations at nearly the same input: the one with the
        // smaller noise should pull the posterior mean towards itself.
        let xs = [0.0, 0.5, 0.5001, 1.0];
        let ys = [0.0, 0.2, 0.8, 1.0];
        let config = GpConfig { optimize_length_scale: false, ..GpConfig::default() };
        let noisy_first = [1e-6, 1.0, 1e-6, 1e-6];
        let gp = GaussianProcess::fit_with_noise(&xs, &ys, &noisy_first, config).unwrap();
        assert!(gp.predict_mean(0.5) > 0.6, "posterior should side with the precise 0.8");
        let noisy_second = [1e-6, 1e-6, 1.0, 1e-6];
        let gp = GaussianProcess::fit_with_noise(&xs, &ys, &noisy_second, config).unwrap();
        assert!(gp.predict_mean(0.5) < 0.4, "posterior should side with the precise 0.2");
    }

    #[test]
    fn heteroscedastic_fit_validates_inputs() {
        let config = GpConfig::default();
        assert!(GaussianProcess::fit_with_noise(&[0.0, 1.0], &[0.0, 1.0], &[0.1], config).is_err());
        assert!(GaussianProcess::fit_with_noise(&[0.0, 1.0], &[0.0, 1.0], &[0.1, -0.1], config)
            .is_err());
        assert!(
            GaussianProcess::fit_with_noise(&[0.0, 1.0], &[0.0, 1.0], &[0.1, 0.1], config).is_ok()
        );
    }

    #[test]
    fn inflation_factor_is_monotone_and_at_least_one() {
        assert_close(posterior_inflation_factor(0.0, 0.1, 2.0), 1.0, 1e-12);
        let mut last = 1.0;
        for step in 1..=20 {
            let f = posterior_inflation_factor(step as f64 * 0.05, 0.1, 2.0);
            assert!(f >= last, "factor must not decrease with distance");
            last = f;
        }
        // Zero or negative strength degrades gracefully to no inflation.
        assert_close(posterior_inflation_factor(1.0, 0.1, 0.0), 1.0, 1e-12);
        assert_close(posterior_inflation_factor(1.0, 0.1, -3.0), 1.0, 1e-12);
    }

    #[test]
    fn inflating_variances_never_shrinks_them() {
        let xs = [0.0, 0.25, 0.5, 0.75, 1.0];
        let ys = [0.1, 0.3, 0.5, 0.7, 0.9];
        let gp = GaussianProcess::fit(&xs, &ys, config_no_opt()).unwrap();
        let query = [0.1, 0.4, 0.6, 0.9];
        let mut post = gp.predict_joint(&query);
        let before = post.variances();
        // Factors below one are clamped, factors above one multiply.
        post.inflate_variances(&[0.2, 1.0, 2.0, 10.0]);
        let after = post.variances();
        for (b, a) in before.iter().zip(&after) {
            assert!(a >= b, "inflation shrank a variance: {b} -> {a}");
        }
        assert_close(after[2], before[2] * 2.0, 1e-12);
        assert_close(after[0], before[0], 1e-12);
    }

    #[test]
    fn distance_to_nearest_observation_is_zero_at_training_points() {
        let xs = [0.1, 0.4, 0.9];
        let ys = [0.0, 0.5, 1.0];
        let gp = GaussianProcess::fit(&xs, &ys, config_no_opt()).unwrap();
        assert_close(gp.distance_to_nearest_observation(0.4), 0.0, 1e-12);
        assert_close(gp.distance_to_nearest_observation(0.25), 0.15, 1e-12);
        assert_close(gp.distance_to_nearest_observation(1.0), 0.1, 1e-12);
    }

    #[test]
    fn gp_log_marginal_likelihood_is_finite() {
        let xs = [0.0, 0.5, 1.0];
        let ys = [0.1, 0.5, 0.9];
        let gp = GaussianProcess::fit(&xs, &ys, config_no_opt()).unwrap();
        assert!(gp.log_marginal_likelihood().is_finite());
    }

    /// A fit on the concatenated data with the extended model's exact kernel
    /// (fixed length scale, no re-selection) — the reference `extend` must
    /// reproduce bit-for-bit.
    fn refit_pinned(
        gp: &GaussianProcess,
        xs: &[f64],
        ys: &[f64],
        noise: &[f64],
    ) -> GaussianProcess {
        let config = GpConfig {
            signal_variance: gp.kernel().signal_variance,
            length_scale: Some(gp.kernel().length_scale),
            optimize_length_scale: false,
            ..GpConfig::default()
        };
        GaussianProcess::fit_with_noise(xs, ys, noise, config).unwrap()
    }

    #[test]
    fn extend_is_bit_identical_to_pinned_refit() {
        let xs = [0.0, 0.3, 0.6, 1.0];
        let ys = [0.05, 0.2, 0.6, 0.95];
        let noise = [1e-3, 2e-3, 1e-3, 5e-4];
        let mut gp =
            GaussianProcess::fit_with_noise(&xs, &ys, &noise, GpConfig::default()).unwrap();
        let (new_x, new_y, new_n) = ([0.45, 0.8], [0.4, 0.85], [3e-3, 1e-3]);
        gp.extend_with_noise(&new_x, &new_y, &new_n).unwrap();

        let all_x = [&xs[..], &new_x[..]].concat();
        let all_y = [&ys[..], &new_y[..]].concat();
        let all_n = [&noise[..], &new_n[..]].concat();
        let scratch = refit_pinned(&gp, &all_x, &all_y, &all_n);

        assert_eq!(gp.training_size(), 6);
        assert_eq!(gp.log_marginal_likelihood(), scratch.log_marginal_likelihood());
        assert_eq!(gp.noise_variance(), scratch.noise_variance());
        for i in 0..=20 {
            let q = i as f64 / 20.0;
            assert_eq!(gp.predict_mean(q), scratch.predict_mean(q));
            assert_eq!(gp.predict_variance(q), scratch.predict_variance(q));
        }
    }

    #[test]
    fn extend_one_at_a_time_matches_batch_extend() {
        let xs = [0.0, 0.5, 1.0];
        let ys = [0.1, 0.5, 0.9];
        let noise = [1e-3, 1e-3, 1e-3];
        let mut batch = GaussianProcess::fit_with_noise(&xs, &ys, &noise, config_no_opt()).unwrap();
        let mut stepwise = batch.clone();
        let (new_x, new_y, new_n) = ([0.25, 0.75], [0.3, 0.7], [2e-3, 2e-3]);
        batch.extend_with_noise(&new_x, &new_y, &new_n).unwrap();
        for i in 0..2 {
            stepwise.extend_with_noise(&new_x[i..=i], &new_y[i..=i], &new_n[i..=i]).unwrap();
        }
        assert_eq!(batch.log_marginal_likelihood(), stepwise.log_marginal_likelihood());
        for i in 0..=10 {
            let q = i as f64 / 10.0;
            assert_eq!(batch.predict_mean(q), stepwise.predict_mean(q));
            assert_eq!(batch.predict_variance(q), stepwise.predict_variance(q));
        }
    }

    #[test]
    fn empty_extend_is_a_noop() {
        let mut gp =
            GaussianProcess::fit(&[0.0, 0.5, 1.0], &[0.1, 0.5, 0.9], config_no_opt()).unwrap();
        let before = gp.log_marginal_likelihood();
        gp.extend(&[], &[]).unwrap();
        assert_eq!(gp.training_size(), 3);
        assert_eq!(gp.log_marginal_likelihood(), before);
    }

    #[test]
    fn failed_extend_leaves_the_model_unchanged() {
        let mut gp =
            GaussianProcess::fit(&[0.0, 0.5, 1.0], &[0.1, 0.5, 0.9], config_no_opt()).unwrap();
        let before_lml = gp.log_marginal_likelihood();
        let before_mean = gp.predict_mean(0.3);
        assert!(gp.extend(&[0.25], &[f64::NAN]).is_err());
        assert!(gp.extend_with_noise(&[0.25], &[0.3], &[-1.0]).is_err());
        assert!(gp.extend(&[0.25, 0.75], &[0.3]).is_err());
        assert_eq!(gp.training_size(), 3);
        assert_eq!(gp.log_marginal_likelihood(), before_lml);
        assert_eq!(gp.predict_mean(0.3), before_mean);
    }

    #[test]
    fn extend_defaults_to_the_average_noise() {
        let xs = [0.0, 0.5, 1.0];
        let ys = [0.1, 0.5, 0.9];
        let noise = [1e-3, 3e-3, 2e-3];
        let mut plain = GaussianProcess::fit_with_noise(&xs, &ys, &noise, config_no_opt()).unwrap();
        let avg = plain.noise_variance();
        let mut explicit = plain.clone();
        plain.extend(&[0.25], &[0.3]).unwrap();
        explicit.extend_with_noise(&[0.25], &[0.3], &[avg]).unwrap();
        assert_eq!(plain.predict_mean(0.6), explicit.predict_mean(0.6));
        assert_eq!(plain.noise_variance(), explicit.noise_variance());
    }
}
