//! Property tests for the incremental-refit primitives: growing a Cholesky
//! factor row by row and appending observations to a fitted Gaussian process
//! must reproduce the from-scratch computation. These equivalences are what
//! lets the labeling sessions refit per probe in O(n²) without changing a
//! single emitted batch or bound.

use er_stats::{GaussianProcess, GpConfig, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random symmetric positive-definite matrix: `B·Bᵀ + n·I`.
fn random_spd(n: usize, rng: &mut StdRng) -> Matrix {
    let b = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
    let mut a = b.matmul(&b.transpose());
    a.add_diagonal(n as f64);
    a
}

/// The leading `k × k` block of a matrix.
fn leading_block(a: &Matrix, k: usize) -> Matrix {
    Matrix::from_fn(k, k, |i, j| a[(i, j)])
}

proptest! {
    /// Growing the factor of the leading block row by row reproduces the
    /// from-scratch factorization of the full matrix.
    #[test]
    fn extend_row_matches_from_scratch_factorization(
        n in 2usize..24,
        grow in 1usize..6,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let total = n + grow;
        let a = random_spd(total, &mut rng);

        let mut grown = leading_block(&a, n).cholesky().expect("SPD leading block");
        for k in n..total {
            let row: Vec<f64> = (0..k).map(|j| a[(k, j)]).collect();
            grown.extend_row(&row, a[(k, k)]).expect("SPD extension");
        }
        let scratch = a.cholesky().expect("SPD full matrix");

        prop_assert_eq!(grown.order(), total);
        for i in 0..total {
            for j in 0..=i {
                let g = grown.factor()[(i, j)];
                let s = scratch.factor()[(i, j)];
                prop_assert!(
                    (g - s).abs() <= 1e-12,
                    "factor entry ({i},{j}) diverged: grown {g} vs scratch {s}"
                );
            }
        }
        prop_assert!((grown.log_determinant() - scratch.log_determinant()).abs() <= 1e-9);
    }

    /// A failed extension reports the same pivot failure a from-scratch
    /// factorization would, and leaves the factor untouched.
    #[test]
    fn extend_row_rejects_non_spd_extensions(n in 2usize..16, seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random_spd(n, &mut rng);
        let mut factor = a.cholesky().expect("SPD matrix");
        let before = factor.factor().data().to_vec();
        // A new row identical to an existing one with a *smaller* diagonal
        // forces the final Schur-complement pivot to −1, so the extension
        // cannot be positive definite and must be rejected.
        let dup: Vec<f64> = (0..n).map(|j| a[(0, j)]).collect();
        let result = factor.extend_row(&dup, a[(0, 0)] - 1.0);
        prop_assert!(result.is_err(), "duplicate-row extension must not be SPD");
        prop_assert_eq!(factor.order(), n);
        prop_assert_eq!(factor.factor().data(), &before[..]);
    }

    /// Appending observations to a fitted GP gives the same posterior as
    /// fitting the concatenated data from scratch with the same fixed
    /// hyperparameters — mean, variance and log marginal likelihood alike.
    #[test]
    fn gp_extend_matches_fit_on_concatenated_data(
        initial in 2usize..12,
        appended in 1usize..8,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let total = initial + appended;
        let xs: Vec<f64> = (0..total).map(|i| i as f64 + rng.gen_range(0.0..0.5)).collect();
        let ys: Vec<f64> = xs.iter().map(|x| (x / 3.0).sin() * 0.4 + rng.gen_range(-0.05..0.05)).collect();
        let noise: Vec<f64> = (0..total).map(|_| rng.gen_range(1e-5..1e-2)).collect();
        let config = GpConfig {
            signal_variance: 0.05,
            length_scale: Some(rng.gen_range(0.5..4.0)),
            noise_variance: 1e-4,
            optimize_length_scale: false,
            ..GpConfig::default()
        };

        let mut grown = GaussianProcess::fit_with_noise(
            &xs[..initial], &ys[..initial], &noise[..initial], config,
        ).expect("initial fit succeeds");
        // Append in two chunks to also cover the one-at-a-time == batched path.
        let split = initial + appended / 2;
        grown.extend_with_noise(&xs[initial..split], &ys[initial..split], &noise[initial..split])
            .expect("first extension succeeds");
        grown.extend_with_noise(&xs[split..], &ys[split..], &noise[split..])
            .expect("second extension succeeds");

        let scratch = GaussianProcess::fit_with_noise(&xs, &ys, &noise, config)
            .expect("from-scratch fit succeeds");

        prop_assert_eq!(grown.training_size(), scratch.training_size());
        prop_assert!(
            (grown.log_marginal_likelihood() - scratch.log_marginal_likelihood()).abs() <= 1e-9,
            "log marginal likelihood diverged: {} vs {}",
            grown.log_marginal_likelihood(),
            scratch.log_marginal_likelihood()
        );
        for q in 0..=20 {
            let x = total as f64 * q as f64 / 20.0;
            let (gm, gv) = grown.predict(x);
            let (sm, sv) = scratch.predict(x);
            prop_assert!(
                (gm - sm).abs() <= 1e-12,
                "posterior mean diverged at {x}: {gm} vs {sm}"
            );
            prop_assert!(
                (gv - sv).abs() <= 1e-12,
                "posterior variance diverged at {x}: {gv} vs {sv}"
            );
        }
    }
}
