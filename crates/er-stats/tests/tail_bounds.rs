//! Property tests for the tail-calibration primitives: Clopper–Pearson
//! one-sided limits and distance-dependent posterior inflation.

use er_stats::{
    clopper_pearson_lower, clopper_pearson_upper, detection_limit, detection_limit_lower,
    effective_sample_size, pooled_lower_limit, pooled_upper_limit, posterior_inflation_factor,
    GaussianProcess, GpConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    /// The upper limit is monotone in the number of observed positives.
    #[test]
    fn upper_limit_is_monotone_in_positives(
        n in 2usize..400,
        confidence in 0.5..0.999f64,
        seed in 0u64..1_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let k1 = rng.gen_range(0..n);
        let k2 = rng.gen_range(k1 + 1..=n);
        let u1 = clopper_pearson_upper(n as f64, k1 as f64, confidence).unwrap();
        let u2 = clopper_pearson_upper(n as f64, k2 as f64, confidence).unwrap();
        prop_assert!(
            u1 <= u2 + 1e-12,
            "upper limit must grow with positives: n={n} k1={k1} k2={k2} -> {u1} > {u2}"
        );
    }

    /// For a fixed number of positives, more draws tighten the upper limit.
    #[test]
    fn upper_limit_is_monotone_in_sample_size(
        k in 0usize..50,
        extra in 1usize..300,
        confidence in 0.5..0.999f64,
    ) {
        let n1 = (k + 1) as f64;
        let n2 = (k + 1 + extra) as f64;
        let u1 = clopper_pearson_upper(n1, k as f64, confidence).unwrap();
        let u2 = clopper_pearson_upper(n2, k as f64, confidence).unwrap();
        prop_assert!(
            u2 <= u1 + 1e-12,
            "more draws must tighten the limit: k={k} n1={n1} n2={n2} -> {u2} > {u1}"
        );
    }

    /// The one-sided limits bracket the observed proportion and stay inside
    /// [0, 1]. (Only for confidence >= 1/2: below that the one-sided Beta
    /// quantiles legitimately cross the observed proportion, and the
    /// estimators never ask for such levels.)
    #[test]
    fn limits_bracket_the_observed_proportion(
        n in 1usize..500,
        frac in 0.0..=1.0f64,
        confidence in 0.5..0.999f64,
    ) {
        let k = ((n as f64 * frac).round() as usize).min(n);
        let u = clopper_pearson_upper(n as f64, k as f64, confidence).unwrap();
        let l = clopper_pearson_lower(n as f64, k as f64, confidence).unwrap();
        let observed = k as f64 / n as f64;
        prop_assert!((0.0..=1.0).contains(&u) && (0.0..=1.0).contains(&l));
        prop_assert!(l <= observed + 1e-12);
        prop_assert!(u >= observed - 1e-12);
        prop_assert!(l <= u + 1e-12);
    }

    /// Frequentist coverage: over simulated binomial experiments, the true
    /// proportion lies at or below the upper limit in at least a `confidence`
    /// fraction of trials (Clopper–Pearson is exact, hence conservative).
    #[test]
    fn upper_limit_covers_simulated_binomials(
        p in 0.001..0.5f64,
        n in 10usize..200,
        seed in 0u64..10_000,
    ) {
        const TRIALS: usize = 400;
        const CONFIDENCE: f64 = 0.9;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut covered = 0usize;
        for _ in 0..TRIALS {
            let k = (0..n).filter(|_| rng.gen_range(0.0..1.0) < p).count();
            let u = clopper_pearson_upper(n as f64, k as f64, CONFIDENCE).unwrap();
            if p <= u {
                covered += 1;
            }
        }
        // Binomial tolerance: the coverage indicator itself is a binomial with
        // success probability >= 0.9; 400 trials put its observed rate above
        // 0.9 - 4 sigma with overwhelming probability.
        let four_sigma = 4.0 * (CONFIDENCE * (1.0 - CONFIDENCE) / TRIALS as f64).sqrt();
        prop_assert!(
            covered as f64 / TRIALS as f64 >= CONFIDENCE - four_sigma,
            "coverage {}/{TRIALS} below {CONFIDENCE} for p={p}, n={n}",
            covered
        );
    }

    /// Posterior inflation never shrinks an interval: the factor is at least
    /// one and non-decreasing in the distance.
    #[test]
    fn inflation_factor_never_shrinks(
        d1 in 0.0..10.0f64,
        extra in 0.0..10.0f64,
        length_scale in 0.001..2.0f64,
        strength in -1.0..8.0f64,
    ) {
        let near = posterior_inflation_factor(d1, length_scale, strength);
        let far = posterior_inflation_factor(d1 + extra, length_scale, strength);
        prop_assert!(near >= 1.0, "inflation factor below one: {near}");
        prop_assert!(far >= near - 1e-12, "inflation decreased with distance: {near} -> {far}");
    }

    /// Inflating a real GP posterior's variances widens every pointwise
    /// interval, whatever the (possibly sub-unit) factors.
    #[test]
    fn inflating_gp_variances_never_narrows_intervals(
        raw_factor in 0.0..5.0f64,
        seed in 0u64..1_000,
    ) {
        let xs = [0.0, 0.2, 0.45, 0.7, 1.0];
        let ys = [0.05, 0.15, 0.5, 0.8, 0.97];
        let config = GpConfig { optimize_length_scale: false, ..GpConfig::default() };
        let gp = GaussianProcess::fit(&xs, &ys, config).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let query: Vec<f64> = (0..8).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mut posterior = gp.predict_joint(&query);
        let before = posterior.variances();
        let factors: Vec<f64> = (0..query.len())
            .map(|_| raw_factor * rng.gen_range(0.0..1.0))
            .collect();
        posterior.inflate_variances(&factors);
        for (b, a) in before.iter().zip(posterior.variances()) {
            prop_assert!(a >= *b - 1e-15, "variance shrank under inflation: {b} -> {a}");
        }
    }

    /// Deflating the effective sample size with distance can only widen the
    /// detection limit.
    #[test]
    fn deflated_samples_widen_detection_limits(
        n in 2.0..500.0f64,
        d1 in 0.0..5.0f64,
        extra in 0.0..5.0f64,
        strength in 0.0..4.0f64,
    ) {
        let ls = 0.1;
        let near = effective_sample_size(n, d1, ls, strength);
        let far = effective_sample_size(n, d1 + extra, ls, strength);
        prop_assert!(far <= near + 1e-12 && near <= n + 1e-12 && far >= 1.0);
        let dl_near = detection_limit(near, 0.95).unwrap();
        let dl_far = detection_limit(far, 0.95).unwrap();
        prop_assert!(dl_far >= dl_near - 1e-12, "detection limit narrowed with distance");
    }

    /// The lower limit is monotone in the number of observed positives —
    /// the mirror of `upper_limit_is_monotone_in_positives`.
    #[test]
    fn lower_limit_is_monotone_in_positives(
        n in 2usize..400,
        confidence in 0.5..0.999f64,
        seed in 0u64..1_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let k1 = rng.gen_range(0..n);
        let k2 = rng.gen_range(k1 + 1..=n);
        let l1 = clopper_pearson_lower(n as f64, k1 as f64, confidence).unwrap();
        let l2 = clopper_pearson_lower(n as f64, k2 as f64, confidence).unwrap();
        prop_assert!(
            l1 <= l2 + 1e-12,
            "lower limit must grow with positives: n={n} k1={k1} k2={k2} -> {l1} > {l2}"
        );
    }

    /// For a fixed number of *negatives*, more draws raise (tighten) the lower
    /// limit: a bigger pure-one-dominated sample certifies a higher proportion.
    #[test]
    fn lower_limit_is_monotone_in_sample_size(
        negatives in 0usize..50,
        extra in 1usize..300,
        confidence in 0.5..0.999f64,
    ) {
        let n1 = (negatives + 1) as f64;
        let n2 = (negatives + 1 + extra) as f64;
        let l1 = clopper_pearson_lower(n1, n1 - negatives as f64, confidence).unwrap();
        let l2 = clopper_pearson_lower(n2, n2 - negatives as f64, confidence).unwrap();
        prop_assert!(
            l2 >= l1 - 1e-12,
            "more draws must tighten the lower limit: negatives={negatives} n1={n1} n2={n2} \
             -> {l2} < {l1}"
        );
    }

    /// Frequentist coverage of the lower limit: the true proportion lies at or
    /// above it in at least a `confidence` fraction of simulated binomial
    /// experiments — the mirror of `upper_limit_covers_simulated_binomials`,
    /// run in the near-pure regime the saturated-run calibration lives in.
    #[test]
    fn lower_limit_covers_simulated_binomials(
        p in 0.5..0.999f64,
        n in 10usize..200,
        seed in 0u64..10_000,
    ) {
        const TRIALS: usize = 400;
        const CONFIDENCE: f64 = 0.9;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut covered = 0usize;
        for _ in 0..TRIALS {
            let k = (0..n).filter(|_| rng.gen_range(0.0..1.0) < p).count();
            let l = clopper_pearson_lower(n as f64, k as f64, CONFIDENCE).unwrap();
            if p >= l {
                covered += 1;
            }
        }
        let four_sigma = 4.0 * (CONFIDENCE * (1.0 - CONFIDENCE) / TRIALS as f64).sqrt();
        prop_assert!(
            covered as f64 / TRIALS as f64 >= CONFIDENCE - four_sigma,
            "lower-limit coverage {}/{TRIALS} below {CONFIDENCE} for p={p}, n={n}",
            covered
        );
    }

    /// Deflating the effective sample size with distance can only *lower*
    /// (widen) the lower detection limit — the mirror of
    /// `deflated_samples_widen_detection_limits`.
    #[test]
    fn deflated_samples_widen_lower_detection_limits(
        n in 2.0..500.0f64,
        d1 in 0.0..5.0f64,
        extra in 0.0..5.0f64,
        strength in 0.0..4.0f64,
    ) {
        let ls = 0.1;
        let near = effective_sample_size(n, d1, ls, strength);
        let far = effective_sample_size(n, d1 + extra, ls, strength);
        let dl_near = detection_limit_lower(near, 0.95).unwrap();
        let dl_far = detection_limit_lower(far, 0.95).unwrap();
        prop_assert!(
            dl_far <= dl_near + 1e-12,
            "lower detection limit rose with distance: {dl_near} -> {dl_far}"
        );
    }

    /// The pooled limits preserve the observed proportion under deflation and
    /// always bracket it: the deflated lower limit sits at or below, the
    /// deflated upper limit at or above.
    #[test]
    fn pooled_limits_bracket_the_observed_proportion(
        n in 2.0..500.0f64,
        frac in 0.0..=1.0f64,
        distance in 0.0..5.0f64,
        strength in 0.0..4.0f64,
        confidence in 0.5..0.999f64,
    ) {
        let k = (n * frac).min(n);
        let observed = k / n;
        let l = pooled_lower_limit(n, k, distance, 0.1, strength, confidence).unwrap();
        let u = pooled_upper_limit(n, k, distance, 0.1, strength, confidence).unwrap();
        prop_assert!((0.0..=1.0).contains(&l) && (0.0..=1.0).contains(&u));
        prop_assert!(l <= observed + 1e-9, "pooled lower {l} above observed {observed}");
        prop_assert!(u >= observed - 1e-9, "pooled upper {u} below observed {observed}");
        prop_assert!(l <= u + 1e-9);
    }

    /// Pooling several same-proportion samples certifies a tighter (higher)
    /// lower limit than any one of them alone — the property that makes the
    /// saturated-run form affordable where per-subset limits were severalfold
    /// too weak.
    #[test]
    fn pooling_tightens_the_lower_limit(
        per_sample in 5.0..100.0f64,
        copies in 2usize..12,
        confidence in 0.5..0.999f64,
    ) {
        let pooled_n = per_sample * copies as f64;
        let single = pooled_lower_limit(per_sample, per_sample, 0.0, 0.1, 1.0, confidence).unwrap();
        let pooled = pooled_lower_limit(pooled_n, pooled_n, 0.0, 0.1, 1.0, confidence).unwrap();
        prop_assert!(
            pooled >= single - 1e-12,
            "pooled pure-one limit {pooled} weaker than the single-sample limit {single}"
        );
    }
}
