//! Ablation benchmarks: runtime impact of SAMP's subset size and of the
//! conservative noise treatment (quality-side ablations live in the
//! `ablation_*` harness binaries).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use humo::sampling::{PartialSamplingConfig, PartialSamplingOptimizer};
use humo::{GroundTruthOracle, Optimizer, QualityRequirement};
use humo_bench::synthetic_workload;

fn ablations(c: &mut Criterion) {
    let requirement = QualityRequirement::symmetric(0.9).unwrap();
    let workload = synthetic_workload(50_000, 14.0, 0.1, 9);
    let mut group = c.benchmark_group("samp_ablations");
    group.sample_size(10);
    for unit in [100usize, 200, 400] {
        let config =
            PartialSamplingConfig { unit_size: unit, ..PartialSamplingConfig::new(requirement) };
        group.bench_with_input(BenchmarkId::new("unit_size", unit), &config, |b, cfg| {
            b.iter(|| {
                let optimizer = PartialSamplingOptimizer::new(*cfg).unwrap();
                let mut oracle = GroundTruthOracle::new();
                optimizer.optimize(&workload, &mut oracle).unwrap()
            })
        });
    }
    for conservative in [false, true] {
        let config = PartialSamplingConfig {
            conservative_noise: conservative,
            ..PartialSamplingConfig::new(requirement)
        };
        group.bench_with_input(
            BenchmarkId::new("noise_model", if conservative { "conservative" } else { "paper" }),
            &config,
            |b, cfg| {
                b.iter(|| {
                    let optimizer = PartialSamplingOptimizer::new(*cfg).unwrap();
                    let mut oracle = GroundTruthOracle::new();
                    optimizer.optimize(&workload, &mut oracle).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
