//! Criterion benchmark behind Figure 12: optimizer runtime vs workload size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use humo::QualityRequirement;
use humo_bench::{run_base, run_hybr, run_samp, synthetic_workload};

fn scalability(c: &mut Criterion) {
    let requirement = QualityRequirement::symmetric(0.9).unwrap();
    let mut group = c.benchmark_group("scalability");
    group.sample_size(10);
    for &n in &[10_000usize, 50_000, 100_000, 200_000] {
        let workload = synthetic_workload(n, 14.0, 0.1, 5);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("BASE", n), &workload, |b, w| {
            b.iter(|| run_base(w, requirement, 0))
        });
        group.bench_with_input(BenchmarkId::new("SAMP", n), &workload, |b, w| {
            b.iter(|| run_samp(w, requirement, 0))
        });
        group.bench_with_input(BenchmarkId::new("HYBR", n), &workload, |b, w| {
            b.iter(|| run_hybr(w, requirement, 0))
        });
    }
    group.finish();
}

criterion_group!(benches, scalability);
criterion_main!(benches);
