//! Microbenchmarks of the similarity substrate (string measures and the
//! attribute-weighted pair scorer).

use criterion::{criterion_group, criterion_main, Criterion};
use er_core::similarity::{
    jaccard_similarity, jaro_winkler_similarity, levenshtein_similarity, monge_elkan_similarity,
};
use er_core::text::word_tokens;

fn similarity(c: &mut Criterion) {
    let a = "enabling quality control for entity resolution a human and machine framework";
    let b = "a human and machine cooperation framework for entity resolution quality control";
    let ta = word_tokens(a);
    let tb = word_tokens(b);
    let mut group = c.benchmark_group("similarity");
    group.bench_function("levenshtein", |bench| bench.iter(|| levenshtein_similarity(a, b)));
    group.bench_function("jaro_winkler", |bench| bench.iter(|| jaro_winkler_similarity(a, b)));
    group.bench_function("jaccard_words", |bench| bench.iter(|| jaccard_similarity(&ta, &tb)));
    group.bench_function("monge_elkan", |bench| bench.iter(|| monge_elkan_similarity(a, b)));
    group.finish();
}

criterion_group!(benches, similarity);
criterion_main!(benches);
