//! Criterion benchmark behind Table VII: machine runtime of the three optimizers
//! on the DS- and AB-like workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use humo::QualityRequirement;
use humo_bench::{ab_workload, ds_workload, run_base, run_hybr, run_samp};

fn optimizer_runtime(c: &mut Criterion) {
    let requirement = QualityRequirement::symmetric(0.9).unwrap();
    let mut group = c.benchmark_group("optimizer_runtime");
    group.sample_size(10);
    for (name, workload) in [("DS", ds_workload(1)), ("AB", ab_workload(1))] {
        group.bench_with_input(BenchmarkId::new("BASE", name), &workload, |b, w| {
            b.iter(|| run_base(w, requirement, 0))
        });
        group.bench_with_input(BenchmarkId::new("SAMP", name), &workload, |b, w| {
            b.iter(|| run_samp(w, requirement, 0))
        });
        group.bench_with_input(BenchmarkId::new("HYBR", name), &workload, |b, w| {
            b.iter(|| run_hybr(w, requirement, 0))
        });
    }
    group.finish();
}

criterion_group!(benches, optimizer_runtime);
criterion_main!(benches);
