//! Criterion bench of the worker-pool pair-scoring path.
//!
//! Measures the chunk-sharded `WorkerPool::score_pairs` over a realistic
//! blocked candidate set at several thread counts (the interesting read is the
//! per-thread-count throughput ratio), plus the raw `map` sharding overhead on
//! a trivial function.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use er_core::aggregate::{AttributeMeasure, AttributeWeighting, PairScorer, ScoringConfig};
use er_core::blocking::TokenBlocker;
use er_core::similarity::StringMeasure;
use er_core::text::Tokenizer;
use er_datagen::bibliographic::{BibliographicConfig, BibliographicGenerator};
use er_pipeline::WorkerPool;

fn thread_counts() -> Vec<usize> {
    let available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut counts = vec![1, 2, 4, available];
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn scoring(criterion: &mut Criterion) {
    let corpus = BibliographicGenerator::new(BibliographicConfig {
        num_entities: 400,
        duplicate_probability: 0.6,
        extra_right_entities: 400,
        corruption: 0.35,
        seed: 7,
    })
    .generate();
    let candidates =
        TokenBlocker::new("title", Tokenizer::Words).candidates(&corpus.left, &corpus.right);
    let config = ScoringConfig::new(
        [
            ("title", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
            ("authors", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
            ("venue", AttributeMeasure::Text(StringMeasure::JaroWinkler)),
        ],
        AttributeWeighting::Uniform,
    );
    let scorer = PairScorer::new(&config, &[&corpus.left, &corpus.right]).expect("valid scorer");

    let mut group = criterion.benchmark_group("worker_pool_scoring");
    group.sample_size(10);
    group.throughput(Throughput::Elements(candidates.len() as u64));
    for threads in thread_counts() {
        let pool = WorkerPool::new(threads);
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &candidates,
            |bencher, pairs| {
                bencher.iter(|| {
                    pool.score_pairs(&corpus.left, &corpus.right, &scorer, pairs)
                        .expect("scoring succeeds")
                });
            },
        );
    }
    group.finish();
}

fn sharding_overhead(criterion: &mut Criterion) {
    let items: Vec<u64> = (0..100_000).collect();
    let mut group = criterion.benchmark_group("worker_pool_map_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(items.len() as u64));
    for threads in thread_counts() {
        let pool = WorkerPool::new(threads);
        group.bench_with_input(BenchmarkId::new("threads", threads), &items, |bencher, data| {
            bencher.iter(|| pool.map(data, |&x| x.wrapping_mul(2_654_435_761)));
        });
    }
    group.finish();
}

criterion_group!(benches, scoring, sharding_overhead);
criterion_main!(benches);
