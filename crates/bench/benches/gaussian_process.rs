//! Microbenchmarks of the Gaussian-process substrate used by SAMP/HYBR.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use er_stats::{GaussianProcess, GpConfig};

fn training_data(n: usize) -> (Vec<f64>, Vec<f64>) {
    let xs: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
    let ys: Vec<f64> = xs.iter().map(|x| 0.95 / (1.0 + (-14.0 * (x - 0.55)).exp())).collect();
    (xs, ys)
}

fn gaussian_process(c: &mut Criterion) {
    let mut group = c.benchmark_group("gaussian_process");
    for &n in &[20usize, 50, 100] {
        let (xs, ys) = training_data(n);
        group.bench_with_input(BenchmarkId::new("fit", n), &n, |b, _| {
            b.iter(|| GaussianProcess::fit(&xs, &ys, GpConfig::default()).unwrap())
        });
        let gp = GaussianProcess::fit(&xs, &ys, GpConfig::default()).unwrap();
        let query: Vec<f64> = (0..500).map(|i| i as f64 / 500.0).collect();
        group.bench_with_input(BenchmarkId::new("predict_joint_500", n), &n, |b, _| {
            b.iter(|| gp.predict_joint(&query))
        });
    }
    group.finish();
}

criterion_group!(benches, gaussian_process);
criterion_main!(benches);
