//! Table VI — HUMO vs the active-learning baseline (ACTL) on AB.

use er_ml::{ActiveLearningClassifier, ActlConfig};
use humo::QualityRequirement;
use humo_bench::{ab_workload, header, run_hybr, summarize};

fn main() {
    header("Table VI", "HUMO (HYBR) vs ACTL on AB at matched target precision");
    let workload = ab_workload(1);
    println!(
        "{:>10} | {:>12} {:>12} | {:>9} {:>9} | {:>16}",
        "target α", "HUMO recall", "ACTL recall", "HUMO ψ%", "ACTL ψ%", "Δψ / (100·ΔRecall)"
    );
    for target in [0.75, 0.80, 0.85, 0.90, 0.95] {
        let requirement = QualityRequirement::new(target, target, 0.9).unwrap();
        let humo_summary = summarize(&workload, requirement, run_hybr);
        let actl = ActiveLearningClassifier::new(ActlConfig {
            target_precision: target,
            confidence: 0.9,
            samples_per_probe: 200,
            max_probes: 20,
            seed: 3,
        })
        .unwrap()
        .run(&workload)
        .unwrap();
        let humo_cost = 100.0 * humo_summary.cost_fraction;
        let actl_cost = 100.0 * actl.human_cost_fraction(workload.len());
        let recall_gain = humo_summary.recall - actl.metrics.recall();
        let roi = if recall_gain.abs() > 1e-9 {
            (humo_cost - actl_cost) / (100.0 * recall_gain)
        } else {
            f64::NAN
        };
        println!(
            "{target:>10.2} | {:>12.4} {:>12.4} | {:>9.2} {:>9.2} | {:>16.4}",
            humo_summary.recall,
            actl.metrics.recall(),
            humo_cost,
            actl_cost,
            roi
        );
    }
    println!(
        "\npaper: on AB ACTL collapses to 0.10-0.20 recall while HUMO stays at 0.86-0.95; the extra \
         manual work per 1% recall gain is 0.10-0.19%"
    );
}
