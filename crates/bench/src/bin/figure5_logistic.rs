//! Figure 5 — the logistic match-proportion function for several steepness values.

use er_datagen::synthetic::logistic_match_proportion;
use humo_bench::header;

fn main() {
    header("Figure 5", "logistic match-proportion curves for τ ∈ {8, 14, 18}");
    println!("{:>10} {:>8} {:>8} {:>8}", "similarity", "τ=8", "τ=14", "τ=18");
    for i in 0..=20 {
        let v = i as f64 / 20.0;
        println!(
            "{v:>10.2} {:>8.3} {:>8.3} {:>8.3}",
            logistic_match_proportion(v, 8.0),
            logistic_match_proportion(v, 14.0),
            logistic_match_proportion(v, 18.0)
        );
    }
    println!(
        "\npaper: curves cross 0.475 at similarity 0.55 and plateau at 0.95; larger τ is steeper"
    );
}
