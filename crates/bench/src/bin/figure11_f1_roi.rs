//! Figure 11 — extra manual work HUMO spends per 1% absolute F1 improvement over ACTL.

use er_ml::{ActiveLearningClassifier, ActlConfig};
use humo::QualityRequirement;
use humo_bench::{ab_workload, ds_workload, header, run_hybr, summarize};

fn main() {
    header("Figure 11", "manual work per 1% absolute F1 improvement over ACTL (DS and AB)");
    println!("{:>10} {:>14} {:>14}", "target α", "DS Δψ/(100·ΔF1)", "AB Δψ/(100·ΔF1)");
    let ds = ds_workload(1);
    let ab = ab_workload(1);
    for target in [0.75, 0.80, 0.85, 0.90, 0.95] {
        let requirement = QualityRequirement::new(target, target, 0.9).unwrap();
        let mut cells = Vec::new();
        for workload in [&ds, &ab] {
            let humo_summary = summarize(workload, requirement, run_hybr);
            let actl = ActiveLearningClassifier::new(ActlConfig {
                target_precision: target,
                confidence: 0.9,
                samples_per_probe: 200,
                max_probes: 20,
                seed: 3,
            })
            .unwrap()
            .run(workload)
            .unwrap();
            let delta_cost =
                100.0 * (humo_summary.cost_fraction - actl.human_cost_fraction(workload.len()));
            let delta_f1 = humo_summary.f1 - actl.metrics.f1();
            let roi =
                if delta_f1.abs() > 1e-9 { delta_cost / (100.0 * delta_f1) } else { f64::NAN };
            cells.push(roi);
        }
        println!("{target:>10.2} {:>14.4} {:>14.4}", cells[0], cells[1]);
    }
    println!(
        "\npaper: the cost of 1% F1 improvement rises with the target precision and stays below \
         0.35% on DS and 0.21% on AB"
    );
}
