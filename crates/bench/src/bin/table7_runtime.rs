//! Table VII — machine runtime of the three optimizers on DS and AB.
//!
//! Criterion-based measurements live in `benches/optimizer_runtime.rs`; this
//! binary prints a quick single-run wall-clock version of the same table.

use humo::QualityRequirement;
use humo_bench::{ab_workload, ds_workload, header, run_base, run_hybr, run_samp};
use std::time::Instant;

fn main() {
    header("Table VII", "machine runtime (seconds) of BASE/SAMP/HYBR on DS and AB");
    let requirement = QualityRequirement::symmetric(0.9).unwrap();
    println!("{:<8} {:>10} {:>10} {:>10} {:>10}", "Dataset", "# pairs", "BASE", "SAMP", "HYBR");
    for (name, workload) in [("DS", ds_workload(1)), ("AB", ab_workload(1))] {
        let t0 = Instant::now();
        let _ = run_base(&workload, requirement, 0);
        let base = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let _ = run_samp(&workload, requirement, 0);
        let samp = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let _ = run_hybr(&workload, requirement, 0);
        let hybr = t0.elapsed().as_secs_f64();
        println!("{name:<8} {:>10} {:>10.3} {:>10.3} {:>10.3}", workload.len(), base, samp, hybr);
    }
    println!(
        "\npaper (full-size workloads, 2017 hardware): DS 0.97 / 6.5 / 7.6 s and AB 3.1 / 20.9 / 53.5 s; \
         BASE is the fastest and the sampling-based searches cost more machine time"
    );
}
