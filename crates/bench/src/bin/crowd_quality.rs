//! Crowd-quality harness: delivered precision/recall under noisy crowd
//! labels, across worker error × redundancy/aggregation scheme × optimizer.
//!
//! The paper's guarantee machinery assumes perfect manual labels; `er-crowd`
//! models the real thing — workers with (possibly asymmetric) confusion
//! matrices, redundant assignment, majority/EM aggregation. This harness
//! measures what the crowd does to the θ-guarantee: each cell runs an
//! optimizer over many seeds against a [`humo::CrowdOracle`] and reports the
//! empirical requirement-failure rate (with one-sided 95% Clopper–Pearson
//! bands), the delivered precision/recall means, the label-cost fraction and
//! the votes-per-label multiplier.
//!
//! Schemes per (optimizer, worker error):
//!
//! * `r1`   — `Fixed(1)`, majority: the single noisy labeler baseline;
//! * `rmaj` — `Fixed(r)`, majority vote;
//! * `rem`  — `Fixed(r)`, Dawid–Skene-style EM aggregation.
//!
//! An extra asymmetric arm (workers that miss matches far more often than
//! they invent them: flip rates 0.35/0.05) compares `rmaj` vs `rem` where the
//! confusion matrix actually matters: EM learns the asymmetry and recovers
//! matches a symmetric majority vote loses.
//!
//! Environment knobs (shared parsing in [`humo_bench::BenchConfig`]):
//!
//! * `HUMO_CROWD_SEEDS`  — seeds per cell (default 6);
//! * `HUMO_CROWD_PAIRS`  — workload size (default 16000);
//! * `HUMO_CROWD_TAU`    — logistic steepness (default 14);
//! * `HUMO_CROWD_ERRORS` — symmetric worker error grid (default `0,0.2`);
//! * `HUMO_CROWD_WORKERS` — worker-pool size (default 9);
//! * `HUMO_CROWD_REDUNDANCY` — `r` for the redundant schemes (default 3);
//! * `HUMO_CROWD_ASSERT` — when set, exit non-zero unless, at the largest
//!   worker error: `rmaj` beats `r1` on delivered recall; EM is at least as
//!   good as majority on asymmetric-worker recall; the `rem` failure rate is
//!   within the θ-band of the clean-label runs — its 95% Clopper–Pearson
//!   lower limit must not exceed the clean arm's upper limit (a criterion the
//!   un-redundant `r1` arm fails outright at 20% error, and the nominal
//!   `1 − θ` when no clean arm is in the grid); and every `Fixed(r)` cell
//!   costs exactly `r` votes per label.
//!
//! `--json <path>` / `--baseline <path>` emit and gate the `BENCH_crowd.json`
//! trajectory document (see `humo_bench::trajectory`).

use humo::{symmetric_pool, Aggregation, CrowdOracle, QualityRequirement, Redundancy, WorkerModel};
use humo_bench::trajectory::emit_and_gate;
use humo_bench::{
    failure_rate_band, run_hybr_with_oracle, run_samp_with_oracle, synthetic_workload, BenchConfig,
    Json,
};

const NOMINAL_FAILURE_RATE: f64 = 0.1; // 1 − θ for the paper's default θ = 0.9.
const ASYM_FLIP_MATCH: f64 = 0.35;
const ASYM_FLIP_UNMATCH: f64 = 0.05;

struct Cell {
    optimizer: &'static str,
    scheme: &'static str,
    /// Worker-pool description: `sym:<error>` or `asym:<fm>/<fu>`.
    pool: String,
    runs: usize,
    failures: usize,
    recall_failures: usize,
    precision_failures: usize,
    mean_precision: f64,
    mean_recall: f64,
    mean_cost_fraction: f64,
    votes_per_label: f64,
    /// Mean |estimated − true| worker flip rate, for EM cells.
    reliability_abs_error: Option<f64>,
}

type Runner = fn(
    &er_core::workload::Workload,
    QualityRequirement,
    u64,
    &mut dyn humo::Oracle,
) -> humo::OptimizationOutcome;

struct Scheme {
    name: &'static str,
    redundancy: Redundancy,
    em: bool,
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    optimizer: &'static str,
    runner: Runner,
    scheme: &Scheme,
    pool: &str,
    make_workers: &dyn Fn(u64) -> Vec<WorkerModel>,
    requirement: QualityRequirement,
    seeds: usize,
    pairs: usize,
    tau: f64,
) -> Cell {
    let mut failures = 0usize;
    let mut recall_failures = 0usize;
    let mut precision_failures = 0usize;
    let mut precision = 0.0;
    let mut recall = 0.0;
    let mut cost = 0.0;
    let mut votes_per_label = 0.0;
    let mut reliability = (0.0f64, 0usize);
    for seed in 0..seeds as u64 {
        let workload = synthetic_workload(pairs, tau, 0.1, 1000 + seed);
        let aggregation = if scheme.em {
            Aggregation::Em(humo::EmConfig::default())
        } else {
            Aggregation::Majority
        };
        let mut oracle =
            CrowdOracle::new(make_workers(seed), scheme.redundancy, aggregation, 77 + seed);
        let outcome = runner(&workload, requirement, seed, &mut oracle);
        if !requirement.is_satisfied_by(&outcome.metrics) {
            failures += 1;
        }
        if outcome.metrics.recall() < requirement.recall() {
            recall_failures += 1;
        }
        if outcome.metrics.precision() < requirement.precision() {
            precision_failures += 1;
        }
        precision += outcome.metrics.precision();
        recall += outcome.metrics.recall();
        cost += outcome.human_cost_fraction(workload.len());
        votes_per_label += oracle.cost_multiplier();
        if let Some(err) = oracle.reliability_abs_error() {
            reliability.0 += err;
            reliability.1 += 1;
        }
    }
    let n = seeds as f64;
    Cell {
        optimizer,
        scheme: scheme.name,
        pool: pool.to_string(),
        runs: seeds,
        failures,
        recall_failures,
        precision_failures,
        mean_precision: precision / n,
        mean_recall: recall / n,
        mean_cost_fraction: cost / n,
        votes_per_label: votes_per_label / n,
        reliability_abs_error: (reliability.1 > 0).then(|| reliability.0 / reliability.1 as f64),
    }
}

fn main() {
    let cfg = BenchConfig::from_env("HUMO_CROWD");
    let seeds = cfg.usize("SEEDS", 6);
    let pairs = cfg.usize("PAIRS", 16_000);
    let tau = cfg.f64("TAU", 14.0);
    let errors = cfg.f64_list("ERRORS", &[0.0, 0.2]);
    let workers = cfg.usize("WORKERS", 9);
    let redundancy = cfg.usize("REDUNDANCY", 3).max(1);
    let assert_mode = cfg.flag("ASSERT");
    // An empty grid would make the assertion gate pass vacuously; refuse.
    if errors.is_empty() || seeds == 0 || workers < redundancy {
        eprintln!(
            "crowd_quality: degenerate configuration (errors {errors:?}, seeds {seeds}, \
             {workers} workers < redundancy {redundancy}) — nothing would be measured"
        );
        std::process::exit(2);
    }
    let requirement = QualityRequirement::symmetric(0.9).unwrap();
    let max_error = errors.iter().cloned().fold(0.0f64, f64::max);

    println!("================================================================");
    println!("crowd quality: delivered precision/recall under noisy crowd labels");
    println!(
        "τ = {tau}, {pairs} pairs, {seeds} seeds/cell, {workers} workers/pool, r = {redundancy}, \
         requirement α = β = 0.9 @ θ = 0.9"
    );
    println!(
        "asymmetric arm: flip rates {ASYM_FLIP_MATCH}/{ASYM_FLIP_UNMATCH} (miss-heavy workers)"
    );
    println!("================================================================");
    println!(
        "{:>5} {:>5} {:<10} | {:>7} {:>6} {:>6} | {:>7} {:>7} | {:>7} {:>8} {:>8}",
        "opt",
        "sch",
        "pool",
        "fail",
        "rec-f",
        "prec-f",
        "prec",
        "recall",
        "cost %",
        "votes/l",
        "rel err"
    );

    let optimizers: [(&'static str, Runner); 2] =
        [("SAMP", run_samp_with_oracle), ("HYBR", run_hybr_with_oracle)];
    let schemes = [
        Scheme { name: "r1", redundancy: Redundancy::Fixed(1), em: false },
        Scheme { name: "rmaj", redundancy: Redundancy::Fixed(redundancy), em: false },
        Scheme { name: "rem", redundancy: Redundancy::Fixed(redundancy), em: true },
    ];

    let mut cells: Vec<Cell> = Vec::new();
    for &(name, runner) in &optimizers {
        for &error in &errors {
            for scheme in &schemes {
                let pool = format!("sym:{error}");
                let make = move |seed: u64| symmetric_pool(workers, error, 9_000 + seed);
                let cell =
                    run_cell(name, runner, scheme, &pool, &make, requirement, seeds, pairs, tau);
                print_cell(&cell);
                cells.push(cell);
            }
        }
        // The asymmetric arm: only the redundant schemes are informative.
        for scheme in &schemes[1..] {
            let pool = format!("asym:{ASYM_FLIP_MATCH}/{ASYM_FLIP_UNMATCH}");
            let make = move |seed: u64| {
                (0..workers)
                    .map(|w| {
                        WorkerModel::new(
                            ASYM_FLIP_MATCH,
                            ASYM_FLIP_UNMATCH,
                            humo::crowd::mix(9_000 + seed, w as u64),
                        )
                    })
                    .collect()
            };
            let cell = run_cell(name, runner, scheme, &pool, &make, requirement, seeds, pairs, tau);
            print_cell(&cell);
            cells.push(cell);
        }
    }

    let find = |optimizer: &str, scheme: &str, pool: &str| {
        cells
            .iter()
            .find(|c| c.optimizer == optimizer && c.scheme == scheme && c.pool == pool)
            .expect("cell grid covers every (optimizer, scheme, pool)")
    };
    let mut violations: Vec<String> = Vec::new();
    let noisy = format!("sym:{max_error}");
    let asym = format!("asym:{ASYM_FLIP_MATCH}/{ASYM_FLIP_UNMATCH}");
    for &(name, _) in &optimizers {
        if max_error > 0.0 {
            // Redundancy must buy delivered recall back at the worst error.
            let r1 = find(name, "r1", &noisy);
            let rmaj = find(name, "rmaj", &noisy);
            if rmaj.mean_recall <= r1.mean_recall {
                violations.push(format!(
                    "{name} @ {noisy}: rmaj recall {:.4} does not beat r1 recall {:.4}",
                    rmaj.mean_recall, r1.mean_recall
                ));
            }
            // The redundant EM arm must stay within the θ-band of the
            // clean-label runs: its failure rate must not be statistically
            // above the clean arm's (overlapping one-sided 95% CP bands).
            // This is the restoration claim — r1 at 20% error fails it
            // outright, rem must not. Without a clean arm in the grid the
            // nominal 1 − θ serves as the ceiling.
            let rem = find(name, "rem", &noisy);
            let (lower, _) = failure_rate_band(rem.failures, rem.runs);
            let ceiling = if errors.contains(&0.0) {
                let clean = find(name, "rem", "sym:0");
                failure_rate_band(clean.failures, clean.runs).1
            } else {
                NOMINAL_FAILURE_RATE
            };
            if lower > ceiling {
                violations.push(format!(
                    "{name} @ {noisy}: rem failure rate {}/{} (CP lower {:.3}) is statistically \
                     above the clean-label ceiling {ceiling:.3}",
                    rem.failures, rem.runs, lower
                ));
            }
        }
        // EM must be at least as good as majority where workers are asymmetric.
        let asym_maj = find(name, "rmaj", &asym);
        let asym_em = find(name, "rem", &asym);
        if asym_em.mean_recall + 1e-9 < asym_maj.mean_recall {
            violations.push(format!(
                "{name} @ {asym}: EM recall {:.4} below majority recall {:.4}",
                asym_em.mean_recall, asym_maj.mean_recall
            ));
        }
    }
    // Fixed(r) must cost exactly r votes per label — redundancy never inflates
    // the *label* cost the guarantee accounts, only multiplies votes.
    for cell in &cells {
        let r = match (cell.scheme, redundancy) {
            ("r1", _) => 1.0,
            (_, r) => r as f64,
        };
        if (cell.votes_per_label - r).abs() > 1e-9 {
            violations.push(format!(
                "{} {} @ {}: votes/label {:.4} != fixed redundancy {r}",
                cell.optimizer, cell.scheme, cell.pool, cell.votes_per_label
            ));
        }
    }

    if violations.is_empty() {
        println!("\nredundancy and EM deliver as required; all Fixed(r) cells cost exactly r");
    } else {
        println!("\nVIOLATIONS:");
        for v in &violations {
            println!("  {v}");
        }
    }

    let doc = Json::obj([
        ("schema", Json::str("humo-bench-crowd/v1")),
        (
            "scale",
            Json::obj([
                ("seeds", Json::num(seeds as f64)),
                ("pairs", Json::num(pairs as f64)),
                ("tau", Json::num(tau)),
                ("workers", Json::num(workers as f64)),
                ("redundancy", Json::num(redundancy as f64)),
                ("nominal_failure_rate", Json::num(NOMINAL_FAILURE_RATE)),
            ]),
        ),
        ("errors", Json::Arr(errors.iter().map(|&e| Json::num(e)).collect())),
        (
            "cells",
            Json::Arr(
                cells
                    .iter()
                    .map(|cell| {
                        Json::obj([
                            ("optimizer", Json::str(cell.optimizer)),
                            ("scheme", Json::str(cell.scheme)),
                            ("pool", Json::str(&cell.pool)),
                            ("failures_count", Json::num(cell.failures as f64)),
                            ("recall_failures_count", Json::num(cell.recall_failures as f64)),
                            ("precision_failures_count", Json::num(cell.precision_failures as f64)),
                            ("mean_precision", Json::num(cell.mean_precision)),
                            ("mean_recall", Json::num(cell.mean_recall)),
                            ("mean_cost_fraction", Json::num(cell.mean_cost_fraction)),
                            ("votes_per_label", Json::num(cell.votes_per_label)),
                            (
                                "reliability_abs_error",
                                Json::num(cell.reliability_abs_error.unwrap_or(-1.0)),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("violations_count", Json::num(violations.len() as f64)),
    ]);
    let gate_passed = emit_and_gate(
        &doc,
        &cfg,
        &["scale.seeds", "scale.pairs", "cells.0.failures_count", "violations_count"],
    );
    if (assert_mode && !violations.is_empty()) || !gate_passed {
        std::process::exit(1);
    }
}

fn print_cell(cell: &Cell) {
    println!(
        "{:>5} {:>5} {:<10} | {:>4}/{:<2} {:>6} {:>6} | {:>7.4} {:>7.4} | {:>7.2} {:>8.2} {:>8}",
        cell.optimizer,
        cell.scheme,
        cell.pool,
        cell.failures,
        cell.runs,
        cell.recall_failures,
        cell.precision_failures,
        cell.mean_precision,
        cell.mean_recall,
        100.0 * cell.mean_cost_fraction,
        cell.votes_per_label,
        cell.reliability_abs_error.map_or_else(|| "-".into(), |e| format!("{e:.4}")),
    );
}
