//! Figure 9 — varying the steepness τ of the logistic curve on synthetic workloads
//! (σ = 0.1, α = β = θ = 0.9).

use humo::QualityRequirement;
use humo_bench::{header, run_base, run_hybr, run_samp, summarize, synthetic_workload};

fn main() {
    header("Figure 9", "manual work, precision and recall vs τ on synthetic workloads (σ = 0.1)");
    let requirement = QualityRequirement::symmetric(0.9).unwrap();
    println!(
        "{:>4} | {:>8} {:>8} {:>8} | {:>11} {:>11} {:>11} | {:>11} {:>11} {:>11}",
        "τ", "BASE %", "SAMP %", "HYBR %", "BASE P/R", "SAMP P/R", "HYBR P/R", "", "", ""
    );
    for tau in [8.0, 10.0, 12.0, 14.0, 16.0, 18.0] {
        let workload = synthetic_workload(100_000, tau, 0.1, 11);
        let base = run_base(&workload, requirement, 0);
        let samp = summarize(&workload, requirement, run_samp);
        let hybr = summarize(&workload, requirement, run_hybr);
        println!(
            "{tau:>4.0} | {:>8.1} {:>8.1} {:>8.1} | {:>5.2}/{:<5.2} {:>5.2}/{:<5.2} {:>5.2}/{:<5.2}",
            100.0 * base.human_cost_fraction(workload.len()),
            100.0 * samp.cost_fraction,
            100.0 * hybr.cost_fraction,
            base.metrics.precision(),
            base.metrics.recall(),
            samp.precision,
            samp.recall,
            hybr.precision,
            hybr.recall,
        );
    }
    println!(
        "\npaper: manual work falls as τ grows; BASE is cheaper than SAMP for τ ≤ 10 and more \
         expensive beyond; HYBR tracks the better of the two; all methods stay above 0.9 quality"
    );
}
