//! Figure 10 — varying the irregularity σ of the per-subset match proportions on
//! synthetic workloads (τ = 14, α = β = θ = 0.9).

use humo::QualityRequirement;
use humo_bench::{header, run_base, run_hybr, run_samp, summarize, synthetic_workload};

fn main() {
    header("Figure 10", "manual work, precision and recall vs σ on synthetic workloads (τ = 14)");
    let requirement = QualityRequirement::symmetric(0.9).unwrap();
    println!(
        "{:>4} | {:>8} {:>8} {:>8} | {:>11} {:>11} {:>11}",
        "σ", "BASE %", "SAMP %", "HYBR %", "BASE P/R", "SAMP P/R", "HYBR P/R"
    );
    for sigma in [0.1, 0.2, 0.3, 0.4, 0.5] {
        let workload = synthetic_workload(100_000, 14.0, sigma, 13);
        let base = run_base(&workload, requirement, 0);
        let samp = summarize(&workload, requirement, run_samp);
        let hybr = summarize(&workload, requirement, run_hybr);
        println!(
            "{sigma:>4.1} | {:>8.1} {:>8.1} {:>8.1} | {:>5.2}/{:<5.2} {:>5.2}/{:<5.2} {:>5.2}/{:<5.2}",
            100.0 * base.human_cost_fraction(workload.len()),
            100.0 * samp.cost_fraction,
            100.0 * hybr.cost_fraction,
            base.metrics.precision(),
            base.metrics.recall(),
            samp.precision,
            samp.recall,
            hybr.precision,
            hybr.recall,
        );
    }
    println!(
        "\npaper: manual work grows with σ; all three meet the requirement up to σ = 0.4; at σ = 0.5 \
         the monotonicity assumption breaks and BASE/HYBR miss precision while SAMP still copes"
    );
}
