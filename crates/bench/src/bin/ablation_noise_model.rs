//! Ablation (beyond the paper) — paper-faithful vs conservative noise treatment in
//! SAMP's Gaussian-process bounds, on a regular and an irregular synthetic workload.

use humo::sampling::{PartialSamplingConfig, PartialSamplingOptimizer};
use humo::{GroundTruthOracle, Optimizer, QualityRequirement};
use humo_bench::{header, runs, synthetic_workload};

fn main() {
    header(
        "Ablation: noise model",
        "paper-faithful (interpolating) vs conservative GP bounds in SAMP",
    );
    let requirement = QualityRequirement::symmetric(0.9).unwrap();
    println!(
        "{:<22} {:>14} {:>10} {:>10} {:>10} {:>10}",
        "workload", "noise model", "P", "R", "cost %", "success %"
    );
    for (label, sigma) in [("regular (σ=0.1)", 0.1), ("irregular (σ=0.5)", 0.5)] {
        let workload = synthetic_workload(100_000, 14.0, sigma, 7);
        for conservative in [false, true] {
            let mut precision = 0.0;
            let mut recall = 0.0;
            let mut cost = 0.0;
            let mut success = 0usize;
            let n = runs().max(1);
            for seed in 0..n as u64 {
                let config = PartialSamplingConfig {
                    conservative_noise: conservative,
                    ..PartialSamplingConfig::new(requirement).with_seed(seed)
                };
                let optimizer = PartialSamplingOptimizer::new(config).unwrap();
                let mut oracle = GroundTruthOracle::new();
                let outcome = optimizer.optimize(&workload, &mut oracle).unwrap();
                precision += outcome.metrics.precision();
                recall += outcome.metrics.recall();
                cost += outcome.human_cost_fraction(workload.len());
                if requirement.is_satisfied_by(&outcome.metrics) {
                    success += 1;
                }
            }
            let n = n as f64;
            println!(
                "{label:<22} {:>14} {:>10.3} {:>10.3} {:>10.1} {:>9.0}%",
                if conservative { "conservative" } else { "paper" },
                precision / n,
                recall / n,
                100.0 * cost / n,
                100.0 * success as f64 / n
            );
        }
    }
    println!(
        "\nexpectation: the paper-faithful bounds are cheap and adequate on regular workloads; the \
         conservative bounds recover the guarantee on irregular workloads at a higher human cost"
    );
}
