//! Table III — quality and success rate achieved by SAMP on DS and AB.

use humo::QualityRequirement;
use humo_bench::{ab_workload, ds_workload, header, run_samp, summarize};

fn main() {
    header("Table III", "quality and success rate of SAMP on DS and AB");
    println!(
        "{:>12} {:>16} {:>16} {:>8} {:>8}",
        "requirement", "DS (P / R)", "AB (P / R)", "DS succ", "AB succ"
    );
    let ds = ds_workload(1);
    let ab = ab_workload(1);
    for level in [0.70, 0.75, 0.80, 0.85, 0.90, 0.95] {
        let requirement = QualityRequirement::symmetric(level).unwrap();
        let d = summarize(&ds, requirement, run_samp);
        let a = summarize(&ab, requirement, run_samp);
        println!(
            "α=β={level:.2}   {:>7.4}/{:>7.4} {:>7.4}/{:>7.4} {:>7.0}% {:>7.0}%",
            d.precision,
            d.recall,
            a.precision,
            a.recall,
            100.0 * d.success_rate,
            100.0 * a.success_rate
        );
    }
    println!(
        "\npaper: SAMP meets the requirement in ≈96-100% of runs with margins above the target"
    );
}
