//! Table I — SVM-based classification quality on the DS and AB workloads.

use er_ml::{LabeledExample, LinearSvm, SvmConfig, TrainTestSplit};
use humo_bench::{ab_workload, ds_workload, header};

/// ER workloads are extremely imbalanced (0.3–5 % positives); train the SVM on a
/// class-balanced subsample (all positives plus an equal number of negatives) and
/// evaluate on the untouched held-out split, as ER evaluation setups typically do.
fn balance(examples: &[LabeledExample]) -> Vec<LabeledExample> {
    let positives: Vec<LabeledExample> = examples.iter().filter(|e| e.label).cloned().collect();
    let negatives: Vec<LabeledExample> =
        examples.iter().filter(|e| !e.label).take(positives.len().max(1)).cloned().collect();
    positives.into_iter().chain(negatives).collect()
}

fn main() {
    header("Table I", "SVM-based classification results on DS and AB (quality reference)");
    println!("{:<8} {:>10} {:>8} {:>9}", "Dataset", "Precision", "Recall", "F1 Score");
    for (name, workload) in [("DS", ds_workload(1)), ("AB", ab_workload(1))] {
        let examples = er_ml::features::workload_examples(&workload);
        let split = TrainTestSplit::new(&examples, 0.5, 7).expect("splittable");
        let train = balance(&split.train);
        let svm = LinearSvm::train(&train, SvmConfig::default()).expect("trainable");
        let metrics = svm.evaluate(&split.test);
        println!(
            "{name:<8} {:>10.2} {:>8.2} {:>9.2}",
            metrics.precision(),
            metrics.recall(),
            metrics.f1()
        );
    }
    println!("\npaper: DS 0.87 / 0.76 / 0.81, AB 0.47 / 0.35 / 0.40");
}
