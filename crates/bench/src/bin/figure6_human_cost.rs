//! Figure 6 — human cost of BASE/SAMP/HYBR on DS and AB as the quality
//! requirement rises from (0.7, 0.7) to (0.95, 0.95), at confidence 0.9.

use humo::QualityRequirement;
use humo_bench::{ab_workload, ds_workload, header, run_base, run_hybr, run_samp, summarize};

fn main() {
    header("Figure 6", "percentage of manual work vs quality requirement (DS and AB, θ = 0.9)");
    for (name, workload) in [("DS", ds_workload(1)), ("AB", ab_workload(1))] {
        println!("\n{name} dataset ({} pairs):", workload.len());
        println!("{:>14} {:>10} {:>10} {:>10}", "(prec, rec)", "BASE %", "SAMP %", "HYBR %");
        for level in [0.70, 0.75, 0.80, 0.85, 0.90, 0.95] {
            let requirement = QualityRequirement::symmetric(level).unwrap();
            let base = run_base(&workload, requirement, 0);
            let samp = summarize(&workload, requirement, run_samp);
            let hybr = summarize(&workload, requirement, run_hybr);
            println!(
                "({level:.2}, {level:.2})  {:>10.2} {:>10.2} {:>10.2}",
                100.0 * base.human_cost_fraction(workload.len()),
                100.0 * samp.cost_fraction,
                100.0 * hybr.cost_fraction
            );
        }
    }
    println!(
        "\npaper: BASE needs the most manual work, SAMP/HYBR considerably less; at (0.9, 0.9) \
         DS ≈ 7% and AB ≈ 12% with HYBR; cost rises only modestly with the requirement"
    );
}
