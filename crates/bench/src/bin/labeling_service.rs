//! Multi-tenant labeling service over durable, crash-safe resolution sessions.
//!
//! The service multiplexes N tenant [`er_pipeline::ResolutionEngine`]s — each
//! with its own bibliographic corpus and its own `HAL1` write-ahead label store
//! — over one shared pool of simulated labelers. Every scheduler *tick* the
//! pool answers up to `LABELERS` outstanding label requests, round-robining
//! across tenants, and each tenant that received answers is stepped with them
//! immediately: the engine appends the absorbed batch to the tenant's WAL
//! (fsynced) *before* replaying it, so a crash at any tick loses at most the
//! labels answered since the previous step.
//!
//! Per-tenant round/cost reporting is printed at the end; the `session.wal.*`
//! observability counters are emitted through each engine's recorder
//! (enable with `HUMO_OBS=metrics` to see them).
//!
//! Environment knobs (see [`humo_bench::BenchConfig`]):
//!
//! * `HUMO_SVC_TENANTS`  — number of tenants (default 4);
//! * `HUMO_SVC_ENTITIES` — base corpus size per tenant in left-dataset
//!   entities; tenant *i* gets `ENTITIES + 10·i` so the tenants are
//!   heterogeneous (default 120);
//! * `HUMO_SVC_LABELERS` — shared labeler-pool capacity: labels answered per
//!   tick across all tenants (default 16);
//! * `HUMO_SVC_SEED`     — base corpus seed; tenant *i* uses `SEED + 101·i`
//!   (default 42);
//! * `HUMO_SVC_WAL_DIR`  — directory for the per-tenant `tenant-<i>.hal`
//!   logs (default: a fresh directory under the system temp dir, removed on
//!   clean exit);
//! * `HUMO_SVC_RESUME`   — when truthy, resume every tenant from its existing
//!   WAL instead of starting fresh: in-flight epochs continue mid-session,
//!   committed epochs are replayed from the log to recover their outcome;
//! * `HUMO_SVC_KILL_TICKS` — crash-harness mode: after this many completed
//!   ticks, print `HUMO_SVC_KILL_POINT` and park forever, waiting for SIGKILL
//!   (used by the self test and the CI smoke);
//! * `HUMO_SVC_KILL_AT`  — comma-separated kill points for the self test
//!   (default `1,4,24`; points past service completion exercise the
//!   committed-epoch replay path);
//! * `HUMO_SVC_SELFTEST` — when truthy, run the kill-and-resume self test:
//!   for each kill point, re-spawn this binary as a child, SIGKILL it at the
//!   kill point, resume from the surviving WALs in-process, and assert every
//!   tenant's outcome digest is identical to an uninterrupted reference run.
//!
//! Crowd labeling (off by default; see [`humo::crowd`]):
//!
//! * `HUMO_SVC_CROWD_WORKERS` — per-tenant worker-pool size; `0` (default)
//!   answers every request with ground truth, exactly as before;
//! * `HUMO_SVC_CROWD_ERROR` — symmetric per-worker flip rate (default 0.1);
//! * `HUMO_SVC_CROWD_REDUNDANCY` — votes per pair (default 3);
//! * `HUMO_SVC_CROWD_ESCALATE_MAX` — when greater than the redundancy,
//!   escalate disagreements one extra worker at a time up to this cap
//!   (adaptive redundancy; default: equal, i.e. fixed);
//! * `HUMO_SVC_CROWD_AGG` — `majority` (default) or `em`. The kill-and-resume
//!   guarantee holds for `majority`: votes are pure functions of
//!   `(worker seed, pair id)`, so re-voting pairs lost in a crash reproduces
//!   identical aggregated labels. EM aggregation decides from the whole vote
//!   matrix, whose scope depends on tick alignment — use it for quality
//!   studies (`crowd_quality`), not for byte-stable replay.
//!
//! With the crowd enabled, the shared pool capacity is *votes* per tick (a
//! redundancy-r tenant consumes roughly r× more pool), and only the
//! aggregated labels — never raw votes — are stepped into the sessions and
//! hence onto the per-tenant WALs.
//!
//! The outcome digest covers the solution boundaries, the full label
//! assignment and the cost counters — everything the paper's quality
//! guarantee speaks about. Label round-trips are deliberately excluded: they
//! are per-process bookkeeping, not part of the checkpoint (see
//! [`humo::SessionState::rounds`]).

use er_core::aggregate::{AttributeMeasure, AttributeWeighting, ScoringConfig};
use er_core::codec::fnv1a;
use er_core::record::RecordId;
use er_core::similarity::StringMeasure;
use er_core::text::Tokenizer;
use er_core::workload::{Label, Workload};
use er_datagen::bibliographic::{BibliographicConfig, BibliographicGenerator};
use er_pipeline::{PipelineConfig, ResolutionEngine, ResolutionSession, ResolutionStep};
use humo::crowd::mix;
use humo::wal::{read_log, WalRecord};
use humo::{
    Aggregation, CrowdSession, HumoError, LabelRequest, LabelResponse, OptimizationOutcome,
    QualityRequirement, Redundancy, SessionConfig, SessionState, Step, VoteRequest, WarmStart,
    WorkerModel, WorkerVote,
};
use humo_bench::BenchConfig;
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

/// Marker printed by a crash-harness child when it reaches its kill point.
const KILL_MARKER: &str = "HUMO_SVC_KILL_POINT";

/// Crowd-labeling knobs; `workers == 0` disables the crowd path entirely.
#[derive(Debug, Clone)]
struct CrowdParams {
    workers: usize,
    error: f64,
    redundancy: usize,
    escalate_max: usize,
    em: bool,
}

impl CrowdParams {
    fn from_env(cfg: &BenchConfig) -> Self {
        let redundancy = cfg.usize("CROWD_REDUNDANCY", 3).max(1);
        Self {
            workers: cfg.usize("CROWD_WORKERS", 0),
            error: cfg.f64("CROWD_ERROR", 0.1),
            redundancy,
            escalate_max: cfg.usize("CROWD_ESCALATE_MAX", redundancy).max(redundancy),
            em: std::env::var("HUMO_SVC_CROWD_AGG").is_ok_and(|v| v.eq_ignore_ascii_case("em")),
        }
    }

    fn enabled(&self) -> bool {
        self.workers > 0
    }

    fn redundancy(&self) -> Redundancy {
        if self.escalate_max > self.redundancy {
            Redundancy::Adaptive { min: self.redundancy, max: self.escalate_max }
        } else {
            Redundancy::Fixed(self.redundancy)
        }
    }

    fn aggregation(&self) -> Aggregation {
        if self.em {
            Aggregation::Em(humo::EmConfig::default())
        } else {
            Aggregation::Majority
        }
    }
}

#[derive(Debug, Clone)]
struct ServiceParams {
    tenants: usize,
    entities: usize,
    labelers: usize,
    seed: u64,
    wal_dir: PathBuf,
    resume: bool,
    kill_ticks: usize,
    crowd: CrowdParams,
}

impl ServiceParams {
    fn from_env(cfg: &BenchConfig) -> Self {
        let wal_dir = std::env::var("HUMO_SVC_WAL_DIR")
            .ok()
            .filter(|p| !p.is_empty())
            .map(PathBuf::from)
            .unwrap_or_else(|| {
                std::env::temp_dir().join(format!("humo-labeling-service-{}", std::process::id()))
            });
        Self {
            tenants: cfg.usize("TENANTS", 4).max(1),
            entities: cfg.usize("ENTITIES", 120),
            labelers: cfg.usize("LABELERS", 16).max(1),
            seed: cfg.usize("SEED", 42) as u64,
            wal_dir,
            resume: cfg.flag("RESUME"),
            kill_ticks: cfg.usize("KILL_TICKS", 0),
            crowd: CrowdParams::from_env(cfg),
        }
    }

    fn wal_path(&self, tenant: usize) -> PathBuf {
        self.wal_dir.join(format!("tenant-{tenant}.hal"))
    }
}

/// Per-tenant crowd state: the simulated worker pool, the sans-I/O crowd
/// session, and the queue of dispatched-but-unanswered vote requests.
///
/// Everything here is derived deterministically from `(service seed, tenant)`,
/// so a resumed process rebuilds the identical crowd and — majority
/// aggregation being a pure per-pair function of the votes, themselves pure
/// functions of `(worker seed, pair id)` — re-votes lost in-flight pairs to
/// the identical aggregated labels.
struct TenantCrowd {
    workers: Vec<WorkerModel>,
    session: CrowdSession,
    queue: VecDeque<VoteRequest>,
}

impl TenantCrowd {
    fn new(params: &ServiceParams, tenant: usize) -> Self {
        let crowd = &params.crowd;
        let pool_seed = mix(params.seed, 0xC0FFEE ^ tenant as u64);
        let workers: Vec<WorkerModel> = (0..crowd.workers)
            .map(|w| WorkerModel::symmetric(crowd.error, mix(pool_seed, w as u64)))
            .collect();
        let session = CrowdSession::new(
            crowd.workers,
            crowd.redundancy(),
            crowd.aggregation(),
            mix(params.seed, 0x5EED ^ tenant as u64),
        );
        Self { workers, session, queue: VecDeque::new() }
    }
}

/// Final per-tenant outcome: everything the self test compares, plus the
/// delivered-quality and crowd-cost columns of the report.
#[derive(Debug, Clone)]
struct TenantSummary {
    tenant: usize,
    pairs: usize,
    queries: usize,
    rounds: usize,
    f1: f64,
    /// Entity-cluster F1 against ground truth — delivered quality after
    /// transitive closure. `None` for `replayed` tenants: the log replay
    /// recovers the outcome, and clustering is not re-run.
    cluster_f1: Option<f64>,
    /// Crowd votes cast for this tenant (0 when the crowd path is off).
    votes: u64,
    /// Votes per aggregated label — the label-cost multiplier.
    votes_per_label: f64,
    /// Fraction of aggregated labels whose final vote set disagreed.
    escalation_rate: f64,
    digest: u64,
    /// `fresh`, `resumed` (in-flight epoch continued) or `replayed`
    /// (committed epoch recovered from the log alone).
    mode: &'static str,
}

/// One tenant inside the scheduler: either mid-session with a queue of
/// outstanding label requests, or finished with its summary material.
enum Tenant<'e> {
    Active {
        session: Box<ResolutionSession<'e>>,
        outstanding: Vec<LabelRequest>,
        mode: &'static str,
    },
    Done {
        outcome: OptimizationOutcome,
        rounds: usize,
        cluster_f1: Option<f64>,
        mode: &'static str,
    },
}

fn scoring_config() -> ScoringConfig {
    ScoringConfig::new(
        [
            ("title", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
            ("authors", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
        ],
        AttributeWeighting::Uniform,
    )
}

fn tenant_engine(params: &ServiceParams, tenant: usize) -> ResolutionEngine {
    let requirement = QualityRequirement::symmetric(0.9).expect("valid requirement");
    let mut config = PipelineConfig::new(scoring_config(), "title", requirement);
    config.similarity_threshold = 0.15;
    config.optimizer.unit_size = 25;
    let schema = BibliographicGenerator::schema();
    let mut engine = ResolutionEngine::new(config, schema.clone(), schema)
        .expect("valid pipeline configuration");
    let entities = params.entities + 10 * tenant;
    let corpus = BibliographicGenerator::new(BibliographicConfig {
        num_entities: entities,
        duplicate_probability: 0.6,
        extra_right_entities: entities / 2,
        corruption: 0.3,
        seed: params.seed + 101 * tenant as u64,
    })
    .generate();
    let truth: Vec<(RecordId, RecordId)> = corpus.ground_truth.iter().copied().collect();
    engine
        .ingest(corpus.left.records().to_vec(), corpus.right.records().to_vec(), &truth)
        .expect("tenant corpus ingests");
    engine
}

/// FNV-1a digest of the parts of an outcome the quality guarantee speaks
/// about: solution boundaries, full label assignment, cost counters. Rounds
/// are excluded — they are per-process bookkeeping, not checkpoint state.
fn outcome_digest(outcome: &OptimizationOutcome) -> u64 {
    let mut bytes = Vec::with_capacity(outcome.assignment.len() + 48);
    bytes.extend_from_slice(&(outcome.solution.lower_index as u64).to_le_bytes());
    bytes.extend_from_slice(&(outcome.solution.upper_index as u64).to_le_bytes());
    for &label in outcome.assignment.labels() {
        bytes.push(u8::from(label == Label::Match));
    }
    bytes.extend_from_slice(&(outcome.verification_cost as u64).to_le_bytes());
    bytes.extend_from_slice(&(outcome.sampling_cost as u64).to_le_bytes());
    bytes.extend_from_slice(&(outcome.total_human_cost as u64).to_le_bytes());
    fnv1a(&bytes)
}

/// What a tenant's log holds, decided before touching the engine (the engine's
/// `resume` hands back a borrow, so the branch must be known up front).
enum LogShape {
    /// A trailing epoch without a commit — `resume` rebuilds it mid-flight.
    InFlight,
    /// The last epoch committed: its outcome, replayed from the log alone.
    Committed(Box<OptimizationOutcome>),
    /// No epoch on the log (or no log file at all).
    Empty,
}

/// Scans a tenant's log. For a trailing committed epoch, replays it through
/// [`SessionState::resume`]: the answered log is a complete checkpoint, so
/// the replay re-derives the byte-identical outcome without any extra labels.
/// Earlier committed epochs contribute their labels as preloads, mirroring
/// the engine's cross-epoch label store.
fn scan_log(workload: &Workload, path: &Path) -> humo::Result<LogShape> {
    if !path.exists() {
        return Ok(LogShape::Empty);
    }
    let recovery = read_log(path)?;
    let mut store: BTreeMap<er_core::workload::PairId, Label> = BTreeMap::new();
    let mut last: Option<(SessionConfig, Option<WarmStart>, Vec<LabelResponse>)> = None;
    let mut open: Option<(SessionConfig, Option<WarmStart>, Vec<LabelResponse>)> = None;
    for record in recovery.records {
        match record {
            WalRecord::SessionBegin { config, warm, .. } => {
                open = Some((config, warm, Vec::new()));
            }
            WalRecord::Labels(batch) => {
                if let Some((_, _, log)) = &mut open {
                    log.extend(batch);
                }
            }
            WalRecord::Commit { .. } => {
                if let Some(group) = open.take() {
                    if let Some((_, _, log)) = last.replace(group) {
                        for response in log {
                            store.insert(response.pair_id, response.label);
                        }
                    }
                }
            }
        }
    }
    if open.is_some() {
        return Ok(LogShape::InFlight);
    }
    let Some((config, warm, log)) = last else { return Ok(LogShape::Empty) };
    let preload = |state: &mut SessionState| {
        state.preload(store.iter().map(|(&pair_id, &label)| LabelResponse { pair_id, label }));
    };
    let mut state = SessionState::resume(config, workload, &log)?.with_warm_start(warm);
    preload(&mut state);
    let mut fell_back = false;
    loop {
        match state.poll(workload) {
            Ok(Step::Done(outcome)) => return Ok(LogShape::Committed(Box::new(outcome))),
            Ok(Step::NeedLabels(_)) => {
                return Err(HumoError::Wal(
                    "committed epoch's log does not replay to completion".to_string(),
                ))
            }
            // Mirror the engine's deterministic all-human fallback: the
            // degeneracy is a property of the data, so the original session
            // fell back at exactly this point too.
            Err(HumoError::Stats(_)) if !fell_back => {
                let log = state.answered_log().to_vec();
                let mut next = SessionState::resume(SessionConfig::AllHuman, workload, &log)?;
                preload(&mut next);
                state = next;
                fell_back = true;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Primes a freshly created or resumed session: the first step replays
/// everything absorbed so far and emits the first outstanding batch (or
/// completes outright, for a resumed log that was one step from done).
fn prime<'e>(mut session: ResolutionSession<'e>, mode: &'static str) -> Tenant<'e> {
    match session.step(&[]).expect("session step succeeds") {
        ResolutionStep::Done(report) => Tenant::Done {
            outcome: report.outcome,
            rounds: report.label_rounds,
            cluster_f1: Some(report.cluster_metrics.f1()),
            mode,
        },
        ResolutionStep::NeedLabels(outstanding) => {
            Tenant::Active { session: Box::new(session), outstanding, mode }
        }
    }
}

/// Runs the service to completion (or to the kill point) and returns the
/// per-tenant summaries, tenant-major.
fn run_service(params: &ServiceParams, engines: &mut [ResolutionEngine]) -> Vec<TenantSummary> {
    std::fs::create_dir_all(&params.wal_dir).expect("WAL directory is creatable");
    let mut tenants: Vec<Tenant<'_>> = engines
        .iter_mut()
        .enumerate()
        .map(|(i, engine)| {
            let path = params.wal_path(i);
            if params.resume {
                match scan_log(engine.workload(), &path).expect("log scan succeeds") {
                    LogShape::InFlight => {
                        let session = engine
                            .resume(&path)
                            .expect("WAL recovery succeeds")
                            .expect("scan saw an in-flight epoch");
                        prime(session, "resumed")
                    }
                    LogShape::Committed(outcome) => {
                        // Fold the committed labels into the engine anyway, so
                        // any later epoch starts from the recovered store.
                        assert!(engine.resume(&path).expect("WAL recovery succeeds").is_none());
                        Tenant::Done {
                            outcome: *outcome,
                            rounds: 0,
                            cluster_f1: None,
                            mode: "replayed",
                        }
                    }
                    // Empty or missing log: the writer died before
                    // `begin_resolve` ever ran. Recover or create the file and
                    // start a fresh session appending to it.
                    LogShape::Empty => {
                        if path.exists() {
                            assert!(engine.resume(&path).expect("WAL recovery succeeds").is_none());
                        } else {
                            engine.attach_wal(&path).expect("WAL is creatable");
                        }
                        prime(engine.begin_resolve().expect("session begins"), "fresh")
                    }
                }
            } else {
                engine.attach_wal(&path).expect("WAL is creatable");
                prime(engine.begin_resolve().expect("session begins"), "fresh")
            }
        })
        .collect();

    // Per-tenant crowd state, derived deterministically from the seed so a
    // resumed process rebuilds the identical crowd.
    let mut crowds: Vec<Option<TenantCrowd>> = (0..tenants.len())
        .map(|i| params.crowd.enabled().then(|| TenantCrowd::new(params, i)))
        .collect();

    let mut ticks = 0usize;
    loop {
        let all_done = tenants.iter().all(|t| matches!(t, Tenant::Done { .. }));
        if all_done {
            break;
        }
        if params.kill_ticks > 0 && ticks >= params.kill_ticks {
            println!("{KILL_MARKER}: parked after {ticks} ticks, waiting for SIGKILL");
            std::io::stdout().flush().expect("stdout flushes");
            loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            }
        }
        ticks += 1;
        // The shared pool: up to `labelers` answers this tick (labels without
        // the crowd, votes with it), handed out round-robin with a rotating
        // head so no tenant starves.
        let mut capacity = params.labelers;
        let n = tenants.len();
        for k in 0..n {
            if capacity == 0 {
                break;
            }
            let i = (ticks - 1 + k) % n;
            let finished = {
                let Tenant::Active { session, outstanding, .. } = &mut tenants[i] else {
                    continue;
                };
                let responses: Vec<LabelResponse> = if let Some(crowd) = crowds[i].as_mut() {
                    // Re-dispatch wholesale: the crowd session re-emits only
                    // asked-but-unanswered votes, so nothing is duplicated and
                    // nothing is lost across ticks (or across a resume).
                    crowd.queue = crowd.session.submit(outstanding).into();
                    let take = crowd.queue.len().min(capacity);
                    capacity -= take;
                    let votes: Vec<WorkerVote> = (0..take)
                        .map(|_| {
                            let ask = crowd.queue.pop_front().expect("queue holds `take` asks");
                            let truth = session.workload().pair(ask.request.index).ground_truth();
                            WorkerVote {
                                pair_id: ask.request.pair_id,
                                worker: ask.worker,
                                label: Label::from_bool(
                                    crowd.workers[ask.worker.0 as usize]
                                        .vote(ask.request.pair_id.0, truth == Label::Match),
                                ),
                            }
                        })
                        .collect();
                    let escalations = crowd.session.absorb(&votes);
                    crowd.queue.extend(escalations);
                    crowd.session.take_ready()
                } else {
                    let take = outstanding.len().min(capacity);
                    capacity -= take;
                    outstanding
                        .drain(..take)
                        .map(|request| LabelResponse {
                            pair_id: request.pair_id,
                            label: session.workload().pair(request.index).ground_truth(),
                        })
                        .collect()
                };
                if responses.is_empty() {
                    continue;
                }
                // Stepping with a partial batch appends it to the WAL right
                // away; the session re-emits whatever is still missing, so
                // the outstanding queue is replaced wholesale.
                match session.step(&responses).expect("session step succeeds") {
                    ResolutionStep::Done(report) => {
                        Some((report.outcome, report.label_rounds, report.cluster_metrics.f1()))
                    }
                    ResolutionStep::NeedLabels(next) => {
                        *outstanding = next;
                        None
                    }
                }
            };
            if let Some((outcome, rounds, cluster_f1)) = finished {
                let mode = match &tenants[i] {
                    Tenant::Active { mode, .. } | Tenant::Done { mode, .. } => mode,
                };
                tenants[i] = Tenant::Done { outcome, rounds, cluster_f1: Some(cluster_f1), mode };
            }
        }
    }
    println!(
        "service drained in {ticks} ticks ({} {}/tick pool capacity)",
        params.labelers,
        if params.crowd.enabled() { "votes" } else { "labels" }
    );

    tenants
        .into_iter()
        .enumerate()
        .map(|(tenant, t)| {
            let Tenant::Done { outcome, rounds, cluster_f1, mode } = t else {
                unreachable!("scheduler drained every tenant");
            };
            let stats = crowds[tenant].take().map(|c| c.session.stats()).unwrap_or_default();
            let decided = stats.decided.max(1) as f64;
            TenantSummary {
                tenant,
                pairs: outcome.assignment.len(),
                queries: outcome.total_human_cost,
                rounds,
                f1: outcome.metrics.f1(),
                cluster_f1,
                votes: stats.votes,
                votes_per_label: stats.votes as f64 / decided,
                escalation_rate: stats.disagreements as f64 / decided,
                digest: outcome_digest(&outcome),
                mode,
            }
        })
        .collect()
}

fn print_summaries(summaries: &[TenantSummary]) {
    println!(
        "{:<7} {:>7} {:>8} {:>7} {:>7} {:>9} {:>7} {:>9} {:>6}  {:<16}  mode",
        "tenant",
        "pairs",
        "queries",
        "rounds",
        "pairF1",
        "clusterF1",
        "votes",
        "votes/lab",
        "esc%",
        "digest"
    );
    for s in summaries {
        let cluster_f1 = s.cluster_f1.map_or_else(|| "-".to_string(), |f1| format!("{f1:.3}"));
        let (votes, per_label, esc) = if s.votes > 0 {
            (
                s.votes.to_string(),
                format!("{:.2}", s.votes_per_label),
                format!("{:.1}", 100.0 * s.escalation_rate),
            )
        } else {
            ("-".to_string(), "-".to_string(), "-".to_string())
        };
        println!(
            "{:<7} {:>7} {:>8} {:>7} {:>7.3} {:>9} {:>7} {:>9} {:>6}  {:016x}  {}",
            s.tenant,
            s.pairs,
            s.queries,
            s.rounds,
            s.f1,
            cluster_f1,
            votes,
            per_label,
            esc,
            s.digest,
            s.mode
        );
    }
}

/// Spawns this binary as a crash-harness child writing into `wal_dir`, waits
/// for its kill marker (or clean exit, for kill points past completion) and
/// SIGKILLs it. Returns whether the kill point was reached before completion.
fn run_child_until_killed(params: &ServiceParams, kill_ticks: usize) -> bool {
    let exe = std::env::current_exe().expect("own executable path is known");
    let mut child = std::process::Command::new(exe)
        .env("HUMO_SVC_SELFTEST", "0")
        .env("HUMO_SVC_RESUME", "0")
        .env("HUMO_SVC_KILL_TICKS", kill_ticks.to_string())
        .env("HUMO_SVC_WAL_DIR", &params.wal_dir)
        .env("HUMO_SVC_TENANTS", params.tenants.to_string())
        .env("HUMO_SVC_ENTITIES", params.entities.to_string())
        .env("HUMO_SVC_LABELERS", params.labelers.to_string())
        .env("HUMO_SVC_SEED", params.seed.to_string())
        .env("HUMO_SVC_CROWD_WORKERS", params.crowd.workers.to_string())
        .env("HUMO_SVC_CROWD_ERROR", params.crowd.error.to_string())
        .env("HUMO_SVC_CROWD_REDUNDANCY", params.crowd.redundancy.to_string())
        .env("HUMO_SVC_CROWD_ESCALATE_MAX", params.crowd.escalate_max.to_string())
        .env("HUMO_SVC_CROWD_AGG", if params.crowd.em { "em" } else { "majority" })
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("crash-harness child spawns");
    let stdout = child.stdout.take().expect("child stdout is piped");
    let mut reached = false;
    for line in BufReader::new(stdout).lines() {
        let line = line.unwrap_or_default();
        if line.contains(KILL_MARKER) {
            reached = true;
            break;
        }
    }
    // SIGKILL — no destructors, no flushes: everything the resume sees is
    // what `fsync` already put on disk.
    let _ = child.kill();
    let _ = child.wait();
    reached
}

/// The kill-and-resume self test: an uninterrupted reference run, then for
/// each kill point a child killed mid-flight and an in-process resume from
/// the surviving WALs — asserting every tenant's outcome digest matches.
fn run_selftest(base: &ServiceParams, kill_points: &[usize]) {
    let reference_params = ServiceParams {
        resume: false,
        kill_ticks: 0,
        wal_dir: base.wal_dir.join("reference"),
        ..base.clone()
    };
    println!("-- reference run ({} tenants, uninterrupted) --", base.tenants);
    let mut engines: Vec<ResolutionEngine> =
        (0..base.tenants).map(|i| tenant_engine(base, i)).collect();
    let reference = run_service(&reference_params, &mut engines);
    print_summaries(&reference);

    for &kill_ticks in kill_points {
        let crash_params = ServiceParams {
            resume: false,
            kill_ticks: 0,
            wal_dir: base.wal_dir.join(format!("kill-{kill_ticks}")),
            ..base.clone()
        };
        println!("\n-- kill point: {kill_ticks} ticks --");
        let reached = run_child_until_killed(&crash_params, kill_ticks);
        println!(
            "child {}",
            if reached { "SIGKILLed at the kill point" } else { "completed before the kill point" }
        );
        let resume_params = ServiceParams { resume: true, ..crash_params };
        let mut engines: Vec<ResolutionEngine> =
            (0..base.tenants).map(|i| tenant_engine(base, i)).collect();
        let resumed = run_service(&resume_params, &mut engines);
        print_summaries(&resumed);
        for (r, s) in reference.iter().zip(&resumed) {
            assert_eq!(
                r.digest, s.digest,
                "tenant {}: resumed outcome digest diverged from the reference \
                 (kill point {kill_ticks})",
                r.tenant
            );
            assert_eq!(
                r.queries, s.queries,
                "tenant {}: resumed label cost diverged from the reference \
                 (kill point {kill_ticks})",
                r.tenant
            );
        }
        println!("[kill {kill_ticks}] all {} tenant outcomes byte-identical", reference.len());
    }
    let _ = std::fs::remove_dir_all(&base.wal_dir);
    println!("\n[selftest] kill-and-resume reproduced the reference outcome at every kill point");
}

fn main() {
    let cfg = BenchConfig::from_env("HUMO_SVC");
    let params = ServiceParams::from_env(&cfg);
    let default_wal_dir = std::env::var("HUMO_SVC_WAL_DIR").map_or(true, |p| p.is_empty());

    println!("================================================================");
    println!("labeling_service: durable multi-tenant labeling over shared labelers");
    println!(
        "tenants = {}, base entities = {}, pool capacity = {}/tick, wal dir = {}",
        params.tenants,
        params.entities,
        params.labelers,
        params.wal_dir.display()
    );
    if params.crowd.enabled() {
        println!(
            "crowd: {} workers/tenant, error = {}, redundancy = {:?}, aggregation = {}",
            params.crowd.workers,
            params.crowd.error,
            params.crowd.redundancy(),
            if params.crowd.em { "em" } else { "majority" }
        );
    }
    println!("================================================================");

    if cfg.flag("SELFTEST") {
        let kill_points: Vec<usize> = cfg
            .f64_list("KILL_AT", &[1.0, 4.0, 24.0])
            .into_iter()
            .map(|k| k.max(1.0) as usize)
            .collect();
        run_selftest(&params, &kill_points);
        return;
    }

    let mut engines: Vec<ResolutionEngine> =
        (0..params.tenants).map(|i| tenant_engine(&params, i)).collect();
    let summaries = run_service(&params, &mut engines);
    print_summaries(&summaries);
    if default_wal_dir && !params.resume {
        let _ = std::fs::remove_dir_all(&params.wal_dir);
    }
}
