//! `trace_check` — validates a JSONL trace emitted by `er_obs::TraceRecorder`.
//!
//! Usage:
//!
//! ```text
//! trace_check <trace.jsonl> [required-name-prefix ...]
//! ```
//!
//! The file is checked against the documented trace schema
//! ([`er_obs::validate_trace`]): every line must be a JSON object with a
//! monotone `ts_us`, a known `kind`, balanced LIFO spans and consistent
//! running counter totals. Each extra argument is a required event-name
//! prefix; the check fails if no event name starts with it. CI runs this
//! over a `streaming_dedup` trace with the prefixes
//! `pipeline.ingest blocking. ingest.score spill. session.` to prove the
//! trace covers ingest, blocking, scoring, spill and session-round events.
//!
//! Exits non-zero (with the violations printed) on any schema violation or
//! missing prefix.

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: trace_check <trace.jsonl> [required-name-prefix ...]");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("trace_check: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };

    let report = er_obs::validate_trace(&text);
    println!("{path}: {} events, {} distinct names", report.events, report.names.len());

    let mut failed = false;
    if !report.is_valid() {
        failed = true;
        for violation in &report.violations {
            eprintln!("schema violation: {violation}");
        }
    }
    for prefix in args {
        if report.covers(&prefix) {
            println!("  covered: {prefix}");
        } else {
            failed = true;
            eprintln!("missing coverage: no event name starts with `{prefix}`");
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        println!("trace OK");
        ExitCode::SUCCESS
    }
}
