//! Figure 8 — varying the confidence level θ on AB (α = β = 0.9).

use humo::QualityRequirement;
use humo_bench::{ab_workload, header, run_hybr, run_samp, summarize};

fn main() {
    header("Figure 8", "human cost and success rate vs confidence level on AB (α = β = 0.9)");
    let workload = ab_workload(1);
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10}",
        "θ", "SAMP %", "HYBR %", "SAMP succ", "HYBR succ"
    );
    for theta in [0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95] {
        let requirement = QualityRequirement::new(0.9, 0.9, theta).unwrap();
        let samp = summarize(&workload, requirement, run_samp);
        let hybr = summarize(&workload, requirement, run_hybr);
        println!(
            "{theta:>10.2} {:>10.2} {:>10.2} {:>9.0}% {:>9.0}%",
            100.0 * samp.cost_fraction,
            100.0 * hybr.cost_fraction,
            100.0 * samp.success_rate,
            100.0 * hybr.success_rate
        );
    }
    println!("\npaper: cost rises modestly with θ (≈10% → 18%); success rate stays above θ");
}
