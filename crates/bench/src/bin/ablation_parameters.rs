//! Ablation (beyond the paper) — sensitivity of SAMP to its main knobs: subset
//! size, per-subset sample size and the sampling-budget range.

use humo::sampling::{PartialSamplingConfig, PartialSamplingOptimizer};
use humo::{GroundTruthOracle, Optimizer, QualityRequirement};
use humo_bench::{ds_workload, header};

fn run(config: PartialSamplingConfig, workload: &er_core::workload::Workload) -> (f64, f64, f64) {
    let optimizer = PartialSamplingOptimizer::new(config).unwrap();
    let mut oracle = GroundTruthOracle::new();
    let outcome = optimizer.optimize(workload, &mut oracle).unwrap();
    (
        outcome.metrics.precision(),
        outcome.metrics.recall(),
        100.0 * outcome.human_cost_fraction(workload.len()),
    )
}

fn main() {
    header("Ablation: SAMP parameters", "subset size, sample size and budget range on DS");
    let requirement = QualityRequirement::symmetric(0.9).unwrap();
    let workload = ds_workload(1);
    let base = PartialSamplingConfig::new(requirement);

    println!("{:<34} {:>8} {:>8} {:>8}", "configuration", "P", "R", "cost %");
    let show = |label: String, config: PartialSamplingConfig| {
        let (p, r, c) = run(config, &workload);
        println!("{label:<34} {p:>8.3} {r:>8.3} {c:>8.2}");
    };

    show("default (unit 200, k 100, 1-5%)".into(), base);
    for unit in [100, 400] {
        show(format!("unit size {unit}"), PartialSamplingConfig { unit_size: unit, ..base });
    }
    for k in [25, 50, 200] {
        show(
            format!("samples per subset {k}"),
            PartialSamplingConfig { samples_per_subset: k, ..base },
        );
    }
    for range in [(0.02, 0.10), (0.005, 0.02)] {
        show(
            format!("sampling range {range:?}"),
            PartialSamplingConfig { sampling_range: range, ..base },
        );
    }
    println!(
        "\nexpectation: cost is fairly flat in the subset size, shrinks slightly with larger \
         per-subset samples (better bounds at higher sampling cost), and benefits from a larger \
         sampling budget on hard workloads"
    );
}
