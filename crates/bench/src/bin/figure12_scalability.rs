//! Figure 12 — machine runtime of the optimizers as the synthetic workload grows.

use humo::QualityRequirement;
use humo_bench::{header, run_base, run_hybr, run_samp, synthetic_workload};
use std::time::Instant;

fn main() {
    header("Figure 12", "runtime vs workload size on synthetic workloads (τ = 14, σ = 0.1)");
    let requirement = QualityRequirement::symmetric(0.9).unwrap();
    let sizes = [10_000usize, 100_000, 200_000, 400_000, 800_000];
    println!("{:>10} {:>10} {:>10} {:>10}", "# pairs", "BASE s", "SAMP s", "HYBR s");
    for &n in &sizes {
        let workload = synthetic_workload(n, 14.0, 0.1, 5);
        let t0 = Instant::now();
        let _ = run_base(&workload, requirement, 0);
        let base = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let _ = run_samp(&workload, requirement, 0);
        let samp = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let _ = run_hybr(&workload, requirement, 0);
        let hybr = t0.elapsed().as_secs_f64();
        println!("{n:>10} {base:>10.3} {samp:>10.3} {hybr:>10.3}");
    }
    println!(
        "\npaper: BASE grows only marginally with size; SAMP and HYBR grow polynomially but stay \
         far below the cost of the manual work they replace"
    );
}
