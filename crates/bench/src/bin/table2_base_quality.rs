//! Table II — quality levels achieved by BASE on DS and AB.

use humo::QualityRequirement;
use humo_bench::{ab_workload, ds_workload, header, run_base};

fn main() {
    header("Table II", "quality achieved by BASE on DS and AB");
    println!("{:>12} {:>14} {:>14}", "requirement", "DS (P / R)", "AB (P / R)");
    let ds = ds_workload(1);
    let ab = ab_workload(1);
    for level in [0.70, 0.75, 0.80, 0.85, 0.90, 0.95] {
        let requirement = QualityRequirement::symmetric(level).unwrap();
        let d = run_base(&ds, requirement, 0);
        let a = run_base(&ab, requirement, 0);
        println!(
            "α=β={level:.2}   {:>6.4}/{:>6.4}  {:>6.4}/{:>6.4}",
            d.metrics.precision(),
            d.metrics.recall(),
            a.metrics.precision(),
            a.metrics.recall()
        );
    }
    println!("\npaper: every BASE solution exceeds its requirement, usually by a wide margin");
}
