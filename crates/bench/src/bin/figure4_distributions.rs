//! Figure 4 — distribution of matching pairs over pair similarity on DS and AB.

use humo_bench::{ab_workload, ds_workload, header};

fn main() {
    header("Figure 4", "number of matching pairs per similarity bin (DS and AB)");
    for (name, workload) in [("DS", ds_workload(1)), ("AB", ab_workload(1))] {
        println!(
            "\n{name} dataset ({} pairs, {} matches):",
            workload.len(),
            workload.total_matches()
        );
        println!("{:>12} {:>10}", "similarity", "# matches");
        let bins = 20usize;
        for b in 0..bins {
            let lo = b as f64 / bins as f64;
            let hi = (b + 1) as f64 / bins as f64;
            let start = workload.lower_bound_index(lo);
            let end = workload.lower_bound_index(hi);
            let matches = workload.matches_in_range(start..end);
            if end > start {
                let bar = "#".repeat(((matches as f64 / 10.0).ceil() as usize).min(80));
                println!("{lo:>5.2}-{hi:<5.2} {matches:>10}  {bar}");
            }
        }
    }
    println!(
        "\npaper: DS matches concentrate at high similarity (Fig. 4a); AB matches spread over \
         low/medium similarity (Fig. 4b)"
    );
}
