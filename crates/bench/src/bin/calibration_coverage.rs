//! Coverage calibration harness for the paper's quality guarantee.
//!
//! The central claim of Section VI is probabilistic: SAMP/HYBR may miss the
//! recall (or precision) requirement with probability at most `1 − θ = 10%`.
//! This harness turns that claim into a *measured* property: it sweeps the
//! logistic steepness `τ` across flat and steep regimes, runs every sampling
//! optimizer over many seeds, and reports the empirical recall- and
//! precision-failure rates together with one-sided 95% Clopper–Pearson bands,
//! plus the human-cost overhead the full (two-sided) tail calibration adds
//! relative to the upper-side-only reference (the pre-pooling default, kept as
//! [`humo::TailCalibration::upper_only`]).
//!
//! Environment knobs (shared parsing in [`humo_bench::BenchConfig`]):
//!
//! * `HUMO_CAL_SEEDS` — seeds per (optimizer, τ) cell (default 20);
//! * `HUMO_CAL_PAIRS` — workload size (default 30000);
//! * `HUMO_CAL_TAUS` — comma-separated τ grid (default `6,8,10,14,18`);
//! * `HUMO_CAL_ASSERT` — when set, exit non-zero if any cell's recall-failure
//!   rate — or any mid-steep (τ ∈ [8, 14]) cell's precision-failure rate — is
//!   statistically above the nominal rate (CP lower limit > 1 − θ), or if the
//!   calibrated steep-curve (τ ≥ 14) mean cost regresses ≥ 10% over the
//!   upper-side-only reference.
//!
//! `--json <path>` (or `HUMO_BENCH_JSON`) writes the cell grid as a
//! `BENCH_calibration.json` document; `--baseline <path>` (or
//! `HUMO_BENCH_BASELINE`) diffs it against a committed baseline and exits
//! non-zero on regression (see `humo_bench::trajectory`).

use er_obs::{MetricsRecorder, ObsHandle};
use humo::{QualityRequirement, TailCalibration};
use humo_bench::trajectory::emit_and_gate;
use humo_bench::{
    all_sampling_effective_tail, failure_rate_band, run_all_sampling_with_tail, run_hybr_with_tail,
    run_samp_with_tail, synthetic_workload, BenchConfig, Json,
};
use std::sync::Arc;

const NOMINAL_FAILURE_RATE: f64 = 0.1; // 1 − θ for the paper's default θ = 0.9.
const MID_STEEP_TAU: std::ops::RangeInclusive<f64> = 8.0..=14.0;
const STEEP_TAU: f64 = 14.0;
const STEEP_COST_SLACK: f64 = 0.10;

struct Cell {
    optimizer: &'static str,
    tau: f64,
    runs: usize,
    failures: usize,
    recall_failures: usize,
    precision_failures: usize,
    precision_failures_reference: usize,
    mean_cost: f64,
    mean_cost_reference: f64,
}

fn main() {
    let cfg = BenchConfig::from_env("HUMO_CAL");
    let seeds = cfg.usize("SEEDS", 20);
    let pairs = cfg.usize("PAIRS", 30_000);
    let taus = cfg.f64_list("TAUS", &[6.0, 8.0, 10.0, 14.0, 18.0]);
    // A malformed grid or a zero seed count would make the assertion gate
    // pass vacuously (zero cells, zero violations); refuse to run instead.
    if taus.is_empty() || seeds == 0 {
        eprintln!(
            "calibration_coverage: empty τ grid or zero seeds \
             (HUMO_CAL_TAUS={:?}, HUMO_CAL_SEEDS={seeds}) — nothing would be measured",
            std::env::var("HUMO_CAL_TAUS").unwrap_or_default()
        );
        std::process::exit(2);
    }
    let assert_mode = cfg.flag("ASSERT");
    let requirement = QualityRequirement::symmetric(0.9).unwrap();
    let calibrated = TailCalibration {
        distance_strength: cfg.f64("STRENGTH", TailCalibration::default().distance_strength),
        ..TailCalibration::default()
    };
    // Reference arm: the upper-side-only calibration that shipped before the
    // pooled lower bound — the cost baseline the two-sided default is gated
    // against, and the arm whose precision failures document the gap.
    let reference = TailCalibration { calibrate_lower: false, ..calibrated };

    println!("================================================================");
    println!("calibration coverage: empirical failure rate of the θ = 0.9 guarantee");
    println!("τ grid {taus:?}, {seeds} seeds/cell, {pairs} pairs, nominal rate 10%");
    println!("reference arm: upper-side-only calibration (pre-pooling default)");
    println!("================================================================");
    println!(
        "{:>5} {:>4} | {:>8} {:>8} {:>8} {:>8} {:>14} | {:>8} {:>8} {:>7}",
        "opt",
        "τ",
        "fail",
        "recall",
        "prec",
        "ref prec",
        "prec [95% CP]",
        "cost %",
        "ref %",
        "Δcost"
    );

    type Runner = fn(
        &er_core::workload::Workload,
        QualityRequirement,
        u64,
        TailCalibration,
    ) -> humo::OptimizationOutcome;
    // Each optimizer's runner may remap the requested tail onto its own tuned
    // defaults (ALL preserves `calibrate_lower: false`; see
    // `all_sampling_effective_tail`). Deriving the effective configuration
    // through the same mapping the runner uses tells the harness whether the
    // two arms actually differ — when they collapse onto the same effective
    // config, the reference optimization would be byte-identical and is
    // skipped, reusing the calibrated outcome.
    type EffectiveTail = fn(QualityRequirement, TailCalibration) -> TailCalibration;
    fn identity_tail(_requirement: QualityRequirement, tail: TailCalibration) -> TailCalibration {
        tail
    }
    let optimizers: [(&'static str, Runner, EffectiveTail); 3] = [
        ("SAMP", run_samp_with_tail, identity_tail),
        ("HYBR", run_hybr_with_tail, identity_tail),
        ("ALL", run_all_sampling_with_tail, all_sampling_effective_tail),
    ];

    // One shared in-memory recorder observes every optimization in the sweep
    // (via the workload's obs handle): after the grid, its counters summarize
    // how much session machinery the guarantee actually cost — label rounds by
    // phase, GP refits by strategy, reselections and replay-cache hits.
    let metrics = Arc::new(MetricsRecorder::new());
    let mut cells: Vec<Cell> = Vec::new();
    for &(name, runner, effective_tail) in &optimizers {
        let distinct_reference =
            effective_tail(requirement, calibrated) != effective_tail(requirement, reference);
        for &tau in &taus {
            let mut failures = 0usize;
            let mut recall_failures = 0usize;
            let mut precision_failures = 0usize;
            let mut precision_failures_ref = 0usize;
            let mut cost = 0.0;
            let mut cost_ref = 0.0;
            for seed in 0..seeds as u64 {
                let mut workload = synthetic_workload(pairs, tau, 0.1, 1000 + seed);
                workload.set_obs(ObsHandle::new(metrics.clone()));
                let outcome = runner(&workload, requirement, seed, calibrated);
                if !requirement.is_satisfied_by(&outcome.metrics) {
                    failures += 1;
                }
                if outcome.metrics.recall() < requirement.recall() {
                    recall_failures += 1;
                }
                if outcome.metrics.precision() < requirement.precision() {
                    precision_failures += 1;
                }
                cost += outcome.human_cost_fraction(workload.len());
                let baseline = if distinct_reference {
                    runner(&workload, requirement, seed, reference)
                } else {
                    outcome
                };
                if baseline.metrics.precision() < requirement.precision() {
                    precision_failures_ref += 1;
                }
                cost_ref += baseline.human_cost_fraction(workload.len());
            }
            let cell = Cell {
                optimizer: name,
                tau,
                runs: seeds,
                failures,
                recall_failures,
                precision_failures,
                precision_failures_reference: precision_failures_ref,
                mean_cost: cost / seeds as f64,
                mean_cost_reference: cost_ref / seeds as f64,
            };
            let (lo, hi) = failure_rate_band(cell.precision_failures, cell.runs);
            let delta = if cell.mean_cost_reference > 0.0 {
                cell.mean_cost / cell.mean_cost_reference - 1.0
            } else {
                0.0
            };
            println!(
                "{:>5} {:>4.0} | {:>5}/{:<2} {:>8} {:>8} {:>8} {:>5.2} [{:.2},{:.2}] | {:>8.2} {:>8.2} {:>+6.1}%",
                cell.optimizer,
                cell.tau,
                cell.failures,
                cell.runs,
                cell.recall_failures,
                cell.precision_failures,
                cell.precision_failures_reference,
                cell.precision_failures as f64 / cell.runs as f64,
                lo,
                hi,
                100.0 * cell.mean_cost,
                100.0 * cell.mean_cost_reference,
                100.0 * delta,
            );
            cells.push(cell);
        }
    }

    let mut violations: Vec<String> = Vec::new();
    for cell in &cells {
        // Recall coverage: the observed recall-failure rate must not be
        // statistically above the nominal 1 − θ (the CP lower limit is the
        // small-sample slack). This is the flat-curve guarantee of the
        // upper-side calibration, and the lower-side addition must not
        // disturb it.
        let (lower, _) = failure_rate_band(cell.recall_failures, cell.runs);
        if lower > NOMINAL_FAILURE_RATE {
            violations.push(format!(
                "{} τ={}: recall-failure rate {}/{} (CP lower {:.3}) exceeds nominal {:.2}",
                cell.optimizer,
                cell.tau,
                cell.recall_failures,
                cell.runs,
                lower,
                NOMINAL_FAILURE_RATE
            ));
        }
        // Precision coverage: on the mid-steep curves where the uncapped
        // lower bounds used to miss in 20–45% of runs, the precision-failure
        // rate must now sit within the CP band of the nominal rate.
        if MID_STEEP_TAU.contains(&cell.tau) {
            let (lower, _) = failure_rate_band(cell.precision_failures, cell.runs);
            if lower > NOMINAL_FAILURE_RATE {
                violations.push(format!(
                    "{} τ={}: precision-failure rate {}/{} (CP lower {:.3}) exceeds nominal {:.2}",
                    cell.optimizer,
                    cell.tau,
                    cell.precision_failures,
                    cell.runs,
                    lower,
                    NOMINAL_FAILURE_RATE
                ));
            }
        }
        // Cost: on steep curves the pooled lower-bound calibration must be
        // almost free relative to the upper-side-only default it replaces.
        if cell.tau >= STEEP_TAU
            && cell.mean_cost_reference > 0.0
            && cell.mean_cost / cell.mean_cost_reference - 1.0 >= STEEP_COST_SLACK
        {
            violations.push(format!(
                "{} τ={}: calibrated cost {:.3} regresses >= {:.0}% over the upper-only \
                 reference {:.3}",
                cell.optimizer,
                cell.tau,
                cell.mean_cost,
                100.0 * STEEP_COST_SLACK,
                cell.mean_cost_reference
            ));
        }
    }

    if violations.is_empty() {
        println!("\nall cells within the nominal failure rates (plus CP slack) and cost budget");
    } else {
        println!("\nVIOLATIONS:");
        for v in &violations {
            println!("  {v}");
        }
    }

    let obs = metrics.snapshot();
    println!(
        "\nsession machinery across the sweep: {} label rounds ({} plan + {} refine), \
         {} incremental + {} full GP refits, {} reselections, \
         {} plan + {} training replay-cache hits",
        obs.counter("session.rounds"),
        obs.counter("session.rounds.plan"),
        obs.counter("session.rounds.refine"),
        obs.counter("gp.refit.incremental"),
        obs.counter("gp.refit.full"),
        obs.counter("gp.reselect"),
        obs.counter("session.replay_cache.plan_hits"),
        obs.counter("session.replay_cache.training_hits"),
    );

    // Machine-readable trajectory document. Failure counts carry the strict
    // `_count` policy (deterministic given the seed grid, so any increase
    // over the committed baseline is a genuine calibration regression); the
    // cost fractions and the reference arm are recorded for context.
    let doc = Json::obj([
        ("schema", Json::str("humo-bench-calibration/v1")),
        (
            "scale",
            Json::obj([
                ("seeds", Json::num(seeds as f64)),
                ("pairs", Json::num(pairs as f64)),
                ("nominal_failure_rate", Json::num(NOMINAL_FAILURE_RATE)),
            ]),
        ),
        ("taus", Json::Arr(taus.iter().map(|&tau| Json::num(tau)).collect())),
        (
            "cells",
            Json::Arr(
                cells
                    .iter()
                    .map(|cell| {
                        Json::obj([
                            ("optimizer", Json::str(cell.optimizer)),
                            ("tau", Json::num(cell.tau)),
                            ("failures_count", Json::num(cell.failures as f64)),
                            ("recall_failures_count", Json::num(cell.recall_failures as f64)),
                            ("precision_failures_count", Json::num(cell.precision_failures as f64)),
                            (
                                "reference_precision_failures",
                                Json::num(cell.precision_failures_reference as f64),
                            ),
                            ("mean_cost_fraction", Json::num(cell.mean_cost)),
                            ("reference_cost_fraction", Json::num(cell.mean_cost_reference)),
                        ])
                    })
                    .collect(),
            ),
        ),
        // Recorder summary; names deliberately avoid the policed `_count`/
        // `_rounds` suffixes — these totals scale with the seed grid and are
        // informational, not gated.
        (
            "obs",
            Json::obj([
                ("session_round_total", Json::num(obs.counter("session.rounds") as f64)),
                ("plan_round_total", Json::num(obs.counter("session.rounds.plan") as f64)),
                ("refine_round_total", Json::num(obs.counter("session.rounds.refine") as f64)),
                (
                    "gp_refit_incremental_total",
                    Json::num(obs.counter("gp.refit.incremental") as f64),
                ),
                ("gp_refit_full_total", Json::num(obs.counter("gp.refit.full") as f64)),
                ("gp_reselect_total", Json::num(obs.counter("gp.reselect") as f64)),
            ]),
        ),
        ("violations_count", Json::num(violations.len() as f64)),
    ]);
    let gate_passed = emit_and_gate(
        &doc,
        &cfg,
        &["scale.seeds", "scale.pairs", "cells.0.recall_failures_count", "violations_count"],
    );
    if (assert_mode && !violations.is_empty()) || !gate_passed {
        std::process::exit(1);
    }
}
