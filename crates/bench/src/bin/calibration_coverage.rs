//! Coverage calibration harness for the paper's quality guarantee.
//!
//! The central claim of Section VI is probabilistic: SAMP/HYBR may miss the
//! recall (or precision) requirement with probability at most `1 − θ = 10%`.
//! This harness turns that claim into a *measured* property: it sweeps the
//! logistic steepness `τ` across flat and steep regimes, runs every sampling
//! optimizer over many seeds, and reports the empirical failure rate together
//! with a one-sided 95% Clopper–Pearson band, plus the human-cost overhead the
//! tail calibration adds relative to the uncalibrated estimator.
//!
//! Environment variables:
//!
//! * `HUMO_CAL_SEEDS` — seeds per (optimizer, τ) cell (default 20);
//! * `HUMO_CAL_PAIRS` — workload size (default 30000);
//! * `HUMO_CAL_TAUS` — comma-separated τ grid (default `6,8,10,14,18`);
//! * `HUMO_CAL_ASSERT` — when set, exit non-zero if any cell's failure rate is
//!   statistically above the nominal rate (CP lower limit > 1 − θ), or if the
//!   calibrated steep-curve (τ ≥ 14) mean cost regresses ≥ 10% over the
//!   uncalibrated estimator.

use humo::{QualityRequirement, TailCalibration};
use humo_bench::{
    failure_rate_band, run_all_sampling_with_tail, run_hybr_with_tail, run_samp_with_tail,
    synthetic_workload,
};

const NOMINAL_FAILURE_RATE: f64 = 0.1; // 1 − θ for the paper's default θ = 0.9.
const STEEP_TAU: f64 = 14.0;
const STEEP_COST_SLACK: f64 = 0.10;

fn env_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

struct Cell {
    optimizer: &'static str,
    tau: f64,
    runs: usize,
    failures: usize,
    recall_failures: usize,
    failures_uncalibrated: usize,
    mean_cost: f64,
    mean_cost_uncalibrated: f64,
}

fn main() {
    let seeds: usize = env_or("HUMO_CAL_SEEDS", 20);
    let pairs: usize = env_or("HUMO_CAL_PAIRS", 30_000);
    let taus: Vec<f64> = std::env::var("HUMO_CAL_TAUS")
        .unwrap_or_else(|_| "6,8,10,14,18".to_string())
        .split(',')
        .filter_map(|t| t.trim().parse().ok())
        .collect();
    // A malformed grid or a zero seed count would make the assertion gate
    // pass vacuously (zero cells, zero violations); refuse to run instead.
    if taus.is_empty() || seeds == 0 {
        eprintln!(
            "calibration_coverage: empty τ grid or zero seeds \
             (HUMO_CAL_TAUS={:?}, HUMO_CAL_SEEDS={seeds}) — nothing would be measured",
            std::env::var("HUMO_CAL_TAUS").unwrap_or_default()
        );
        std::process::exit(2);
    }
    let assert_mode = std::env::var("HUMO_CAL_ASSERT")
        .map(|v| !matches!(v.trim(), "" | "0" | "false" | "off"))
        .unwrap_or(false);
    let requirement = QualityRequirement::symmetric(0.9).unwrap();
    let calibrated = TailCalibration {
        distance_strength: env_or(
            "HUMO_CAL_STRENGTH",
            TailCalibration::default().distance_strength,
        ),
        ..TailCalibration::default()
    };
    let uncalibrated = TailCalibration::disabled();

    println!("================================================================");
    println!("calibration coverage: empirical failure rate of the θ = 0.9 guarantee");
    println!("τ grid {taus:?}, {seeds} seeds/cell, {pairs} pairs, nominal rate 10%");
    println!("================================================================");
    println!(
        "{:>5} {:>4} | {:>8} {:>8} {:>8} {:>14} | {:>8} {:>8} {:>7}",
        "opt", "τ", "fail", "recall", "uncal", "rate [95% CP]", "cost %", "uncal %", "Δcost"
    );

    type Runner = fn(
        &er_core::workload::Workload,
        QualityRequirement,
        u64,
        TailCalibration,
    ) -> humo::OptimizationOutcome;
    let optimizers: [(&'static str, Runner); 3] = [
        ("SAMP", run_samp_with_tail),
        ("HYBR", run_hybr_with_tail),
        ("ALL", run_all_sampling_with_tail),
    ];

    let mut cells: Vec<Cell> = Vec::new();
    for &(name, runner) in &optimizers {
        for &tau in &taus {
            let mut failures = 0usize;
            let mut recall_failures = 0usize;
            let mut failures_uncal = 0usize;
            let mut cost = 0.0;
            let mut cost_uncal = 0.0;
            for seed in 0..seeds as u64 {
                let workload = synthetic_workload(pairs, tau, 0.1, 1000 + seed);
                let outcome = runner(&workload, requirement, seed, calibrated);
                if !requirement.is_satisfied_by(&outcome.metrics) {
                    failures += 1;
                }
                if outcome.metrics.recall() < requirement.recall() {
                    recall_failures += 1;
                }
                cost += outcome.human_cost_fraction(workload.len());
                let reference = runner(&workload, requirement, seed, uncalibrated);
                if !requirement.is_satisfied_by(&reference.metrics) {
                    failures_uncal += 1;
                }
                cost_uncal += reference.human_cost_fraction(workload.len());
            }
            let cell = Cell {
                optimizer: name,
                tau,
                runs: seeds,
                failures,
                recall_failures,
                failures_uncalibrated: failures_uncal,
                mean_cost: cost / seeds as f64,
                mean_cost_uncalibrated: cost_uncal / seeds as f64,
            };
            let (lo, hi) = failure_rate_band(cell.failures, cell.runs);
            let delta = if cell.mean_cost_uncalibrated > 0.0 {
                cell.mean_cost / cell.mean_cost_uncalibrated - 1.0
            } else {
                0.0
            };
            println!(
                "{:>5} {:>4.0} | {:>5}/{:<2} {:>8} {:>8} {:>5.2} [{:.2},{:.2}] | {:>8.2} {:>8.2} {:>+6.1}%",
                cell.optimizer,
                cell.tau,
                cell.failures,
                cell.runs,
                cell.recall_failures,
                cell.failures_uncalibrated,
                cell.failures as f64 / cell.runs as f64,
                lo,
                hi,
                100.0 * cell.mean_cost,
                100.0 * cell.mean_cost_uncalibrated,
                100.0 * delta,
            );
            cells.push(cell);
        }
    }

    let mut violations: Vec<String> = Vec::new();
    for cell in &cells {
        // Coverage: the observed *recall*-failure rate must not be
        // statistically above the nominal 1 − θ (the CP lower limit is the
        // small-sample slack). Recall is the side the tail calibration
        // guarantees; the total failure count is reported for context (the
        // precision side has its own, pre-existing slack characteristics).
        let (lower, _) = failure_rate_band(cell.recall_failures, cell.runs);
        if lower > NOMINAL_FAILURE_RATE {
            violations.push(format!(
                "{} τ={}: recall-failure rate {}/{} (CP lower {:.3}) exceeds nominal {:.2}",
                cell.optimizer,
                cell.tau,
                cell.recall_failures,
                cell.runs,
                lower,
                NOMINAL_FAILURE_RATE
            ));
        }
        // Cost: on steep curves the calibration must be almost free.
        if cell.tau >= STEEP_TAU
            && cell.mean_cost_uncalibrated > 0.0
            && cell.mean_cost / cell.mean_cost_uncalibrated - 1.0 >= STEEP_COST_SLACK
        {
            violations.push(format!(
                "{} τ={}: calibrated cost {:.3} regresses >= {:.0}% over uncalibrated {:.3}",
                cell.optimizer,
                cell.tau,
                cell.mean_cost,
                100.0 * STEEP_COST_SLACK,
                cell.mean_cost_uncalibrated
            ));
        }
    }

    if violations.is_empty() {
        println!("\nall cells within the nominal failure rate (plus CP slack) and cost budget");
    } else {
        println!("\nVIOLATIONS:");
        for v in &violations {
            println!("  {v}");
        }
        if assert_mode {
            std::process::exit(1);
        }
    }
}
