//! Streaming pipeline throughput: batch ingest → delta scoring → warm-started
//! re-resolution → entity clustering, end to end.
//!
//! The harness generates a bibliographic corpus, streams it into the
//! [`er_pipeline::ResolutionEngine`] in batches, and reports:
//!
//! 1. per-batch **ingest throughput** (delta candidates scored and merged per
//!    second);
//! 2. per-epoch **resolution cost and quality** (oracle queries, label
//!    round-trips — the number of `NeedLabels` batches the sans-I/O labeling
//!    session emitted, a latency proxy for crowdsourced dispatch — and
//!    pair-level plus cluster-level precision/recall);
//! 3. **incremental vs from-scratch**: oracle queries of the final warm
//!    re-resolution vs a cold from-scratch run over the same records;
//! 4. **warm vs cold planning** on the identical final workload with fresh
//!    oracles (isolates the warm-start sampling reuse);
//! 5. **session replay**: wall time of a full SAMP/HYBR labeling session under
//!    the incremental path (persistent GP handle + replay cache) vs the
//!    full-refit path (from-scratch refits, cache disabled), with the two
//!    arms asserted byte-identical;
//! 6. **parallel scoring speedup**: the worker pool vs a single thread over the
//!    full candidate set, plus the token-memo rate (pre-tokenized records);
//! 7. **shard-parallel ingest scaling**: the full candidate indexing replayed
//!    through a 1-shard serial index vs the default sharded index on the pool
//!    (deltas asserted identical).
//!
//! Environment knobs (see [`humo_bench::BenchConfig`]):
//!
//! * `HUMO_PIPE_ENTITIES` — corpus size in left-dataset entities (default 1500);
//! * `HUMO_PIPE_BATCHES`  — number of ingest batches (default 4);
//! * `HUMO_PIPE_THREADS`  — worker threads (default 0 = available parallelism);
//! * `HUMO_PIPE_REPLAY_REPS` — timing repetitions per session-replay arm
//!   (default 3; the minimum is reported);
//! * `HUMO_PIPE_ASSERT`   — when truthy, fail the process unless the
//!   pipeline meets its contract: warm planning issues fewer oracle queries
//!   than cold, incremental re-resolution is cheaper than from-scratch, the
//!   final epoch meets the quality requirement, HYBR's label round-trips
//!   scale with the subset count (never with the pair count), session replay
//!   is at least 2× faster under the incremental path, an enabled metrics
//!   recorder keeps at least 90% of the no-op recorder's ingest throughput,
//!   and (on machines with ≥ 2 cores) parallel scoring is at least 1.5× the
//!   single-thread rate;
//! * `HUMO_PIPE_SPILL_BUDGET` — when > 0, switch to the **out-of-core mode**:
//!   stream the corpus into two engines — unbounded vs a memory budget of
//!   this many resident workload pairs (and as many resident postings) — and
//!   assert the budgeted run stays within budget, spills at both layers, and
//!   produces a byte-identical workload and resolution. The full benchmark
//!   suite is skipped in this mode.
//!
//! `--json <path>` (or `HUMO_BENCH_JSON`) writes the machine-readable
//! `BENCH_pipeline.json` document; `--baseline <path>` (or
//! `HUMO_BENCH_BASELINE`) diffs the fresh document against a committed
//! baseline and exits non-zero on regression (see `humo_bench::trajectory`).

use er_core::aggregate::{
    AttributeMeasure, AttributeWeighting, PairScorer, ScoringConfig, TokenCache,
};
use er_core::blocking::{TokenBlocker, DEFAULT_SHARDS};
use er_core::parallel::SerialExecutor;
use er_core::record::{Record, RecordId};
use er_core::similarity::StringMeasure;
use er_core::spill::MemoryBudget;
use er_core::text::Tokenizer;
use er_core::workload::Workload;
use er_datagen::bibliographic::{BibliographicConfig, BibliographicGenerator, GeneratedCorpus};
use er_obs::{MetricsRecorder, ObsHandle};
use er_pipeline::{PipelineConfig, ResolutionEngine, WorkerPool};
use humo::{
    GroundTruthOracle, HybridConfig, HybridOptimizer, OptimizationOutcome, Oracle,
    PartialSamplingConfig, PartialSamplingOptimizer, QualityRequirement, RefitStrategy, Step,
};
use humo_bench::trajectory::emit_and_gate;
use humo_bench::{BenchConfig, Json};
use std::sync::Arc;
use std::time::Instant;

fn chunks<T: Clone>(items: &[T], batches: usize) -> Vec<Vec<T>> {
    let size = items.len().div_ceil(batches.max(1)).max(1);
    items.chunks(size).map(<[T]>::to_vec).collect()
}

fn scoring_config() -> ScoringConfig {
    ScoringConfig::new(
        [
            ("title", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
            ("authors", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words))),
            ("venue", AttributeMeasure::Text(StringMeasure::JaroWinkler)),
        ],
        AttributeWeighting::Uniform,
    )
}

fn pipeline_config(threads: usize, warm_start: bool) -> PipelineConfig {
    let requirement = QualityRequirement::symmetric(0.9).expect("valid requirement");
    let mut config = PipelineConfig::new(scoring_config(), "title", requirement);
    // With uniform weights over three attributes, unrelated pairs score ~0.25
    // (venue Jaro-Winkler alone contributes ~0.5): 0.4 is the threshold that
    // actually separates candidate junk from plausible matches on this corpus.
    config.similarity_threshold = 0.4;
    config.optimizer.unit_size = 100;
    config.threads = threads;
    config.warm_start = warm_start;
    config
}

/// One timed session-replay arm: drives a fresh session to completion `reps`
/// times and reports the outcome, the round count, and the *minimum*
/// session-replay wall time (each run is deterministic, so the minimum is the
/// least-noisy estimate of the arm's true cost).
///
/// "Session-replay wall time" is the time spent inside
/// [`humo::LabelingSession::step`] — the framework's replay work between label
/// waves — and deliberately excludes the labeler's side of the loop (here a
/// [`humo::GroundTruthOracle`]
/// answering each batch): a real deployment pays human latency there, so the
/// quantity the refit strategy can improve is exactly the in-step time.
fn time_sessions(
    workload: &Workload,
    reps: usize,
    mut make: impl FnMut() -> humo::LabelingSession<'static>,
) -> (OptimizationOutcome, usize, f64) {
    let mut best = f64::INFINITY;
    let mut result = None;
    for _ in 0..reps.max(1) {
        let mut session = make();
        let mut oracle = GroundTruthOracle::new();
        let mut responses = Vec::new();
        let mut in_step = 0.0;
        let outcome = loop {
            let start = Instant::now();
            let step = session.step(&responses).expect("session step succeeds");
            in_step += start.elapsed().as_secs_f64();
            match step {
                Step::Done(outcome) => break outcome,
                Step::NeedLabels(requests) => {
                    responses = humo::answer_requests(workload, &requests, &mut oracle);
                }
            }
        };
        best = best.min(in_step);
        result = Some((outcome, session.rounds()));
    }
    let (outcome, rounds) = result.expect("at least one repetition ran");
    (outcome, rounds, best)
}

/// Asserts the two session-replay arms produced byte-identical results — the
/// incremental path is a pure performance optimization, never a behavioral
/// one.
fn assert_arms_identical(
    name: &str,
    incremental: &(OptimizationOutcome, usize, f64),
    full: &(OptimizationOutcome, usize, f64),
) {
    assert_eq!(
        incremental.0.solution, full.0.solution,
        "{name}: incremental and full-refit arms chose different solutions"
    );
    assert_eq!(
        incremental.0.assignment, full.0.assignment,
        "{name}: incremental and full-refit arms produced different label assignments"
    );
    assert_eq!(
        incremental.0.total_human_cost, full.0.total_human_cost,
        "{name}: incremental and full-refit arms cost different label counts"
    );
    assert_eq!(
        incremental.1, full.1,
        "{name}: incremental and full-refit arms took different numbers of label rounds"
    );
}

/// Ingest-only recorder overhead: streams the corpus into two fresh engines —
/// one with the default no-op recorder, one with an enabled
/// [`er_obs::MetricsRecorder`] — and returns the enabled arm's ingest
/// throughput as a fraction of the no-op arm's (minimum wall time over `reps`
/// repetitions per arm). The observability contract is that this ratio stays
/// ≥ 0.9: instrumentation is batch-granular, so an enabled recorder may not
/// cost more than 10% of ingest throughput.
fn ingest_overhead_ratio(
    corpus: &GeneratedCorpus,
    truth: &[(RecordId, RecordId)],
    threads: usize,
    batches: usize,
    reps: usize,
) -> f64 {
    let schema = BibliographicGenerator::schema();
    let left_batches: Vec<Vec<Record>> = chunks(corpus.left.records(), batches);
    let right_batches: Vec<Vec<Record>> = chunks(corpus.right.records(), batches);
    let time_arm = |make_recorder: &dyn Fn() -> ObsHandle| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let mut config = pipeline_config(threads, true);
            config.recorder = make_recorder();
            let mut engine = ResolutionEngine::new(config, schema.clone(), schema.clone())
                .expect("valid pipeline config");
            let start = Instant::now();
            for epoch in 0..left_batches.len().max(right_batches.len()) {
                let l = left_batches.get(epoch).cloned().unwrap_or_default();
                let r = right_batches.get(epoch).cloned().unwrap_or_default();
                let edges = if epoch == 0 { truth } else { &[] };
                engine.ingest(l, r, edges).expect("ingest succeeds");
            }
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };
    let noop = time_arm(&ObsHandle::noop);
    let enabled = time_arm(&|| ObsHandle::new(Arc::new(MetricsRecorder::new())));
    noop / enabled.max(1e-9)
}

/// Resident set size in kibibytes from `/proc/self/status`, if available.
/// Purely informational: RSS includes allocator slack and depends on the
/// kernel, so the out-of-core contract is asserted on the engine's own
/// resident-pair accounting instead.
fn vm_rss_kib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// The out-of-core mode (`HUMO_PIPE_SPILL_BUDGET` > 0): stream the corpus into
/// an unbounded engine and a budgeted one, assert the budgeted run stays
/// within its resident-pair budget, spills at both the posting-list and the
/// workload layer, and resolves byte-identically to the in-memory run.
fn run_out_of_core(
    corpus: &GeneratedCorpus,
    truth: &[(RecordId, RecordId)],
    threads: usize,
    batches: usize,
    spill_budget: usize,
) {
    println!("-- out-of-core mode: {spill_budget} resident pairs/postings budget --");
    let schema = BibliographicGenerator::schema();
    let mut in_memory =
        ResolutionEngine::new(pipeline_config(threads, true), schema.clone(), schema.clone())
            .expect("valid pipeline config");
    let mut config = pipeline_config(threads, true);
    config.memory_budget = MemoryBudget::bounded(spill_budget, spill_budget);
    let mut budgeted =
        ResolutionEngine::new(config, schema.clone(), schema).expect("valid pipeline config");

    let left_batches: Vec<Vec<Record>> = chunks(corpus.left.records(), batches);
    let right_batches: Vec<Vec<Record>> = chunks(corpus.right.records(), batches);
    let mut total_delta = 0usize;
    let mut budgeted_secs = 0.0f64;
    for epoch in 0..left_batches.len().max(right_batches.len()) {
        let l = left_batches.get(epoch).cloned().unwrap_or_default();
        let r = right_batches.get(epoch).cloned().unwrap_or_default();
        let edges = if epoch == 0 { truth } else { &[] };
        let a = in_memory.ingest(l.clone(), r.clone(), edges).expect("ingest succeeds");
        let start = Instant::now();
        let b = budgeted.ingest(l, r, edges).expect("ingest succeeds");
        budgeted_secs += start.elapsed().as_secs_f64();
        assert_eq!(a.delta_candidates, b.delta_candidates, "epoch {epoch} candidates diverged");
        assert_eq!(a.retained_pairs, b.retained_pairs, "epoch {epoch} retained pairs diverged");
        assert!(
            b.resident_pairs <= spill_budget,
            "epoch {epoch}: {} resident pairs exceed the {spill_budget} budget",
            b.resident_pairs
        );
        total_delta += b.delta_candidates;
        println!(
            "epoch {epoch}: {} delta candidates, workload {} = {} resident + {} spilled",
            b.delta_candidates, b.workload_len, b.resident_pairs, b.spilled_pairs
        );
    }
    assert!(budgeted.workload().spilled_pairs() > 0, "workload spill never engaged");
    assert!(
        budgeted.blocking_index().spilled_generations() > 0,
        "posting spill never engaged — lower the budget or grow the corpus"
    );
    assert_eq!(in_memory.workload().spilled_pairs(), 0);

    // Byte-identity, pair by pair.
    assert_eq!(in_memory.workload().len(), budgeted.workload().len());
    for (a, b) in in_memory.workload().iter().zip(budgeted.workload().iter()) {
        assert_eq!(a.id(), b.id());
        assert_eq!(a.left(), b.left());
        assert_eq!(a.right(), b.right());
        assert_eq!(a.similarity().to_bits(), b.similarity().to_bits(), "similarity bits diverged");
        assert_eq!(a.ground_truth(), b.ground_truth());
    }
    println!(
        "\nworkload: {} pairs ({} resident, {} spilled; {:.1} MiB on disk + {:.1} MiB postings), \
         byte-identical to in-memory",
        budgeted.workload().len(),
        budgeted.workload().resident_pairs(),
        budgeted.workload().spilled_pairs(),
        budgeted.workload().spilled_bytes() as f64 / (1024.0 * 1024.0),
        budgeted.blocking_index().spilled_bytes() as f64 / (1024.0 * 1024.0),
    );
    println!(
        "budgeted ingest: {total_delta} delta candidates in {budgeted_secs:.2} s \
         ({:.3e} pairs/s)",
        total_delta as f64 / budgeted_secs.max(1e-9)
    );
    if let Some(rss) = vm_rss_kib() {
        println!("VmRSS after ingest: {:.1} MiB (informational)", rss as f64 / 1024.0);
    }

    // Resolution over the spilled workload must be exactly the in-memory one.
    let mut oracle_a = GroundTruthOracle::new();
    let mut oracle_b = GroundTruthOracle::new();
    let a = in_memory.resolve(&mut oracle_a).expect("resolve succeeds");
    let b = budgeted.resolve(&mut oracle_b).expect("resolve succeeds");
    assert_eq!(a.outcome.solution, b.outcome.solution, "solutions diverged");
    assert_eq!(a.outcome.assignment, b.outcome.assignment, "assignments diverged");
    assert_eq!(a.outcome.metrics, b.outcome.metrics, "metrics diverged");
    assert_eq!(a.oracle_queries, b.oracle_queries, "oracle queries diverged");
    assert_eq!(a.entities, b.entities, "entities diverged");
    assert_eq!(a.cluster_metrics, b.cluster_metrics, "cluster metrics diverged");
    println!(
        "resolution: {} oracle queries, {} entity clusters, cluster F1 {:.3} \
         — byte-identical to in-memory",
        b.oracle_queries,
        b.entities.non_singleton_count(),
        b.cluster_metrics.f1()
    );
    println!("\n[out-of-core] all equivalence checks passed");
}

fn main() {
    let cfg = BenchConfig::from_env("HUMO_PIPE");
    let entities = cfg.usize("ENTITIES", 1_500);
    let batches = cfg.usize("BATCHES", 4);
    let threads = cfg.usize("THREADS", 0);
    let replay_reps = cfg.usize("REPLAY_REPS", 3);
    let assert_mode = cfg.flag("ASSERT");
    let spill_budget = cfg.usize("SPILL_BUDGET", 0);

    println!("================================================================");
    println!("pipeline_throughput: streaming ingest -> resolve -> cluster");
    println!("entities = {entities}, batches = {batches}, threads = {threads} (0 = auto)");
    println!("================================================================");

    let corpus = BibliographicGenerator::new(BibliographicConfig {
        num_entities: entities,
        duplicate_probability: 0.6,
        extra_right_entities: entities / 2,
        corruption: 0.35,
        seed: 42,
    })
    .generate();
    let truth: Vec<(RecordId, RecordId)> = corpus.ground_truth.iter().copied().collect();
    println!(
        "corpus: {} left records, {} right records, {} true duplicates\n",
        corpus.left.len(),
        corpus.right.len(),
        truth.len()
    );

    if spill_budget > 0 {
        run_out_of_core(&corpus, &truth, threads, batches, spill_budget);
        return;
    }

    let schema = BibliographicGenerator::schema();
    // The main engine runs with an enabled in-memory metrics recorder: epoch
    // ingest timing below reads the `pipeline.ingest` span totals from
    // snapshots instead of ad-hoc `Instant` bookkeeping, and the recorder's
    // counters are cross-checked against the engine's own reports.
    let metrics = Arc::new(MetricsRecorder::new());
    let mut main_config = pipeline_config(threads, true);
    main_config.recorder = ObsHandle::new(metrics.clone());
    let mut engine = ResolutionEngine::new(main_config, schema.clone(), schema.clone())
        .expect("valid pipeline config");
    let mut oracle = GroundTruthOracle::new();
    let left_batches: Vec<Vec<Record>> = chunks(corpus.left.records(), batches);
    let right_batches: Vec<Vec<Record>> = chunks(corpus.right.records(), batches);

    println!("-- streaming epochs (persistent oracle) --");
    println!(
        "{:<6} {:>10} {:>9} {:>9} {:>10} {:>8} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "epoch",
        "delta",
        "kept",
        "workload",
        "pairs/s",
        "queries",
        "rounds",
        "pairP",
        "pairR",
        "cluP",
        "cluR"
    );
    let mut final_report = None;
    let mut total_delta = 0usize;
    let mut last_ingest_rate = 0.0f64;
    let mut total_ingest_secs = 0.0f64;
    for epoch in 0..left_batches.len().max(right_batches.len()) {
        let l = left_batches.get(epoch).cloned().unwrap_or_default();
        let r = right_batches.get(epoch).cloned().unwrap_or_default();
        let edges = if epoch == 0 { truth.as_slice() } else { &[] };
        let span_before = metrics.snapshot().span("pipeline.ingest").map_or(0.0, |s| s.total_secs);
        let ingest = engine.ingest(l, r, edges).expect("ingest succeeds");
        let ingest_secs =
            metrics.snapshot().span("pipeline.ingest").map_or(0.0, |s| s.total_secs) - span_before;
        let rate =
            if ingest_secs > 0.0 { ingest.delta_candidates as f64 / ingest_secs } else { 0.0 };
        total_delta += ingest.delta_candidates;
        last_ingest_rate = rate;
        total_ingest_secs += ingest_secs;
        let report = engine.resolve(&mut oracle).expect("resolve succeeds");
        println!(
            "{:<6} {:>10} {:>9} {:>9} {:>10.3e} {:>8} {:>7} {:>7.3} {:>7.3} {:>7.3} {:>7.3}{}",
            epoch,
            ingest.delta_candidates,
            ingest.retained_pairs,
            ingest.workload_len,
            rate,
            report.oracle_queries,
            report.label_rounds,
            report.outcome.metrics.precision(),
            report.outcome.metrics.recall(),
            report.cluster_metrics.precision(),
            report.cluster_metrics.recall(),
            if report.used_warm_start { "  (warm)" } else { "" },
        );
        final_report = Some(report);
    }
    let final_report = final_report.expect("at least one epoch ran");
    let incremental_final_queries = final_report.oracle_queries;
    // The recorder and the reports are two views of the same events: the
    // counter totals must agree with the per-epoch report sums exactly.
    let recorded_delta = metrics.snapshot().counter("ingest.delta_candidates") as usize;
    assert_eq!(recorded_delta, total_delta, "recorder delta-candidate total diverged from reports");
    assert_eq!(
        final_report.plan_rounds + final_report.refine_rounds,
        final_report.label_rounds,
        "per-phase round counts must sum to the label-round total"
    );
    println!(
        "\nfinal epoch label rounds: {} = {} plan + {} refine",
        final_report.label_rounds, final_report.plan_rounds, final_report.refine_rounds
    );

    // From-scratch baseline: one cold engine over all records, fresh oracle.
    let mut scratch =
        ResolutionEngine::new(pipeline_config(threads, false), schema.clone(), schema)
            .expect("valid pipeline config");
    let mut scratch_oracle = GroundTruthOracle::new();
    scratch
        .ingest(corpus.left.records().to_vec(), corpus.right.records().to_vec(), &truth)
        .expect("ingest succeeds");
    let scratch_report = scratch.resolve(&mut scratch_oracle).expect("resolve succeeds");
    println!("\n-- incremental re-resolution vs from-scratch --");
    println!(
        "final warm re-resolution: {incremental_final_queries} oracle queries \
         (entities: {} clusters, cluster F1 {:.3})",
        final_report.entities.non_singleton_count(),
        final_report.cluster_metrics.f1()
    );
    println!(
        "from-scratch cold run:    {} oracle queries (cluster F1 {:.3})",
        scratch_report.oracle_queries,
        scratch_report.cluster_metrics.f1()
    );

    // Warm vs cold planning on the identical final workload, fresh oracles.
    let optimizer = PartialSamplingOptimizer::new(pipeline_config(threads, true).optimizer)
        .expect("valid optimizer config");
    let workload = scratch.workload();
    let mut cold_plan_oracle = GroundTruthOracle::new();
    optimizer.plan(workload, &mut cold_plan_oracle).expect("cold plan succeeds");
    let cold_plan_queries = cold_plan_oracle.labels_issued();
    let warm_state = engine.warm_state().cloned().unwrap_or_default();
    let mut warm_plan_oracle = GroundTruthOracle::new();
    optimizer
        .plan_with_warm_start(workload, &mut warm_plan_oracle, Some(&warm_state))
        .expect("warm plan succeeds");
    let warm_plan_queries = warm_plan_oracle.labels_issued();
    let saving = if cold_plan_queries > 0 {
        100.0 * (cold_plan_queries as f64 - warm_plan_queries as f64) / cold_plan_queries as f64
    } else {
        0.0
    };
    println!("\n-- warm-started vs cold re-optimization (plan phase, fresh oracles) --");
    println!("cold plan:  {cold_plan_queries} oracle queries");
    println!("warm plan:  {warm_plan_queries} oracle queries ({saving:.1}% saved)");

    // Label round-trips: drive a HYBR labeling session over the final workload
    // and count NeedLabels batches. Each batch is one dispatch latency however
    // many pairs it contains, so round-trips — not pair counts — dominate the
    // wall-clock cost of crowdsourced labeling. The batches HYBR emits are
    // whole subset samples and whole subset probes, so the count must scale
    // with the number of subsets the search touches, never with the raw pair
    // count.
    let requirement = QualityRequirement::symmetric(0.9).expect("valid requirement");
    let mut hybr_config = HybridConfig::new(requirement);
    hybr_config.sampling.unit_size = pipeline_config(threads, true).optimizer.unit_size;
    let hybr = HybridOptimizer::new(hybr_config).expect("valid HYBR config");
    let mut hybr_session = hybr.session(workload).expect("valid session");
    let mut hybr_oracle = GroundTruthOracle::new();
    let hybr_outcome = hybr_session.drive(&mut hybr_oracle).expect("HYBR session completes");
    let unit = hybr_config.sampling.unit_size;
    let num_subsets = workload.partition(unit).map_or(1, |p| p.len());
    // SAMP's own sampling budget: at most `subset_budget(m).1` subsets are
    // ever sampled by the estimation phase.
    let (_, budget) = hybr_config.sampling.subset_budget(num_subsets);
    let dh_subsets = hybr_outcome.solution.human_region_size().div_ceil(unit);
    // One batch for the whole initial sample set, at most one per refinement
    // probe (bounded by the budget), one per boundary-growth iteration
    // (bounded by the DH subsets), plus start/verification slack.
    let round_bound = budget + dh_subsets + 4;
    let rounds = hybr_session.rounds();
    println!(
        "\n-- label round-trips (HYBR session, {} pairs, {num_subsets} subsets) --",
        workload.len()
    );
    println!(
        "{rounds} round-trips for {} labeled pairs ({:.1} pairs/round); \
         subset-scaling bound {round_bound} (budget {budget} + DH {dh_subsets} + 4)",
        hybr_oracle.labels_issued(),
        hybr_oracle.labels_issued() as f64 / rounds.max(1) as f64,
    );

    // Session replay: the same batched session driven to completion under the
    // incremental path (persistent GP handle, replay cache) and under the
    // full-refit path (from-scratch GP refits, replay cache disabled — every
    // step replays the entire labeling history). The arms are byte-identical
    // by construction; the ratio of their wall times is the committed,
    // machine-independent perf-trajectory number.
    let samp_config = pipeline_config(threads, true).optimizer;
    // The sessions borrow the workload; clone it into a leaked allocation so
    // the closures can hand out 'static sessions without lifetime gymnastics.
    let replay_workload: &'static Workload = Box::leak(Box::new(workload.clone()));
    let samp_incremental = time_sessions(replay_workload, replay_reps, || {
        PartialSamplingOptimizer::new(samp_config)
            .expect("valid SAMP config")
            .session(replay_workload)
            .expect("valid session")
    });
    let samp_full = time_sessions(replay_workload, replay_reps, || {
        PartialSamplingOptimizer::new(PartialSamplingConfig {
            refit: RefitStrategy::Full,
            ..samp_config
        })
        .expect("valid SAMP config")
        .session(replay_workload)
        .expect("valid session")
        .with_replay_cache(false)
    });
    assert_arms_identical("SAMP", &samp_incremental, &samp_full);
    let mut hybr_full_config = hybr_config;
    hybr_full_config.sampling.refit = RefitStrategy::Full;
    let hybr_incremental = time_sessions(replay_workload, replay_reps, || {
        HybridOptimizer::new(hybr_config)
            .expect("valid HYBR config")
            .session(replay_workload)
            .expect("valid session")
    });
    let hybr_full = time_sessions(replay_workload, replay_reps, || {
        HybridOptimizer::new(hybr_full_config)
            .expect("valid HYBR config")
            .session(replay_workload)
            .expect("valid session")
            .with_replay_cache(false)
    });
    assert_arms_identical("HYBR", &hybr_incremental, &hybr_full);
    let samp_speedup = samp_full.2 / samp_incremental.2.max(1e-9);
    let hybr_speedup = hybr_full.2 / hybr_incremental.2.max(1e-9);
    println!("\n-- session replay: incremental GP refits + replay cache vs full refits --");
    println!(
        "SAMP: incremental {:.1} ms, full {:.1} ms ({samp_speedup:.1}x) over {} rounds \
         [outcomes byte-identical]",
        1e3 * samp_incremental.2,
        1e3 * samp_full.2,
        samp_incremental.1
    );
    println!(
        "HYBR: incremental {:.1} ms, full {:.1} ms ({hybr_speedup:.1}x) over {} rounds \
         [outcomes byte-identical]",
        1e3 * hybr_incremental.2,
        1e3 * hybr_full.2,
        hybr_incremental.1
    );

    // Parallel scoring speedup over the full candidate set.
    let blocker = TokenBlocker::new("title", Tokenizer::Words);
    let candidates = blocker.candidates(&corpus.left, &corpus.right);
    let scorer =
        PairScorer::new(&scoring_config(), &[&corpus.left, &corpus.right]).expect("valid scorer");
    let time_scoring = |pool: &WorkerPool| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let start = Instant::now();
            let sims = pool
                .score_pairs(&corpus.left, &corpus.right, &scorer, &candidates)
                .expect("scoring succeeds");
            assert_eq!(sims.len(), candidates.len());
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };
    let single = WorkerPool::new(1);
    let pool = WorkerPool::new(threads);
    let t1 = time_scoring(&single);
    let tn = time_scoring(&pool);
    let speedup = if tn > 0.0 { t1 / tn } else { 1.0 };
    println!("\n-- parallel scoring ({} candidate pairs) --", candidates.len());
    println!("1 thread : {:.1} ms ({:.3e} pairs/s)", 1e3 * t1, candidates.len() as f64 / t1);
    println!(
        "{} threads: {:.1} ms ({:.3e} pairs/s)  speedup {speedup:.2}x",
        pool.threads(),
        1e3 * tn,
        candidates.len() as f64 / tn
    );

    // Token-memo scoring: the same parallel pass with every record's token
    // sequences pre-admitted (the engine's steady state — records are admitted
    // once, at ingest). Bit-identical by contract, faster because the
    // token-based measures skip re-normalizing and re-tokenizing.
    let mut token_cache = TokenCache::new();
    token_cache.admit_scoring(&scoring_config(), corpus.left.records(), corpus.right.records());
    let reference =
        pool.score_pairs(&corpus.left, &corpus.right, &scorer, &candidates).expect("scoring");
    let mut tc = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        let sims = pool
            .score_pairs_cached(&corpus.left, &corpus.right, &scorer, &token_cache, &candidates)
            .expect("cached scoring succeeds");
        tc = tc.min(start.elapsed().as_secs_f64());
        assert!(
            reference.iter().zip(&sims).all(|(a, b)| a.to_bits() == b.to_bits()),
            "cached scoring must be bit-identical to uncached scoring"
        );
    }
    let cache_scaling = tn / tc.max(1e-9);
    println!(
        "token memo: {:.1} ms ({:.3e} pairs/s)  {cache_scaling:.2}x vs uncached \
         [bit-identical]",
        1e3 * tc,
        candidates.len() as f64 / tc
    );

    // Shard-parallel ingest scaling: replay the full candidate indexing through
    // a 1-shard serial index and through the default sharded index on the
    // pool, asserting identical per-batch deltas. The ratio is reported
    // unsuffixed (machine-dependent, like the scoring scaling).
    let index_batches = 8usize;
    let shard_left: Vec<Vec<Record>> = chunks(corpus.left.records(), index_batches);
    let shard_right: Vec<Vec<Record>> = chunks(corpus.right.records(), index_batches);
    let mut serial_index = blocker.incremental_sharded(1);
    let mut serial_deltas = Vec::new();
    let start = Instant::now();
    for epoch in 0..index_batches {
        let l = shard_left.get(epoch).map_or(&[] as &[Record], Vec::as_slice);
        let r = shard_right.get(epoch).map_or(&[] as &[Record], Vec::as_slice);
        serial_deltas.push(serial_index.add_records_with(l, r, &SerialExecutor, None));
    }
    let t_serial = start.elapsed().as_secs_f64();
    let mut sharded_index = blocker.incremental_sharded(DEFAULT_SHARDS);
    let start = Instant::now();
    for (epoch, serial_delta) in serial_deltas.iter().enumerate() {
        let l = shard_left.get(epoch).map_or(&[] as &[Record], Vec::as_slice);
        let r = shard_right.get(epoch).map_or(&[] as &[Record], Vec::as_slice);
        let delta = sharded_index.add_records_with(l, r, &pool, Some(&token_cache));
        assert_eq!(&delta, serial_delta, "sharded delta diverged on epoch {epoch}");
    }
    let t_sharded = start.elapsed().as_secs_f64();
    let shard_scaling = t_serial / t_sharded.max(1e-9);
    println!("\n-- sharded incremental blocking ({index_batches} batches) --");
    println!("1 shard serial  : {:.1} ms", 1e3 * t_serial);
    println!(
        "{DEFAULT_SHARDS} shards on pool: {:.1} ms  {shard_scaling:.2}x [deltas identical]",
        1e3 * t_sharded
    );

    // Recorder overhead: re-stream the corpus into two fresh engines (no-op
    // recorder vs enabled metrics recorder) and compare ingest throughput.
    let overhead_ratio = ingest_overhead_ratio(&corpus, &truth, threads, batches, replay_reps);
    println!("\n-- recorder overhead (ingest-only, min of {replay_reps} reps per arm) --");
    println!(
        "enabled-recorder ingest throughput is {:.1}% of the no-op recorder's",
        100.0 * overhead_ratio
    );

    // Machine-readable perf-trajectory document. Key naming drives the
    // regression policy (see humo_bench::trajectory): `_queries`/`_rounds`/
    // `_count` fail on any increase, `_speedup` fails on a >25% drop, `_ms`/
    // `_per_s` are informational. The scoring scaling deliberately avoids the
    // `_speedup` suffix: it depends on the machine's core count.
    let doc = Json::obj([
        ("schema", Json::str("humo-bench-pipeline/v1")),
        (
            "scale",
            Json::obj([
                ("entities", Json::num(entities as f64)),
                ("batches", Json::num(batches as f64)),
            ]),
        ),
        (
            "corpus",
            Json::obj([
                ("left_records", Json::num(corpus.left.len() as f64)),
                ("right_records", Json::num(corpus.right.len() as f64)),
                ("true_duplicates", Json::num(truth.len() as f64)),
            ]),
        ),
        (
            "ingest",
            Json::obj([
                ("total_delta_candidates", Json::num(total_delta as f64)),
                ("last_epoch_pairs_per_s", Json::num(last_ingest_rate)),
                ("pairs_per_s", Json::num(total_delta as f64 / total_ingest_secs.max(1e-9))),
                ("shard_parallel_scaling", Json::num(shard_scaling)),
            ]),
        ),
        (
            "resolution",
            Json::obj([
                ("final_epoch_queries", Json::num(incremental_final_queries as f64)),
                ("scratch_queries", Json::num(scratch_report.oracle_queries as f64)),
                ("final_epoch_label_rounds", Json::num(final_report.label_rounds as f64)),
                ("warm_plan_queries", Json::num(warm_plan_queries as f64)),
                ("cold_plan_queries", Json::num(cold_plan_queries as f64)),
            ]),
        ),
        (
            "hybr",
            Json::obj([
                ("label_rounds", Json::num(rounds as f64)),
                ("round_bound", Json::num(round_bound as f64)),
                ("labeled_pairs", Json::num(hybr_oracle.labels_issued() as f64)),
            ]),
        ),
        (
            "session_replay",
            Json::obj([
                ("samp_rounds", Json::num(samp_incremental.1 as f64)),
                ("samp_incremental_ms", Json::num(1e3 * samp_incremental.2)),
                ("samp_full_ms", Json::num(1e3 * samp_full.2)),
                ("samp_speedup", Json::num(samp_speedup)),
                ("hybr_rounds", Json::num(hybr_incremental.1 as f64)),
                ("hybr_incremental_ms", Json::num(1e3 * hybr_incremental.2)),
                ("hybr_full_ms", Json::num(1e3 * hybr_full.2)),
                ("hybr_speedup", Json::num(hybr_speedup)),
            ]),
        ),
        ("obs", Json::obj([("ingest_overhead_ratio", Json::num(overhead_ratio))])),
        (
            "scoring",
            Json::obj([
                ("candidate_pairs", Json::num(candidates.len() as f64)),
                ("single_thread_pairs_per_s", Json::num(candidates.len() as f64 / t1.max(1e-9))),
                ("parallel_pairs_per_s", Json::num(candidates.len() as f64 / tn.max(1e-9))),
                ("parallel_scaling", Json::num(speedup)),
                ("token_cache_pairs_per_s", Json::num(candidates.len() as f64 / tc.max(1e-9))),
                ("token_cache_scaling", Json::num(cache_scaling)),
            ]),
        ),
    ]);
    let gate_passed = emit_and_gate(
        &doc,
        &cfg,
        &[
            "resolution.final_epoch_queries",
            "resolution.scratch_queries",
            "resolution.warm_plan_queries",
            "resolution.cold_plan_queries",
            "hybr.label_rounds",
            "session_replay.samp_speedup",
            "session_replay.hybr_speedup",
            "ingest.last_epoch_pairs_per_s",
            "ingest.pairs_per_s",
        ],
    );

    if assert_mode {
        let requirement = QualityRequirement::symmetric(0.9).expect("valid requirement");
        assert!(
            warm_plan_queries < cold_plan_queries,
            "warm planning must issue fewer oracle queries than cold \
             ({warm_plan_queries} vs {cold_plan_queries})"
        );
        assert!(
            incremental_final_queries < scratch_report.oracle_queries,
            "incremental re-resolution must be cheaper than from-scratch \
             ({incremental_final_queries} vs {})",
            scratch_report.oracle_queries
        );
        assert!(
            requirement.is_satisfied_by(&final_report.outcome.metrics),
            "final epoch must meet {requirement}: precision {:.3}, recall {:.3}",
            final_report.outcome.metrics.precision(),
            final_report.outcome.metrics.recall()
        );
        assert!(
            rounds <= round_bound,
            "HYBR label round-trips ({rounds}) must scale with the subset count \
             (bound {round_bound} = budget {budget} + DH subsets {dh_subsets} + 4, \
             with {num_subsets} subsets total), not the pair count ({})",
            workload.len()
        );
        assert!(
            overhead_ratio >= 0.9,
            "enabled-recorder ingest throughput must stay within 10% of the no-op \
             recorder's (ratio {overhead_ratio:.3})"
        );
        assert!(
            samp_speedup >= 2.0 && hybr_speedup >= 2.0,
            "session replay must be at least 2x faster under the incremental path \
             (SAMP {samp_speedup:.2}x, HYBR {hybr_speedup:.2}x)"
        );
        if pool.threads() >= 2 {
            assert!(
                speedup >= 1.5,
                "parallel scoring speedup {speedup:.2}x below the 1.5x floor on \
                 {} threads",
                pool.threads()
            );
        } else {
            println!("\n[assert] single-core machine: speedup floor not applicable");
        }
        println!("\n[assert] all pipeline contract checks passed");
    }
    if !gate_passed {
        std::process::exit(1);
    }
}
