//! Technical-report comparison — the all-sampling solution vs the partial-sampling
//! solution (the paper keeps only the summary statement that partial sampling wins).

use humo::{
    AllSamplingConfig, AllSamplingOptimizer, GroundTruthOracle, Optimizer, PartialSamplingConfig,
    PartialSamplingOptimizer, QualityRequirement,
};
use humo_bench::{ds_workload, header};

fn main() {
    header("All-sampling vs partial sampling", "human cost comparison on DS (θ = 0.9)");
    let workload = ds_workload(1);
    println!("{:>12} {:>16} {:>16}", "requirement", "ALL-SAMP cost %", "SAMP cost %");
    for level in [0.80, 0.85, 0.90, 0.95] {
        let requirement = QualityRequirement::symmetric(level).unwrap();
        let all = {
            let optimizer = AllSamplingOptimizer::new(AllSamplingConfig::new(requirement)).unwrap();
            let mut oracle = GroundTruthOracle::new();
            optimizer.optimize(&workload, &mut oracle).unwrap()
        };
        let partial = {
            let optimizer =
                PartialSamplingOptimizer::new(PartialSamplingConfig::new(requirement)).unwrap();
            let mut oracle = GroundTruthOracle::new();
            optimizer.optimize(&workload, &mut oracle).unwrap()
        };
        println!(
            "α=β={level:.2}   {:>14.2} {:>16.2}",
            100.0 * all.human_cost_fraction(workload.len()),
            100.0 * partial.human_cost_fraction(workload.len())
        );
    }
    println!(
        "\npaper (technical report): the all-sampling solution pays for sampling every subset and \
         is dominated by the partial-sampling solution"
    );
}
