//! The committed perf trajectory: diffing a fresh `BENCH_*.json` document
//! against its committed baseline.
//!
//! The regression policy is encoded in leaf-key naming so the gate needs no
//! per-file schema:
//!
//! * keys ending in `_queries`, `_rounds` or `_count` are **strict**: any
//!   increase over the baseline fails (these are deterministic given the
//!   harness scale, so "equal or better" is the expectation);
//! * keys ending in `_speedup` carry the wall-time gate **machine-
//!   independently**: both arms of a speedup run in the same process on the
//!   same machine, so the ratio transfers across hardware. A fresh speedup
//!   more than 25% below the committed one fails;
//! * keys ending in `_ms` or `_per_s` are absolute wall-clock measurements:
//!   they are *recorded* for the trajectory (so successive PRs land with a
//!   before/after number) but only warned about, never failed on — committed
//!   numbers come from whatever machine regenerated the file last.

use crate::config::BenchConfig;
use crate::json::Json;

/// Relative tolerance on `_speedup` keys (and the warn threshold for absolute
/// wall-clock keys): 0.25 means "fail on a >25% regression".
pub const WALL_TOLERANCE: f64 = 0.25;

/// The outcome of a baseline diff: hard failures and informational warnings.
#[derive(Debug, Default)]
pub struct DiffReport {
    /// Regressions that should fail the gate.
    pub violations: Vec<String>,
    /// Wall-clock drifts worth a look but not a failure.
    pub warnings: Vec<String>,
}

impl DiffReport {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Diffs `current` against `baseline` under the leaf-key policy above.
/// Structural mismatches (a path present in the baseline but missing or
/// non-numeric in the fresh document, array length changes) are violations:
/// the trajectory only works if the schema stays comparable.
pub fn diff_against_baseline(current: &Json, baseline: &Json) -> DiffReport {
    let mut report = DiffReport::default();
    walk(current, baseline, String::new(), &mut report);
    report
}

/// Checks that every dotted path in `required` resolves to a numeric value —
/// the schema sanity check run right after a harness writes its document.
pub fn check_schema(doc: &Json, required: &[&str]) -> Vec<String> {
    required
        .iter()
        .filter(|path| doc.get(path).and_then(Json::as_f64).is_none())
        .map(|path| format!("missing or non-numeric field `{path}`"))
        .collect()
}

/// The shared tail of every harness run: sanity-check the document's schema,
/// write it where `--json` / `HUMO_BENCH_JSON` points, and when `--baseline` /
/// `HUMO_BENCH_BASELINE` names a committed file, diff against it under the
/// leaf-key policy. Prints every problem and returns whether the gate passed;
/// harnesses exit non-zero on `false` regardless of their own assert mode —
/// passing a baseline is an explicit request for gating.
pub fn emit_and_gate(doc: &Json, config: &BenchConfig, required_fields: &[&str]) -> bool {
    let mut passed = true;
    for problem in check_schema(doc, required_fields) {
        eprintln!("[bench-json] schema: {problem}");
        passed = false;
    }
    if let Some(path) = config.json_output() {
        match std::fs::write(&path, doc.to_pretty_string()) {
            Ok(()) => println!("\n[bench-json] wrote {}", path.display()),
            Err(e) => {
                eprintln!("[bench-json] failed to write {}: {e}", path.display());
                passed = false;
            }
        }
    }
    if let Some(path) = config.baseline() {
        let baseline = std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| Json::parse(&text));
        match baseline {
            Ok(baseline) => {
                let report = diff_against_baseline(doc, &baseline);
                for warning in &report.warnings {
                    println!("[bench-diff] warning: {warning}");
                }
                for violation in &report.violations {
                    eprintln!("[bench-diff] REGRESSION: {violation}");
                }
                if report.passed() {
                    println!(
                        "[bench-diff] no regressions against {} ({} warnings)",
                        path.display(),
                        report.warnings.len()
                    );
                } else {
                    passed = false;
                }
            }
            Err(e) => {
                eprintln!("[bench-diff] cannot read baseline {}: {e}", path.display());
                passed = false;
            }
        }
    }
    passed
}

fn walk(current: &Json, baseline: &Json, path: String, report: &mut DiffReport) {
    match (current, baseline) {
        (Json::Obj(cur), Json::Obj(base)) => {
            for (key, base_value) in base {
                let child = if path.is_empty() { key.clone() } else { format!("{path}.{key}") };
                match cur.iter().find(|(k, _)| k == key) {
                    Some((_, cur_value)) => walk(cur_value, base_value, child, report),
                    None => report
                        .violations
                        .push(format!("{child}: present in baseline, missing in fresh run")),
                }
            }
        }
        (Json::Arr(cur), Json::Arr(base)) => {
            if cur.len() != base.len() {
                report.violations.push(format!(
                    "{path}: array length changed ({} -> {})",
                    base.len(),
                    cur.len()
                ));
                return;
            }
            for (i, (c, b)) in cur.iter().zip(base).enumerate() {
                walk(c, b, format!("{path}.{i}"), report);
            }
        }
        (Json::Num(cur), Json::Num(base)) => compare_leaf(*cur, *base, &path, report),
        // Non-numeric leaves (schema tags, labels) must simply match.
        (c, b) if c == b => {}
        (c, b) => {
            report.violations.push(format!("{path}: value changed ({b:?} -> {c:?})"));
        }
    }
}

fn leaf_key(path: &str) -> &str {
    path.rsplit('.').find(|part| part.parse::<usize>().is_err()).unwrap_or(path)
}

fn compare_leaf(current: f64, baseline: f64, path: &str, report: &mut DiffReport) {
    let key = leaf_key(path);
    if key.ends_with("_queries") || key.ends_with("_rounds") || key.ends_with("_count") {
        if current > baseline {
            report.violations.push(format!(
                "{path}: count increased over the baseline ({baseline} -> {current})"
            ));
        }
    } else if key.ends_with("_speedup") {
        if current < baseline * (1.0 - WALL_TOLERANCE) {
            report.violations.push(format!(
                "{path}: speedup regressed more than {:.0}% ({baseline:.2}x -> {current:.2}x)",
                100.0 * WALL_TOLERANCE
            ));
        }
    } else if (key.ends_with("_ms") && current > baseline * (1.0 + WALL_TOLERANCE))
        || (key.ends_with("_per_s") && current < baseline * (1.0 - WALL_TOLERANCE))
    {
        report.warnings.push(format!(
            "{path}: wall-clock drifted more than {:.0}% ({baseline:.3} -> {current:.3}) — \
             informational (absolute timings are machine-specific)",
            100.0 * WALL_TOLERANCE
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(queries: f64, speedup: f64, ms: f64) -> Json {
        Json::obj([
            ("schema", Json::str("humo-bench-test/v1")),
            (
                "inner",
                Json::obj([
                    ("plan_queries", Json::num(queries)),
                    ("samp_speedup", Json::num(speedup)),
                    ("replay_ms", Json::num(ms)),
                ]),
            ),
        ])
    }

    #[test]
    fn identical_documents_pass() {
        let base = doc(100.0, 4.0, 50.0);
        let report = diff_against_baseline(&base.clone(), &base);
        assert!(report.passed(), "{:?}", report.violations);
        assert!(report.warnings.is_empty());
    }

    #[test]
    fn count_increase_and_speedup_regression_fail() {
        let base = doc(100.0, 4.0, 50.0);
        let worse = doc(101.0, 2.9, 50.0);
        let report = diff_against_baseline(&worse, &base);
        assert_eq!(report.violations.len(), 2, "{:?}", report.violations);
        // Improvements pass.
        let better = doc(90.0, 8.0, 40.0);
        assert!(diff_against_baseline(&better, &base).passed());
    }

    #[test]
    fn wall_clock_drift_warns_but_does_not_fail() {
        let base = doc(100.0, 4.0, 50.0);
        let slower = doc(100.0, 4.0, 80.0);
        let report = diff_against_baseline(&slower, &base);
        assert!(report.passed());
        assert_eq!(report.warnings.len(), 1);
    }

    #[test]
    fn structural_mismatches_fail() {
        let base = doc(100.0, 4.0, 50.0);
        let missing = Json::obj([("schema", Json::str("humo-bench-test/v1"))]);
        assert!(!diff_against_baseline(&missing, &base).passed());
        let retagged = Json::obj([
            ("schema", Json::str("other/v2")),
            (
                "inner",
                Json::obj([
                    ("plan_queries", Json::num(100.0)),
                    ("samp_speedup", Json::num(4.0)),
                    ("replay_ms", Json::num(50.0)),
                ]),
            ),
        ]);
        assert!(!diff_against_baseline(&retagged, &base).passed());
    }

    #[test]
    fn schema_check_reports_missing_numeric_fields() {
        let base = doc(100.0, 4.0, 50.0);
        assert!(check_schema(&base, &["inner.plan_queries", "inner.samp_speedup"]).is_empty());
        assert_eq!(check_schema(&base, &["inner.nope", "schema"]).len(), 2);
    }
}
