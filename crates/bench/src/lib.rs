//! Shared helpers for the HUMO experiment harness.
//!
//! Every table and figure of the paper's evaluation section has a matching binary
//! in `src/bin/` (see DESIGN.md for the index). The binaries share the workload
//! builders, optimizer runners and table formatting defined here.
//!
//! Two environment variables keep full sweeps tractable on a laptop:
//!
//! * `HUMO_SCALE` — fraction of the full DS/AB workload sizes to generate
//!   (default `0.2`; use `1.0` to reproduce the paper-scale workloads);
//! * `HUMO_RUNS` — number of repeated runs for the randomized optimizers
//!   (default `5`; the paper averages over 100).

pub mod config;
pub mod trajectory;

pub use config::BenchConfig;
/// The dependency-free JSON value type now lives in `er-obs` (it backs both
/// the trace recorder and the harness baselines); re-exported here so harness
/// binaries keep their `humo_bench::json::Json` spelling.
pub use er_obs::json;
pub use er_obs::Json;

use er_core::workload::Workload;
use er_datagen::calibrated::CalibratedConfig;
use er_datagen::synthetic::{SyntheticConfig, SyntheticGenerator};
use humo::{
    AllSamplingConfig, AllSamplingOptimizer, BaselineConfig, BaselineOptimizer, GroundTruthOracle,
    HybridConfig, HybridOptimizer, OptimizationOutcome, Optimizer, Oracle, PartialSamplingConfig,
    PartialSamplingOptimizer, QualityRequirement, TailCalibration,
};

/// Fraction of the full DS/AB sizes used by the harness (env `HUMO_SCALE`, default 0.2).
pub fn scale() -> f64 {
    std::env::var("HUMO_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(0.2)
}

/// Number of repeated runs for randomized optimizers (env `HUMO_RUNS`, default 5).
pub fn runs() -> usize {
    std::env::var("HUMO_RUNS").ok().and_then(|v| v.parse().ok()).unwrap_or(5)
}

/// The DS-like workload at the harness scale.
pub fn ds_workload(seed: u64) -> Workload {
    CalibratedConfig::ds(seed).scaled(scale()).generate()
}

/// The AB-like workload at the harness scale.
pub fn ab_workload(seed: u64) -> Workload {
    CalibratedConfig::ab(seed).scaled(scale()).generate()
}

/// A synthetic logistic workload (paper Section VIII-A).
pub fn synthetic_workload(num_pairs: usize, tau: f64, sigma: f64, seed: u64) -> Workload {
    SyntheticGenerator::new(SyntheticConfig { num_pairs, tau, sigma, subset_size: 200, seed })
        .generate()
}

/// Runs the BASE optimizer once.
pub fn run_base(
    workload: &Workload,
    requirement: QualityRequirement,
    _seed: u64,
) -> OptimizationOutcome {
    let optimizer = BaselineOptimizer::new(BaselineConfig::new(requirement)).expect("valid config");
    let mut oracle = GroundTruthOracle::new();
    optimizer.optimize(workload, &mut oracle).expect("BASE optimization succeeds")
}

/// Runs the SAMP optimizer with the given seed.
pub fn run_samp(
    workload: &Workload,
    requirement: QualityRequirement,
    seed: u64,
) -> OptimizationOutcome {
    run_samp_with_tail(workload, requirement, seed, TailCalibration::default())
}

/// Runs the HYBR optimizer with the given seed.
pub fn run_hybr(
    workload: &Workload,
    requirement: QualityRequirement,
    seed: u64,
) -> OptimizationOutcome {
    run_hybr_with_tail(workload, requirement, seed, TailCalibration::default())
}

/// Runs the SAMP optimizer with an explicit tail-calibration configuration.
pub fn run_samp_with_tail(
    workload: &Workload,
    requirement: QualityRequirement,
    seed: u64,
    tail: TailCalibration,
) -> OptimizationOutcome {
    let config = PartialSamplingConfig {
        tail_calibration: tail,
        ..PartialSamplingConfig::new(requirement).with_seed(seed)
    };
    let optimizer = PartialSamplingOptimizer::new(config).expect("valid config");
    let mut oracle = GroundTruthOracle::new();
    optimizer.optimize(workload, &mut oracle).expect("SAMP optimization succeeds")
}

/// Runs the HYBR optimizer with an explicit tail-calibration configuration.
pub fn run_hybr_with_tail(
    workload: &Workload,
    requirement: QualityRequirement,
    seed: u64,
    tail: TailCalibration,
) -> OptimizationOutcome {
    let mut config = HybridConfig::new(requirement).with_seed(seed);
    config.sampling.tail_calibration = tail;
    let optimizer = HybridOptimizer::new(config).expect("valid config");
    let mut oracle = GroundTruthOracle::new();
    optimizer.optimize(workload, &mut oracle).expect("HYBR optimization succeeds")
}

/// Runs the SAMP optimizer with the given seed against an arbitrary oracle —
/// the `_with_tail` runners hardcode [`GroundTruthOracle`]; the `crowd_quality`
/// harness passes a [`humo::CrowdOracle`] here to measure delivered quality
/// under noisy, redundantly-voted crowds.
pub fn run_samp_with_oracle(
    workload: &Workload,
    requirement: QualityRequirement,
    seed: u64,
    oracle: &mut dyn Oracle,
) -> OptimizationOutcome {
    let optimizer =
        PartialSamplingOptimizer::new(PartialSamplingConfig::new(requirement).with_seed(seed))
            .expect("valid config");
    optimizer.optimize(workload, oracle).expect("SAMP optimization succeeds")
}

/// Runs the HYBR optimizer with the given seed against an arbitrary oracle
/// (see [`run_samp_with_oracle`]).
pub fn run_hybr_with_oracle(
    workload: &Workload,
    requirement: QualityRequirement,
    seed: u64,
    oracle: &mut dyn Oracle,
) -> OptimizationOutcome {
    let optimizer =
        HybridOptimizer::new(HybridConfig::new(requirement).with_seed(seed)).expect("valid config");
    optimizer.optimize(workload, oracle).expect("HYBR optimization succeeds")
}

/// The tail configuration [`run_all_sampling_with_tail`] actually applies for
/// a requested `tail`: only the `enabled`/`distance_strength` knobs pass
/// through, while the ALL-specific `shortfall_baseline`, `quiet_fraction` and
/// `calibrate_lower` defaults are preserved (they are tuned to the stratified
/// estimator's 20-draw strata — ALL never extrapolates, so the lower-side
/// saturation cap stays off in its default — and overriding them would
/// silently change what the harness compares). Exposed so harnesses can tell
/// whether two requested configurations collapse onto the same effective one
/// (e.g. to skip a redundant reference arm) without duplicating this mapping.
pub fn all_sampling_effective_tail(
    requirement: QualityRequirement,
    tail: TailCalibration,
) -> TailCalibration {
    TailCalibration {
        enabled: tail.enabled,
        distance_strength: tail.distance_strength,
        ..AllSamplingConfig::new(requirement).tail_calibration
    }
}

/// Runs the all-sampling optimizer with an explicit tail-calibration
/// configuration; the effective configuration is
/// [`all_sampling_effective_tail`] of `tail`.
pub fn run_all_sampling_with_tail(
    workload: &Workload,
    requirement: QualityRequirement,
    seed: u64,
    tail: TailCalibration,
) -> OptimizationOutcome {
    let config = AllSamplingConfig {
        tail_calibration: all_sampling_effective_tail(requirement, tail),
        seed,
        ..AllSamplingConfig::new(requirement)
    };
    let optimizer = AllSamplingOptimizer::new(config).expect("valid config");
    let mut oracle = GroundTruthOracle::new();
    optimizer.optimize(workload, &mut oracle).expect("ALL optimization succeeds")
}

/// One-sided 95% Clopper–Pearson band on an observed failure rate: returns
/// `(lower, upper)` limits on the true failure probability given `failures`
/// out of `runs`. Used to separate "statistically above the nominal rate"
/// from small-sample noise.
pub fn failure_rate_band(failures: usize, runs: usize) -> (f64, f64) {
    let n = runs.max(1) as f64;
    let k = failures.min(runs) as f64;
    let lower = er_stats::clopper_pearson_lower(n, k, 0.95).unwrap_or(0.0);
    let upper = er_stats::clopper_pearson_upper(n, k, 0.95).unwrap_or(1.0);
    (lower, upper)
}

/// Aggregate of repeated randomized runs.
#[derive(Debug, Clone, Copy)]
pub struct RunSummary {
    /// Mean achieved precision.
    pub precision: f64,
    /// Mean achieved recall.
    pub recall: f64,
    /// Mean achieved F1.
    pub f1: f64,
    /// Mean human cost as a fraction of the workload.
    pub cost_fraction: f64,
    /// Fraction of runs meeting both requirement levels.
    pub success_rate: f64,
}

/// Runs a randomized optimizer `runs()` times and summarizes.
pub fn summarize(
    workload: &Workload,
    requirement: QualityRequirement,
    mut run: impl FnMut(&Workload, QualityRequirement, u64) -> OptimizationOutcome,
) -> RunSummary {
    let n = runs().max(1);
    let mut precision = 0.0;
    let mut recall = 0.0;
    let mut f1 = 0.0;
    let mut cost = 0.0;
    let mut successes = 0usize;
    for seed in 0..n as u64 {
        let outcome = run(workload, requirement, seed);
        precision += outcome.metrics.precision();
        recall += outcome.metrics.recall();
        f1 += outcome.metrics.f1();
        cost += outcome.human_cost_fraction(workload.len());
        if requirement.is_satisfied_by(&outcome.metrics) {
            successes += 1;
        }
    }
    let n = n as f64;
    RunSummary {
        precision: precision / n,
        recall: recall / n,
        f1: f1 / n,
        cost_fraction: cost / n,
        success_rate: successes as f64 / n,
    }
}

/// Prints the standard harness header for an experiment.
pub fn header(id: &str, description: &str) {
    println!("================================================================");
    println!("{id}: {description}");
    println!(
        "scale = {} of the paper's workload sizes, runs = {} per configuration",
        scale(),
        runs()
    );
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_workloads_have_expected_shape() {
        let ds = ds_workload(1);
        let ab = ab_workload(1);
        assert!(ds.len() > 1_000);
        assert!(ab.len() > ds.len());
        assert!(ds.total_matches() > ab.total_matches());
    }

    #[test]
    fn summaries_average_over_runs() {
        let w = synthetic_workload(5_000, 14.0, 0.1, 3);
        let requirement = QualityRequirement::symmetric(0.85).unwrap();
        let summary = summarize(&w, requirement, run_samp);
        assert!(summary.precision > 0.5);
        assert!(summary.cost_fraction > 0.0 && summary.cost_fraction < 1.0);
        assert!((0.0..=1.0).contains(&summary.success_rate));
    }
}
