//! Shared configuration for the bench harness binaries.
//!
//! Every harness used to hand-roll its own `std::env::var` parsing; this
//! module unifies the knobs behind [`BenchConfig::from_env`] with typed
//! accessors, and adds the machine-readable output knobs of the perf
//! trajectory: `--json <path>` / `HUMO_BENCH_JSON` selects where the harness
//! writes its `BENCH_*.json` document, `--baseline <path>` /
//! `HUMO_BENCH_BASELINE` selects a committed baseline to diff against (see
//! [`crate::trajectory`]).

use std::path::PathBuf;

/// Typed access to a harness's environment knobs (`{PREFIX}_{NAME}` variables,
/// e.g. `HUMO_PIPE_ENTITIES`) plus the shared `--json` / `--baseline` output
/// arguments.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    prefix: String,
    args: Vec<String>,
}

impl BenchConfig {
    /// Captures the process environment and arguments for a harness whose
    /// variables share `prefix` (e.g. `"HUMO_PIPE"`, `"HUMO_CAL"`).
    pub fn from_env(prefix: &str) -> Self {
        Self { prefix: prefix.to_string(), args: std::env::args().skip(1).collect() }
    }

    /// As [`BenchConfig::from_env`], but with explicit arguments (for tests).
    pub fn with_args(prefix: &str, args: impl IntoIterator<Item = String>) -> Self {
        Self { prefix: prefix.to_string(), args: args.into_iter().collect() }
    }

    fn var(&self, name: &str) -> Option<String> {
        std::env::var(format!("{}_{name}", self.prefix)).ok()
    }

    /// A `usize` knob: `{PREFIX}_{NAME}`, falling back to `default` when unset
    /// or unparsable.
    pub fn usize(&self, name: &str, default: usize) -> usize {
        self.var(name).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// An `f64` knob.
    pub fn f64(&self, name: &str, default: f64) -> f64 {
        self.var(name).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    /// A boolean knob: set-and-not-falsy (`""`, `"0"`, `"false"`, `"off"` are
    /// false) — the union of the conventions the harnesses used individually.
    pub fn flag(&self, name: &str) -> bool {
        self.var(name)
            .map(|v| !matches!(v.trim().to_ascii_lowercase().as_str(), "" | "0" | "false" | "off"))
            .unwrap_or(false)
    }

    /// A comma-separated `f64` list knob; falls back to `default` when unset
    /// and skips unparsable entries when set.
    pub fn f64_list(&self, name: &str, default: &[f64]) -> Vec<f64> {
        match self.var(name) {
            Some(raw) => raw.split(',').filter_map(|t| t.trim().parse().ok()).collect(),
            None => default.to_vec(),
        }
    }

    fn arg_value(&self, flag: &str) -> Option<String> {
        self.args
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.args.get(i + 1))
            .cloned()
            .or_else(|| {
                let prefix = format!("{flag}=");
                self.args.iter().find_map(|a| a.strip_prefix(&prefix).map(str::to_string))
            })
    }

    /// Where to write the harness's machine-readable `BENCH_*.json` document:
    /// `--json <path>` (or `--json=<path>`), else `HUMO_BENCH_JSON`, else no
    /// JSON output.
    pub fn json_output(&self) -> Option<PathBuf> {
        self.arg_value("--json")
            .or_else(|| std::env::var("HUMO_BENCH_JSON").ok())
            .filter(|p| !p.is_empty())
            .map(PathBuf::from)
    }

    /// The committed baseline to diff the fresh document against:
    /// `--baseline <path>` (or `--baseline=<path>`), else
    /// `HUMO_BENCH_BASELINE`, else no gating.
    pub fn baseline(&self) -> Option<PathBuf> {
        self.arg_value("--baseline")
            .or_else(|| std::env::var("HUMO_BENCH_BASELINE").ok())
            .filter(|p| !p.is_empty())
            .map(PathBuf::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_accessors_fall_back_to_defaults() {
        // Use a prefix no test environment sets.
        let cfg = BenchConfig::with_args("HUMO_NOPE", []);
        assert_eq!(cfg.usize("ENTITIES", 1500), 1500);
        assert_eq!(cfg.f64("STRENGTH", 2.5), 2.5);
        assert!(!cfg.flag("ASSERT"));
        assert_eq!(cfg.f64_list("TAUS", &[6.0, 8.0]), vec![6.0, 8.0]);
    }

    #[test]
    fn json_and_baseline_arguments_parse_in_both_forms() {
        let cfg = BenchConfig::with_args(
            "HUMO_NOPE",
            ["--json".to_string(), "out.json".to_string(), "--baseline=base.json".to_string()],
        );
        assert_eq!(cfg.json_output(), Some(PathBuf::from("out.json")));
        assert_eq!(cfg.baseline(), Some(PathBuf::from("base.json")));
        let none = BenchConfig::with_args("HUMO_NOPE", ["--json".to_string(), String::new()]);
        assert_eq!(none.json_output(), None);
    }
}
