//! Environment-driven observability setup, in the same style as the bench
//! crate's `BenchConfig`: read `HUMO_OBS`-prefixed variables once, then build
//! the recorder they describe.
//!
//! | variable        | values                  | default             |
//! |-----------------|-------------------------|---------------------|
//! | `HUMO_OBS`      | `off`, `metrics`, `trace` | `off`             |
//! | `HUMO_OBS_PATH` | trace output file path  | `humo-trace.jsonl`  |
//!
//! Unset, empty, or unrecognized `HUMO_OBS` values mean `off`, so examples
//! and harnesses stay uninstrumented unless explicitly asked. A non-empty
//! unrecognized value additionally warns on stderr (naming the value and the
//! accepted set), so a typo like `HUMO_OBS=metric` is noticed instead of
//! silently running untraced.

use crate::metrics::MetricsRecorder;
use crate::trace::TraceRecorder;
use crate::ObsHandle;
use std::path::PathBuf;
use std::sync::Arc;

/// Which recorder (if any) the environment asked for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObsMode {
    /// No instrumentation: the no-op recorder.
    #[default]
    Off,
    /// In-memory aggregation via [`MetricsRecorder`].
    Metrics,
    /// JSONL trace via [`TraceRecorder`].
    Trace,
}

impl ObsMode {
    /// Parse a mode string (`off`/`metrics`/`trace`, case-insensitive).
    /// Anything else — including empty — is `None`.
    pub fn parse(value: &str) -> Option<ObsMode> {
        match value.to_ascii_lowercase().as_str() {
            "off" => Some(ObsMode::Off),
            "metrics" => Some(ObsMode::Metrics),
            "trace" => Some(ObsMode::Trace),
            _ => None,
        }
    }
}

/// Observability configuration read from the environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsConfig {
    /// The requested mode (`HUMO_OBS`).
    pub mode: ObsMode,
    /// Where `trace` mode writes its JSONL output (`HUMO_OBS_PATH`).
    pub trace_path: PathBuf,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig { mode: ObsMode::Off, trace_path: PathBuf::from("humo-trace.jsonl") }
    }
}

impl ObsConfig {
    /// Read `HUMO_OBS` / `HUMO_OBS_PATH` from the process environment.
    pub fn from_env() -> Self {
        Self::from_lookup(|name| std::env::var(name).ok())
    }

    /// Like [`ObsConfig::from_env`], but with an injectable variable lookup
    /// (used by tests; env mutation is process-global and racy). A non-empty
    /// unrecognized `HUMO_OBS` value warns on stderr and falls back to `off`.
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Self {
        let (config, warning) = Self::from_lookup_checked(lookup);
        if let Some(warning) = warning {
            eprintln!("{warning}");
        }
        config
    }

    /// Like [`ObsConfig::from_lookup`], but returns the diagnostic for an
    /// unrecognized `HUMO_OBS` value instead of printing it.
    pub fn from_lookup_checked(lookup: impl Fn(&str) -> Option<String>) -> (Self, Option<String>) {
        let mut config = ObsConfig::default();
        let mut warning = None;
        if let Some(raw) = lookup("HUMO_OBS") {
            match ObsMode::parse(&raw) {
                Some(mode) => config.mode = mode,
                // Unset and empty mean "off" silently; a non-empty junk value
                // is most likely a typo, so say what was seen and what works.
                None if raw.trim().is_empty() => {}
                None => {
                    warning = Some(format!(
                        "HUMO_OBS: unrecognized value {raw:?} \
                         (accepted: \"off\", \"metrics\", \"trace\"); observability stays off"
                    ));
                }
            }
        }
        if let Some(path) = lookup("HUMO_OBS_PATH").filter(|p| !p.is_empty()) {
            config.trace_path = PathBuf::from(path);
        }
        (config, warning)
    }

    /// Build the recorder this configuration describes. `trace` mode creates
    /// (truncates) the file at `trace_path`; that is the only fallible case.
    pub fn build(&self) -> std::io::Result<ObsSetup> {
        Ok(match self.mode {
            ObsMode::Off => ObsSetup { handle: ObsHandle::noop(), metrics: None, trace: None },
            ObsMode::Metrics => {
                let metrics = Arc::new(MetricsRecorder::new());
                ObsSetup {
                    handle: ObsHandle::new(metrics.clone()),
                    metrics: Some(metrics),
                    trace: None,
                }
            }
            ObsMode::Trace => {
                let trace = Arc::new(TraceRecorder::to_file(&self.trace_path)?);
                ObsSetup {
                    handle: ObsHandle::new(trace.clone()),
                    metrics: None,
                    trace: Some(trace),
                }
            }
        })
    }
}

/// A built recorder plus typed access to its concrete form.
#[derive(Debug)]
pub struct ObsSetup {
    /// Handle to thread into `PipelineConfig::recorder` (or anywhere else).
    pub handle: ObsHandle,
    /// The metrics recorder, when mode is `metrics`.
    pub metrics: Option<Arc<MetricsRecorder>>,
    /// The trace recorder, when mode is `trace`.
    pub trace: Option<Arc<TraceRecorder>>,
}

impl ObsSetup {
    /// Flush any buffered trace output (no-op for other modes).
    pub fn flush(&self) {
        if let Some(trace) = &self.trace {
            trace.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_modes_case_insensitively_and_rejects_junk() {
        assert_eq!(ObsMode::parse("off"), Some(ObsMode::Off));
        assert_eq!(ObsMode::parse("Metrics"), Some(ObsMode::Metrics));
        assert_eq!(ObsMode::parse("TRACE"), Some(ObsMode::Trace));
        assert_eq!(ObsMode::parse(""), None);
        assert_eq!(ObsMode::parse("on"), None);
    }

    #[test]
    fn lookup_defaults_and_overrides() {
        let config = ObsConfig::from_lookup(|_| None);
        assert_eq!(config.mode, ObsMode::Off);
        assert_eq!(config.trace_path, PathBuf::from("humo-trace.jsonl"));

        let config = ObsConfig::from_lookup(|name| match name {
            "HUMO_OBS" => Some("trace".to_string()),
            "HUMO_OBS_PATH" => Some("/tmp/t.jsonl".to_string()),
            _ => None,
        });
        assert_eq!(config.mode, ObsMode::Trace);
        assert_eq!(config.trace_path, PathBuf::from("/tmp/t.jsonl"));

        // Unrecognized modes fall back to off.
        let config =
            ObsConfig::from_lookup(|name| (name == "HUMO_OBS").then(|| "verbose".to_string()));
        assert_eq!(config.mode, ObsMode::Off);
    }

    #[test]
    fn unrecognized_modes_warn_with_the_value_and_the_accepted_set() {
        let (config, warning) =
            ObsConfig::from_lookup_checked(|name| (name == "HUMO_OBS").then(|| "metric".into()));
        assert_eq!(config.mode, ObsMode::Off);
        let warning = warning.expect("junk value must produce a diagnostic");
        assert!(warning.contains("\"metric\""), "warning must name the bad value: {warning}");
        for accepted in ["off", "metrics", "trace"] {
            assert!(warning.contains(accepted), "warning must list {accepted:?}: {warning}");
        }

        // Unset and empty stay silent: off-by-default is not a typo.
        let (_, warning) = ObsConfig::from_lookup_checked(|_| None);
        assert!(warning.is_none());
        let (_, warning) =
            ObsConfig::from_lookup_checked(|name| (name == "HUMO_OBS").then(String::new));
        assert!(warning.is_none());
    }

    #[test]
    fn builds_the_matching_recorder() {
        let setup = ObsConfig::default().build().unwrap();
        assert!(!setup.handle.is_enabled());
        assert!(setup.metrics.is_none() && setup.trace.is_none());

        let setup = ObsConfig { mode: ObsMode::Metrics, ..ObsConfig::default() }.build().unwrap();
        assert!(setup.handle.is_enabled());
        setup.handle.counter("x", 2);
        assert_eq!(setup.metrics.unwrap().snapshot().counter("x"), 2);
    }
}
