//! `er-obs` — a zero-dependency tracing and metrics layer for the
//! resolution pipeline.
//!
//! The crate is hand-rolled for an offline build environment (no `tracing`,
//! no `metrics`): a small [`Recorder`] trait carries four event kinds —
//! spans, counters, gauges, and fixed-bucket histograms — behind a cheap
//! cloneable [`ObsHandle`]. The default handle is a no-op recorder whose
//! every method is empty and reports [`Recorder::is_enabled`] `false`, so
//! instrumented code can guard any work needed to *produce* a measurement
//! and the disabled path costs a single virtual call per batch-level event.
//!
//! Two concrete recorders ship with the crate:
//!
//! - [`MetricsRecorder`] aggregates everything into an in-memory
//!   [`MetricsSnapshot`] (sorted maps of counters, gauges, histograms, and
//!   span timings) that harnesses and reports query after a run.
//! - [`TraceRecorder`] streams one compact JSON object per event to any
//!   writer (JSONL), with a documented, stable schema that
//!   [`schema::validate_trace`] checks mechanically.
//!
//! The [`json`] module is the dependency-free JSON value type the `bench`
//! crate previously owned; it moved here so trace emission and trace
//! validation share one implementation.
//!
//! Event names form a fixed, documented schema (README "Observability"
//! section), one dotted family per subsystem: `ingest.*`, `blocking.*`,
//! `spill.*`, `session.*`, `gp.*` — and, since the crowd-labeling subsystem,
//! `crowd.*` (votes, disagreements, escalations, aggregated labels, EM
//! runs/iterations as counters; `crowd.reliability_abs_error` as a gauge
//! reporting estimated-vs-true worker error after each EM pass).
//!
//! # Quick start
//!
//! ```
//! use er_obs::{MetricsRecorder, ObsHandle};
//! use std::sync::Arc;
//!
//! let metrics = Arc::new(MetricsRecorder::new());
//! let obs = ObsHandle::new(metrics.clone());
//!
//! {
//!     let _span = obs.span("pipeline.ingest");
//!     obs.counter("ingest.retained_pairs", 128);
//!     obs.observe("blocking.shard_delta_pairs", 16.0);
//! }
//!
//! let snap = metrics.snapshot();
//! assert_eq!(snap.counter("ingest.retained_pairs"), 128);
//! assert_eq!(snap.span("pipeline.ingest").unwrap().count, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod json;
pub mod metrics;
pub mod schema;
pub mod trace;

pub use config::{ObsConfig, ObsMode, ObsSetup};
pub use json::Json;
pub use metrics::{Histogram, MetricsRecorder, MetricsSnapshot, SpanStats};
pub use schema::{validate_trace, TraceReport};
pub use trace::TraceRecorder;

use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sink for instrumentation events.
///
/// Implementations must be thread-safe: the pipeline emits events from the
/// engine/session thread, but a single recorder may be shared by several
/// engines. All event names are `&'static str` by design — the set of
/// emitted names is a fixed, documented schema (see the README
/// "Observability" section), not a dynamic namespace.
///
/// Event kinds:
///
/// - **Counters** ([`Recorder::counter`]) are monotone sums of `u64` deltas.
/// - **Gauges** ([`Recorder::gauge`]) are last-write-wins point samples.
/// - **Histograms** ([`Recorder::observe`]) record value distributions in
///   fixed geometric buckets (see [`Histogram`]).
/// - **Spans** ([`Recorder::span_start`] / [`Recorder::span_end`]) bracket a
///   named region; the guard returned by [`ObsHandle::span`] emits the pair
///   and measures the elapsed wall time in between.
///
/// The no-op default never records anything and returns `false` from
/// [`Recorder::is_enabled`]; instrumented code uses that flag to skip any
/// non-trivial work needed only to produce a measurement (e.g. computing
/// chunk-size distributions).
pub trait Recorder: std::fmt::Debug + Send + Sync {
    /// Whether this recorder actually records events. Instrumentation sites
    /// use this to skip measurement-only work when observability is off.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Add `delta` to the named monotone counter.
    fn counter(&self, name: &'static str, delta: u64);

    /// Set the named gauge to `value` (last write wins).
    fn gauge(&self, name: &'static str, value: f64);

    /// Record `value` into the named histogram.
    fn observe(&self, name: &'static str, value: f64);

    /// Mark entry into the named span.
    fn span_start(&self, name: &'static str);

    /// Mark exit from the named span after `elapsed` wall time.
    fn span_end(&self, name: &'static str, elapsed: Duration);
}

/// Recorder that drops every event; the default for [`ObsHandle`].
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn is_enabled(&self) -> bool {
        false
    }
    fn counter(&self, _name: &'static str, _delta: u64) {}
    fn gauge(&self, _name: &'static str, _value: f64) {}
    fn observe(&self, _name: &'static str, _value: f64) {}
    fn span_start(&self, _name: &'static str) {}
    fn span_end(&self, _name: &'static str, _elapsed: Duration) {}
}

/// Cheap, cloneable handle to a shared [`Recorder`].
///
/// `ObsHandle::default()` wraps [`NoopRecorder`]; cloning is an `Arc` bump.
/// The handle forwards each event kind and offers [`ObsHandle::span`] as an
/// RAII guard that times a region and emits the start/end pair.
#[derive(Clone, Debug)]
pub struct ObsHandle(Arc<dyn Recorder>);

impl Default for ObsHandle {
    fn default() -> Self {
        ObsHandle(Arc::new(NoopRecorder))
    }
}

impl ObsHandle {
    /// Wrap a recorder in a handle.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        ObsHandle(recorder)
    }

    /// The no-op handle (same as `ObsHandle::default()`).
    pub fn noop() -> Self {
        Self::default()
    }

    /// Whether the underlying recorder records anything.
    pub fn is_enabled(&self) -> bool {
        self.0.is_enabled()
    }

    /// Add `delta` to the named counter.
    pub fn counter(&self, name: &'static str, delta: u64) {
        self.0.counter(name, delta);
    }

    /// Set the named gauge.
    pub fn gauge(&self, name: &'static str, value: f64) {
        self.0.gauge(name, value);
    }

    /// Record `value` into the named histogram.
    pub fn observe(&self, name: &'static str, value: f64) {
        self.0.observe(name, value);
    }

    /// Enter the named span, returning a guard that ends it (and reports the
    /// elapsed wall time) when dropped. With the no-op recorder the guard is
    /// inert: no clock is read and no events are emitted.
    pub fn span(&self, name: &'static str) -> Span<'_> {
        let start = if self.0.is_enabled() {
            self.0.span_start(name);
            Some(Instant::now())
        } else {
            None
        };
        Span { handle: self, name, start }
    }
}

/// RAII guard for a span opened with [`ObsHandle::span`].
///
/// Dropping the guard emits `span_end` with the elapsed wall time. Guards
/// must be dropped in LIFO order relative to other spans on the same thread
/// for traces to nest correctly; lexical scoping gives this for free.
#[derive(Debug)]
pub struct Span<'a> {
    handle: &'a ObsHandle,
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.handle.0.span_end(self.name, start.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_handle_is_disabled_and_inert() {
        let obs = ObsHandle::default();
        assert!(!obs.is_enabled());
        // None of these should panic or allocate recorder state.
        obs.counter("x", 1);
        obs.gauge("y", 2.0);
        obs.observe("z", 3.0);
        let span = obs.span("w");
        assert!(span.start.is_none());
        drop(span);
    }

    #[test]
    fn span_guard_times_enabled_regions() {
        let metrics = Arc::new(MetricsRecorder::new());
        let obs = ObsHandle::new(metrics.clone());
        assert!(obs.is_enabled());
        {
            let _outer = obs.span("outer");
            let _inner = obs.span("inner");
        }
        let snap = metrics.snapshot();
        assert_eq!(snap.span("outer").unwrap().count, 1);
        assert_eq!(snap.span("inner").unwrap().count, 1);
        assert!(snap.span("outer").unwrap().total_secs >= 0.0);
    }
}
