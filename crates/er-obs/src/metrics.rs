//! In-memory metrics aggregation: [`MetricsRecorder`] collects events into a
//! queryable [`MetricsSnapshot`].

use crate::Recorder;
use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// Number of finite histogram buckets; one overflow bucket follows.
const BUCKETS: usize = 16;

/// Upper edges of the finite histogram buckets: powers of four
/// `4^0, 4^1, …, 4^15` (1 … ~1.07e9). Bucket `i` counts values
/// `v <= EDGES[i]` (and greater than the previous edge); anything larger
/// lands in the overflow bucket. Powers of four span nine decades in 16
/// buckets — wide enough for both microsecond timings and pair counts.
pub const BUCKET_EDGES: [f64; BUCKETS] = [
    1.0,
    4.0,
    16.0,
    64.0,
    256.0,
    1024.0,
    4096.0,
    16384.0,
    65536.0,
    262144.0,
    1048576.0,
    4194304.0,
    16777216.0,
    67108864.0,
    268435456.0,
    1073741824.0,
];

/// A fixed-bucket histogram with geometric (power-of-four) bucket edges.
///
/// Buckets are shared by every histogram (see [`BUCKET_EDGES`]) so snapshots
/// merge without rebinning. Alongside the bucket counts the histogram tracks
/// the exact count, sum, minimum, and maximum of observed values.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Per-bucket counts; the last index is the overflow bucket.
    pub counts: [u64; BUCKETS + 1],
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value (`f64::INFINITY` when empty).
    pub min: f64,
    /// Largest observed value (`f64::NEG_INFINITY` when empty).
    pub max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// The bucket index `value` falls into: the first bucket whose upper
    /// edge is `>= value`, or the overflow bucket past the last edge.
    pub fn bucket_index(value: f64) -> usize {
        BUCKET_EDGES.partition_point(|edge| *edge < value)
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// The arithmetic mean of observed values, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Fold another histogram into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Accumulated timing for one span name.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SpanStats {
    /// Number of completed `span_start`/`span_end` pairs.
    pub count: u64,
    /// Total wall time spent inside the span, in seconds.
    pub total_secs: f64,
}

/// A point-in-time copy of everything a [`MetricsRecorder`] has aggregated.
///
/// All maps are sorted (`BTreeMap`) so iteration order is deterministic —
/// harness output built from a snapshot diffs cleanly across runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Monotone counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-written gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Span timing totals by name.
    pub spans: BTreeMap<String, SpanStats>,
}

impl MetricsSnapshot {
    /// The counter total for `name` (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The gauge value for `name`, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The histogram for `name`, if anything was observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// The span stats for `name`, if the span ever completed.
    pub fn span(&self, name: &str) -> Option<&SpanStats> {
        self.spans.get(name)
    }

    /// Fold another snapshot into this one: counters, histogram buckets, and
    /// span totals add; gauges take the other snapshot's value (last write
    /// wins, matching live gauge semantics).
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (name, delta) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += delta;
        }
        for (name, value) in &other.gauges {
            self.gauges.insert(name.clone(), *value);
        }
        for (name, histogram) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(histogram);
        }
        for (name, stats) in &other.spans {
            let entry = self.spans.entry(name.clone()).or_default();
            entry.count += stats.count;
            entry.total_secs += stats.total_secs;
        }
    }
}

/// [`Recorder`] that aggregates events into an in-memory
/// [`MetricsSnapshot`] behind a mutex.
///
/// Events are batch-granular throughout the pipeline (per ingest, per
/// segment, per label round — never per pair), so a mutex per event is cheap
/// relative to the work each event summarizes.
#[derive(Debug, Default)]
pub struct MetricsRecorder {
    inner: Mutex<MetricsSnapshot>,
}

impl MetricsRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy out the current aggregate state.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.lock().expect("metrics lock").clone()
    }

    /// Reset all aggregate state to empty.
    pub fn reset(&self) {
        *self.inner.lock().expect("metrics lock") = MetricsSnapshot::default();
    }
}

impl Recorder for MetricsRecorder {
    fn counter(&self, name: &'static str, delta: u64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    fn gauge(&self, name: &'static str, value: f64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        inner.gauges.insert(name.to_string(), value);
    }

    fn observe(&self, name: &'static str, value: f64) {
        let mut inner = self.inner.lock().expect("metrics lock");
        inner.histograms.entry(name.to_string()).or_default().observe(value);
    }

    fn span_start(&self, _name: &'static str) {
        // Durations arrive fully formed via span_end; nothing to do here.
    }

    fn span_end(&self, name: &'static str, elapsed: Duration) {
        let mut inner = self.inner.lock().expect("metrics lock");
        let entry = inner.spans.entry(name.to_string()).or_default();
        entry.count += 1;
        entry.total_secs += elapsed.as_secs_f64();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_respects_edges_exactly() {
        // At or below the first edge.
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(1.0), 0);
        // Just past an edge moves to the next bucket; exactly on an edge
        // stays in it.
        assert_eq!(Histogram::bucket_index(1.0001), 1);
        assert_eq!(Histogram::bucket_index(4.0), 1);
        assert_eq!(Histogram::bucket_index(5.0), 2);
        assert_eq!(Histogram::bucket_index(16.0), 2);
        assert_eq!(Histogram::bucket_index(1024.0), 5);
        // The last finite edge and the overflow bucket.
        assert_eq!(Histogram::bucket_index(1073741824.0), BUCKETS - 1);
        assert_eq!(Histogram::bucket_index(1073741825.0), BUCKETS);
        assert_eq!(Histogram::bucket_index(f64::MAX), BUCKETS);
    }

    #[test]
    fn histogram_tracks_count_sum_min_max() {
        let mut h = Histogram::default();
        for v in [2.0, 100.0, 3.0] {
            h.observe(v);
        }
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 105.0);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 100.0);
        assert_eq!(h.mean(), 35.0);
        assert_eq!(h.counts.iter().sum::<u64>(), 3);
    }

    #[test]
    fn snapshot_merge_adds_counts_and_keeps_last_gauge() {
        let a = MetricsRecorder::new();
        a.counter("c", 2);
        a.gauge("g", 1.0);
        a.observe("h", 5.0);
        a.span_end("s", Duration::from_millis(10));

        let b = MetricsRecorder::new();
        b.counter("c", 3);
        b.counter("only_b", 7);
        b.gauge("g", 9.0);
        b.observe("h", 500.0);
        b.span_end("s", Duration::from_millis(30));

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());

        assert_eq!(merged.counter("c"), 5);
        assert_eq!(merged.counter("only_b"), 7);
        assert_eq!(merged.gauge("g"), Some(9.0));
        let h = merged.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 5.0);
        assert_eq!(h.max, 500.0);
        let s = merged.span("s").unwrap();
        assert_eq!(s.count, 2);
        assert!((s.total_secs - 0.04).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_all_state() {
        let r = MetricsRecorder::new();
        r.counter("c", 1);
        r.reset();
        assert_eq!(r.snapshot(), MetricsSnapshot::default());
    }
}
