//! Mechanical validation of JSONL traces against the stable event schema
//! documented in [`crate::trace`].

use crate::json::Json;
use std::collections::{BTreeMap, BTreeSet};

/// Result of validating a JSONL trace.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Number of well-formed event lines seen.
    pub events: usize,
    /// Human-readable descriptions of every schema violation found.
    pub violations: Vec<String>,
    /// Every distinct event name that appeared in the trace.
    pub names: BTreeSet<String>,
}

impl TraceReport {
    /// Whether the trace is schema-valid (no violations).
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }

    /// Whether any event name starts with `prefix` — used to assert that a
    /// trace covers a pipeline stage (`"spill."`, `"session."`, …).
    pub fn covers(&self, prefix: &str) -> bool {
        self.names.iter().any(|name| name.starts_with(prefix))
    }
}

const KINDS: [&str; 5] = ["span_start", "span_end", "counter", "gauge", "observe"];

fn f64_field(event: &Json, key: &str) -> Option<f64> {
    event.get(key).and_then(Json::as_f64)
}

/// Validate `text` (one JSON event object per line) against the trace
/// schema: required keys per kind, monotone `ts_us`, strictly nested (LIFO)
/// spans with matching names and depths, non-decreasing counter totals with
/// `total = previous total + delta`, and no span left open at end of trace.
///
/// Blank lines are ignored. Violations carry 1-based line numbers.
pub fn validate_trace(text: &str) -> TraceReport {
    let mut report = TraceReport::default();
    let mut last_ts = f64::NEG_INFINITY;
    let mut span_stack: Vec<String> = Vec::new();
    let mut counter_totals: BTreeMap<String, f64> = BTreeMap::new();

    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let event = match Json::parse(line) {
            Ok(event @ Json::Obj(_)) => event,
            Ok(_) => {
                report.violations.push(format!("line {lineno}: event is not a JSON object"));
                continue;
            }
            Err(err) => {
                report.violations.push(format!("line {lineno}: invalid JSON ({err})"));
                continue;
            }
        };
        report.events += 1;

        let Some(ts) = f64_field(&event, "ts_us") else {
            report.violations.push(format!("line {lineno}: missing numeric `ts_us`"));
            continue;
        };
        if ts < last_ts {
            report
                .violations
                .push(format!("line {lineno}: `ts_us` {ts} goes backwards (previous {last_ts})"));
        }
        last_ts = last_ts.max(ts);

        let Some(name) = event.get("name").and_then(Json::as_str).map(str::to_string) else {
            report.violations.push(format!("line {lineno}: missing string `name`"));
            continue;
        };
        report.names.insert(name.clone());

        let Some(kind) = event.get("kind").and_then(Json::as_str) else {
            report.violations.push(format!("line {lineno}: missing string `kind`"));
            continue;
        };
        if !KINDS.contains(&kind) {
            report.violations.push(format!("line {lineno}: unknown kind `{kind}`"));
            continue;
        }

        match kind {
            "span_start" => {
                match f64_field(&event, "depth") {
                    Some(depth) if depth == span_stack.len() as f64 => {}
                    Some(depth) => report.violations.push(format!(
                        "line {lineno}: span `{name}` depth {depth} but {} spans are open",
                        span_stack.len()
                    )),
                    None => report
                        .violations
                        .push(format!("line {lineno}: span_start missing numeric `depth`")),
                }
                span_stack.push(name);
            }
            "span_end" => {
                if f64_field(&event, "elapsed_us").is_none() {
                    report
                        .violations
                        .push(format!("line {lineno}: span_end missing numeric `elapsed_us`"));
                }
                match span_stack.pop() {
                    Some(open) if open == name => {}
                    Some(open) => report.violations.push(format!(
                        "line {lineno}: span_end `{name}` does not match open span `{open}`"
                    )),
                    None => report
                        .violations
                        .push(format!("line {lineno}: span_end `{name}` with no span open")),
                }
            }
            "counter" => {
                let delta = f64_field(&event, "delta");
                let total = f64_field(&event, "total");
                match (delta, total) {
                    (Some(delta), Some(total)) => {
                        let previous = counter_totals.get(&name).copied().unwrap_or(0.0);
                        if total < previous {
                            report.violations.push(format!(
                                "line {lineno}: counter `{name}` total {total} below previous {previous}"
                            ));
                        } else if (previous + delta - total).abs() > 0.5 {
                            report.violations.push(format!(
                                "line {lineno}: counter `{name}` total {total} != previous {previous} + delta {delta}"
                            ));
                        }
                        counter_totals.insert(name, total.max(previous));
                    }
                    _ => report
                        .violations
                        .push(format!("line {lineno}: counter missing numeric `delta`/`total`")),
                }
            }
            // gauge | observe
            _ => {
                if f64_field(&event, "value").is_none() {
                    report
                        .violations
                        .push(format!("line {lineno}: {kind} missing numeric `value`"));
                }
            }
        }
    }

    for open in &span_stack {
        report.violations.push(format!("span `{open}` still open at end of trace"));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceRecorder;
    use crate::{ObsHandle, Recorder};
    use std::io::Write;
    use std::sync::{Arc, Mutex};

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn accepts_a_recorder_produced_trace() {
        let buf = SharedBuf::default();
        let obs = ObsHandle::new(Arc::new(TraceRecorder::new(Box::new(buf.clone()))));
        {
            let _outer = obs.span("pipeline.ingest");
            {
                let _inner = obs.span("ingest.score");
                obs.observe("blocking.shard_delta_pairs", 12.0);
            }
            obs.counter("session.rounds", 1);
            obs.counter("session.rounds", 2);
            obs.gauge("spill.workload.resident_pairs", 40.0);
        }
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let report = validate_trace(&text);
        assert!(report.is_valid(), "violations: {:?}", report.violations);
        assert_eq!(report.events, 8);
        assert!(report.covers("session."));
        assert!(report.covers("spill."));
        assert!(!report.covers("gp."));
    }

    #[test]
    fn rejects_mismatched_spans_and_backwards_counters() {
        let bad = concat!(
            "{\"ts_us\":1,\"kind\":\"span_start\",\"name\":\"a\",\"depth\":0}\n",
            "{\"ts_us\":2,\"kind\":\"span_end\",\"name\":\"b\",\"elapsed_us\":1}\n",
            "{\"ts_us\":3,\"kind\":\"counter\",\"name\":\"c\",\"delta\":1,\"total\":5}\n",
            "{\"ts_us\":2,\"kind\":\"counter\",\"name\":\"c\",\"delta\":1,\"total\":4}\n",
        );
        let report = validate_trace(bad);
        assert!(!report.is_valid());
        // span name mismatch, counter total mismatch at line 3 (0+1 != 5),
        // backwards total at line 4, backwards ts at line 4.
        assert!(report.violations.iter().any(|v| v.contains("does not match")));
        assert!(report.violations.iter().any(|v| v.contains("goes backwards")));
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("total") && v.contains("below previous")));
    }

    #[test]
    fn rejects_unterminated_spans_and_unknown_kinds() {
        let bad = concat!(
            "{\"ts_us\":1,\"kind\":\"span_start\",\"name\":\"a\",\"depth\":0}\n",
            "{\"ts_us\":2,\"kind\":\"mystery\",\"name\":\"x\"}\n",
            "not json\n",
        );
        let report = validate_trace(bad);
        assert!(report.violations.iter().any(|v| v.contains("unknown kind")));
        assert!(report.violations.iter().any(|v| v.contains("still open")));
        assert!(report.violations.iter().any(|v| v.contains("invalid JSON")));
    }

    #[test]
    fn noop_methods_on_trace_recorder_keep_depth_consistent() {
        // span_end without start must not underflow the depth tracking.
        let buf = SharedBuf::default();
        let recorder = TraceRecorder::new(Box::new(buf.clone()));
        recorder.span_end("stray", std::time::Duration::ZERO);
        recorder.span_start("a");
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        // The stray end is itself a violation, but depth on `a` is still 0.
        let lines: Vec<&str> = text.lines().collect();
        let start = Json::parse(lines[1]).unwrap();
        assert_eq!(start.get("depth").and_then(Json::as_f64), Some(0.0));
    }
}
