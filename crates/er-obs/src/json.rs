//! A minimal, dependency-free JSON value shared by the observability layer
//! and the bench harnesses.
//!
//! The workspace deliberately carries no serde; this layer needs to *write*
//! small, stable, human-diffable documents (committed `BENCH_*.json`
//! trajectories, JSONL traces) and *read* them back (the regression gate,
//! the trace schema validator), so a ~200-line hand-rolled value type beats
//! a dependency. Numbers are `f64` (every value the harnesses record fits
//! exactly), objects preserve insertion order so committed files diff
//! cleanly and trace lines keep a stable key order.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (integers up to 2^53 round-trip exactly).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Shorthand for a numeric value.
    pub fn num(value: f64) -> Json {
        Json::Num(value)
    }

    /// Shorthand for a string value.
    pub fn str(value: impl Into<String>) -> Json {
        Json::Str(value.into())
    }

    /// Looks up a dotted path (`"session_replay.samp_speedup"`); array
    /// elements are addressed by decimal index (`"cells.3.failure_count"`).
    pub fn get(&self, path: &str) -> Option<&Json> {
        let mut node = self;
        for part in path.split('.') {
            node = match node {
                Json::Obj(fields) => &fields.iter().find(|(key, _)| key == part)?.1,
                Json::Arr(items) => items.get(part.parse::<usize>().ok()?)?,
                _ => return None,
            };
        }
        Some(node)
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Pretty-renders with two-space indentation and a trailing newline —
    /// the committed-file format.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders on a single line with no extra whitespace — the JSONL trace
    /// format (one event object per line, no trailing newline).
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.render_compact(&mut out);
        out
    }

    fn render(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_number(out, *n),
            Json::Str(s) => render_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.render(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    render_string(out, key);
                    out.push_str(": ");
                    value.render(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }

    fn render_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => render_number(out, *n),
            Json::Str(s) => render_string(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(out, key);
                    out.push(':');
                    value.render_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Errors carry a byte offset and a short reason.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn render_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; clamp to null so the file stays parseable.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{:?}` is Rust's shortest round-trip float formatting.
        let _ = write!(out, "{n:?}");
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(format!("expected `{token}` at byte {pos}"))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos).map(Json::Num),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(format!("expected `\"` at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape".to_string())?,
                            16,
                        )
                        .map_err(|_| "bad \\u escape".to_string())?;
                        // Surrogate pairs are not needed for the bench files.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input came from &str, so the
                // boundaries are valid).
                let s = &bytes[*pos..];
                let text = std::str::from_utf8(s).map_err(|_| "invalid UTF-8".to_string())?;
                let c = text.chars().next().ok_or_else(|| "unterminated string".to_string())?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_document() {
        let doc = Json::obj([
            ("schema", Json::str("humo-bench/v1")),
            ("count", Json::num(42.0)),
            ("rate", Json::num(1234.5678)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            ("cells", Json::Arr(vec![Json::num(1.0), Json::num(2.5)])),
            ("nested", Json::obj([("deep", Json::str("va\"lue\n"))])),
        ]);
        let text = doc.to_pretty_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
    }

    #[test]
    fn dotted_path_lookup_reaches_nested_and_indexed_values() {
        let doc = Json::obj([
            ("a", Json::obj([("b", Json::num(7.0))])),
            ("arr", Json::Arr(vec![Json::num(0.0), Json::obj([("x", Json::num(9.0))])])),
        ]);
        assert_eq!(doc.get("a.b").and_then(Json::as_f64), Some(7.0));
        assert_eq!(doc.get("arr.1.x").and_then(Json::as_f64), Some(9.0));
        assert!(doc.get("a.missing").is_none());
        assert!(doc.get("arr.5").is_none());
    }

    #[test]
    fn integers_render_without_a_fraction() {
        assert_eq!(Json::num(800.0).to_pretty_string(), "800\n");
        assert_eq!(Json::num(2.25).to_pretty_string(), "2.25\n");
        assert_eq!(Json::parse("800").unwrap(), Json::num(800.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn compact_rendering_is_single_line_and_round_trips() {
        let doc = Json::obj([
            ("kind", Json::str("counter")),
            ("name", Json::str("spill.segcache.hits")),
            ("delta", Json::num(3.0)),
            ("nested", Json::Arr(vec![Json::Null, Json::Bool(false)])),
        ]);
        let line = doc.to_compact_string();
        assert!(!line.contains('\n'));
        assert!(!line.contains(' '));
        assert_eq!(Json::parse(&line).unwrap(), doc);
        assert_eq!(Json::Obj(Vec::new()).to_compact_string(), "{}");
    }
}
