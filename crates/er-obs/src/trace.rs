//! JSONL trace recorder: one compact JSON object per event, appended to any
//! writer.
//!
//! # Event schema (stable)
//!
//! Every line is a JSON object with three common keys:
//!
//! | key     | type   | meaning                                            |
//! |---------|--------|----------------------------------------------------|
//! | `ts_us` | number | microseconds since the recorder was created (monotone) |
//! | `kind`  | string | `span_start`, `span_end`, `counter`, `gauge`, `observe` |
//! | `name`  | string | the event name from the instrumentation site       |
//!
//! plus kind-specific keys:
//!
//! | kind         | extra keys                                                |
//! |--------------|-----------------------------------------------------------|
//! | `span_start` | `depth` — nesting depth at entry (0 = top level)          |
//! | `span_end`   | `elapsed_us` — wall time inside the span, microseconds    |
//! | `counter`    | `delta` — this increment; `total` — running sum for `name`|
//! | `gauge`      | `value` — the new gauge value                             |
//! | `observe`    | `value` — the observed sample                             |
//!
//! Spans nest strictly (LIFO) per recorder: the pipeline emits all span
//! events from the engine/session thread, so `span_end` always matches the
//! most recent unclosed `span_start`. [`crate::schema::validate_trace`]
//! checks these invariants mechanically.

use crate::json::Json;
use crate::Recorder;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant};

struct TraceInner {
    out: Box<dyn Write + Send>,
    /// A second handle to the traced file (when there is one), kept so flush
    /// can `fsync` after draining the `BufWriter`: a trace consulted after a
    /// crash should end at the last flushed event, not at the page cache's
    /// mercy.
    sync: Option<std::fs::File>,
    depth: usize,
    totals: BTreeMap<&'static str, u64>,
}

impl TraceInner {
    fn flush(&mut self) {
        let _ = self.out.flush();
        if let Some(file) = &self.sync {
            let _ = file.sync_data();
        }
    }
}

/// [`Recorder`] that streams every event as one compact JSON line.
///
/// Writes go through a mutex (events are batch-granular, so contention is
/// negligible); I/O errors are swallowed so tracing can never fail the
/// pipeline. Call [`TraceRecorder::flush`] (or drop the recorder) to push
/// buffered lines to the underlying writer; for file-backed recorders both
/// paths also `fsync`, so the trace on disk is complete up to the last flush
/// even if the machine dies right after.
pub struct TraceRecorder {
    start: Instant,
    inner: Mutex<TraceInner>,
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRecorder").finish_non_exhaustive()
    }
}

impl TraceRecorder {
    /// Trace into an arbitrary writer (a `Vec<u8>`, a buffered file, …).
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        TraceRecorder {
            start: Instant::now(),
            inner: Mutex::new(TraceInner { out, sync: None, depth: 0, totals: BTreeMap::new() }),
        }
    }

    /// Trace into a freshly created (truncated) file, buffered. Flushes (and
    /// the final drop) sync the file to disk.
    pub fn to_file(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        let sync = file.try_clone().ok();
        let recorder = Self::new(Box::new(std::io::BufWriter::new(file)));
        recorder.inner.lock().expect("trace lock").sync = sync;
        Ok(recorder)
    }

    /// Flush buffered trace lines to the underlying writer; file-backed
    /// recorders additionally `fsync` so the lines survive a crash.
    pub fn flush(&self) {
        self.inner.lock().expect("trace lock").flush();
    }

    fn emit(&self, kind: &'static str, name: &'static str, extra: &[(&'static str, Json)]) {
        let ts = self.start.elapsed().as_micros() as f64;
        let mut fields = vec![
            ("ts_us".to_string(), Json::num(ts)),
            ("kind".to_string(), Json::str(kind)),
            ("name".to_string(), Json::str(name)),
        ];
        for (key, value) in extra {
            fields.push((key.to_string(), value.clone()));
        }
        let line = Json::Obj(fields).to_compact_string();
        let mut inner = self.inner.lock().expect("trace lock");
        let _ = writeln!(inner.out, "{line}");
    }
}

impl Drop for TraceRecorder {
    fn drop(&mut self) {
        if let Ok(inner) = self.inner.get_mut() {
            inner.flush();
        }
    }
}

impl Recorder for TraceRecorder {
    fn counter(&self, name: &'static str, delta: u64) {
        let total = {
            let mut inner = self.inner.lock().expect("trace lock");
            let entry = inner.totals.entry(name).or_insert(0);
            *entry += delta;
            *entry
        };
        self.emit(
            "counter",
            name,
            &[("delta", Json::num(delta as f64)), ("total", Json::num(total as f64))],
        );
    }

    fn gauge(&self, name: &'static str, value: f64) {
        self.emit("gauge", name, &[("value", Json::num(value))]);
    }

    fn observe(&self, name: &'static str, value: f64) {
        self.emit("observe", name, &[("value", Json::num(value))]);
    }

    fn span_start(&self, name: &'static str) {
        let depth = {
            let mut inner = self.inner.lock().expect("trace lock");
            let depth = inner.depth;
            inner.depth += 1;
            depth
        };
        self.emit("span_start", name, &[("depth", Json::num(depth as f64))]);
    }

    fn span_end(&self, name: &'static str, elapsed: Duration) {
        {
            let mut inner = self.inner.lock().expect("trace lock");
            inner.depth = inner.depth.saturating_sub(1);
        }
        self.emit("span_end", name, &[("elapsed_us", Json::num(elapsed.as_micros() as f64))]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsHandle;
    use std::sync::Arc;

    /// Shared byte sink so the test can read back what the recorder wrote.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn emits_one_valid_json_line_per_event() {
        let buf = SharedBuf::default();
        let obs = ObsHandle::new(Arc::new(TraceRecorder::new(Box::new(buf.clone()))));
        {
            let _span = obs.span("pipeline.ingest");
            obs.counter("ingest.retained_pairs", 5);
            obs.counter("ingest.retained_pairs", 2);
            obs.gauge("spill.workload.resident_pairs", 10.0);
            obs.observe("blocking.shard_delta_pairs", 3.0);
        }
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6);
        let parsed: Vec<Json> = lines.iter().map(|l| Json::parse(l).unwrap()).collect();
        assert_eq!(parsed[0].get("kind").and_then(Json::as_str), Some("span_start"));
        assert_eq!(parsed[0].get("depth").and_then(Json::as_f64), Some(0.0));
        assert_eq!(parsed[2].get("total").and_then(Json::as_f64), Some(7.0));
        assert_eq!(parsed[5].get("kind").and_then(Json::as_str), Some("span_end"));
        assert!(parsed[5].get("elapsed_us").and_then(Json::as_f64).is_some());
        // Timestamps are monotone non-decreasing.
        let ts: Vec<f64> =
            parsed.iter().map(|e| e.get("ts_us").and_then(Json::as_f64).unwrap()).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }
}
