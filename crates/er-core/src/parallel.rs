//! A minimal parallel-execution seam.
//!
//! `er-core` stays dependency-free (and thread-pool-free): algorithms that can
//! fan work out — such as the sharded blocking index — accept any
//! [`ParallelExecutor`] and describe their work as an indexed map over a slice
//! of independent shards. The serial executor here is the default; the
//! `er-pipeline` crate implements the trait on its `WorkerPool` so the same
//! code runs on scoped threads without `er-core` knowing about them.
//!
//! Implementations must be *order-preserving*: the returned vector holds `f`'s
//! results in item order, exactly as the serial executor produces them, so
//! parallelism can change wall-clock time but never values.

/// Executes an indexed map over a slice of independent work items.
pub trait ParallelExecutor {
    /// Applies `f` to every item (with its index), returning the results in
    /// item order. Implementations may run the calls concurrently; each item
    /// is touched by exactly one call.
    fn map_mut<T, U, F>(&self, items: &mut [T], f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, &mut T) -> U + Sync;
}

/// The trivial executor: runs every item inline on the calling thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SerialExecutor;

impl ParallelExecutor for SerialExecutor {
    fn map_mut<T, U, F>(&self, items: &mut [T], f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, &mut T) -> U + Sync,
    {
        items.iter_mut().enumerate().map(|(i, item)| f(i, item)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_executor_maps_in_order_and_mutates() {
        let mut items = vec![1u64, 2, 3, 4];
        let out = SerialExecutor.map_mut(&mut items, |i, x| {
            *x += 10;
            (i, *x)
        });
        assert_eq!(out, vec![(0, 11), (1, 12), (2, 13), (3, 14)]);
        assert_eq!(items, vec![11, 12, 13, 14]);
        let empty: Vec<(usize, u64)> =
            SerialExecutor.map_mut(&mut [] as &mut [u64], |i, x| (i, *x));
        assert!(empty.is_empty());
    }
}
