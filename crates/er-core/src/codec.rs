//! Shared byte-codec primitives for every hand-rolled on-disk format in the
//! workspace.
//!
//! The build environment is offline, so there is no serde: each persistent
//! structure is written in a documented, little-endian byte format and
//! verified with an FNV-1a checksum on read. Three formats ride on these
//! primitives today:
//!
//! - `HSG1` workload segments and `HPG1` posting generations, written by
//!   [`crate::spill`] (formats documented there),
//! - `HAL1` answered-label logs, written by `humo::wal` (format documented
//!   there).
//!
//! Two layers live here:
//!
//! **Chunk layer** — [`ByteWriter`] / [`ByteReader`]: a chunk is a body
//! followed by an 8-byte FNV-1a trailer over the body ([`ByteWriter::finish`]
//! appends it, [`ByteReader::checked`] verifies and strips it). Chunks are
//! written whole; a spill store addresses them by `(offset, len)`.
//!
//! **Frame layer** — [`frame`] / [`FrameScan`]: for *append-only logs* whose
//! readers discover record boundaries from the bytes alone. Each frame is
//!
//! ```text
//! body_len    u32   length of the body in bytes
//! head_check  u32   low 32 bits of FNV-1a over the 4 `body_len` bytes
//! body        body_len bytes — a checksummed chunk (payload + FNV trailer)
//! ```
//!
//! The `head_check` makes a corrupted length field deterministically
//! detectable: without it, a bit flip in `body_len` would be
//! indistinguishable from a torn tail and could silently swallow the rest of
//! the log. With it, scanning distinguishes three outcomes — a complete valid
//! frame, a *torn tail* (the file ends before the frame does: clean truncation
//! point), and *corruption* (a complete frame whose header check or body
//! checksum fails: an error, never silent data loss).

use crate::{ErError, Result};

/// FNV-1a 64-bit hash — the platform-independent hash used for token → shard
/// assignment, posting directories and chunk checksums.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Little-endian byte writer for the on-disk codecs; [`ByteWriter::finish`]
/// appends the FNV-1a checksum trailer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates a writer with a capacity hint.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { buf: Vec::with_capacity(capacity) }
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes written so far (before the checksum trailer).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends the FNV-1a checksum of everything written and returns the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        let checksum = fnv1a(&self.buf);
        self.buf.extend_from_slice(&checksum.to_le_bytes());
        self.buf
    }
}

/// Little-endian byte reader over a chunk; construction verifies the FNV-1a
/// checksum trailer and every `take_*` bounds-checks, so a truncated or
/// corrupted chunk surfaces as [`ErError::Spill`] instead of garbage data.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a checksummed chunk, verifying and stripping the trailer.
    pub fn checked(chunk: &'a [u8]) -> Result<Self> {
        if chunk.len() < 8 {
            return Err(ErError::Spill(format!("chunk too short: {} bytes", chunk.len())));
        }
        let (body, trailer) = chunk.split_at(chunk.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
        let computed = fnv1a(body);
        if stored != computed {
            return Err(ErError::Spill(format!(
                "chunk checksum mismatch (stored {stored:#x}, computed {computed:#x})"
            )));
        }
        Ok(Self { buf: body, pos: 0 })
    }

    /// Wraps raw bytes without a checksum trailer (for sub-entry reads whose
    /// enclosing chunk was already verified at write time).
    pub fn unchecked(bytes: &'a [u8]) -> Self {
        Self { buf: bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end =
            self.pos.checked_add(n).filter(|&end| end <= self.buf.len()).ok_or_else(|| {
                ErError::Spill(format!("chunk underrun at byte {} (+{n})", self.pos))
            })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads a single byte.
    pub fn take_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads `n` raw bytes.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Size of a frame header: `body_len u32` + `head_check u32`.
pub const FRAME_HEADER_LEN: usize = 8;

/// The header check for a frame body length: the low 32 bits of FNV-1a over
/// the 4 little-endian `body_len` bytes.
pub fn frame_check(body_len: u32) -> u32 {
    fnv1a(&body_len.to_le_bytes()) as u32
}

/// Wraps a finished chunk (from [`ByteWriter::finish`]) in a frame header,
/// producing one appendable log record.
pub fn frame(body: &[u8]) -> Vec<u8> {
    let body_len = u32::try_from(body.len()).expect("frame body fits in u32");
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + body.len());
    out.extend_from_slice(&body_len.to_le_bytes());
    out.extend_from_slice(&frame_check(body_len).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Forward scanner over a concatenation of [`frame`]s, with torn-tail
/// recovery.
///
/// [`FrameScan::next_frame`] yields checksum-verified [`ByteReader`]s for each
/// complete frame. A file that ends mid-frame (a torn append) yields
/// `Ok(None)` with [`FrameScan::torn_tail`] set — [`FrameScan::consumed`] is
/// then the clean truncation point. A *complete* frame that fails its header
/// check or body checksum is corruption and yields an error.
#[derive(Debug)]
pub struct FrameScan<'a> {
    buf: &'a [u8],
    pos: usize,
    torn: bool,
}

impl<'a> FrameScan<'a> {
    /// Starts scanning at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0, torn: false }
    }

    /// Yields the next complete frame's verified body reader, `Ok(None)` at a
    /// clean end or a torn tail, or an error on corruption.
    pub fn next_frame(&mut self) -> Result<Option<ByteReader<'a>>> {
        if self.torn {
            return Ok(None);
        }
        let rest = &self.buf[self.pos..];
        if rest.is_empty() {
            return Ok(None);
        }
        if rest.len() < FRAME_HEADER_LEN {
            // Not even a whole header: a torn append.
            self.torn = true;
            return Ok(None);
        }
        let body_len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes"));
        let stored_check = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        let body_end = FRAME_HEADER_LEN + body_len as usize;
        if stored_check != frame_check(body_len) {
            // The length field itself is damaged. If the file could not hold
            // the claimed body anyway we cannot distinguish this from a torn
            // header, but a corrupt header in front of enough bytes is
            // unambiguous corruption.
            if rest.len() >= body_end {
                return Err(ErError::Spill(format!(
                    "frame header check mismatch at byte {} (stored {stored_check:#x})",
                    self.pos
                )));
            }
            self.torn = true;
            return Ok(None);
        }
        if rest.len() < body_end {
            // Valid header, incomplete body: a torn append.
            self.torn = true;
            return Ok(None);
        }
        let reader = ByteReader::checked(&rest[FRAME_HEADER_LEN..body_end])?;
        self.pos += body_end;
        Ok(Some(reader))
    }

    /// Bytes consumed by complete frames so far — after a torn tail, the
    /// offset a recovering writer should truncate the log to.
    pub fn consumed(&self) -> usize {
        self.pos
    }

    /// Whether the scan stopped at an incomplete trailing frame.
    pub fn torn_tail(&self) -> bool {
        self.torn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_round_trip_with_checksum() {
        let mut w = ByteWriter::with_capacity(64);
        w.put_u8(7);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX - 3);
        w.put_bytes(b"token");
        let chunk = w.finish();
        let mut r = ByteReader::checked(&chunk).unwrap();
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u32().unwrap(), 0xdead_beef);
        assert_eq!(r.take_u64().unwrap(), u64::MAX - 3);
        assert_eq!(r.take_bytes(5).unwrap(), b"token");
        assert_eq!(r.remaining(), 0);
        assert!(r.take_u8().is_err());
    }

    #[test]
    fn corrupted_chunks_are_rejected() {
        let mut w = ByteWriter::default();
        w.put_u64(42);
        let mut chunk = w.finish();
        chunk[3] ^= 1;
        assert!(matches!(ByteReader::checked(&chunk), Err(ErError::Spill(_))));
        assert!(matches!(ByteReader::checked(&chunk[..4]), Err(ErError::Spill(_))));
    }

    #[test]
    fn fnv_is_stable() {
        // Pinned reference values: the hash decides token → shard placement
        // and on-disk directories, so it must never drift across platforms.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    fn chunk(payload: &[u8]) -> Vec<u8> {
        let mut w = ByteWriter::default();
        w.put_bytes(payload);
        w.finish()
    }

    #[test]
    fn frame_scan_round_trips_a_log() {
        let mut log = Vec::new();
        log.extend_from_slice(&frame(&chunk(b"alpha")));
        log.extend_from_slice(&frame(&chunk(b"")));
        log.extend_from_slice(&frame(&chunk(b"gamma-longer-record")));
        let mut scan = FrameScan::new(&log);
        let mut bodies = Vec::new();
        while let Some(mut r) = scan.next_frame().unwrap() {
            bodies.push(r.take_bytes(r.remaining()).unwrap().to_vec());
        }
        assert_eq!(bodies, vec![b"alpha".to_vec(), Vec::new(), b"gamma-longer-record".to_vec()]);
        assert!(!scan.torn_tail());
        assert_eq!(scan.consumed(), log.len());
    }

    #[test]
    fn frame_scan_recovers_torn_tails() {
        let first = frame(&chunk(b"kept"));
        let second = frame(&chunk(b"torn-away"));
        // Truncate at every point strictly inside the second frame.
        for cut in 0..second.len() {
            let mut log = first.clone();
            log.extend_from_slice(&second[..cut]);
            let mut scan = FrameScan::new(&log);
            let mut count = 0;
            while let Some(_r) = scan.next_frame().unwrap() {
                count += 1;
            }
            assert_eq!(count, 1, "cut at {cut}");
            assert_eq!(scan.consumed(), first.len(), "cut at {cut}");
            assert_eq!(scan.torn_tail(), cut > 0, "cut at {cut}");
        }
    }

    #[test]
    fn frame_scan_rejects_corrupt_complete_frames() {
        let log = frame(&chunk(b"payload-bytes"));
        // Flip one bit at every byte position of a complete frame: always an
        // error (header check or body checksum), never a silent wrong read.
        for i in 0..log.len() {
            let mut bad = log.clone();
            bad[i] ^= 0x10;
            let mut scan = FrameScan::new(&bad);
            let mut outcome = scan.next_frame();
            // A header corruption that inflates the length can masquerade as
            // a torn tail only when the file is too short to disprove it;
            // with a single frame that case is still not a *wrong read*.
            if let Ok(Some(ref mut r)) = outcome {
                panic!("bit flip at byte {i} yielded a frame with {} bytes", r.remaining());
            }
            if let Ok(None) = outcome {
                assert!(scan.torn_tail(), "bit flip at byte {i} read as clean end");
            }
        }
    }
}
