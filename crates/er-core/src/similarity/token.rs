//! Set-based token similarities: Jaccard, Dice and the overlap coefficient.
//!
//! Jaccard over word tokens is the primary attribute similarity used by the
//! paper's experiments (titles, author lists, product names and descriptions).

use std::collections::BTreeSet;

fn token_sets<'a, S: AsRef<str>>(a: &'a [S], b: &'a [S]) -> (BTreeSet<&'a str>, BTreeSet<&'a str>) {
    (a.iter().map(|t| t.as_ref()).collect(), b.iter().map(|t| t.as_ref()).collect())
}

/// Jaccard similarity `|A ∩ B| / |A ∪ B|` over token *sets*.
///
/// Two empty token lists are considered identical (similarity `1`).
pub fn jaccard_similarity<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    let (sa, sb) = token_sets(a, b);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let intersection = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    intersection as f64 / union as f64
}

/// Dice similarity `2|A ∩ B| / (|A| + |B|)` over token sets.
pub fn dice_similarity<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    let (sa, sb) = token_sets(a, b);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let intersection = sa.intersection(&sb).count();
    2.0 * intersection as f64 / (sa.len() + sb.len()) as f64
}

/// Overlap coefficient `|A ∩ B| / min(|A|, |B|)` over token sets.
///
/// Returns `0` when exactly one side is empty and `1` when both are empty.
pub fn overlap_coefficient<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    let (sa, sb) = token_sets(a, b);
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let intersection = sa.intersection(&sb).count();
    intersection as f64 / sa.len().min(sb.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn toks(s: &str) -> Vec<String> {
        crate::text::word_tokens(s)
    }

    #[test]
    fn jaccard_known_values() {
        assert_eq!(jaccard_similarity(&toks("a b c"), &toks("a b c")), 1.0);
        assert_eq!(jaccard_similarity(&toks("a b"), &toks("c d")), 0.0);
        assert!((jaccard_similarity(&toks("a b c"), &toks("b c d")) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jaccard_ignores_duplicates() {
        // Set semantics: duplicates collapse.
        assert_eq!(jaccard_similarity(&toks("a a a b"), &toks("a b")), 1.0);
    }

    #[test]
    fn dice_known_values() {
        assert!((dice_similarity(&toks("a b c"), &toks("b c d")) - 2.0 * 2.0 / 6.0).abs() < 1e-12);
        assert_eq!(dice_similarity(&toks(""), &toks("")), 1.0);
        assert_eq!(dice_similarity(&toks("a"), &toks("")), 0.0);
    }

    #[test]
    fn overlap_is_one_for_subset() {
        assert_eq!(overlap_coefficient(&toks("a b"), &toks("a b c d")), 1.0);
        assert_eq!(overlap_coefficient(&toks(""), &toks("a")), 0.0);
        assert_eq!(overlap_coefficient(&toks(""), &toks("")), 1.0);
    }

    #[test]
    fn dice_at_least_jaccard() {
        let a = toks("entity resolution with quality control");
        let b = toks("quality control for entity matching");
        assert!(dice_similarity(&a, &b) >= jaccard_similarity(&a, &b));
    }

    proptest! {
        #[test]
        fn token_measures_bounded_and_symmetric(a in "[a-d ]{0,20}", b in "[a-d ]{0,20}") {
            let (ta, tb) = (toks(&a), toks(&b));
            for f in [jaccard_similarity::<String>, dice_similarity::<String>, overlap_coefficient::<String>] {
                let ab = f(&ta, &tb);
                prop_assert!((0.0..=1.0).contains(&ab));
                prop_assert!((ab - f(&tb, &ta)).abs() < 1e-12);
            }
        }

        #[test]
        fn jaccard_le_dice_le_overlap(a in "[a-d ]{1,20}", b in "[a-d ]{1,20}") {
            let (ta, tb) = (toks(&a), toks(&b));
            prop_assume!(!ta.is_empty() && !tb.is_empty());
            let j = jaccard_similarity(&ta, &tb);
            let d = dice_similarity(&ta, &tb);
            let o = overlap_coefficient(&ta, &tb);
            prop_assert!(j <= d + 1e-12);
            prop_assert!(d <= o + 1e-12);
        }
    }
}
