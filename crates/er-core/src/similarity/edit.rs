//! Levenshtein edit distance and its normalized similarity.

/// Levenshtein (edit) distance between two strings, computed over Unicode scalar
/// values with the classic two-row dynamic program (O(|a|·|b|) time, O(min) space).
pub fn levenshtein_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Keep the shorter string as the row to minimize memory.
    let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr: Vec<usize> = vec![0; short.len() + 1];
    for (i, lc) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let substitution = prev[j] + usize::from(lc != sc);
            let deletion = prev[j + 1] + 1;
            let insertion = curr[j] + 1;
            curr[j + 1] = substitution.min(deletion).min(insertion);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// Normalized Levenshtein similarity: `1 − distance / max(|a|, |b|)`.
///
/// Two empty strings are considered identical (similarity `1`).
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let len_a = a.chars().count();
    let len_b = b.chars().count();
    let max_len = len_a.max(len_b);
    if max_len == 0 {
        return 1.0;
    }
    1.0 - levenshtein_distance(a, b) as f64 / max_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn distance_known_values() {
        assert_eq!(levenshtein_distance("kitten", "sitting"), 3);
        assert_eq!(levenshtein_distance("flaw", "lawn"), 2);
        assert_eq!(levenshtein_distance("", "abc"), 3);
        assert_eq!(levenshtein_distance("abc", ""), 3);
        assert_eq!(levenshtein_distance("abc", "abc"), 0);
    }

    #[test]
    fn distance_handles_unicode() {
        assert_eq!(levenshtein_distance("café", "cafe"), 1);
        assert_eq!(levenshtein_distance("日本語", "日本"), 1);
    }

    #[test]
    fn similarity_known_values() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        assert!((levenshtein_similarity("kitten", "sitting") - (1.0 - 3.0 / 7.0)).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn distance_symmetric(a in "\\PC{0,15}", b in "\\PC{0,15}") {
            prop_assert_eq!(levenshtein_distance(&a, &b), levenshtein_distance(&b, &a));
        }

        #[test]
        fn distance_identity(a in "\\PC{0,15}") {
            prop_assert_eq!(levenshtein_distance(&a, &a), 0);
        }

        #[test]
        fn distance_triangle_inequality(
            a in "[a-c]{0,8}",
            b in "[a-c]{0,8}",
            c in "[a-c]{0,8}",
        ) {
            let ab = levenshtein_distance(&a, &b);
            let bc = levenshtein_distance(&b, &c);
            let ac = levenshtein_distance(&a, &c);
            prop_assert!(ac <= ab + bc);
        }

        #[test]
        fn distance_bounded_by_longer_string(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            let d = levenshtein_distance(&a, &b);
            prop_assert!(d <= a.len().max(b.len()));
            prop_assert!(d >= a.len().abs_diff(b.len()));
        }
    }
}
