//! Term-frequency cosine similarity over token multisets.

use crate::text::term_frequencies;

/// Cosine similarity between the term-frequency vectors of two token lists.
///
/// Two empty token lists are considered identical (similarity `1`); an empty vs
/// non-empty comparison scores `0`.
pub fn tf_cosine_similarity<S: AsRef<str>>(a: &[S], b: &[S]) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let tf_a = term_frequencies(a);
    let tf_b = term_frequencies(b);
    let mut dot = 0.0;
    for (token, &count_a) in &tf_a {
        if let Some(&count_b) = tf_b.get(token) {
            dot += count_a as f64 * count_b as f64;
        }
    }
    let norm_a: f64 = tf_a.values().map(|&c| (c * c) as f64).sum::<f64>().sqrt();
    let norm_b: f64 = tf_b.values().map(|&c| (c * c) as f64).sum::<f64>().sqrt();
    if norm_a == 0.0 || norm_b == 0.0 {
        return 0.0;
    }
    (dot / (norm_a * norm_b)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::text::word_tokens;
    use proptest::prelude::*;

    #[test]
    fn identical_token_lists_score_one() {
        let t = word_tokens("a b c a");
        assert!((tf_cosine_similarity(&t, &t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_token_lists_score_zero() {
        assert_eq!(tf_cosine_similarity(&word_tokens("a b"), &word_tokens("c d")), 0.0);
    }

    #[test]
    fn empty_cases() {
        let empty: Vec<String> = Vec::new();
        assert_eq!(tf_cosine_similarity(&empty, &empty), 1.0);
        assert_eq!(tf_cosine_similarity(&empty, &word_tokens("a")), 0.0);
    }

    #[test]
    fn frequency_matters() {
        // "a a b" is closer to "a a a b" than "a b b b" is.
        let base = word_tokens("a a b");
        let close = word_tokens("a a a b");
        let far = word_tokens("a b b b");
        assert!(tf_cosine_similarity(&base, &close) > tf_cosine_similarity(&base, &far));
    }

    proptest! {
        #[test]
        fn cosine_bounded_and_symmetric(a in "[a-d ]{0,20}", b in "[a-d ]{0,20}") {
            let (ta, tb) = (word_tokens(&a), word_tokens(&b));
            let ab = tf_cosine_similarity(&ta, &tb);
            prop_assert!((0.0..=1.0).contains(&ab));
            prop_assert!((ab - tf_cosine_similarity(&tb, &ta)).abs() < 1e-12);
        }
    }
}
