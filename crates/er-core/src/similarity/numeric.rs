//! Similarity functions for numeric attributes (prices, years, quantities).

/// Similarity based on the absolute difference scaled by a tolerance:
/// `max(0, 1 − |a − b| / tolerance)`.
///
/// A non-positive tolerance degenerates to exact equality (1 if equal, else 0).
pub fn absolute_difference_similarity(a: f64, b: f64, tolerance: f64) -> f64 {
    if tolerance <= 0.0 {
        return if a == b { 1.0 } else { 0.0 };
    }
    (1.0 - (a - b).abs() / tolerance).max(0.0)
}

/// Similarity based on the relative difference:
/// `1 − |a − b| / max(|a|, |b|)`, and `1` when both values are zero.
pub fn relative_difference_similarity(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        return 1.0;
    }
    (1.0 - (a - b).abs() / denom).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn absolute_similarity_basics() {
        assert_eq!(absolute_difference_similarity(10.0, 10.0, 5.0), 1.0);
        assert_eq!(absolute_difference_similarity(10.0, 15.0, 5.0), 0.0);
        assert!((absolute_difference_similarity(10.0, 12.5, 5.0) - 0.5).abs() < 1e-12);
        assert_eq!(absolute_difference_similarity(10.0, 30.0, 5.0), 0.0);
    }

    #[test]
    fn zero_tolerance_is_exact_match() {
        assert_eq!(absolute_difference_similarity(2.0, 2.0, 0.0), 1.0);
        assert_eq!(absolute_difference_similarity(2.0, 2.000001, 0.0), 0.0);
    }

    #[test]
    fn relative_similarity_basics() {
        assert_eq!(relative_difference_similarity(0.0, 0.0), 1.0);
        assert_eq!(relative_difference_similarity(100.0, 100.0), 1.0);
        assert!((relative_difference_similarity(100.0, 50.0) - 0.5).abs() < 1e-12);
        assert_eq!(relative_difference_similarity(100.0, 0.0), 0.0);
    }

    proptest! {
        #[test]
        fn bounded_and_symmetric(a in -1e6..1e6f64, b in -1e6..1e6f64, tol in 0.01..1e3f64) {
            let abs_sim = absolute_difference_similarity(a, b, tol);
            let rel_sim = relative_difference_similarity(a, b);
            prop_assert!((0.0..=1.0).contains(&abs_sim));
            prop_assert!((0.0..=1.0).contains(&rel_sim));
            prop_assert!((abs_sim - absolute_difference_similarity(b, a, tol)).abs() < 1e-12);
            prop_assert!((rel_sim - relative_difference_similarity(b, a)).abs() < 1e-12);
        }
    }
}
