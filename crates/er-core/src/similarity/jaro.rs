//! Jaro and Jaro-Winkler similarity.
//!
//! Jaro-Winkler is the measure the paper uses for short attributes (the `venue`
//! attribute of the DBLP-Scholar dataset): it boosts the Jaro score of strings
//! sharing a common prefix, which suits abbreviations such as "VLDB" vs "VLDB J.".

/// Jaro similarity between two strings, in `[0, 1]`.
pub fn jaro_similarity(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let match_window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_matched = vec![false; b.len()];
    let mut a_matches: Vec<char> = Vec::new();
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(match_window);
        let hi = (i + match_window + 1).min(b.len());
        for j in lo..hi {
            if !b_matched[j] && b[j] == *ca {
                b_matched[j] = true;
                a_matches.push(*ca);
                break;
            }
        }
    }
    let m = a_matches.len();
    if m == 0 {
        return 0.0;
    }
    // Transpositions: compare the matched sequences in order.
    let b_matches: Vec<char> =
        b.iter().zip(&b_matched).filter(|(_, &used)| used).map(|(c, _)| *c).collect();
    let transpositions =
        a_matches.iter().zip(&b_matches).filter(|(x, y)| x != y).count() as f64 / 2.0;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions) / m) / 3.0
}

/// Jaro-Winkler similarity with the standard prefix scale `p = 0.1` and a maximum
/// considered prefix of four characters.
pub fn jaro_winkler_similarity(a: &str, b: &str) -> f64 {
    jaro_winkler_with_scale(a, b, 0.1)
}

/// Jaro-Winkler similarity with an explicit prefix scale `p ∈ [0, 0.25]`.
pub fn jaro_winkler_with_scale(a: &str, b: &str, prefix_scale: f64) -> f64 {
    let p = prefix_scale.clamp(0.0, 0.25);
    let jaro = jaro_similarity(a, b);
    let prefix_len = a.chars().zip(b.chars()).take(4).take_while(|(x, y)| x == y).count() as f64;
    jaro + prefix_len * p * (1.0 - jaro)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!((actual - expected).abs() <= tol, "expected {expected}, got {actual} (tol {tol})");
    }

    #[test]
    fn jaro_known_values() {
        // Classical textbook examples.
        assert_close(jaro_similarity("MARTHA", "MARHTA"), 0.944_444, 1e-5);
        assert_close(jaro_similarity("DIXON", "DICKSONX"), 0.766_667, 1e-5);
        assert_close(jaro_similarity("JELLYFISH", "SMELLYFISH"), 0.896_296, 1e-5);
    }

    #[test]
    fn jaro_winkler_known_values() {
        assert_close(jaro_winkler_similarity("MARTHA", "MARHTA"), 0.961_111, 1e-5);
        assert_close(jaro_winkler_similarity("DIXON", "DICKSONX"), 0.813_333, 1e-5);
    }

    #[test]
    fn edge_cases() {
        assert_eq!(jaro_similarity("", ""), 1.0);
        assert_eq!(jaro_similarity("abc", ""), 0.0);
        assert_eq!(jaro_similarity("", "abc"), 0.0);
        assert_eq!(jaro_similarity("abc", "abc"), 1.0);
        assert_eq!(jaro_similarity("abc", "xyz"), 0.0);
    }

    #[test]
    fn winkler_boost_only_helps_shared_prefixes() {
        let base = jaro_similarity("prefixed", "prefixes");
        let boosted = jaro_winkler_similarity("prefixed", "prefixes");
        assert!(boosted >= base);
        // No shared prefix → no boost.
        let a = jaro_similarity("abcd", "xbcd");
        let b = jaro_winkler_similarity("abcd", "xbcd");
        assert_close(a, b, 1e-12);
    }

    proptest! {
        #[test]
        fn jaro_bounded_and_symmetric(a in "[a-f]{0,12}", b in "[a-f]{0,12}") {
            let s = jaro_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
            prop_assert!((s - jaro_similarity(&b, &a)).abs() < 1e-12);
        }

        #[test]
        fn jaro_winkler_at_least_jaro(a in "[a-f]{0,12}", b in "[a-f]{0,12}") {
            prop_assert!(jaro_winkler_similarity(&a, &b) + 1e-12 >= jaro_similarity(&a, &b));
            prop_assert!(jaro_winkler_similarity(&a, &b) <= 1.0 + 1e-12);
        }

        #[test]
        fn identity_scores_one(a in "[a-f]{1,12}") {
            prop_assert!((jaro_similarity(&a, &a) - 1.0).abs() < 1e-12);
            prop_assert!((jaro_winkler_similarity(&a, &a) - 1.0).abs() < 1e-12);
        }
    }
}
