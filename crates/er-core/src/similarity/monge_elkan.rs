//! Monge-Elkan hybrid similarity.
//!
//! For every word token of the first string, finds the best Jaro-Winkler match
//! among the tokens of the second string, and averages those best scores. The
//! result is symmetrized by averaging both directions, which keeps the measure
//! usable as a machine metric under HUMO's monotonicity assumption.

use super::jaro::jaro_winkler_similarity;
use crate::text::word_tokens;

fn directed(a_tokens: &[String], b_tokens: &[String]) -> f64 {
    if a_tokens.is_empty() {
        return 0.0;
    }
    let total: f64 = a_tokens
        .iter()
        .map(|ta| b_tokens.iter().map(|tb| jaro_winkler_similarity(ta, tb)).fold(0.0, f64::max))
        .sum();
    total / a_tokens.len() as f64
}

/// Symmetrized Monge-Elkan similarity over word tokens with a Jaro-Winkler base.
///
/// Two empty strings are considered identical (similarity `1`); empty vs
/// non-empty scores `0`.
pub fn monge_elkan_similarity(a: &str, b: &str) -> f64 {
    let ta = word_tokens(a);
    let tb = word_tokens(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    0.5 * (directed(&ta, &tb) + directed(&tb, &ta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_strings_score_one() {
        assert!((monge_elkan_similarity("peter christen", "peter christen") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn word_reordering_is_tolerated() {
        let s = monge_elkan_similarity("christen peter", "peter christen");
        assert!(s > 0.99, "reordered names should still score high, got {s}");
    }

    #[test]
    fn typos_degrade_gracefully() {
        let clean = monge_elkan_similarity("entity resolution", "entity resolution");
        let typo = monge_elkan_similarity("entity resolution", "entity resolutoin");
        let different = monge_elkan_similarity("entity resolution", "graph embedding");
        assert!(clean > typo);
        assert!(typo > different);
    }

    #[test]
    fn empty_cases() {
        assert_eq!(monge_elkan_similarity("", ""), 1.0);
        assert_eq!(monge_elkan_similarity("", "abc"), 0.0);
        assert_eq!(monge_elkan_similarity("abc", ""), 0.0);
    }

    proptest! {
        #[test]
        fn bounded_and_symmetric(a in "[a-f ]{0,20}", b in "[a-f ]{0,20}") {
            let ab = monge_elkan_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&ab));
            prop_assert!((ab - monge_elkan_similarity(&b, &a)).abs() < 1e-12);
        }
    }
}
