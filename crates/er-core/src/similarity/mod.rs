//! String and numeric similarity functions.
//!
//! Every function returns a similarity in `[0, 1]`, with `1` meaning identical.
//! The HUMO paper aggregates Jaccard similarity (for long textual attributes such
//! as titles, author lists and product descriptions) and Jaro-Winkler similarity
//! (for short attributes such as venue names) into a weighted pair similarity;
//! the other measures are provided so downstream users can plug in whichever
//! machine metric fits their data, as the framework is metric-agnostic.

mod cosine;
mod edit;
mod jaro;
mod monge_elkan;
mod numeric;
mod token;

pub use cosine::tf_cosine_similarity;
pub use edit::{levenshtein_distance, levenshtein_similarity};
pub use jaro::{jaro_similarity, jaro_winkler_similarity};
pub use monge_elkan::monge_elkan_similarity;
pub use numeric::{absolute_difference_similarity, relative_difference_similarity};
pub use token::{dice_similarity, jaccard_similarity, overlap_coefficient};

use crate::text::Tokenizer;

/// A named string-similarity measure, usable where a runtime-selected measure is
/// needed (feature extraction, configuration files, benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StringMeasure {
    /// Normalized Levenshtein similarity on characters.
    Levenshtein,
    /// Jaro similarity.
    Jaro,
    /// Jaro-Winkler similarity (prefix-boosted Jaro).
    JaroWinkler,
    /// Jaccard similarity over tokens from the given tokenizer.
    Jaccard(Tokenizer),
    /// Dice similarity over tokens from the given tokenizer.
    Dice(Tokenizer),
    /// Overlap coefficient over tokens from the given tokenizer.
    Overlap(Tokenizer),
    /// Term-frequency cosine similarity over tokens from the given tokenizer.
    Cosine(Tokenizer),
    /// Monge-Elkan similarity: average best Jaro-Winkler match of word tokens.
    MongeElkan,
}

impl StringMeasure {
    /// Evaluates the measure on a pair of strings.
    pub fn eval(&self, a: &str, b: &str) -> f64 {
        match self {
            StringMeasure::Levenshtein => levenshtein_similarity(a, b),
            StringMeasure::Jaro => jaro_similarity(a, b),
            StringMeasure::JaroWinkler => jaro_winkler_similarity(a, b),
            StringMeasure::Jaccard(t) => jaccard_similarity(&t.tokenize(a), &t.tokenize(b)),
            StringMeasure::Dice(t) => dice_similarity(&t.tokenize(a), &t.tokenize(b)),
            StringMeasure::Overlap(t) => overlap_coefficient(&t.tokenize(a), &t.tokenize(b)),
            StringMeasure::Cosine(t) => tf_cosine_similarity(&t.tokenize(a), &t.tokenize(b)),
            StringMeasure::MongeElkan => monge_elkan_similarity(a, b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn string_measure_dispatch_identity() {
        let measures = [
            StringMeasure::Levenshtein,
            StringMeasure::Jaro,
            StringMeasure::JaroWinkler,
            StringMeasure::Jaccard(Tokenizer::Words),
            StringMeasure::Dice(Tokenizer::QGrams(2)),
            StringMeasure::Overlap(Tokenizer::Words),
            StringMeasure::Cosine(Tokenizer::Words),
            StringMeasure::MongeElkan,
        ];
        for m in measures {
            let s = m.eval("entity resolution framework", "entity resolution framework");
            assert!((s - 1.0).abs() < 1e-12, "{m:?} should score identical strings as 1");
        }
    }

    proptest! {
        #[test]
        fn all_measures_bounded_and_symmetric(a in "[a-z ]{0,20}", b in "[a-z ]{0,20}") {
            let measures = [
                StringMeasure::Levenshtein,
                StringMeasure::Jaro,
                StringMeasure::JaroWinkler,
                StringMeasure::Jaccard(Tokenizer::Words),
                StringMeasure::Dice(Tokenizer::Words),
                StringMeasure::Overlap(Tokenizer::QGrams(2)),
                StringMeasure::Cosine(Tokenizer::Words),
                StringMeasure::MongeElkan,
            ];
            for m in measures {
                let ab = m.eval(&a, &b);
                let ba = m.eval(&b, &a);
                prop_assert!((0.0..=1.0).contains(&ab), "{m:?} out of range: {ab}");
                prop_assert!((ab - ba).abs() < 1e-9, "{m:?} not symmetric: {ab} vs {ba}");
            }
        }
    }
}
