//! Blocking: generating candidate record pairs without enumerating the full
//! cartesian product, plus the similarity-threshold filtering the paper applies
//! when building its ER workloads.
//!
//! The paper's experiments "use the blocking technique to filter the instance
//! pairs unlikely to match", keeping only pairs whose aggregated similarity is at
//! least a per-dataset threshold (0.2 for DBLP-Scholar, 0.05 for Abt-Buy). The
//! [`build_workload`] helper reproduces that pipeline: candidate generation →
//! scoring → threshold filter → similarity-sorted [`Workload`].
//!
//! Both blockers also come in an **incremental** flavour for streaming
//! ingestion ([`TokenBlocker::incremental`],
//! [`SortedNeighbourhoodBlocker::incremental`]): record batches are folded into
//! a persistent index and each `add_records` call returns only the *delta*
//! candidate pairs — the pairs involving at least one record of the new batch —
//! without rescanning the pairs of previously ingested records.

use crate::aggregate::PairScorer;
use crate::record::{Dataset, Record, RecordId};
use crate::text::Tokenizer;
use crate::workload::{InstancePair, Label, PairId, Workload};
use crate::Result;
use std::collections::{BTreeMap, BTreeSet};

/// All pairs of the cartesian product between two datasets.
pub fn cartesian_pairs(a: &Dataset, b: &Dataset) -> Vec<(RecordId, RecordId)> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for ra in a.iter() {
        for rb in b.iter() {
            out.push((ra.id(), rb.id()));
        }
    }
    out
}

/// Token blocking: candidate pairs are record pairs sharing at least one token of
/// the blocking attribute.
#[derive(Debug, Clone)]
pub struct TokenBlocker {
    attribute: String,
    tokenizer: Tokenizer,
}

impl TokenBlocker {
    /// Creates a token blocker over the given attribute.
    pub fn new(attribute: impl Into<String>, tokenizer: Tokenizer) -> Self {
        Self { attribute: attribute.into(), tokenizer }
    }

    /// Generates candidate pairs between two datasets.
    pub fn candidates(&self, a: &Dataset, b: &Dataset) -> Vec<(RecordId, RecordId)> {
        // Tokens are deduplicated per record before indexing and probing: a
        // record repeating a token ("new york, new york") must not push its id
        // into a posting list twice, nor probe the same posting list twice —
        // the output set would hide it, but every duplicate re-scans a whole
        // posting list.
        let record_tokens = |text: &str| -> BTreeSet<String> {
            self.tokenizer.tokenize(text).into_iter().collect()
        };
        // Invert dataset b: token → record ids.
        let mut index: BTreeMap<String, Vec<RecordId>> = BTreeMap::new();
        for rb in b.iter() {
            if let Some(text) = rb.text(&self.attribute) {
                for token in record_tokens(text) {
                    index.entry(token).or_default().push(rb.id());
                }
            }
        }
        let mut seen: BTreeSet<(RecordId, RecordId)> = BTreeSet::new();
        for ra in a.iter() {
            if let Some(text) = ra.text(&self.attribute) {
                for token in record_tokens(text) {
                    if let Some(ids) = index.get(&token) {
                        for &rb_id in ids {
                            seen.insert((ra.id(), rb_id));
                        }
                    }
                }
            }
        }
        seen.into_iter().collect()
    }

    /// Creates an empty incremental index with this blocker's attribute and
    /// tokenizer. Feed record batches through
    /// [`IncrementalTokenIndex::add_records`] to obtain delta candidates.
    pub fn incremental(&self) -> IncrementalTokenIndex {
        IncrementalTokenIndex {
            attribute: self.attribute.clone(),
            tokenizer: self.tokenizer,
            index_left: BTreeMap::new(),
            index_right: BTreeMap::new(),
            records_indexed: 0,
        }
    }
}

/// A persistent token-blocking index supporting incremental ingestion.
///
/// The index keeps one posting list per token and side. Adding a batch probes
/// the *existing* posting lists for the new records' tokens, so the work per
/// batch is proportional to the new records and their matching postings — old
/// candidate pairs are never re-derived. The union of the deltas over any batch
/// split equals [`TokenBlocker::candidates`] on the union of the records, and a
/// pair is never emitted twice (every delta pair involves a record of the
/// current batch).
#[derive(Debug, Clone)]
pub struct IncrementalTokenIndex {
    attribute: String,
    tokenizer: Tokenizer,
    index_left: BTreeMap<String, Vec<RecordId>>,
    index_right: BTreeMap<String, Vec<RecordId>>,
    records_indexed: usize,
}

impl IncrementalTokenIndex {
    /// Number of records folded into the index so far (both sides).
    pub fn records_indexed(&self) -> usize {
        self.records_indexed
    }

    /// Folds a batch of records into the index and returns the **new** candidate
    /// pairs: every `(left, right)` pair sharing at least one token where at
    /// least one side belongs to this batch. Pairs are deduplicated and sorted.
    pub fn add_records(
        &mut self,
        left_batch: &[Record],
        right_batch: &[Record],
    ) -> Vec<(RecordId, RecordId)> {
        let Self { attribute, tokenizer, index_left, index_right, records_indexed } = self;
        // Tokens are deduplicated per record, mirroring the batch blocker: a
        // repeated token must not duplicate postings or probes.
        let record_tokens = |record: &Record| -> BTreeSet<String> {
            record
                .text(attribute)
                .map(|text| tokenizer.tokenize(text).into_iter().collect())
                .unwrap_or_default()
        };
        let mut delta: BTreeSet<(RecordId, RecordId)> = BTreeSet::new();
        // Right side first: new right records pair with the *previously indexed*
        // left records here; pairs with the new left records are found below,
        // after the new right postings are in place. This split is what keeps
        // every within-batch pair emitted exactly once.
        for record in right_batch {
            for token in record_tokens(record) {
                if let Some(ids) = index_left.get(&token) {
                    for &left_id in ids {
                        delta.insert((left_id, record.id()));
                    }
                }
                index_right.entry(token).or_default().push(record.id());
            }
        }
        for record in left_batch {
            for token in record_tokens(record) {
                if let Some(ids) = index_right.get(&token) {
                    for &right_id in ids {
                        delta.insert((record.id(), right_id));
                    }
                }
                index_left.entry(token).or_default().push(record.id());
            }
        }
        *records_indexed += left_batch.len() + right_batch.len();
        delta.into_iter().collect()
    }
}

/// Sorted-neighbourhood blocking: both datasets are sorted by a normalized blocking
/// key and records within a sliding window of each other become candidates.
#[derive(Debug, Clone)]
pub struct SortedNeighbourhoodBlocker {
    attribute: String,
    window: usize,
}

impl SortedNeighbourhoodBlocker {
    /// Creates a sorted-neighbourhood blocker over the given attribute with the
    /// given window size (a window of `w` pairs each record with the `w` records
    /// around it in key order).
    pub fn new(attribute: impl Into<String>, window: usize) -> Self {
        Self { attribute: attribute.into(), window: window.max(1) }
    }

    /// Generates candidate pairs between two datasets.
    ///
    /// Overlapping windows encounter the same pair repeatedly; emitted pairs are
    /// deduplicated so every candidate appears exactly once.
    pub fn candidates(&self, a: &Dataset, b: &Dataset) -> Vec<(RecordId, RecordId)> {
        let mut entries: Vec<SnEntry> = Vec::with_capacity(a.len() + b.len());
        for r in a.iter() {
            entries.push(SnEntry::new(&self.attribute, r, true));
        }
        for r in b.iter() {
            entries.push(SnEntry::new(&self.attribute, r, false));
        }
        entries.sort_by(SnEntry::cmp);

        let mut seen: BTreeSet<(RecordId, RecordId)> = BTreeSet::new();
        for i in 0..entries.len() {
            let hi = (i + self.window + 1).min(entries.len());
            for j in (i + 1)..hi {
                if let Some(pair) = SnEntry::cross_pair(&entries[i], &entries[j]) {
                    seen.insert(pair);
                }
            }
        }
        seen.into_iter().collect()
    }

    /// Creates an empty incremental index with this blocker's attribute and
    /// window. Feed record batches through
    /// [`IncrementalSortedNeighbourhoodIndex::add_records`] to obtain delta
    /// candidates.
    pub fn incremental(&self) -> IncrementalSortedNeighbourhoodIndex {
        IncrementalSortedNeighbourhoodIndex {
            attribute: self.attribute.clone(),
            window: self.window,
            entries: Vec::new(),
        }
    }
}

/// One key-sorted entry of a sorted-neighbourhood arrangement.
#[derive(Debug, Clone)]
struct SnEntry {
    key: String,
    id: RecordId,
    from_left: bool,
}

impl SnEntry {
    fn new(attribute: &str, record: &Record, from_left: bool) -> Self {
        let key = crate::text::normalize(record.text(attribute).unwrap_or(""));
        Self { key, id: record.id(), from_left }
    }

    /// Canonical total order: by key, then left-side entries before right-side
    /// ones, then by record id. Because the order is total and independent of
    /// insertion sequence, the batch and incremental arrangements agree.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key
            .cmp(&other.key)
            .then_with(|| other.from_left.cmp(&self.from_left))
            .then_with(|| self.id.cmp(&other.id))
    }

    /// The normalized `(left, right)` pair when the two entries come from
    /// different sides, `None` otherwise.
    fn cross_pair(x: &Self, y: &Self) -> Option<(RecordId, RecordId)> {
        match (x.from_left, y.from_left) {
            (true, false) => Some((x.id, y.id)),
            (false, true) => Some((y.id, x.id)),
            _ => None,
        }
    }
}

/// A persistent sorted-neighbourhood arrangement supporting incremental
/// ingestion.
///
/// New batches are merge-inserted into the key-sorted arrangement and each new
/// entry is paired with the records inside its window at its final position, so
/// the per-batch work is `O(existing + batch·window)` — old windows are never
/// re-scanned. Every delta pair involves a record of the current batch, hence a
/// pair is never emitted twice across batches.
///
/// Unlike token blocking, sorted-neighbourhood candidates are **monotone but not
/// split-invariant**: records inserted later can push two earlier records apart,
/// so the union of the deltas is a *superset* of the batch
/// [`SortedNeighbourhoodBlocker::candidates`] on the union (it covers every
/// batch pair, plus pairs that were window-neighbours at some point of the
/// ingestion history). Once emitted, a candidate stays a candidate.
#[derive(Debug, Clone)]
pub struct IncrementalSortedNeighbourhoodIndex {
    attribute: String,
    window: usize,
    entries: Vec<SnEntry>,
}

impl IncrementalSortedNeighbourhoodIndex {
    /// Number of records folded into the arrangement so far (both sides).
    pub fn records_indexed(&self) -> usize {
        self.entries.len()
    }

    /// Folds a batch of records into the arrangement and returns the **new**
    /// candidate pairs: every cross-source pair within the window of a record of
    /// this batch, at its position in the updated arrangement. Pairs are
    /// deduplicated and sorted.
    pub fn add_records(
        &mut self,
        left_batch: &[Record],
        right_batch: &[Record],
    ) -> Vec<(RecordId, RecordId)> {
        let mut incoming: Vec<SnEntry> = Vec::with_capacity(left_batch.len() + right_batch.len());
        for r in left_batch {
            incoming.push(SnEntry::new(&self.attribute, r, true));
        }
        for r in right_batch {
            incoming.push(SnEntry::new(&self.attribute, r, false));
        }
        incoming.sort_by(SnEntry::cmp);

        // Merge the sorted batch into the sorted arrangement, recording the
        // final positions of the new entries.
        let old = std::mem::take(&mut self.entries);
        let mut merged = Vec::with_capacity(old.len() + incoming.len());
        let mut new_positions = Vec::with_capacity(incoming.len());
        let mut old_iter = old.into_iter().peekable();
        let mut new_iter = incoming.into_iter().peekable();
        loop {
            let take_new = match (old_iter.peek(), new_iter.peek()) {
                (Some(o), Some(n)) => SnEntry::cmp(n, o) == std::cmp::Ordering::Less,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (None, None) => break,
            };
            if take_new {
                new_positions.push(merged.len());
                merged.push(new_iter.next().expect("peeked"));
            } else {
                merged.push(old_iter.next().expect("peeked"));
            }
        }
        self.entries = merged;

        let mut delta: BTreeSet<(RecordId, RecordId)> = BTreeSet::new();
        for &p in &new_positions {
            let lo = p.saturating_sub(self.window);
            let hi = (p + self.window).min(self.entries.len().saturating_sub(1));
            for j in lo..=hi {
                if j == p {
                    continue;
                }
                if let Some(pair) = SnEntry::cross_pair(&self.entries[p], &self.entries[j]) {
                    delta.insert(pair);
                }
            }
        }
        delta.into_iter().collect()
    }
}

/// Scores candidate pairs, filters them by a similarity threshold, and assembles a
/// similarity-sorted [`Workload`] with ground-truth labels.
///
/// * `candidates` — the output of a blocker (or [`cartesian_pairs`]);
/// * `scorer` — the attribute-weighted pair scorer;
/// * `ground_truth` — the set of record-id pairs that are true matches;
/// * `threshold` — pairs scoring below this aggregated similarity are dropped
///   (the paper's per-dataset blocking threshold).
pub fn build_workload(
    a: &Dataset,
    b: &Dataset,
    candidates: &[(RecordId, RecordId)],
    scorer: &PairScorer,
    ground_truth: &BTreeSet<(RecordId, RecordId)>,
    threshold: f64,
) -> Result<Workload> {
    let mut pairs = Vec::new();
    let mut next_id = 0u64;
    for &(left, right) in candidates {
        let ra = a.require(left)?;
        let rb = b.require(right)?;
        let similarity = scorer.score(ra, rb);
        if similarity < threshold {
            continue;
        }
        let label = Label::from_bool(ground_truth.contains(&(left, right)));
        pairs.push(InstancePair::with_records(PairId(next_id), left, right, similarity, label));
        next_id += 1;
    }
    Workload::from_pairs(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{AttributeMeasure, AttributeWeighting, ScoringConfig};
    use crate::record::{Record, Schema};
    use crate::similarity::StringMeasure;
    use proptest::prelude::*;

    fn dataset(name: &str, titles: &[(u64, &str)]) -> Dataset {
        let mut ds = Dataset::new(name, Schema::new(["title"]));
        for &(id, title) in titles {
            ds.push(Record::new(RecordId(id)).with("title", title)).unwrap();
        }
        ds
    }

    fn title_scorer(datasets: &[&Dataset]) -> PairScorer {
        let config = ScoringConfig::new(
            [("title", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words)))],
            AttributeWeighting::Uniform,
        );
        PairScorer::new(&config, datasets).unwrap()
    }

    #[test]
    fn cartesian_pairs_full_product() {
        let a = dataset("a", &[(1, "x"), (2, "y")]);
        let b = dataset("b", &[(10, "x"), (11, "y"), (12, "z")]);
        assert_eq!(cartesian_pairs(&a, &b).len(), 6);
    }

    #[test]
    fn token_blocking_only_pairs_sharing_tokens() {
        let a = dataset("a", &[(1, "entity resolution survey"), (2, "graph neural networks")]);
        let b = dataset(
            "b",
            &[
                (10, "a survey of entity resolution"),
                (11, "convolutional networks"),
                (12, "databases"),
            ],
        );
        let blocker = TokenBlocker::new("title", Tokenizer::Words);
        let candidates = blocker.candidates(&a, &b);
        assert!(candidates.contains(&(RecordId(1), RecordId(10))));
        assert!(candidates.contains(&(RecordId(2), RecordId(11)))); // shares "networks"
        assert!(!candidates.contains(&(RecordId(1), RecordId(12))));
        // No duplicates even though multiple tokens are shared.
        let unique: BTreeSet<_> = candidates.iter().collect();
        assert_eq!(unique.len(), candidates.len());
    }

    #[test]
    fn repeated_tokens_do_not_duplicate_index_postings() {
        // Records that repeat a token ("new york new york") must behave exactly
        // like their deduplicated counterparts: same candidates, no duplicate
        // posting-list entries blowing up the probe work.
        let a = dataset("a", &[(1, "york york york new new"), (2, "boston")]);
        let b = dataset("b", &[(10, "new york"), (11, "york york minster"), (12, "chicago")]);
        let blocker = TokenBlocker::new("title", Tokenizer::Words);
        let candidates = blocker.candidates(&a, &b);
        let dedup_a = dataset("a", &[(1, "york new"), (2, "boston")]);
        let dedup_b = dataset("b", &[(10, "new york"), (11, "york minster"), (12, "chicago")]);
        let dedup_candidates = blocker.candidates(&dedup_a, &dedup_b);
        assert_eq!(candidates, dedup_candidates);
        assert!(candidates.contains(&(RecordId(1), RecordId(10))));
        assert!(candidates.contains(&(RecordId(1), RecordId(11))));
        assert!(!candidates.contains(&(RecordId(2), RecordId(12))));
        let unique: BTreeSet<_> = candidates.iter().collect();
        assert_eq!(unique.len(), candidates.len());
    }

    #[test]
    fn token_blocking_is_subset_of_cartesian() {
        let a = dataset("a", &[(1, "alpha beta"), (2, "gamma")]);
        let b = dataset("b", &[(10, "beta"), (11, "delta")]);
        let candidates = TokenBlocker::new("title", Tokenizer::Words).candidates(&a, &b);
        let all: BTreeSet<_> = cartesian_pairs(&a, &b).into_iter().collect();
        for c in &candidates {
            assert!(all.contains(c));
        }
        assert!(candidates.len() < all.len());
    }

    #[test]
    fn sorted_neighbourhood_pairs_nearby_keys() {
        let a = dataset("a", &[(1, "aaa"), (2, "mmm"), (3, "zzz")]);
        let b = dataset("b", &[(10, "aab"), (11, "mmn"), (12, "zzy")]);
        let blocker = SortedNeighbourhoodBlocker::new("title", 2);
        let candidates = blocker.candidates(&a, &b);
        assert!(candidates.contains(&(RecordId(1), RecordId(10))));
        assert!(candidates.contains(&(RecordId(2), RecordId(11))));
        assert!(candidates.contains(&(RecordId(3), RecordId(12))));
        // Distant keys should not be paired with a small window.
        assert!(!candidates.contains(&(RecordId(1), RecordId(12))));
    }

    #[test]
    fn build_workload_scores_filters_and_labels() {
        let a = dataset("a", &[(1, "entity resolution framework"), (2, "deep learning")]);
        let b = dataset(
            "b",
            &[(10, "entity resolution framework"), (11, "reinforcement learning agents")],
        );
        let scorer = title_scorer(&[&a, &b]);
        let candidates = cartesian_pairs(&a, &b);
        let mut truth = BTreeSet::new();
        truth.insert((RecordId(1), RecordId(10)));
        let workload = build_workload(&a, &b, &candidates, &scorer, &truth, 0.1).unwrap();
        // The exact-match pair survives with similarity 1 and a Match label.
        let top = workload.pairs().last().unwrap();
        assert_eq!(top.left(), Some(RecordId(1)));
        assert_eq!(top.right(), Some(RecordId(10)));
        assert!((top.similarity() - 1.0).abs() < 1e-12);
        assert!(top.is_match());
        // Completely dissimilar pairs are filtered by the threshold.
        assert!(workload.len() < candidates.len());
        // Every retained pair meets the threshold.
        for p in workload.pairs() {
            assert!(p.similarity() >= 0.1);
        }
    }

    #[test]
    fn build_workload_rejects_unknown_records() {
        let a = dataset("a", &[(1, "x")]);
        let b = dataset("b", &[(10, "x")]);
        let scorer = title_scorer(&[&a, &b]);
        let bogus = vec![(RecordId(99), RecordId(10))];
        assert!(build_workload(&a, &b, &bogus, &scorer, &BTreeSet::new(), 0.0).is_err());
    }

    #[test]
    fn sorted_neighbourhood_emits_no_duplicates_for_wide_windows() {
        // Regression: with window > 2 every pair sits inside several overlapping
        // windows (and equal keys maximize the overlap); each candidate must
        // still be emitted exactly once.
        let a = dataset("a", &[(1, "same key"), (2, "same key"), (3, "same key")]);
        let b = dataset("b", &[(10, "same key"), (11, "same key"), (12, "same key")]);
        for window in [3, 4, 6, 10] {
            let blocker = SortedNeighbourhoodBlocker::new("title", window);
            let candidates = blocker.candidates(&a, &b);
            let unique: BTreeSet<_> = candidates.iter().collect();
            assert_eq!(
                unique.len(),
                candidates.len(),
                "window {window} emitted duplicate candidate pairs"
            );
        }
        // A window spanning everything yields the full cross product exactly once.
        let all = SortedNeighbourhoodBlocker::new("title", 10).candidates(&a, &b);
        assert_eq!(all.len(), 9);
    }

    fn batched(records: &[Record], batches: usize) -> Vec<&[Record]> {
        let size = records.len().div_ceil(batches.max(1)).max(1);
        records.chunks(size).collect()
    }

    #[test]
    fn incremental_token_index_matches_batch_for_any_split() {
        let a = dataset(
            "a",
            &[(1, "entity resolution survey"), (2, "graph neural networks"), (3, "databases")],
        );
        let b = dataset(
            "b",
            &[
                (10, "a survey of entity resolution"),
                (11, "convolutional networks"),
                (12, "databases and networks"),
                (13, "quantum computing"),
            ],
        );
        let blocker = TokenBlocker::new("title", Tokenizer::Words);
        let expected: BTreeSet<_> = blocker.candidates(&a, &b).into_iter().collect();
        for (left_batches, right_batches) in [(1, 1), (2, 3), (3, 2), (3, 4)] {
            let mut index = blocker.incremental();
            let mut union: BTreeSet<(RecordId, RecordId)> = BTreeSet::new();
            let left_chunks = batched(a.records(), left_batches);
            let right_chunks = batched(b.records(), right_batches);
            for i in 0..left_chunks.len().max(right_chunks.len()) {
                let l = left_chunks.get(i).copied().unwrap_or(&[]);
                let r = right_chunks.get(i).copied().unwrap_or(&[]);
                for pair in index.add_records(l, r) {
                    assert!(union.insert(pair), "pair {pair:?} emitted twice");
                }
            }
            assert_eq!(union, expected, "split ({left_batches},{right_batches}) diverged");
            assert_eq!(index.records_indexed(), a.len() + b.len());
        }
    }

    #[test]
    fn incremental_sorted_neighbourhood_covers_batch_and_never_repeats() {
        let a = dataset("a", &[(1, "aaa"), (2, "ccc"), (3, "mmm"), (4, "zzz")]);
        let b = dataset("b", &[(10, "aab"), (11, "cce"), (12, "mmn"), (13, "zzy")]);
        let blocker = SortedNeighbourhoodBlocker::new("title", 2);
        let batch: BTreeSet<_> = blocker.candidates(&a, &b).into_iter().collect();
        // Single-batch ingestion reproduces the batch candidates exactly.
        let mut index = blocker.incremental();
        let single: BTreeSet<_> = index.add_records(a.records(), b.records()).into_iter().collect();
        assert_eq!(single, batch);
        // Any split covers the batch candidates (superset) without repeats.
        let mut index = blocker.incremental();
        let mut union: BTreeSet<(RecordId, RecordId)> = BTreeSet::new();
        for i in 0..a.len().max(b.len()) {
            let l = a.records().get(i..i + 1).unwrap_or(&[]);
            let r = b.records().get(i..i + 1).unwrap_or(&[]);
            for pair in index.add_records(l, r) {
                assert!(union.insert(pair), "pair {pair:?} emitted twice");
            }
        }
        assert!(union.is_superset(&batch), "incremental deltas miss batch candidates");
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..Default::default() })]
        #[test]
        fn incremental_token_deltas_union_to_batch_candidates(
            n_left in 1usize..12,
            n_right in 1usize..12,
            split in 1usize..5,
            salt in 0u64..1_000,
        ) {
            // Tiny vocabulary so records share tokens often.
            let vocab = ["ant", "bee", "cat", "dog", "elk"];
            let title = |id: u64| -> String {
                let mut words = Vec::new();
                for k in 0..(1 + (id.wrapping_mul(2654435761).wrapping_add(salt) % 3)) {
                    let h = id.wrapping_mul(31).wrapping_add(k).wrapping_add(salt);
                    words.push(vocab[(h % vocab.len() as u64) as usize]);
                }
                words.join(" ")
            };
            let mut a = Dataset::new("a", Schema::new(["title"]));
            for i in 0..n_left as u64 {
                a.push(Record::new(RecordId(i)).with("title", title(i))).unwrap();
            }
            let mut b = Dataset::new("b", Schema::new(["title"]));
            for i in 0..n_right as u64 {
                b.push(Record::new(RecordId(1_000 + i)).with("title", title(77 + i))).unwrap();
            }
            let blocker = TokenBlocker::new("title", Tokenizer::Words);
            let expected: BTreeSet<_> = blocker.candidates(&a, &b).into_iter().collect();
            let mut index = blocker.incremental();
            let mut union: BTreeSet<(RecordId, RecordId)> = BTreeSet::new();
            let left_chunks = batched(a.records(), split);
            let right_chunks = batched(b.records(), split);
            for i in 0..left_chunks.len().max(right_chunks.len()) {
                let l = left_chunks.get(i).copied().unwrap_or(&[]);
                let r = right_chunks.get(i).copied().unwrap_or(&[]);
                for pair in index.add_records(l, r) {
                    prop_assert!(union.insert(pair), "pair emitted twice: {:?}", pair);
                }
            }
            prop_assert_eq!(union, expected);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..Default::default() })]
        #[test]
        fn incremental_sorted_neighbourhood_is_monotone_superset(
            n_left in 1usize..10,
            n_right in 1usize..10,
            window in 1usize..5,
            salt in 0u64..1_000,
        ) {
            let key = |id: u64| -> String {
                let h = id.wrapping_mul(6364136223846793005).wrapping_add(salt);
                format!("{:03}", h % 50)
            };
            let mut a = Dataset::new("a", Schema::new(["title"]));
            for i in 0..n_left as u64 {
                a.push(Record::new(RecordId(i)).with("title", key(i))).unwrap();
            }
            let mut b = Dataset::new("b", Schema::new(["title"]));
            for i in 0..n_right as u64 {
                b.push(Record::new(RecordId(1_000 + i)).with("title", key(31 + i))).unwrap();
            }
            let blocker = SortedNeighbourhoodBlocker::new("title", window);
            let batch: BTreeSet<_> = blocker.candidates(&a, &b).into_iter().collect();
            let mut index = blocker.incremental();
            let mut union: BTreeSet<(RecordId, RecordId)> = BTreeSet::new();
            for i in 0..a.len().max(b.len()) {
                let l = a.records().get(i..i + 1).unwrap_or(&[]);
                let r = b.records().get(i..i + 1).unwrap_or(&[]);
                for pair in index.add_records(l, r) {
                    prop_assert!(union.insert(pair), "pair emitted twice: {:?}", pair);
                }
            }
            prop_assert!(union.is_superset(&batch));
        }
    }
}
