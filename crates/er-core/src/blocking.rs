//! Blocking: generating candidate record pairs without enumerating the full
//! cartesian product, plus the similarity-threshold filtering the paper applies
//! when building its ER workloads.
//!
//! The paper's experiments "use the blocking technique to filter the instance
//! pairs unlikely to match", keeping only pairs whose aggregated similarity is at
//! least a per-dataset threshold (0.2 for DBLP-Scholar, 0.05 for Abt-Buy). The
//! [`build_workload`] helper reproduces that pipeline: candidate generation →
//! scoring → threshold filter → similarity-sorted [`Workload`].

use crate::aggregate::PairScorer;
use crate::record::{Dataset, RecordId};
use crate::text::Tokenizer;
use crate::workload::{InstancePair, Label, PairId, Workload};
use crate::Result;
use std::collections::{BTreeMap, BTreeSet};

/// All pairs of the cartesian product between two datasets.
pub fn cartesian_pairs(a: &Dataset, b: &Dataset) -> Vec<(RecordId, RecordId)> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for ra in a.iter() {
        for rb in b.iter() {
            out.push((ra.id(), rb.id()));
        }
    }
    out
}

/// Token blocking: candidate pairs are record pairs sharing at least one token of
/// the blocking attribute.
#[derive(Debug, Clone)]
pub struct TokenBlocker {
    attribute: String,
    tokenizer: Tokenizer,
}

impl TokenBlocker {
    /// Creates a token blocker over the given attribute.
    pub fn new(attribute: impl Into<String>, tokenizer: Tokenizer) -> Self {
        Self { attribute: attribute.into(), tokenizer }
    }

    /// Generates candidate pairs between two datasets.
    pub fn candidates(&self, a: &Dataset, b: &Dataset) -> Vec<(RecordId, RecordId)> {
        // Tokens are deduplicated per record before indexing and probing: a
        // record repeating a token ("new york, new york") must not push its id
        // into a posting list twice, nor probe the same posting list twice —
        // the output set would hide it, but every duplicate re-scans a whole
        // posting list.
        let record_tokens = |text: &str| -> BTreeSet<String> {
            self.tokenizer.tokenize(text).into_iter().collect()
        };
        // Invert dataset b: token → record ids.
        let mut index: BTreeMap<String, Vec<RecordId>> = BTreeMap::new();
        for rb in b.iter() {
            if let Some(text) = rb.text(&self.attribute) {
                for token in record_tokens(text) {
                    index.entry(token).or_default().push(rb.id());
                }
            }
        }
        let mut seen: BTreeSet<(RecordId, RecordId)> = BTreeSet::new();
        for ra in a.iter() {
            if let Some(text) = ra.text(&self.attribute) {
                for token in record_tokens(text) {
                    if let Some(ids) = index.get(&token) {
                        for &rb_id in ids {
                            seen.insert((ra.id(), rb_id));
                        }
                    }
                }
            }
        }
        seen.into_iter().collect()
    }
}

/// Sorted-neighbourhood blocking: both datasets are sorted by a normalized blocking
/// key and records within a sliding window of each other become candidates.
#[derive(Debug, Clone)]
pub struct SortedNeighbourhoodBlocker {
    attribute: String,
    window: usize,
}

impl SortedNeighbourhoodBlocker {
    /// Creates a sorted-neighbourhood blocker over the given attribute with the
    /// given window size (a window of `w` pairs each record with the `w` records
    /// around it in key order).
    pub fn new(attribute: impl Into<String>, window: usize) -> Self {
        Self { attribute: attribute.into(), window: window.max(1) }
    }

    /// Generates candidate pairs between two datasets.
    pub fn candidates(&self, a: &Dataset, b: &Dataset) -> Vec<(RecordId, RecordId)> {
        #[derive(Clone)]
        struct Keyed {
            key: String,
            id: RecordId,
            from_a: bool,
        }
        let mut entries: Vec<Keyed> = Vec::with_capacity(a.len() + b.len());
        for r in a.iter() {
            let key = crate::text::normalize(r.text(&self.attribute).unwrap_or(""));
            entries.push(Keyed { key, id: r.id(), from_a: true });
        }
        for r in b.iter() {
            let key = crate::text::normalize(r.text(&self.attribute).unwrap_or(""));
            entries.push(Keyed { key, id: r.id(), from_a: false });
        }
        entries.sort_by(|x, y| x.key.cmp(&y.key));

        let mut seen: BTreeSet<(RecordId, RecordId)> = BTreeSet::new();
        for i in 0..entries.len() {
            let hi = (i + self.window + 1).min(entries.len());
            for j in (i + 1)..hi {
                let (x, y) = (&entries[i], &entries[j]);
                match (x.from_a, y.from_a) {
                    (true, false) => {
                        seen.insert((x.id, y.id));
                    }
                    (false, true) => {
                        seen.insert((y.id, x.id));
                    }
                    _ => {}
                }
            }
        }
        seen.into_iter().collect()
    }
}

/// Scores candidate pairs, filters them by a similarity threshold, and assembles a
/// similarity-sorted [`Workload`] with ground-truth labels.
///
/// * `candidates` — the output of a blocker (or [`cartesian_pairs`]);
/// * `scorer` — the attribute-weighted pair scorer;
/// * `ground_truth` — the set of record-id pairs that are true matches;
/// * `threshold` — pairs scoring below this aggregated similarity are dropped
///   (the paper's per-dataset blocking threshold).
pub fn build_workload(
    a: &Dataset,
    b: &Dataset,
    candidates: &[(RecordId, RecordId)],
    scorer: &PairScorer,
    ground_truth: &BTreeSet<(RecordId, RecordId)>,
    threshold: f64,
) -> Result<Workload> {
    let mut pairs = Vec::new();
    let mut next_id = 0u64;
    for &(left, right) in candidates {
        let ra = a.require(left)?;
        let rb = b.require(right)?;
        let similarity = scorer.score(ra, rb);
        if similarity < threshold {
            continue;
        }
        let label = Label::from_bool(ground_truth.contains(&(left, right)));
        pairs.push(InstancePair::with_records(PairId(next_id), left, right, similarity, label));
        next_id += 1;
    }
    Workload::from_pairs(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{AttributeMeasure, AttributeWeighting, ScoringConfig};
    use crate::record::{Record, Schema};
    use crate::similarity::StringMeasure;

    fn dataset(name: &str, titles: &[(u64, &str)]) -> Dataset {
        let mut ds = Dataset::new(name, Schema::new(["title"]));
        for &(id, title) in titles {
            ds.push(Record::new(RecordId(id)).with("title", title)).unwrap();
        }
        ds
    }

    fn title_scorer(datasets: &[&Dataset]) -> PairScorer {
        let config = ScoringConfig::new(
            [("title", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words)))],
            AttributeWeighting::Uniform,
        );
        PairScorer::new(&config, datasets).unwrap()
    }

    #[test]
    fn cartesian_pairs_full_product() {
        let a = dataset("a", &[(1, "x"), (2, "y")]);
        let b = dataset("b", &[(10, "x"), (11, "y"), (12, "z")]);
        assert_eq!(cartesian_pairs(&a, &b).len(), 6);
    }

    #[test]
    fn token_blocking_only_pairs_sharing_tokens() {
        let a = dataset("a", &[(1, "entity resolution survey"), (2, "graph neural networks")]);
        let b = dataset(
            "b",
            &[
                (10, "a survey of entity resolution"),
                (11, "convolutional networks"),
                (12, "databases"),
            ],
        );
        let blocker = TokenBlocker::new("title", Tokenizer::Words);
        let candidates = blocker.candidates(&a, &b);
        assert!(candidates.contains(&(RecordId(1), RecordId(10))));
        assert!(candidates.contains(&(RecordId(2), RecordId(11)))); // shares "networks"
        assert!(!candidates.contains(&(RecordId(1), RecordId(12))));
        // No duplicates even though multiple tokens are shared.
        let unique: BTreeSet<_> = candidates.iter().collect();
        assert_eq!(unique.len(), candidates.len());
    }

    #[test]
    fn repeated_tokens_do_not_duplicate_index_postings() {
        // Records that repeat a token ("new york new york") must behave exactly
        // like their deduplicated counterparts: same candidates, no duplicate
        // posting-list entries blowing up the probe work.
        let a = dataset("a", &[(1, "york york york new new"), (2, "boston")]);
        let b = dataset("b", &[(10, "new york"), (11, "york york minster"), (12, "chicago")]);
        let blocker = TokenBlocker::new("title", Tokenizer::Words);
        let candidates = blocker.candidates(&a, &b);
        let dedup_a = dataset("a", &[(1, "york new"), (2, "boston")]);
        let dedup_b = dataset("b", &[(10, "new york"), (11, "york minster"), (12, "chicago")]);
        let dedup_candidates = blocker.candidates(&dedup_a, &dedup_b);
        assert_eq!(candidates, dedup_candidates);
        assert!(candidates.contains(&(RecordId(1), RecordId(10))));
        assert!(candidates.contains(&(RecordId(1), RecordId(11))));
        assert!(!candidates.contains(&(RecordId(2), RecordId(12))));
        let unique: BTreeSet<_> = candidates.iter().collect();
        assert_eq!(unique.len(), candidates.len());
    }

    #[test]
    fn token_blocking_is_subset_of_cartesian() {
        let a = dataset("a", &[(1, "alpha beta"), (2, "gamma")]);
        let b = dataset("b", &[(10, "beta"), (11, "delta")]);
        let candidates = TokenBlocker::new("title", Tokenizer::Words).candidates(&a, &b);
        let all: BTreeSet<_> = cartesian_pairs(&a, &b).into_iter().collect();
        for c in &candidates {
            assert!(all.contains(c));
        }
        assert!(candidates.len() < all.len());
    }

    #[test]
    fn sorted_neighbourhood_pairs_nearby_keys() {
        let a = dataset("a", &[(1, "aaa"), (2, "mmm"), (3, "zzz")]);
        let b = dataset("b", &[(10, "aab"), (11, "mmn"), (12, "zzy")]);
        let blocker = SortedNeighbourhoodBlocker::new("title", 2);
        let candidates = blocker.candidates(&a, &b);
        assert!(candidates.contains(&(RecordId(1), RecordId(10))));
        assert!(candidates.contains(&(RecordId(2), RecordId(11))));
        assert!(candidates.contains(&(RecordId(3), RecordId(12))));
        // Distant keys should not be paired with a small window.
        assert!(!candidates.contains(&(RecordId(1), RecordId(12))));
    }

    #[test]
    fn build_workload_scores_filters_and_labels() {
        let a = dataset("a", &[(1, "entity resolution framework"), (2, "deep learning")]);
        let b = dataset(
            "b",
            &[(10, "entity resolution framework"), (11, "reinforcement learning agents")],
        );
        let scorer = title_scorer(&[&a, &b]);
        let candidates = cartesian_pairs(&a, &b);
        let mut truth = BTreeSet::new();
        truth.insert((RecordId(1), RecordId(10)));
        let workload = build_workload(&a, &b, &candidates, &scorer, &truth, 0.1).unwrap();
        // The exact-match pair survives with similarity 1 and a Match label.
        let top = workload.pairs().last().unwrap();
        assert_eq!(top.left(), Some(RecordId(1)));
        assert_eq!(top.right(), Some(RecordId(10)));
        assert!((top.similarity() - 1.0).abs() < 1e-12);
        assert!(top.is_match());
        // Completely dissimilar pairs are filtered by the threshold.
        assert!(workload.len() < candidates.len());
        // Every retained pair meets the threshold.
        for p in workload.pairs() {
            assert!(p.similarity() >= 0.1);
        }
    }

    #[test]
    fn build_workload_rejects_unknown_records() {
        let a = dataset("a", &[(1, "x")]);
        let b = dataset("b", &[(10, "x")]);
        let scorer = title_scorer(&[&a, &b]);
        let bogus = vec![(RecordId(99), RecordId(10))];
        assert!(build_workload(&a, &b, &bogus, &scorer, &BTreeSet::new(), 0.0).is_err());
    }
}
