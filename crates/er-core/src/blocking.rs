//! Blocking: generating candidate record pairs without enumerating the full
//! cartesian product, plus the similarity-threshold filtering the paper applies
//! when building its ER workloads.
//!
//! The paper's experiments "use the blocking technique to filter the instance
//! pairs unlikely to match", keeping only pairs whose aggregated similarity is at
//! least a per-dataset threshold (0.2 for DBLP-Scholar, 0.05 for Abt-Buy). The
//! [`build_workload`] helper reproduces that pipeline: candidate generation →
//! scoring → threshold filter → similarity-sorted [`Workload`].
//!
//! Both blockers also come in an **incremental** flavour for streaming
//! ingestion ([`TokenBlocker::incremental`],
//! [`SortedNeighbourhoodBlocker::incremental`]): record batches are folded into
//! a persistent index and each `add_records` call returns only the *delta*
//! candidate pairs — the pairs involving at least one record of the new batch —
//! without rescanning the pairs of previously ingested records.

use crate::aggregate::{PairScorer, TokenCache};
use crate::codec::{fnv1a, ByteReader, ByteWriter};
use crate::parallel::{ParallelExecutor, SerialExecutor};
use crate::record::{Dataset, Record, RecordId};
use crate::spill::{ChunkHandle, MemoryBudget, SpillFile};
use crate::text::Tokenizer;
use crate::workload::{InstancePair, Label, PairId, Workload};
use crate::Result;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;

/// All pairs of the cartesian product between two datasets.
pub fn cartesian_pairs(a: &Dataset, b: &Dataset) -> Vec<(RecordId, RecordId)> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for ra in a.iter() {
        for rb in b.iter() {
            out.push((ra.id(), rb.id()));
        }
    }
    out
}

/// Token blocking: candidate pairs are record pairs sharing at least one token of
/// the blocking attribute.
#[derive(Debug, Clone)]
pub struct TokenBlocker {
    attribute: String,
    tokenizer: Tokenizer,
}

impl TokenBlocker {
    /// Creates a token blocker over the given attribute.
    pub fn new(attribute: impl Into<String>, tokenizer: Tokenizer) -> Self {
        Self { attribute: attribute.into(), tokenizer }
    }

    /// Generates candidate pairs between two datasets.
    pub fn candidates(&self, a: &Dataset, b: &Dataset) -> Vec<(RecordId, RecordId)> {
        self.candidates_impl(a, b, None)
    }

    /// Generates candidate pairs between two datasets, reusing memoized token
    /// sequences (records of `a` on the cache's left side, `b` on its right)
    /// instead of re-tokenizing. Produces exactly [`TokenBlocker::candidates`].
    pub fn candidates_with_cache(
        &self,
        a: &Dataset,
        b: &Dataset,
        cache: &TokenCache,
    ) -> Vec<(RecordId, RecordId)> {
        self.candidates_impl(a, b, Some(cache))
    }

    fn candidates_impl(
        &self,
        a: &Dataset,
        b: &Dataset,
        cache: Option<&TokenCache>,
    ) -> Vec<(RecordId, RecordId)> {
        // Tokens are deduplicated per record before indexing and probing: a
        // record repeating a token ("new york, new york") must not push its id
        // into a posting list twice, nor probe the same posting list twice —
        // the output set would hide it, but every duplicate re-scans a whole
        // posting list.
        let record_tokens = |record: &Record, side: usize| -> BTreeSet<String> {
            unique_record_tokens(&self.attribute, self.tokenizer, record, side, cache).0
        };
        // Invert dataset b: token → record ids.
        let mut index: BTreeMap<String, Vec<RecordId>> = BTreeMap::new();
        for rb in b.iter() {
            for token in record_tokens(rb, 1) {
                index.entry(token).or_default().push(rb.id());
            }
        }
        let mut seen: BTreeSet<(RecordId, RecordId)> = BTreeSet::new();
        for ra in a.iter() {
            for token in record_tokens(ra, 0) {
                if let Some(ids) = index.get(&token) {
                    for &rb_id in ids {
                        seen.insert((ra.id(), rb_id));
                    }
                }
            }
        }
        seen.into_iter().collect()
    }

    /// Creates an empty incremental index with this blocker's attribute and
    /// tokenizer, sharded over [`DEFAULT_SHARDS`] token-hash shards. Feed
    /// record batches through [`IncrementalTokenIndex::add_records`] to obtain
    /// delta candidates.
    pub fn incremental(&self) -> IncrementalTokenIndex {
        self.incremental_sharded(DEFAULT_SHARDS)
    }

    /// Creates an empty incremental index with an explicit shard count.
    /// Candidates are shard-count-invariant; the count only controls how much
    /// of the per-batch work a parallel executor can spread.
    pub fn incremental_sharded(&self, shards: usize) -> IncrementalTokenIndex {
        IncrementalTokenIndex {
            attribute: self.attribute.clone(),
            tokenizer: self.tokenizer,
            shards: (0..shards.max(1)).map(|_| TokenShard::default()).collect(),
            records_indexed: 0,
            budget: MemoryBudget::default(),
            spill: None,
            obs: er_obs::ObsHandle::default(),
        }
    }
}

/// Default shard count of [`TokenBlocker::incremental`].
pub const DEFAULT_SHARDS: usize = 8;

/// The unique token set of one record, via the cache when admitted (`side`
/// 0 = left, 1 = right) and by fresh tokenization otherwise. The flag reports
/// whether the cache answered (always `false` without a cache).
fn unique_record_tokens(
    attribute: &str,
    tokenizer: Tokenizer,
    record: &Record,
    side: usize,
    cache: Option<&TokenCache>,
) -> (BTreeSet<String>, bool) {
    if let Some(cache) = cache {
        let cached = if side == 0 {
            cache.left_tokens(attribute, tokenizer, record.id())
        } else {
            cache.right_tokens(attribute, tokenizer, record.id())
        };
        if let Some(tokens) = cached {
            return (tokens.iter().cloned().collect(), true);
        }
    }
    let tokens = record
        .text(attribute)
        .map(|text| tokenizer.tokenize(text).into_iter().collect())
        .unwrap_or_default();
    (tokens, false)
}

/// A persistent token-blocking index supporting incremental ingestion,
/// sharded by token hash.
///
/// The index keeps one posting list per token and side, spread over N
/// independent shards (token → shard via FNV-1a). Adding a batch probes the
/// *existing* posting lists for the new records' tokens, so the work per
/// batch is proportional to the new records and their matching postings — old
/// candidate pairs are never re-derived. The union of the deltas over any batch
/// split equals [`TokenBlocker::candidates`] on the union of the records, and a
/// pair is never emitted twice (every delta pair involves a record of the
/// current batch).
///
/// Sharding is behaviour-invisible: because every token lives in exactly one
/// shard and each shard replays the same probe-before-insert discipline over
/// its token subset, the merged + deduplicated per-batch delta is identical
/// for every shard count — pairs sharing tokens in several shards are emitted
/// by each of them (always in the same batch, the one where the later record
/// arrives) and collapse in the merge. [`add_records_with`] fans the per-shard
/// work out over a [`ParallelExecutor`].
///
/// Under a [`MemoryBudget`] with a posting bound, shards freeze their resident
/// posting maps into immutable on-disk *generations* (`HPG1` chunks, see
/// [`crate::spill`]) between batches; probes consult the resident maps plus
/// every generation through a small resident hash directory, so budgeted and
/// unbounded indexes produce identical candidates.
///
/// [`add_records_with`]: IncrementalTokenIndex::add_records_with
#[derive(Debug, Clone)]
pub struct IncrementalTokenIndex {
    attribute: String,
    tokenizer: Tokenizer,
    shards: Vec<TokenShard>,
    records_indexed: usize,
    budget: MemoryBudget,
    spill: Option<Arc<SpillFile>>,
    obs: er_obs::ObsHandle,
}

const SIDE_LEFT: u8 = 0;
const SIDE_RIGHT: u8 = 1;
const POSTING_MAGIC: [u8; 4] = *b"HPG1";

/// FNV-1a over `(side, token)` — the key of posting-generation directories.
fn posting_key(side: u8, token: &str) -> u64 {
    let mut buf = Vec::with_capacity(1 + token.len());
    buf.push(side);
    buf.extend_from_slice(token.as_bytes());
    fnv1a(&buf)
}

/// One token-hash shard: resident posting maps plus frozen on-disk generations.
#[derive(Debug, Clone, Default)]
struct TokenShard {
    resident_left: BTreeMap<String, Vec<RecordId>>,
    resident_right: BTreeMap<String, Vec<RecordId>>,
    /// Total record-id entries across both resident maps.
    resident_postings: usize,
    generations: Vec<PostingGeneration>,
}

/// An immutable spilled snapshot of a shard's posting maps.
#[derive(Debug, Clone)]
struct PostingGeneration {
    spill: Arc<SpillFile>,
    handle: ChunkHandle,
    /// FNV-1a of `(side, token)` → byte ranges of matching entries inside the
    /// chunk. A bucket may hold hash collisions; probes verify token bytes.
    directory: HashMap<u64, Vec<(u32, u32)>>,
}

impl PostingGeneration {
    fn probe_into(&self, side: u8, token: &str, out: &mut Vec<RecordId>) {
        let Some(ranges) = self.directory.get(&posting_key(side, token)) else {
            return;
        };
        for &(start, len) in ranges {
            // Sub-entry read: the enclosing chunk was checksummed when written
            // whole; entry reads skip re-verification by design.
            let bytes = self
                .spill
                .read_at(self.handle.offset + start as u64, len as usize)
                .expect("posting spill read failed");
            let mut r = ByteReader::unchecked(&bytes);
            let parse = |r: &mut ByteReader<'_>| -> Result<(u8, Vec<RecordId>)> {
                let entry_side = r.take_u8()?;
                let token_len = r.take_u32()? as usize;
                let entry_token = r.take_bytes(token_len)?;
                if entry_side != side || entry_token != token.as_bytes() {
                    return Ok((entry_side, Vec::new())); // hash collision
                }
                let n = r.take_u32()? as usize;
                let mut ids = Vec::with_capacity(n);
                for _ in 0..n {
                    ids.push(RecordId(r.take_u64()?));
                }
                Ok((entry_side, ids))
            };
            let (_, ids) = parse(&mut r).expect("posting generation entry corrupt");
            out.extend(ids);
        }
    }
}

impl TokenShard {
    /// All indexed record ids for a token on one side: every frozen generation
    /// plus the resident map.
    fn probe(&self, side: u8, token: &str) -> Vec<RecordId> {
        let mut out = Vec::new();
        for generation in &self.generations {
            generation.probe_into(side, token, &mut out);
        }
        let resident = if side == SIDE_LEFT { &self.resident_left } else { &self.resident_right };
        if let Some(ids) = resident.get(token) {
            out.extend_from_slice(ids);
        }
        out
    }

    /// Folds this shard's slice of a batch into the shard and returns its
    /// delta pairs. Right side first, mirroring the pre-shard index: new right
    /// records pair with previously indexed left records here, and pairs with
    /// the new left records are found below once the right postings are in
    /// place — the split that keeps every within-batch pair emitted exactly
    /// once per shard.
    fn apply(&mut self, work: &ShardWork) -> Vec<(RecordId, RecordId)> {
        let mut delta: BTreeSet<(RecordId, RecordId)> = BTreeSet::new();
        for (id, tokens) in &work.rights {
            for token in tokens {
                for left_id in self.probe(SIDE_LEFT, token) {
                    delta.insert((left_id, *id));
                }
                self.resident_right.entry(token.clone()).or_default().push(*id);
                self.resident_postings += 1;
            }
        }
        for (id, tokens) in &work.lefts {
            for token in tokens {
                for right_id in self.probe(SIDE_RIGHT, token) {
                    delta.insert((*id, right_id));
                }
                self.resident_left.entry(token.clone()).or_default().push(*id);
                self.resident_postings += 1;
            }
        }
        delta.into_iter().collect()
    }

    /// Freezes the resident posting maps into one immutable `HPG1` generation
    /// chunk and clears them.
    fn freeze(&mut self, spill: &Arc<SpillFile>) -> Result<()> {
        if self.resident_postings == 0 {
            return Ok(());
        }
        let entry_count = self.resident_left.len() + self.resident_right.len();
        let mut w = ByteWriter::with_capacity(16 + self.resident_postings * 8);
        w.put_bytes(&POSTING_MAGIC);
        w.put_u32(entry_count as u32);
        let mut entries: Vec<(u64, u32, u32)> = Vec::with_capacity(entry_count);
        for (side, map) in [(SIDE_LEFT, &self.resident_left), (SIDE_RIGHT, &self.resident_right)] {
            for (token, ids) in map {
                let start = w.len() as u32;
                w.put_u8(side);
                w.put_u32(token.len() as u32);
                w.put_bytes(token.as_bytes());
                w.put_u32(ids.len() as u32);
                for id in ids {
                    w.put_u64(id.0);
                }
                entries.push((posting_key(side, token), start, w.len() as u32 - start));
            }
        }
        let handle = spill.append(&w.finish())?;
        let mut directory: HashMap<u64, Vec<(u32, u32)>> = HashMap::with_capacity(entry_count);
        for (key, start, len) in entries {
            directory.entry(key).or_default().push((start, len));
        }
        self.generations.push(PostingGeneration { spill: Arc::clone(spill), handle, directory });
        self.resident_left.clear();
        self.resident_right.clear();
        self.resident_postings = 0;
        Ok(())
    }
}

/// One shard's slice of a record batch: per record, the unique tokens that
/// hash into the shard, in batch order.
#[derive(Debug, Default)]
struct ShardWork {
    lefts: Vec<(RecordId, Vec<String>)>,
    rights: Vec<(RecordId, Vec<String>)>,
}

impl IncrementalTokenIndex {
    /// Number of records folded into the index so far (both sides).
    pub fn records_indexed(&self) -> usize {
        self.records_indexed
    }

    /// Number of token-hash shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Sets the memory budget governing resident postings and immediately
    /// freezes shards if the index is already over it.
    pub fn set_memory_budget(&mut self, budget: MemoryBudget) -> Result<()> {
        self.budget = budget;
        self.enforce_budget()
    }

    /// The configured memory budget.
    pub fn memory_budget(&self) -> &MemoryBudget {
        &self.budget
    }

    /// Record-id posting entries currently resident across all shards.
    pub fn resident_postings(&self) -> usize {
        self.shards.iter().map(|s| s.resident_postings).sum()
    }

    /// Number of frozen on-disk posting generations across all shards.
    pub fn spilled_generations(&self) -> usize {
        self.shards.iter().map(|s| s.generations.len()).sum()
    }

    /// Total bytes appended to the index's spill file (0 without spilling).
    pub fn spilled_bytes(&self) -> u64 {
        self.spill.as_ref().map_or(0, |s| s.bytes_written())
    }

    /// Attaches an observability handle; blocking and posting-spill events
    /// are recorded through it from then on.
    pub fn set_obs(&mut self, obs: er_obs::ObsHandle) {
        self.obs = obs;
    }

    /// Folds a batch of records into the index and returns the **new** candidate
    /// pairs: every `(left, right)` pair sharing at least one token where at
    /// least one side belongs to this batch. Pairs are deduplicated and sorted.
    pub fn add_records(
        &mut self,
        left_batch: &[Record],
        right_batch: &[Record],
    ) -> Vec<(RecordId, RecordId)> {
        self.add_records_with(left_batch, right_batch, &SerialExecutor, None)
    }

    /// [`add_records`](IncrementalTokenIndex::add_records) with an explicit
    /// execution seam and optional token memo: the per-shard candidate deltas
    /// are computed through `executor` (one work item per shard) and record
    /// token sets come from `cache` where admitted. Both knobs are
    /// behaviour-invisible — the returned delta is identical for any executor,
    /// cache state and shard count.
    pub fn add_records_with<E: ParallelExecutor>(
        &mut self,
        left_batch: &[Record],
        right_batch: &[Record],
        executor: &E,
        cache: Option<&TokenCache>,
    ) -> Vec<(RecordId, RecordId)> {
        let shard_count = self.shards.len();
        let mut work: Vec<ShardWork> = (0..shard_count).map(|_| ShardWork::default()).collect();
        let mut token_cache_hits = 0u64;
        let mut token_cache_misses = 0u64;
        for (side, batch) in [(SIDE_LEFT, left_batch), (SIDE_RIGHT, right_batch)] {
            for record in batch {
                let (tokens, cache_hit) = unique_record_tokens(
                    &self.attribute,
                    self.tokenizer,
                    record,
                    side as usize,
                    cache,
                );
                if cache_hit {
                    token_cache_hits += 1;
                } else {
                    token_cache_misses += 1;
                }
                let mut split: Vec<Vec<String>> = vec![Vec::new(); shard_count];
                for token in tokens {
                    let shard = (fnv1a(token.as_bytes()) % shard_count as u64) as usize;
                    split[shard].push(token);
                }
                for (shard, shard_tokens) in split.into_iter().enumerate() {
                    if shard_tokens.is_empty() {
                        continue;
                    }
                    let routed = (record.id(), shard_tokens);
                    if side == SIDE_LEFT {
                        work[shard].lefts.push(routed);
                    } else {
                        work[shard].rights.push(routed);
                    }
                }
            }
        }
        let deltas = executor.map_mut(&mut self.shards, |i, shard| shard.apply(&work[i]));
        self.records_indexed += left_batch.len() + right_batch.len();
        if self.obs.is_enabled() {
            // Token-cache hits only mean something when a cache was supplied;
            // per-shard delta sizes expose blocking skew across shards.
            if cache.is_some() {
                self.obs.counter("blocking.tokencache.hits", token_cache_hits);
                self.obs.counter("blocking.tokencache.misses", token_cache_misses);
            }
            for delta in &deltas {
                self.obs.observe("blocking.shard_delta_pairs", delta.len() as f64);
            }
        }
        let mut merged: BTreeSet<(RecordId, RecordId)> = BTreeSet::new();
        for delta in deltas {
            merged.extend(delta);
        }
        // Between-batch budget enforcement; the index owns its unlinked spill
        // file, so I/O failures here are unrecoverable and loud.
        self.enforce_budget().expect("posting spill failed");
        merged.into_iter().collect()
    }

    /// Freezes every shard's resident postings into on-disk generations when
    /// the resident total exceeds the budget.
    fn enforce_budget(&mut self) -> Result<()> {
        let budget = self.budget.resident_postings;
        if budget == 0 || self.resident_postings() <= budget {
            return Ok(());
        }
        if self.spill.is_none() {
            self.spill = Some(Arc::new(SpillFile::create_in(self.budget.spill_dir.as_deref())?));
        }
        let spill = Arc::clone(self.spill.as_ref().expect("spill file just ensured"));
        let generations_before = self.spilled_generations();
        let bytes_before = spill.bytes_written();
        for shard in &mut self.shards {
            shard.freeze(&spill)?;
        }
        let frozen = (self.spilled_generations() - generations_before) as u64;
        if frozen > 0 {
            self.obs.counter("spill.postings.generations_spilled", frozen);
            self.obs.counter("spill.postings.bytes_spilled", spill.bytes_written() - bytes_before);
        }
        Ok(())
    }
}

/// Sorted-neighbourhood blocking: both datasets are sorted by a normalized blocking
/// key and records within a sliding window of each other become candidates.
#[derive(Debug, Clone)]
pub struct SortedNeighbourhoodBlocker {
    attribute: String,
    window: usize,
}

impl SortedNeighbourhoodBlocker {
    /// Creates a sorted-neighbourhood blocker over the given attribute with the
    /// given window size (a window of `w` pairs each record with the `w` records
    /// around it in key order).
    pub fn new(attribute: impl Into<String>, window: usize) -> Self {
        Self { attribute: attribute.into(), window: window.max(1) }
    }

    /// Generates candidate pairs between two datasets.
    ///
    /// Overlapping windows encounter the same pair repeatedly; emitted pairs are
    /// deduplicated so every candidate appears exactly once.
    pub fn candidates(&self, a: &Dataset, b: &Dataset) -> Vec<(RecordId, RecordId)> {
        let mut entries: Vec<SnEntry> = Vec::with_capacity(a.len() + b.len());
        for r in a.iter() {
            entries.push(SnEntry::new(&self.attribute, r, true));
        }
        for r in b.iter() {
            entries.push(SnEntry::new(&self.attribute, r, false));
        }
        entries.sort_by(SnEntry::cmp);

        let mut seen: BTreeSet<(RecordId, RecordId)> = BTreeSet::new();
        for i in 0..entries.len() {
            let hi = (i + self.window + 1).min(entries.len());
            for j in (i + 1)..hi {
                if let Some(pair) = SnEntry::cross_pair(&entries[i], &entries[j]) {
                    seen.insert(pair);
                }
            }
        }
        seen.into_iter().collect()
    }

    /// Creates an empty incremental index with this blocker's attribute and
    /// window. Feed record batches through
    /// [`IncrementalSortedNeighbourhoodIndex::add_records`] to obtain delta
    /// candidates.
    pub fn incremental(&self) -> IncrementalSortedNeighbourhoodIndex {
        IncrementalSortedNeighbourhoodIndex {
            attribute: self.attribute.clone(),
            window: self.window,
            entries: Vec::new(),
        }
    }
}

/// One key-sorted entry of a sorted-neighbourhood arrangement.
#[derive(Debug, Clone)]
struct SnEntry {
    key: String,
    id: RecordId,
    from_left: bool,
}

impl SnEntry {
    fn new(attribute: &str, record: &Record, from_left: bool) -> Self {
        let key = crate::text::normalize(record.text(attribute).unwrap_or(""));
        Self { key, id: record.id(), from_left }
    }

    /// Canonical total order: by key, then left-side entries before right-side
    /// ones, then by record id. Because the order is total and independent of
    /// insertion sequence, the batch and incremental arrangements agree.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key
            .cmp(&other.key)
            .then_with(|| other.from_left.cmp(&self.from_left))
            .then_with(|| self.id.cmp(&other.id))
    }

    /// The normalized `(left, right)` pair when the two entries come from
    /// different sides, `None` otherwise.
    fn cross_pair(x: &Self, y: &Self) -> Option<(RecordId, RecordId)> {
        match (x.from_left, y.from_left) {
            (true, false) => Some((x.id, y.id)),
            (false, true) => Some((y.id, x.id)),
            _ => None,
        }
    }
}

/// A persistent sorted-neighbourhood arrangement supporting incremental
/// ingestion.
///
/// New batches are merge-inserted into the key-sorted arrangement and each new
/// entry is paired with the records inside its window at its final position, so
/// the per-batch work is `O(existing + batch·window)` — old windows are never
/// re-scanned. Every delta pair involves a record of the current batch, hence a
/// pair is never emitted twice across batches.
///
/// Unlike token blocking, sorted-neighbourhood candidates are **monotone but not
/// split-invariant**: records inserted later can push two earlier records apart,
/// so the union of the deltas is a *superset* of the batch
/// [`SortedNeighbourhoodBlocker::candidates`] on the union (it covers every
/// batch pair, plus pairs that were window-neighbours at some point of the
/// ingestion history). Once emitted, a candidate stays a candidate.
#[derive(Debug, Clone)]
pub struct IncrementalSortedNeighbourhoodIndex {
    attribute: String,
    window: usize,
    entries: Vec<SnEntry>,
}

impl IncrementalSortedNeighbourhoodIndex {
    /// Number of records folded into the arrangement so far (both sides).
    pub fn records_indexed(&self) -> usize {
        self.entries.len()
    }

    /// Folds a batch of records into the arrangement and returns the **new**
    /// candidate pairs: every cross-source pair within the window of a record of
    /// this batch, at its position in the updated arrangement. Pairs are
    /// deduplicated and sorted.
    pub fn add_records(
        &mut self,
        left_batch: &[Record],
        right_batch: &[Record],
    ) -> Vec<(RecordId, RecordId)> {
        let mut incoming: Vec<SnEntry> = Vec::with_capacity(left_batch.len() + right_batch.len());
        for r in left_batch {
            incoming.push(SnEntry::new(&self.attribute, r, true));
        }
        for r in right_batch {
            incoming.push(SnEntry::new(&self.attribute, r, false));
        }
        incoming.sort_by(SnEntry::cmp);

        // Merge the sorted batch into the sorted arrangement, recording the
        // final positions of the new entries.
        let old = std::mem::take(&mut self.entries);
        let mut merged = Vec::with_capacity(old.len() + incoming.len());
        let mut new_positions = Vec::with_capacity(incoming.len());
        let mut old_iter = old.into_iter().peekable();
        let mut new_iter = incoming.into_iter().peekable();
        loop {
            let take_new = match (old_iter.peek(), new_iter.peek()) {
                (Some(o), Some(n)) => SnEntry::cmp(n, o) == std::cmp::Ordering::Less,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (None, None) => break,
            };
            if take_new {
                new_positions.push(merged.len());
                merged.push(new_iter.next().expect("peeked"));
            } else {
                merged.push(old_iter.next().expect("peeked"));
            }
        }
        self.entries = merged;

        let mut delta: BTreeSet<(RecordId, RecordId)> = BTreeSet::new();
        for &p in &new_positions {
            let lo = p.saturating_sub(self.window);
            let hi = (p + self.window).min(self.entries.len().saturating_sub(1));
            for j in lo..=hi {
                if j == p {
                    continue;
                }
                if let Some(pair) = SnEntry::cross_pair(&self.entries[p], &self.entries[j]) {
                    delta.insert(pair);
                }
            }
        }
        delta.into_iter().collect()
    }
}

/// Scores candidate pairs, filters them by a similarity threshold, and assembles a
/// similarity-sorted [`Workload`] with ground-truth labels.
///
/// * `candidates` — the output of a blocker (or [`cartesian_pairs`]);
/// * `scorer` — the attribute-weighted pair scorer;
/// * `ground_truth` — the set of record-id pairs that are true matches;
/// * `threshold` — pairs scoring below this aggregated similarity are dropped
///   (the paper's per-dataset blocking threshold).
pub fn build_workload(
    a: &Dataset,
    b: &Dataset,
    candidates: &[(RecordId, RecordId)],
    scorer: &PairScorer,
    ground_truth: &BTreeSet<(RecordId, RecordId)>,
    threshold: f64,
) -> Result<Workload> {
    let mut pairs = Vec::new();
    let mut next_id = 0u64;
    for &(left, right) in candidates {
        let ra = a.require(left)?;
        let rb = b.require(right)?;
        let similarity = scorer.score(ra, rb);
        if similarity < threshold {
            continue;
        }
        let label = Label::from_bool(ground_truth.contains(&(left, right)));
        pairs.push(InstancePair::with_records(PairId(next_id), left, right, similarity, label));
        next_id += 1;
    }
    Workload::from_pairs(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{AttributeMeasure, AttributeWeighting, ScoringConfig};
    use crate::record::{Record, Schema};
    use crate::similarity::StringMeasure;
    use proptest::prelude::*;

    fn dataset(name: &str, titles: &[(u64, &str)]) -> Dataset {
        let mut ds = Dataset::new(name, Schema::new(["title"]));
        for &(id, title) in titles {
            ds.push(Record::new(RecordId(id)).with("title", title)).unwrap();
        }
        ds
    }

    fn title_scorer(datasets: &[&Dataset]) -> PairScorer {
        let config = ScoringConfig::new(
            [("title", AttributeMeasure::Text(StringMeasure::Jaccard(Tokenizer::Words)))],
            AttributeWeighting::Uniform,
        );
        PairScorer::new(&config, datasets).unwrap()
    }

    #[test]
    fn cartesian_pairs_full_product() {
        let a = dataset("a", &[(1, "x"), (2, "y")]);
        let b = dataset("b", &[(10, "x"), (11, "y"), (12, "z")]);
        assert_eq!(cartesian_pairs(&a, &b).len(), 6);
    }

    #[test]
    fn token_blocking_only_pairs_sharing_tokens() {
        let a = dataset("a", &[(1, "entity resolution survey"), (2, "graph neural networks")]);
        let b = dataset(
            "b",
            &[
                (10, "a survey of entity resolution"),
                (11, "convolutional networks"),
                (12, "databases"),
            ],
        );
        let blocker = TokenBlocker::new("title", Tokenizer::Words);
        let candidates = blocker.candidates(&a, &b);
        assert!(candidates.contains(&(RecordId(1), RecordId(10))));
        assert!(candidates.contains(&(RecordId(2), RecordId(11)))); // shares "networks"
        assert!(!candidates.contains(&(RecordId(1), RecordId(12))));
        // No duplicates even though multiple tokens are shared.
        let unique: BTreeSet<_> = candidates.iter().collect();
        assert_eq!(unique.len(), candidates.len());
    }

    #[test]
    fn repeated_tokens_do_not_duplicate_index_postings() {
        // Records that repeat a token ("new york new york") must behave exactly
        // like their deduplicated counterparts: same candidates, no duplicate
        // posting-list entries blowing up the probe work.
        let a = dataset("a", &[(1, "york york york new new"), (2, "boston")]);
        let b = dataset("b", &[(10, "new york"), (11, "york york minster"), (12, "chicago")]);
        let blocker = TokenBlocker::new("title", Tokenizer::Words);
        let candidates = blocker.candidates(&a, &b);
        let dedup_a = dataset("a", &[(1, "york new"), (2, "boston")]);
        let dedup_b = dataset("b", &[(10, "new york"), (11, "york minster"), (12, "chicago")]);
        let dedup_candidates = blocker.candidates(&dedup_a, &dedup_b);
        assert_eq!(candidates, dedup_candidates);
        assert!(candidates.contains(&(RecordId(1), RecordId(10))));
        assert!(candidates.contains(&(RecordId(1), RecordId(11))));
        assert!(!candidates.contains(&(RecordId(2), RecordId(12))));
        let unique: BTreeSet<_> = candidates.iter().collect();
        assert_eq!(unique.len(), candidates.len());
    }

    #[test]
    fn token_blocking_is_subset_of_cartesian() {
        let a = dataset("a", &[(1, "alpha beta"), (2, "gamma")]);
        let b = dataset("b", &[(10, "beta"), (11, "delta")]);
        let candidates = TokenBlocker::new("title", Tokenizer::Words).candidates(&a, &b);
        let all: BTreeSet<_> = cartesian_pairs(&a, &b).into_iter().collect();
        for c in &candidates {
            assert!(all.contains(c));
        }
        assert!(candidates.len() < all.len());
    }

    #[test]
    fn sorted_neighbourhood_pairs_nearby_keys() {
        let a = dataset("a", &[(1, "aaa"), (2, "mmm"), (3, "zzz")]);
        let b = dataset("b", &[(10, "aab"), (11, "mmn"), (12, "zzy")]);
        let blocker = SortedNeighbourhoodBlocker::new("title", 2);
        let candidates = blocker.candidates(&a, &b);
        assert!(candidates.contains(&(RecordId(1), RecordId(10))));
        assert!(candidates.contains(&(RecordId(2), RecordId(11))));
        assert!(candidates.contains(&(RecordId(3), RecordId(12))));
        // Distant keys should not be paired with a small window.
        assert!(!candidates.contains(&(RecordId(1), RecordId(12))));
    }

    #[test]
    fn build_workload_scores_filters_and_labels() {
        let a = dataset("a", &[(1, "entity resolution framework"), (2, "deep learning")]);
        let b = dataset(
            "b",
            &[(10, "entity resolution framework"), (11, "reinforcement learning agents")],
        );
        let scorer = title_scorer(&[&a, &b]);
        let candidates = cartesian_pairs(&a, &b);
        let mut truth = BTreeSet::new();
        truth.insert((RecordId(1), RecordId(10)));
        let workload = build_workload(&a, &b, &candidates, &scorer, &truth, 0.1).unwrap();
        // The exact-match pair survives with similarity 1 and a Match label.
        let pairs = workload.pairs();
        let top = pairs.last().unwrap();
        assert_eq!(top.left(), Some(RecordId(1)));
        assert_eq!(top.right(), Some(RecordId(10)));
        assert!((top.similarity() - 1.0).abs() < 1e-12);
        assert!(top.is_match());
        // Completely dissimilar pairs are filtered by the threshold.
        assert!(workload.len() < candidates.len());
        // Every retained pair meets the threshold.
        for p in workload.pairs() {
            assert!(p.similarity() >= 0.1);
        }
    }

    #[test]
    fn build_workload_rejects_unknown_records() {
        let a = dataset("a", &[(1, "x")]);
        let b = dataset("b", &[(10, "x")]);
        let scorer = title_scorer(&[&a, &b]);
        let bogus = vec![(RecordId(99), RecordId(10))];
        assert!(build_workload(&a, &b, &bogus, &scorer, &BTreeSet::new(), 0.0).is_err());
    }

    #[test]
    fn sorted_neighbourhood_emits_no_duplicates_for_wide_windows() {
        // Regression: with window > 2 every pair sits inside several overlapping
        // windows (and equal keys maximize the overlap); each candidate must
        // still be emitted exactly once.
        let a = dataset("a", &[(1, "same key"), (2, "same key"), (3, "same key")]);
        let b = dataset("b", &[(10, "same key"), (11, "same key"), (12, "same key")]);
        for window in [3, 4, 6, 10] {
            let blocker = SortedNeighbourhoodBlocker::new("title", window);
            let candidates = blocker.candidates(&a, &b);
            let unique: BTreeSet<_> = candidates.iter().collect();
            assert_eq!(
                unique.len(),
                candidates.len(),
                "window {window} emitted duplicate candidate pairs"
            );
        }
        // A window spanning everything yields the full cross product exactly once.
        let all = SortedNeighbourhoodBlocker::new("title", 10).candidates(&a, &b);
        assert_eq!(all.len(), 9);
    }

    fn batched(records: &[Record], batches: usize) -> Vec<&[Record]> {
        let size = records.len().div_ceil(batches.max(1)).max(1);
        records.chunks(size).collect()
    }

    #[test]
    fn incremental_token_index_matches_batch_for_any_split() {
        let a = dataset(
            "a",
            &[(1, "entity resolution survey"), (2, "graph neural networks"), (3, "databases")],
        );
        let b = dataset(
            "b",
            &[
                (10, "a survey of entity resolution"),
                (11, "convolutional networks"),
                (12, "databases and networks"),
                (13, "quantum computing"),
            ],
        );
        let blocker = TokenBlocker::new("title", Tokenizer::Words);
        let expected: BTreeSet<_> = blocker.candidates(&a, &b).into_iter().collect();
        for (left_batches, right_batches) in [(1, 1), (2, 3), (3, 2), (3, 4)] {
            let mut index = blocker.incremental();
            let mut union: BTreeSet<(RecordId, RecordId)> = BTreeSet::new();
            let left_chunks = batched(a.records(), left_batches);
            let right_chunks = batched(b.records(), right_batches);
            for i in 0..left_chunks.len().max(right_chunks.len()) {
                let l = left_chunks.get(i).copied().unwrap_or(&[]);
                let r = right_chunks.get(i).copied().unwrap_or(&[]);
                for pair in index.add_records(l, r) {
                    assert!(union.insert(pair), "pair {pair:?} emitted twice");
                }
            }
            assert_eq!(union, expected, "split ({left_batches},{right_batches}) diverged");
            assert_eq!(index.records_indexed(), a.len() + b.len());
        }
    }

    #[test]
    fn incremental_sorted_neighbourhood_covers_batch_and_never_repeats() {
        let a = dataset("a", &[(1, "aaa"), (2, "ccc"), (3, "mmm"), (4, "zzz")]);
        let b = dataset("b", &[(10, "aab"), (11, "cce"), (12, "mmn"), (13, "zzy")]);
        let blocker = SortedNeighbourhoodBlocker::new("title", 2);
        let batch: BTreeSet<_> = blocker.candidates(&a, &b).into_iter().collect();
        // Single-batch ingestion reproduces the batch candidates exactly.
        let mut index = blocker.incremental();
        let single: BTreeSet<_> = index.add_records(a.records(), b.records()).into_iter().collect();
        assert_eq!(single, batch);
        // Any split covers the batch candidates (superset) without repeats.
        let mut index = blocker.incremental();
        let mut union: BTreeSet<(RecordId, RecordId)> = BTreeSet::new();
        for i in 0..a.len().max(b.len()) {
            let l = a.records().get(i..i + 1).unwrap_or(&[]);
            let r = b.records().get(i..i + 1).unwrap_or(&[]);
            for pair in index.add_records(l, r) {
                assert!(union.insert(pair), "pair {pair:?} emitted twice");
            }
        }
        assert!(union.is_superset(&batch), "incremental deltas miss batch candidates");
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..Default::default() })]
        #[test]
        fn incremental_token_deltas_union_to_batch_candidates(
            n_left in 1usize..12,
            n_right in 1usize..12,
            split in 1usize..5,
            salt in 0u64..1_000,
        ) {
            // Tiny vocabulary so records share tokens often.
            let vocab = ["ant", "bee", "cat", "dog", "elk"];
            let title = |id: u64| -> String {
                let mut words = Vec::new();
                for k in 0..(1 + (id.wrapping_mul(2654435761).wrapping_add(salt) % 3)) {
                    let h = id.wrapping_mul(31).wrapping_add(k).wrapping_add(salt);
                    words.push(vocab[(h % vocab.len() as u64) as usize]);
                }
                words.join(" ")
            };
            let mut a = Dataset::new("a", Schema::new(["title"]));
            for i in 0..n_left as u64 {
                a.push(Record::new(RecordId(i)).with("title", title(i))).unwrap();
            }
            let mut b = Dataset::new("b", Schema::new(["title"]));
            for i in 0..n_right as u64 {
                b.push(Record::new(RecordId(1_000 + i)).with("title", title(77 + i))).unwrap();
            }
            let blocker = TokenBlocker::new("title", Tokenizer::Words);
            let expected: BTreeSet<_> = blocker.candidates(&a, &b).into_iter().collect();
            let mut index = blocker.incremental();
            let mut union: BTreeSet<(RecordId, RecordId)> = BTreeSet::new();
            let left_chunks = batched(a.records(), split);
            let right_chunks = batched(b.records(), split);
            for i in 0..left_chunks.len().max(right_chunks.len()) {
                let l = left_chunks.get(i).copied().unwrap_or(&[]);
                let r = right_chunks.get(i).copied().unwrap_or(&[]);
                for pair in index.add_records(l, r) {
                    prop_assert!(union.insert(pair), "pair emitted twice: {:?}", pair);
                }
            }
            prop_assert_eq!(union, expected);
        }
    }

    #[test]
    fn candidates_with_cache_match_uncached() {
        let a = dataset("a", &[(1, "entity resolution survey"), (2, "graph neural networks")]);
        let b =
            dataset("b", &[(10, "a survey of entity resolution"), (11, "convolutional networks")]);
        let blocker = TokenBlocker::new("title", Tokenizer::Words);
        let expected = blocker.candidates(&a, &b);
        // A fully warmed cache and a cold cache both reproduce the plain path.
        let mut warm = TokenCache::new();
        warm.admit_left("title", Tokenizer::Words, a.records());
        warm.admit_right("title", Tokenizer::Words, b.records());
        assert_eq!(blocker.candidates_with_cache(&a, &b, &warm), expected);
        assert_eq!(blocker.candidates_with_cache(&a, &b, &TokenCache::new()), expected);
    }

    #[test]
    fn sharded_index_spills_postings_and_keeps_candidates() {
        let titles: Vec<(u64, String)> =
            (0..40).map(|i| (i, format!("tok{} tok{} shared", i % 7, (i * 3) % 11))).collect();
        let mut a = Dataset::new("a", Schema::new(["title"]));
        let mut b = Dataset::new("b", Schema::new(["title"]));
        for &(id, ref title) in &titles {
            a.push(Record::new(RecordId(id)).with("title", title.clone())).unwrap();
            b.push(Record::new(RecordId(1_000 + id)).with("title", title.clone())).unwrap();
        }
        let blocker = TokenBlocker::new("title", Tokenizer::Words);
        let mut unbounded = blocker.incremental();
        let mut budgeted = blocker.incremental();
        budgeted
            .set_memory_budget(MemoryBudget { resident_postings: 16, ..MemoryBudget::default() })
            .unwrap();
        for i in 0..4 {
            let l = &a.records()[i * 10..(i + 1) * 10];
            let r = &b.records()[i * 10..(i + 1) * 10];
            assert_eq!(
                budgeted.add_records(l, r),
                unbounded.add_records(l, r),
                "budgeted delta diverged on batch {i}"
            );
            // Over-budget shards were frozen between batches.
            assert!(budgeted.resident_postings() <= 16, "resident postings left over budget");
        }
        assert!(budgeted.spilled_generations() > 0, "budget never triggered a spill");
        assert!(budgeted.spilled_bytes() > 0);
        assert_eq!(unbounded.spilled_generations(), 0);
        // A clone shares the spill file and still probes generations correctly.
        let mut cloned = budgeted.clone();
        let extra = Record::new(RecordId(9_999)).with("title", "tok1 shared");
        let from_clone = cloned.add_records(&[], std::slice::from_ref(&extra));
        let from_orig = budgeted.add_records(&[], std::slice::from_ref(&extra));
        assert_eq!(from_clone, from_orig);
        assert!(!from_clone.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 24, ..Default::default() })]
        #[test]
        fn shard_count_never_changes_candidates(
            n_left in 1usize..14,
            n_right in 1usize..14,
            split in 1usize..4,
            salt in 0u64..1_000,
        ) {
            // Same generator as the split-invariance proptest: tiny vocabulary,
            // high token overlap.
            let vocab = ["ant", "bee", "cat", "dog", "elk"];
            let title = |id: u64| -> String {
                let mut words = Vec::new();
                for k in 0..(1 + (id.wrapping_mul(2654435761).wrapping_add(salt) % 3)) {
                    let h = id.wrapping_mul(31).wrapping_add(k).wrapping_add(salt);
                    words.push(vocab[(h % vocab.len() as u64) as usize]);
                }
                words.join(" ")
            };
            let mut a = Dataset::new("a", Schema::new(["title"]));
            for i in 0..n_left as u64 {
                a.push(Record::new(RecordId(i)).with("title", title(i))).unwrap();
            }
            let mut b = Dataset::new("b", Schema::new(["title"]));
            for i in 0..n_right as u64 {
                b.push(Record::new(RecordId(1_000 + i)).with("title", title(77 + i))).unwrap();
            }
            let blocker = TokenBlocker::new("title", Tokenizer::Words);
            let expected: BTreeSet<_> = blocker.candidates(&a, &b).into_iter().collect();
            let left_chunks = batched(a.records(), split);
            let right_chunks = batched(b.records(), split);
            // Per-batch deltas must be identical for every shard count, and
            // their union must equal the batch candidates.
            let mut reference: Option<Vec<Vec<(RecordId, RecordId)>>> = None;
            for shards in [1usize, 2, 7, 16] {
                let mut index = blocker.incremental_sharded(shards);
                prop_assert_eq!(index.shard_count(), shards);
                let mut deltas = Vec::new();
                for i in 0..left_chunks.len().max(right_chunks.len()) {
                    let l = left_chunks.get(i).copied().unwrap_or(&[]);
                    let r = right_chunks.get(i).copied().unwrap_or(&[]);
                    deltas.push(index.add_records(l, r));
                }
                let union: BTreeSet<_> = deltas.iter().flatten().copied().collect();
                prop_assert_eq!(&union, &expected);
                match &reference {
                    None => reference = Some(deltas),
                    Some(reference) => prop_assert_eq!(reference, &deltas),
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..Default::default() })]
        #[test]
        fn incremental_sorted_neighbourhood_is_monotone_superset(
            n_left in 1usize..10,
            n_right in 1usize..10,
            window in 1usize..5,
            salt in 0u64..1_000,
        ) {
            let key = |id: u64| -> String {
                let h = id.wrapping_mul(6364136223846793005).wrapping_add(salt);
                format!("{:03}", h % 50)
            };
            let mut a = Dataset::new("a", Schema::new(["title"]));
            for i in 0..n_left as u64 {
                a.push(Record::new(RecordId(i)).with("title", key(i))).unwrap();
            }
            let mut b = Dataset::new("b", Schema::new(["title"]));
            for i in 0..n_right as u64 {
                b.push(Record::new(RecordId(1_000 + i)).with("title", key(31 + i))).unwrap();
            }
            let blocker = SortedNeighbourhoodBlocker::new("title", window);
            let batch: BTreeSet<_> = blocker.candidates(&a, &b).into_iter().collect();
            let mut index = blocker.incremental();
            let mut union: BTreeSet<(RecordId, RecordId)> = BTreeSet::new();
            for i in 0..a.len().max(b.len()) {
                let l = a.records().get(i..i + 1).unwrap_or(&[]);
                let r = b.records().get(i..i + 1).unwrap_or(&[]);
                for pair in index.add_records(l, r) {
                    prop_assert!(union.insert(pair), "pair emitted twice: {:?}", pair);
                }
            }
            prop_assert!(union.is_superset(&batch));
        }
    }
}
