//! Error type for the entity-resolution substrate.

/// Errors raised by the `er-core` crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErError {
    /// A record did not conform to the schema it was validated against.
    SchemaMismatch(String),
    /// An attribute was requested that does not exist.
    UnknownAttribute(String),
    /// A record id was requested that does not exist in the dataset.
    UnknownRecord(String),
    /// An operation received an argument outside of its valid domain.
    InvalidArgument(String),
    /// A workload was malformed (e.g. empty where a non-empty workload is required).
    InvalidWorkload(String),
    /// A byte-store operation failed: spill I/O, or a corrupted chunk or
    /// frame detected by the [`crate::codec`] checksums.
    Spill(String),
}

impl std::fmt::Display for ErError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            ErError::UnknownAttribute(name) => write!(f, "unknown attribute: {name}"),
            ErError::UnknownRecord(id) => write!(f, "unknown record: {id}"),
            ErError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            ErError::InvalidWorkload(msg) => write!(f, "invalid workload: {msg}"),
            ErError::Spill(msg) => write!(f, "spill i/o: {msg}"),
        }
    }
}

impl std::error::Error for ErError {}
