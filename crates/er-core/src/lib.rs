//! Entity-resolution substrate used by the HUMO framework.
//!
//! This crate provides everything needed to turn raw relational records into the
//! *ER workload* the HUMO framework (crate `humo`) operates on:
//!
//! * a typed [`record`] model (records, attributes, schemas, datasets);
//! * [`text`] normalization and tokenization (words and q-grams);
//! * a library of string and numeric [`similarity`] functions (Levenshtein, Jaro,
//!   Jaro-Winkler, Jaccard, overlap, Dice, TF-cosine, Monge-Elkan);
//! * attribute-weighted [`aggregate`] similarity, with the paper's weighting rule
//!   (weights proportional to the number of distinct attribute values);
//! * [`blocking`] strategies to avoid the full cartesian product of record pairs,
//!   including a hash-sharded incremental token index that parallelizes across
//!   any [`parallel::ParallelExecutor`];
//! * the [`workload`] model: similarity-scored instance pairs with ground-truth
//!   labels, label assignments, quality metrics, and the equal-count subset
//!   partitioning used by the HUMO optimizers — stored column-wise in chunked
//!   segments so cold data can overflow into the [`spill`] store under a
//!   [`spill::MemoryBudget`];
//! * the shared [`codec`] primitives (little-endian byte writer/reader,
//!   FNV-1a checksums, append-log framing) every hand-rolled on-disk format
//!   in the workspace builds on (`HSG1`/`HPG1` in [`spill`], `HAL1` in
//!   `humo::wal`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod blocking;
pub mod codec;
pub mod error;
pub mod parallel;
pub mod record;
pub mod similarity;
pub mod spill;
pub mod text;
pub mod workload;

pub use aggregate::{AttributeMeasure, AttributeWeighting, PairScorer, ScoringConfig, TokenCache};
pub use error::ErError;
pub use parallel::{ParallelExecutor, SerialExecutor};
pub use record::{AttributeValue, Dataset, Record, RecordId, Schema};
pub use spill::{MemoryBudget, SpillStats};
pub use workload::{
    InstancePair, Label, LabelAssignment, PairId, QualityMetrics, SubsetPartition, Workload,
    WorkloadSubset,
};

/// Convenience result alias for fallible operations in this crate.
pub type Result<T> = std::result::Result<T, ErError>;
