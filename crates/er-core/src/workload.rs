//! The ER workload model: similarity-scored instance pairs with ground truth,
//! label assignments, quality metrics and equal-count subset partitioning.
//!
//! This is the data structure every HUMO optimizer operates on. A [`Workload`]
//! keeps its pairs sorted by ascending machine-metric value (pair similarity in
//! the paper, but any monotone classification metric works), which is what makes
//! interval-based reasoning — "move `v⁻` left", "move `v⁺` right", "subset `D_i`
//! dominates subset `D_j`" — well defined.

use crate::record::RecordId;
use crate::{ErError, Result};

/// Identifier of an instance pair inside a workload.
///
/// Pair ids are dense indices assigned at workload construction; they are stable
/// across sorting because they are attached to the pair, not to its position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PairId(pub u64);

impl std::fmt::Display for PairId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Binary ER label for an instance pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// The two records are declared to refer to the same real-world entity.
    Match,
    /// The two records are declared to refer to different entities.
    Unmatch,
}

impl Label {
    /// Converts a boolean match flag into a label.
    pub fn from_bool(is_match: bool) -> Self {
        if is_match {
            Label::Match
        } else {
            Label::Unmatch
        }
    }

    /// Whether this label is `Match`.
    pub fn is_match(&self) -> bool {
        matches!(self, Label::Match)
    }
}

/// An instance pair: two records (optionally), a machine-metric value and the
/// hidden ground-truth label.
#[derive(Debug, Clone, PartialEq)]
pub struct InstancePair {
    id: PairId,
    left: Option<RecordId>,
    right: Option<RecordId>,
    similarity: f64,
    ground_truth: Label,
}

impl InstancePair {
    /// Creates a pair without record provenance (used by pair-level generators).
    pub fn new(id: PairId, similarity: f64, ground_truth: Label) -> Self {
        Self { id, left: None, right: None, similarity, ground_truth }
    }

    /// Creates a pair carrying the ids of the two underlying records.
    pub fn with_records(
        id: PairId,
        left: RecordId,
        right: RecordId,
        similarity: f64,
        ground_truth: Label,
    ) -> Self {
        Self { id, left: Some(left), right: Some(right), similarity, ground_truth }
    }

    /// The pair id.
    pub fn id(&self) -> PairId {
        self.id
    }

    /// Id of the left record, when known.
    pub fn left(&self) -> Option<RecordId> {
        self.left
    }

    /// Id of the right record, when known.
    pub fn right(&self) -> Option<RecordId> {
        self.right
    }

    /// The machine-metric value (pair similarity) of this pair.
    pub fn similarity(&self) -> f64 {
        self.similarity
    }

    /// The ground-truth label.
    ///
    /// Machine-side algorithms must not consult this directly; it is exposed for
    /// the human oracle, for evaluation, and for dataset generators.
    pub fn ground_truth(&self) -> Label {
        self.ground_truth
    }

    /// Whether the pair is a true match according to the ground truth.
    pub fn is_match(&self) -> bool {
        self.ground_truth.is_match()
    }
}

/// An ER workload: instance pairs sorted by ascending similarity.
#[derive(Debug, Clone)]
pub struct Workload {
    pairs: Vec<InstancePair>,
}

impl Workload {
    /// Rejects similarities that are NaN, infinite or outside `[0, 1]` — letting
    /// a non-finite value reach the similarity sort or `lower_bound_index` would
    /// silently break the ordering invariant every optimizer relies on.
    fn validate_pairs(pairs: &[InstancePair]) -> Result<()> {
        for p in pairs {
            if !p.similarity.is_finite() || !(0.0..=1.0).contains(&p.similarity) {
                return Err(ErError::InvalidWorkload(format!(
                    "pair {} has similarity {} outside [0,1]",
                    p.id, p.similarity
                )));
            }
        }
        Ok(())
    }

    /// The canonical workload order: ascending similarity, ties broken by the
    /// underlying record ids and finally the pair id. Keying ties on record ids
    /// makes the order of record-backed workloads independent of the order in
    /// which pairs were scored (batch vs incremental ingestion assign different
    /// pair ids); record-less pairs fall back to the pair id as before.
    fn canonical_order(a: &InstancePair, b: &InstancePair) -> std::cmp::Ordering {
        a.similarity
            .partial_cmp(&b.similarity)
            .expect("similarities are validated finite")
            .then_with(|| a.left.cmp(&b.left))
            .then_with(|| a.right.cmp(&b.right))
            .then_with(|| a.id.cmp(&b.id))
    }

    /// Builds a workload from pairs, sorting them by ascending similarity.
    ///
    /// Returns an error if any similarity is not a finite number in `[0, 1]`.
    pub fn from_pairs(mut pairs: Vec<InstancePair>) -> Result<Self> {
        Self::validate_pairs(&pairs)?;
        pairs.sort_by(Self::canonical_order);
        Ok(Self { pairs })
    }

    /// Merges new pairs into the workload, preserving the similarity order
    /// without re-sorting the existing pairs (`O(existing + new·log new)`).
    ///
    /// This is the insertion path of the streaming resolution engine: a batch of
    /// freshly scored delta pairs is sorted on its own and then merged with the
    /// already-sorted workload, so ingesting records in any batch split yields
    /// exactly the same workload as one batch rebuild over the union.
    ///
    /// Returns an error (leaving the workload untouched) if any new similarity
    /// is not a finite number in `[0, 1]`.
    pub fn insert_sorted(&mut self, pairs: Vec<InstancePair>) -> Result<()> {
        Self::validate_pairs(&pairs)?;
        if pairs.is_empty() {
            return Ok(());
        }
        let mut incoming = pairs;
        incoming.sort_by(Self::canonical_order);
        if self.pairs.is_empty() {
            self.pairs = incoming;
            return Ok(());
        }
        let existing = std::mem::take(&mut self.pairs);
        let mut merged = Vec::with_capacity(existing.len() + incoming.len());
        let mut a = existing.into_iter().peekable();
        let mut b = incoming.into_iter().peekable();
        loop {
            let take_b = match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => Self::canonical_order(y, x) == std::cmp::Ordering::Less,
                (None, Some(_)) => true,
                (Some(_), None) => false,
                (None, None) => break,
            };
            let next = if take_b { b.next() } else { a.next() };
            merged.push(next.expect("peeked element exists"));
        }
        self.pairs = merged;
        Ok(())
    }

    /// Builds a workload from `(similarity, is_match)` tuples, assigning dense pair ids.
    pub fn from_scores(scores: impl IntoIterator<Item = (f64, bool)>) -> Result<Self> {
        let pairs = scores
            .into_iter()
            .enumerate()
            .map(|(i, (sim, is_match))| {
                InstancePair::new(PairId(i as u64), sim, Label::from_bool(is_match))
            })
            .collect();
        Self::from_pairs(pairs)
    }

    /// Number of pairs in the workload.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The pairs, sorted by ascending similarity.
    pub fn pairs(&self) -> &[InstancePair] {
        &self.pairs
    }

    /// The pair at a position in similarity order.
    pub fn pair(&self, index: usize) -> &InstancePair {
        &self.pairs[index]
    }

    /// Total number of ground-truth matching pairs.
    pub fn total_matches(&self) -> usize {
        self.pairs.iter().filter(|p| p.is_match()).count()
    }

    /// Number of ground-truth matching pairs within an index range.
    pub fn matches_in_range(&self, range: std::ops::Range<usize>) -> usize {
        self.pairs[range].iter().filter(|p| p.is_match()).count()
    }

    /// Ground-truth match proportion within an index range (`0` for an empty range).
    pub fn match_proportion(&self, range: std::ops::Range<usize>) -> f64 {
        let len = range.len();
        if len == 0 {
            return 0.0;
        }
        self.matches_in_range(range) as f64 / len as f64
    }

    /// Similarity value at a position in similarity order.
    pub fn similarity_at(&self, index: usize) -> f64 {
        self.pairs[index].similarity()
    }

    /// Index of the first pair whose similarity is `>= threshold`
    /// (equals `len()` when every pair is below the threshold).
    pub fn lower_bound_index(&self, threshold: f64) -> usize {
        self.pairs.partition_point(|p| p.similarity() < threshold)
    }

    /// Partitions the workload into consecutive subsets of `unit_size` pairs each
    /// (the last subset absorbs the remainder). This is the subset structure used
    /// by the sampling-based and hybrid optimizers; the paper uses `unit_size = 200`.
    pub fn partition(&self, unit_size: usize) -> Result<SubsetPartition> {
        SubsetPartition::new(self, unit_size)
    }

    /// Evaluates a label assignment against the ground truth.
    pub fn evaluate(&self, assignment: &LabelAssignment) -> Result<QualityMetrics> {
        if assignment.len() != self.len() {
            return Err(ErError::InvalidArgument(format!(
                "label assignment covers {} pairs but the workload has {}",
                assignment.len(),
                self.len()
            )));
        }
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut fn_ = 0usize;
        let mut tn = 0usize;
        for (pair, label) in self.pairs.iter().zip(assignment.labels()) {
            match (pair.is_match(), label.is_match()) {
                (true, true) => tp += 1,
                (false, true) => fp += 1,
                (true, false) => fn_ += 1,
                (false, false) => tn += 1,
            }
        }
        Ok(QualityMetrics::from_counts(tp, fp, fn_, tn))
    }
}

/// A dense label assignment: one label per pair, aligned with the workload's
/// similarity order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelAssignment {
    labels: Vec<Label>,
}

impl LabelAssignment {
    /// Creates an assignment from a vector of labels aligned with the workload order.
    pub fn new(labels: Vec<Label>) -> Self {
        Self { labels }
    }

    /// Creates an assignment that labels every pair `Unmatch`.
    pub fn all_unmatch(len: usize) -> Self {
        Self { labels: vec![Label::Unmatch; len] }
    }

    /// Creates a threshold assignment: pairs at or above `threshold_index` (in
    /// similarity order) are labeled `Match`, the rest `Unmatch`.
    pub fn from_threshold_index(len: usize, threshold_index: usize) -> Self {
        let labels = (0..len)
            .map(|i| if i >= threshold_index { Label::Match } else { Label::Unmatch })
            .collect();
        Self { labels }
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the assignment is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The labels in workload order.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Sets the label at a position.
    pub fn set(&mut self, index: usize, label: Label) {
        self.labels[index] = label;
    }

    /// Number of pairs labeled `Match`.
    pub fn match_count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_match()).count()
    }
}

/// Standard ER quality metrics derived from a confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityMetrics {
    /// True positives: matching pairs labeled match.
    pub true_positives: usize,
    /// False positives: unmatching pairs labeled match.
    pub false_positives: usize,
    /// False negatives: matching pairs labeled unmatch.
    pub false_negatives: usize,
    /// True negatives: unmatching pairs labeled unmatch.
    pub true_negatives: usize,
}

impl QualityMetrics {
    /// Builds metrics directly from confusion-matrix counts.
    pub fn from_counts(
        true_positives: usize,
        false_positives: usize,
        false_negatives: usize,
        true_negatives: usize,
    ) -> Self {
        Self { true_positives, false_positives, false_negatives, true_negatives }
    }

    /// Precision `tp / (tp + fp)`; `1` when nothing was labeled match
    /// (the empty prediction makes no false claims).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall `tp / (tp + fn)`; `1` when the workload contains no matching pairs.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// F1 score, the harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Total number of pairs covered by the confusion matrix.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.false_negatives + self.true_negatives
    }
}

/// One subset of an equal-count workload partition.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSubset {
    index: usize,
    range: std::ops::Range<usize>,
    mean_similarity: f64,
}

impl WorkloadSubset {
    /// Position of the subset in the partition (0 = lowest similarities).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The workload index range covered by this subset.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.range.clone()
    }

    /// Number of pairs in the subset.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Whether the subset is empty (never true for partitions built by [`SubsetPartition::new`]).
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// Mean similarity of the pairs in the subset — the `v_i` the Gaussian process
    /// regresses over.
    pub fn mean_similarity(&self) -> f64 {
        self.mean_similarity
    }
}

/// An equal-count partition of a workload into similarity-ordered subsets.
#[derive(Debug, Clone)]
pub struct SubsetPartition {
    unit_size: usize,
    subsets: Vec<WorkloadSubset>,
    workload_len: usize,
}

impl SubsetPartition {
    /// Partitions a workload into consecutive subsets of `unit_size` pairs
    /// (the final subset absorbs any remainder so no subset is smaller than
    /// `unit_size` except when the workload itself is smaller).
    pub fn new(workload: &Workload, unit_size: usize) -> Result<Self> {
        if unit_size == 0 {
            return Err(ErError::InvalidArgument("subset unit size must be positive".to_string()));
        }
        if workload.is_empty() {
            return Err(ErError::InvalidWorkload("cannot partition an empty workload".to_string()));
        }
        let n = workload.len();
        let full_subsets = (n / unit_size).max(1);
        let mut subsets = Vec::with_capacity(full_subsets);
        for i in 0..full_subsets {
            let start = i * unit_size;
            let end = if i + 1 == full_subsets { n } else { (i + 1) * unit_size };
            let range = start..end;
            let mean_similarity =
                workload.pairs[range.clone()].iter().map(|p| p.similarity()).sum::<f64>()
                    / range.len() as f64;
            subsets.push(WorkloadSubset { index: i, range, mean_similarity });
        }
        Ok(Self { unit_size, subsets, workload_len: n })
    }

    /// The requested unit size.
    pub fn unit_size(&self) -> usize {
        self.unit_size
    }

    /// Number of subsets.
    pub fn len(&self) -> usize {
        self.subsets.len()
    }

    /// Whether the partition has no subsets (never true for successfully built partitions).
    pub fn is_empty(&self) -> bool {
        self.subsets.is_empty()
    }

    /// The subsets in ascending similarity order.
    pub fn subsets(&self) -> &[WorkloadSubset] {
        &self.subsets
    }

    /// The subset at a given position.
    pub fn subset(&self, index: usize) -> &WorkloadSubset {
        &self.subsets[index]
    }

    /// Total number of pairs covered (equals the workload length).
    pub fn total_pairs(&self) -> usize {
        self.workload_len
    }

    /// The workload index range spanned by the subsets `[from, to]` (inclusive).
    pub fn range_of(&self, from: usize, to: usize) -> std::ops::Range<usize> {
        assert!(from <= to && to < self.subsets.len(), "invalid subset range {from}..={to}");
        self.subsets[from].range().start..self.subsets[to].range().end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn simple_workload() -> Workload {
        // Matches concentrated at high similarity.
        Workload::from_scores(vec![
            (0.1, false),
            (0.2, false),
            (0.35, false),
            (0.5, true),
            (0.55, false),
            (0.7, true),
            (0.8, true),
            (0.9, true),
        ])
        .unwrap()
    }

    #[test]
    fn workload_sorts_by_similarity() {
        let w = Workload::from_scores(vec![(0.9, true), (0.1, false), (0.5, false)]).unwrap();
        let sims: Vec<f64> = w.pairs().iter().map(|p| p.similarity()).collect();
        assert_eq!(sims, vec![0.1, 0.5, 0.9]);
    }

    #[test]
    fn workload_rejects_out_of_range_similarity() {
        assert!(Workload::from_scores(vec![(1.5, true)]).is_err());
        assert!(Workload::from_scores(vec![(-0.1, false)]).is_err());
        assert!(Workload::from_scores(vec![(f64::NAN, false)]).is_err());
    }

    #[test]
    fn workload_rejects_non_finite_similarities_with_proper_error() {
        // NaN and the two infinities must all be rejected with an InvalidWorkload
        // error on every construction path — none of them may reach the
        // similarity sort, where NaN breaks the ordering invariant silently.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = Workload::from_scores(vec![(0.5, true), (bad, false)]).unwrap_err();
            assert!(matches!(err, crate::ErError::InvalidWorkload(_)), "from_scores: {err}");
            let pairs = vec![InstancePair::new(PairId(0), bad, Label::Unmatch)];
            let err = Workload::from_pairs(pairs).unwrap_err();
            assert!(matches!(err, crate::ErError::InvalidWorkload(_)), "from_pairs: {err}");
        }
    }

    #[test]
    fn insert_sorted_rejects_non_finite_and_leaves_workload_untouched() {
        let mut w = simple_workload();
        let before: Vec<f64> = w.pairs().iter().map(|p| p.similarity()).collect();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1.5, -0.2] {
            let err = w
                .insert_sorted(vec![InstancePair::new(PairId(99), bad, Label::Match)])
                .unwrap_err();
            assert!(matches!(err, crate::ErError::InvalidWorkload(_)), "insert_sorted: {err}");
            let after: Vec<f64> = w.pairs().iter().map(|p| p.similarity()).collect();
            assert_eq!(before, after, "rejected insert must not modify the workload");
        }
    }

    #[test]
    fn insert_sorted_merges_into_similarity_order() {
        let mut w = Workload::from_scores(vec![(0.2, false), (0.6, true)]).unwrap();
        w.insert_sorted(vec![
            InstancePair::new(PairId(10), 0.4, Label::Unmatch),
            InstancePair::new(PairId(11), 0.1, Label::Unmatch),
            InstancePair::new(PairId(12), 0.9, Label::Match),
        ])
        .unwrap();
        let sims: Vec<f64> = w.pairs().iter().map(|p| p.similarity()).collect();
        assert_eq!(sims, vec![0.1, 0.2, 0.4, 0.6, 0.9]);
        // Inserting into an empty workload also works.
        let mut empty = Workload::from_pairs(vec![]).unwrap();
        empty.insert_sorted(vec![InstancePair::new(PairId(0), 0.5, Label::Match)]).unwrap();
        assert_eq!(empty.len(), 1);
        empty.insert_sorted(vec![]).unwrap();
        assert_eq!(empty.len(), 1);
    }

    #[test]
    fn match_counting_and_proportion() {
        let w = simple_workload();
        assert_eq!(w.total_matches(), 4);
        assert_eq!(w.matches_in_range(0..4), 1);
        assert!((w.match_proportion(4..8) - 0.75).abs() < 1e-12);
        assert_eq!(w.match_proportion(3..3), 0.0);
    }

    #[test]
    fn lower_bound_index_finds_threshold() {
        let w = simple_workload();
        assert_eq!(w.lower_bound_index(0.0), 0);
        assert_eq!(w.lower_bound_index(0.5), 3);
        assert_eq!(w.lower_bound_index(0.95), 8);
    }

    #[test]
    fn evaluate_threshold_assignment() {
        let w = simple_workload();
        // Label everything with similarity >= 0.5 as match (index 3 onwards).
        let assignment = LabelAssignment::from_threshold_index(w.len(), 3);
        let m = w.evaluate(&assignment).unwrap();
        assert_eq!(m.true_positives, 4);
        assert_eq!(m.false_positives, 1);
        assert_eq!(m.false_negatives, 0);
        assert_eq!(m.true_negatives, 3);
        assert!((m.precision() - 0.8).abs() < 1e-12);
        assert!((m.recall() - 1.0).abs() < 1e-12);
        assert!((m.f1() - 2.0 * 0.8 / 1.8).abs() < 1e-12);
    }

    #[test]
    fn evaluate_rejects_wrong_length() {
        let w = simple_workload();
        assert!(w.evaluate(&LabelAssignment::all_unmatch(3)).is_err());
    }

    #[test]
    fn metrics_degenerate_cases() {
        // No predictions at all → precision 1 by convention.
        let m = QualityMetrics::from_counts(0, 0, 5, 10);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
        // No matches in the workload → recall 1 by convention.
        let m = QualityMetrics::from_counts(0, 0, 0, 10);
        assert_eq!(m.recall(), 1.0);
    }

    #[test]
    fn partition_equal_counts_with_remainder() {
        let w = Workload::from_scores((0..10).map(|i| (i as f64 / 10.0, false))).unwrap();
        let p = w.partition(3).unwrap();
        // 10 pairs, unit 3 → subsets of sizes 3, 3, 4 (last absorbs remainder).
        assert_eq!(p.len(), 3);
        assert_eq!(p.subset(0).len(), 3);
        assert_eq!(p.subset(1).len(), 3);
        assert_eq!(p.subset(2).len(), 4);
        assert_eq!(p.total_pairs(), 10);
        assert_eq!(p.range_of(0, 2), 0..10);
        assert_eq!(p.range_of(1, 1), 3..6);
    }

    #[test]
    fn partition_mean_similarities_are_monotone() {
        let w = Workload::from_scores((0..100).map(|i| (i as f64 / 100.0, false))).unwrap();
        let p = w.partition(10).unwrap();
        let means: Vec<f64> = p.subsets().iter().map(|s| s.mean_similarity()).collect();
        for pair in means.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn partition_rejects_invalid_input() {
        let w = simple_workload();
        assert!(w.partition(0).is_err());
        let empty = Workload::from_pairs(vec![]).unwrap();
        assert!(empty.partition(10).is_err());
    }

    #[test]
    fn label_assignment_helpers() {
        let mut a = LabelAssignment::all_unmatch(4);
        assert_eq!(a.match_count(), 0);
        a.set(2, Label::Match);
        assert_eq!(a.match_count(), 1);
        let t = LabelAssignment::from_threshold_index(4, 2);
        assert_eq!(t.labels(), &[Label::Unmatch, Label::Unmatch, Label::Match, Label::Match]);
    }

    proptest! {
        #[test]
        fn partition_covers_workload_without_overlap(
            n in 1usize..500,
            unit in 1usize..80,
        ) {
            let w = Workload::from_scores((0..n).map(|i| (i as f64 / n as f64, i % 7 == 0))).unwrap();
            let p = w.partition(unit).unwrap();
            // Ranges are contiguous, non-overlapping and cover 0..n.
            let mut cursor = 0usize;
            for s in p.subsets() {
                prop_assert_eq!(s.range().start, cursor);
                prop_assert!(!s.is_empty());
                cursor = s.range().end;
            }
            prop_assert_eq!(cursor, n);
        }

        #[test]
        fn insert_sorted_any_split_equals_batch_sort(
            n in 1usize..200,
            split in 1usize..6,
            salt in 0u64..1_000,
        ) {
            // Identical pairs (ids included) arriving in any chunking must
            // produce a workload identical to the one-shot batch sort. A coarse
            // similarity grid forces plenty of ties so the tie-break matters.
            let all: Vec<InstancePair> = (0..n)
                .map(|i| {
                    let h = (i as u64).wrapping_mul(2654435761).wrapping_add(salt);
                    let sim = (h % 11) as f64 / 10.0;
                    let left = RecordId(h % 13);
                    let right = RecordId(1_000 + (h % 7));
                    InstancePair::with_records(
                        PairId(i as u64),
                        left,
                        right,
                        sim,
                        Label::from_bool(h % 3 == 0),
                    )
                })
                .collect();
            let batch = Workload::from_pairs(all.clone()).unwrap();
            let mut incremental = Workload::from_pairs(vec![]).unwrap();
            let chunk = n.div_ceil(split).max(1);
            for part in all.chunks(chunk) {
                incremental.insert_sorted(part.to_vec()).unwrap();
            }
            prop_assert_eq!(incremental.pairs(), batch.pairs());
            // The merge preserves the sort invariant.
            for w in incremental.pairs().windows(2) {
                prop_assert!(w[0].similarity() <= w[1].similarity());
            }
        }

        #[test]
        fn threshold_assignments_have_monotone_recall(
            n in 2usize..200,
        ) {
            let w = Workload::from_scores((0..n).map(|i| (i as f64 / n as f64, i % 3 == 0))).unwrap();
            // Lowering the threshold index can only increase recall.
            let mut last_recall = 0.0;
            for idx in (0..=n).rev() {
                let m = w.evaluate(&LabelAssignment::from_threshold_index(n, idx)).unwrap();
                prop_assert!(m.recall() + 1e-12 >= last_recall);
                last_recall = m.recall();
            }
        }
    }
}
