//! The ER workload model: similarity-scored instance pairs with ground truth,
//! label assignments, quality metrics and equal-count subset partitioning.
//!
//! This is the data structure every HUMO optimizer operates on. A [`Workload`]
//! keeps its pairs sorted by ascending machine-metric value (pair similarity in
//! the paper, but any monotone classification metric works), which is what makes
//! interval-based reasoning — "move `v⁻` left", "move `v⁺` right", "subset `D_i`
//! dominates subset `D_j`" — well defined.
//!
//! # Storage layout
//!
//! Pairs are stored column-wise (structure-of-arrays: one column each for
//! similarities, pair ids, record ids and label flags) in chunked segments of
//! roughly [`SEGMENT_TARGET`] pairs. The segmented layout is what makes the
//! streaming path scale: [`Workload::insert_sorted`] routes each incoming pair
//! to the one segment it lands in and re-merges only the touched segments,
//! instead of re-merging one giant sorted `Vec`; and under a
//! [`MemoryBudget`] the coldest (lowest-similarity) segments overflow into an
//! out-of-core [`SpillFile`] through the documented `HSG1` byte codec (see
//! [`crate::spill`]), with an LRU cache pinning recently read segments.
//! Residency is invisible to every accessor: spilled and resident workloads
//! return bit-identical values.

use crate::codec::{ByteReader, ByteWriter};
use crate::record::RecordId;
use crate::spill::{ChunkHandle, MemoryBudget, SpillFile, SpillStats};
use crate::{ErError, Result};
use er_obs::ObsHandle;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Target number of pairs per workload segment. Merged segments that grow past
/// twice this target are split back into target-sized chunks.
pub const SEGMENT_TARGET: usize = 4096;

/// Identifier of an instance pair inside a workload.
///
/// Pair ids are dense indices assigned at workload construction; they are stable
/// across sorting because they are attached to the pair, not to its position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PairId(pub u64);

impl std::fmt::Display for PairId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Binary ER label for an instance pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// The two records are declared to refer to the same real-world entity.
    Match,
    /// The two records are declared to refer to different entities.
    Unmatch,
}

impl Label {
    /// Converts a boolean match flag into a label.
    pub fn from_bool(is_match: bool) -> Self {
        if is_match {
            Label::Match
        } else {
            Label::Unmatch
        }
    }

    /// Whether this label is `Match`.
    pub fn is_match(&self) -> bool {
        matches!(self, Label::Match)
    }
}

/// An instance pair: two records (optionally), a machine-metric value and the
/// hidden ground-truth label.
#[derive(Debug, Clone, PartialEq)]
pub struct InstancePair {
    id: PairId,
    left: Option<RecordId>,
    right: Option<RecordId>,
    similarity: f64,
    ground_truth: Label,
}

impl InstancePair {
    /// Creates a pair without record provenance (used by pair-level generators).
    pub fn new(id: PairId, similarity: f64, ground_truth: Label) -> Self {
        Self { id, left: None, right: None, similarity, ground_truth }
    }

    /// Creates a pair carrying the ids of the two underlying records.
    pub fn with_records(
        id: PairId,
        left: RecordId,
        right: RecordId,
        similarity: f64,
        ground_truth: Label,
    ) -> Self {
        Self { id, left: Some(left), right: Some(right), similarity, ground_truth }
    }

    /// The pair id.
    pub fn id(&self) -> PairId {
        self.id
    }

    /// Id of the left record, when known.
    pub fn left(&self) -> Option<RecordId> {
        self.left
    }

    /// Id of the right record, when known.
    pub fn right(&self) -> Option<RecordId> {
        self.right
    }

    /// The machine-metric value (pair similarity) of this pair.
    pub fn similarity(&self) -> f64 {
        self.similarity
    }

    /// The ground-truth label.
    ///
    /// Machine-side algorithms must not consult this directly; it is exposed for
    /// the human oracle, for evaluation, and for dataset generators.
    pub fn ground_truth(&self) -> Label {
        self.ground_truth
    }

    /// Whether the pair is a true match according to the ground truth.
    pub fn is_match(&self) -> bool {
        self.ground_truth.is_match()
    }
}

/// Flag bit: the pair is a ground-truth match.
const FLAG_MATCH: u8 = 1;
/// Flag bit: the pair carries record ids (`left`/`right` columns are meaningful).
const FLAG_RECORDS: u8 = 1 << 1;

/// The canonical sort key of a pair, encoded so that derived lexicographic
/// `Ord` reproduces [`Workload::canonical_order`] exactly: similarity bits
/// (monotone on validated `[0, 1]` values once `-0.0` is normalized to `0.0`,
/// matching `partial_cmp`'s `-0.0 == 0.0`), then `Option<RecordId>` as a
/// `(tag, value)` pair (`None < Some`, like `Option`'s `Ord`), then the pair id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct PairKey {
    sim_bits: u64,
    left: (u8, u64),
    right: (u8, u64),
    id: u64,
}

fn sim_key_bits(sim: f64) -> u64 {
    if sim == 0.0 {
        0 // normalize -0.0: partial_cmp treats it as equal to 0.0
    } else {
        sim.to_bits()
    }
}

fn record_key(id: Option<RecordId>) -> (u8, u64) {
    match id {
        None => (0, 0),
        Some(r) => (1, r.0),
    }
}

fn pair_key(p: &InstancePair) -> PairKey {
    PairKey {
        sim_bits: sim_key_bits(p.similarity()),
        left: record_key(p.left()),
        right: record_key(p.right()),
        id: p.id().0,
    }
}

/// Column-wise storage of one segment of pairs, in canonical order.
#[derive(Debug, Clone, PartialEq)]
struct Columns {
    sims: Vec<f64>,
    ids: Vec<u64>,
    lefts: Vec<u64>,
    rights: Vec<u64>,
    flags: Vec<u8>,
}

impl Columns {
    fn with_capacity(capacity: usize) -> Self {
        Self {
            sims: Vec::with_capacity(capacity),
            ids: Vec::with_capacity(capacity),
            lefts: Vec::with_capacity(capacity),
            rights: Vec::with_capacity(capacity),
            flags: Vec::with_capacity(capacity),
        }
    }

    fn len(&self) -> usize {
        self.sims.len()
    }

    fn push(&mut self, p: &InstancePair) {
        self.sims.push(p.similarity());
        self.ids.push(p.id().0);
        let mut flags = 0u8;
        if p.is_match() {
            flags |= FLAG_MATCH;
        }
        match (p.left(), p.right()) {
            (Some(l), Some(r)) => {
                flags |= FLAG_RECORDS;
                self.lefts.push(l.0);
                self.rights.push(r.0);
            }
            _ => {
                self.lefts.push(0);
                self.rights.push(0);
            }
        }
        self.flags.push(flags);
    }

    fn pair_at(&self, i: usize) -> InstancePair {
        let id = PairId(self.ids[i]);
        let sim = self.sims[i];
        let truth = Label::from_bool(self.flags[i] & FLAG_MATCH != 0);
        if self.flags[i] & FLAG_RECORDS != 0 {
            InstancePair::with_records(
                id,
                RecordId(self.lefts[i]),
                RecordId(self.rights[i]),
                sim,
                truth,
            )
        } else {
            InstancePair::new(id, sim, truth)
        }
    }

    fn key_at(&self, i: usize) -> PairKey {
        let tag = u8::from(self.flags[i] & FLAG_RECORDS != 0);
        let (l, r) = if tag == 1 { (self.lefts[i], self.rights[i]) } else { (0, 0) };
        PairKey {
            sim_bits: sim_key_bits(self.sims[i]),
            left: (tag, l),
            right: (tag, r),
            id: self.ids[i],
        }
    }

    fn match_count(&self) -> usize {
        self.flags.iter().filter(|&&f| f & FLAG_MATCH != 0).count()
    }
}

const SEGMENT_MAGIC: [u8; 4] = *b"HSG1";

/// Encodes a segment into the documented `HSG1` spill chunk format (see the
/// [`crate::spill`] module docs). Similarities are written as raw `f64` bits,
/// so `-0.0` and every other value round-trip bit-exactly.
fn encode_segment(cols: &Columns) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(4 + 4 + cols.len() * 33 + 8);
    w.put_bytes(&SEGMENT_MAGIC);
    w.put_u32(cols.len() as u32);
    for i in 0..cols.len() {
        w.put_u64(cols.sims[i].to_bits());
        w.put_u64(cols.ids[i]);
        w.put_u64(cols.lefts[i]);
        w.put_u64(cols.rights[i]);
        w.put_u8(cols.flags[i]);
    }
    w.finish()
}

/// Decodes a `HSG1` chunk back into segment columns, verifying magic and checksum.
fn decode_segment(chunk: &[u8]) -> Result<Columns> {
    let mut r = ByteReader::checked(chunk)?;
    if r.take_bytes(4)? != SEGMENT_MAGIC {
        return Err(ErError::Spill("bad segment magic".to_string()));
    }
    let count = r.take_u32()? as usize;
    let mut cols = Columns::with_capacity(count);
    for _ in 0..count {
        cols.sims.push(f64::from_bits(r.take_u64()?));
        cols.ids.push(r.take_u64()?);
        cols.lefts.push(r.take_u64()?);
        cols.rights.push(r.take_u64()?);
        cols.flags.push(r.take_u8()?);
    }
    if r.remaining() != 0 {
        return Err(ErError::Spill("trailing bytes in segment chunk".to_string()));
    }
    Ok(cols)
}

/// Where a segment's columns currently live.
#[derive(Debug, Clone)]
enum SegmentData {
    /// Columns resident in memory (shared so readers can hold them lock-free).
    Resident(Arc<Columns>),
    /// Columns spilled to the workload's [`SpillFile`].
    Spilled(ChunkHandle),
}

/// One sorted chunk of the workload, plus the summary stats that let range
/// queries skip loading it: its length, ground-truth match count and maximum
/// canonical key. The `aos` cell lazily materializes the segment as
/// `InstancePair`s the first time [`Workload::pair`] needs a reference into it.
#[derive(Debug)]
struct Segment {
    len: usize,
    match_count: usize,
    max_key: PairKey,
    data: SegmentData,
    aos: OnceLock<Box<[InstancePair]>>,
}

impl Segment {
    fn from_columns(cols: Columns) -> Self {
        debug_assert!(cols.len() > 0, "segments are never empty");
        Self {
            len: cols.len(),
            match_count: cols.match_count(),
            max_key: cols.key_at(cols.len() - 1),
            data: SegmentData::Resident(Arc::new(cols)),
            aos: OnceLock::new(),
        }
    }

    fn max_sim(&self) -> f64 {
        f64::from_bits(self.max_key.sim_bits)
    }

    fn is_resident(&self) -> bool {
        matches!(self.data, SegmentData::Resident(_))
    }
}

impl Clone for Segment {
    fn clone(&self) -> Self {
        // The AoS materialization cache is not carried over: clones rebuild it
        // on demand, which keeps cloning cheap.
        Self {
            len: self.len,
            match_count: self.match_count,
            max_key: self.max_key,
            data: self.data.clone(),
            aos: OnceLock::new(),
        }
    }
}

/// LRU cache of decoded spilled segments, keyed by their chunk offset.
/// Alongside the entries it keeps the always-on lookup tallies surfaced
/// through [`Workload::spill_stats`] (the cache lock already serializes
/// every lookup, so plain fields suffice).
#[derive(Debug)]
struct SegCache {
    entries: HashMap<u64, (Arc<Columns>, u64)>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    bytes_loaded: u64,
}

impl SegCache {
    fn new(capacity: usize) -> Self {
        Self {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            bytes_loaded: 0,
        }
    }

    fn get(&mut self, offset: u64) -> Option<Arc<Columns>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&offset).map(|(cols, last)| {
            *last = tick;
            Arc::clone(cols)
        })
    }

    fn insert(&mut self, offset: u64, cols: Arc<Columns>) {
        self.tick += 1;
        if self.entries.len() >= self.capacity {
            if let Some(&oldest) =
                self.entries.iter().min_by_key(|(_, (_, tick))| *tick).map(|(k, _)| k)
            {
                self.entries.remove(&oldest);
                self.evictions += 1;
            }
        }
        self.entries.insert(offset, (cols, self.tick));
    }
}

/// An ER workload: instance pairs sorted by ascending similarity, stored
/// column-wise in chunked segments that can spill out of core (see the module
/// docs for the layout).
#[derive(Debug)]
pub struct Workload {
    segments: Vec<Segment>,
    /// Workload index at which each segment starts.
    starts: Vec<usize>,
    len: usize,
    budget: MemoryBudget,
    spill: Option<Arc<SpillFile>>,
    cache: Mutex<SegCache>,
    segments_spilled: u64,
    bytes_spilled: u64,
    obs: ObsHandle,
}

impl Clone for Workload {
    fn clone(&self) -> Self {
        // The read cache (and its lookup tallies) restart empty in the clone;
        // the spill-side tallies describe data the clone still references, so
        // they carry over, as does the observability handle.
        Self {
            segments: self.segments.clone(),
            starts: self.starts.clone(),
            len: self.len,
            budget: self.budget.clone(),
            spill: self.spill.clone(),
            cache: Mutex::new(SegCache::new(self.budget.cached_segments)),
            segments_spilled: self.segments_spilled,
            bytes_spilled: self.bytes_spilled,
            obs: self.obs.clone(),
        }
    }
}

impl Workload {
    /// Rejects similarities that are NaN, infinite or outside `[0, 1]` — letting
    /// a non-finite value reach the similarity sort or `lower_bound_index` would
    /// silently break the ordering invariant every optimizer relies on.
    fn validate_pairs(pairs: &[InstancePair]) -> Result<()> {
        for p in pairs {
            if !p.similarity.is_finite() || !(0.0..=1.0).contains(&p.similarity) {
                return Err(ErError::InvalidWorkload(format!(
                    "pair {} has similarity {} outside [0,1]",
                    p.id, p.similarity
                )));
            }
        }
        Ok(())
    }

    /// The canonical workload order: ascending similarity, ties broken by the
    /// underlying record ids and finally the pair id. Keying ties on record ids
    /// makes the order of record-backed workloads independent of the order in
    /// which pairs were scored (batch vs incremental ingestion assign different
    /// pair ids); record-less pairs fall back to the pair id as before.
    fn canonical_order(a: &InstancePair, b: &InstancePair) -> std::cmp::Ordering {
        a.similarity
            .partial_cmp(&b.similarity)
            .expect("similarities are validated finite")
            .then_with(|| a.left.cmp(&b.left))
            .then_with(|| a.right.cmp(&b.right))
            .then_with(|| a.id.cmp(&b.id))
    }

    fn empty() -> Self {
        Self {
            segments: Vec::new(),
            starts: Vec::new(),
            len: 0,
            budget: MemoryBudget::default(),
            spill: None,
            cache: Mutex::new(SegCache::new(MemoryBudget::default().cached_segments)),
            segments_spilled: 0,
            bytes_spilled: 0,
            obs: ObsHandle::default(),
        }
    }

    /// Chunks sorted pairs into target-sized segments.
    fn segments_from_sorted(pairs: &[InstancePair]) -> Vec<Segment> {
        pairs
            .chunks(SEGMENT_TARGET)
            .map(|chunk| {
                let mut cols = Columns::with_capacity(chunk.len());
                for p in chunk {
                    cols.push(p);
                }
                Segment::from_columns(cols)
            })
            .collect()
    }

    fn rebuild_starts(&mut self) {
        self.starts.clear();
        let mut cursor = 0usize;
        for seg in &self.segments {
            self.starts.push(cursor);
            cursor += seg.len;
        }
        self.len = cursor;
    }

    /// Builds a workload from pairs, sorting them by ascending similarity.
    ///
    /// Returns an error if any similarity is not a finite number in `[0, 1]`.
    pub fn from_pairs(mut pairs: Vec<InstancePair>) -> Result<Self> {
        Self::validate_pairs(&pairs)?;
        pairs.sort_by(Self::canonical_order);
        let mut w = Self::empty();
        w.segments = Self::segments_from_sorted(&pairs);
        w.rebuild_starts();
        Ok(w)
    }

    /// Merges new pairs into the workload, preserving the similarity order
    /// without re-sorting the existing pairs. Each incoming pair is routed to
    /// the one segment whose key range it lands in and only the touched
    /// segments are re-merged (`O(touched + new·log new)`); merged segments
    /// that outgrow twice [`SEGMENT_TARGET`] split back into target-sized
    /// chunks.
    ///
    /// This is the insertion path of the streaming resolution engine: a batch of
    /// freshly scored delta pairs is sorted on its own and then merged with the
    /// already-sorted workload, so ingesting records in any batch split yields
    /// exactly the same workload as one batch rebuild over the union.
    ///
    /// Returns an error (leaving the workload untouched) if any new similarity
    /// is not a finite number in `[0, 1]`.
    pub fn insert_sorted(&mut self, pairs: Vec<InstancePair>) -> Result<()> {
        Self::validate_pairs(&pairs)?;
        if pairs.is_empty() {
            return Ok(());
        }
        let mut incoming = pairs;
        incoming.sort_by(Self::canonical_order);
        if self.len == 0 {
            self.segments = Self::segments_from_sorted(&incoming);
            self.rebuild_starts();
            return self.enforce_budget();
        }
        // Route each incoming pair to the first segment whose max key is not
        // below it; anything past the last segment's range is appended as new
        // tail segments. Ties go to the earliest such segment, where the merge
        // places incoming pairs after equal existing ones (existing-first) —
        // exactly what a single global merge would do.
        let mut groups: Vec<Vec<InstancePair>> = vec![Vec::new(); self.segments.len()];
        let mut tail: Vec<InstancePair> = Vec::new();
        let mut seg = 0usize;
        for p in incoming {
            let key = pair_key(&p);
            while seg < self.segments.len() && self.segments[seg].max_key < key {
                seg += 1;
            }
            if seg == self.segments.len() {
                tail.push(p);
            } else {
                groups[seg].push(p);
            }
        }
        let old = std::mem::take(&mut self.segments);
        let mut rebuilt: Vec<Segment> =
            Vec::with_capacity(old.len() + tail.len() / SEGMENT_TARGET + 1);
        for (i, segment) in old.into_iter().enumerate() {
            let group = std::mem::take(&mut groups[i]);
            if group.is_empty() {
                rebuilt.push(segment);
                continue;
            }
            let cols = self.load_segment(&segment);
            let merged = Self::merge_columns(&cols, &group);
            Self::push_split(&mut rebuilt, merged);
        }
        if !tail.is_empty() {
            rebuilt.extend(Self::segments_from_sorted(&tail));
        }
        self.segments = rebuilt;
        self.rebuild_starts();
        self.enforce_budget()
    }

    /// Merges one segment's columns with a sorted group of incoming pairs.
    /// Incoming pairs win only on strictly smaller keys (existing-first on
    /// ties), mirroring the global merge this replaces.
    fn merge_columns(existing: &Columns, incoming: &[InstancePair]) -> Columns {
        let mut out = Columns::with_capacity(existing.len() + incoming.len());
        let mut i = 0usize; // existing cursor
        let mut j = 0usize; // incoming cursor
        while i < existing.len() && j < incoming.len() {
            if pair_key(&incoming[j]) < existing.key_at(i) {
                out.push(&incoming[j]);
                j += 1;
            } else {
                out.push(&existing.pair_at(i));
                i += 1;
            }
        }
        while i < existing.len() {
            out.push(&existing.pair_at(i));
            i += 1;
        }
        while j < incoming.len() {
            out.push(&incoming[j]);
            j += 1;
        }
        out
    }

    /// Pushes merged columns, splitting into target-sized chunks when the
    /// merge outgrew twice the segment target.
    fn push_split(rebuilt: &mut Vec<Segment>, merged: Columns) {
        if merged.len() <= 2 * SEGMENT_TARGET {
            rebuilt.push(Segment::from_columns(merged));
            return;
        }
        let chunks = merged.len().div_ceil(SEGMENT_TARGET);
        let mut start = 0usize;
        for c in 0..chunks {
            let size = (merged.len() - start).div_ceil(chunks - c);
            let mut cols = Columns::with_capacity(size);
            for i in start..start + size {
                cols.push(&merged.pair_at(i));
            }
            rebuilt.push(Segment::from_columns(cols));
            start += size;
        }
    }

    /// Builds a workload from `(similarity, is_match)` tuples, assigning dense pair ids.
    pub fn from_scores(scores: impl IntoIterator<Item = (f64, bool)>) -> Result<Self> {
        let pairs = scores
            .into_iter()
            .enumerate()
            .map(|(i, (sim, is_match))| {
                InstancePair::new(PairId(i as u64), sim, Label::from_bool(is_match))
            })
            .collect();
        Self::from_pairs(pairs)
    }

    /// Loads a segment's columns, reading through the LRU cache when spilled.
    ///
    /// Reads happen on `&self` accessor paths, so I/O failures on the
    /// workload's own unlinked spill file panic rather than surface as errors;
    /// the chunk checksum turns corruption into a loud failure too.
    fn load_segment(&self, segment: &Segment) -> Arc<Columns> {
        match &segment.data {
            SegmentData::Resident(cols) => Arc::clone(cols),
            SegmentData::Spilled(handle) => {
                let mut cache = self.cache.lock().expect("segment cache lock poisoned");
                if let Some(cols) = cache.get(handle.offset) {
                    cache.hits += 1;
                    self.obs.counter("spill.segcache.hits", 1);
                    return cols;
                }
                let spill = self.spill.as_ref().expect("spilled segment without a spill file");
                let chunk = spill.read_chunk(*handle).expect("spill read failed");
                let cols = Arc::new(decode_segment(&chunk).expect("spill chunk decode failed"));
                cache.misses += 1;
                cache.bytes_loaded += handle.len;
                let evictions_before = cache.evictions;
                cache.insert(handle.offset, Arc::clone(&cols));
                let evicted = cache.evictions - evictions_before;
                drop(cache);
                self.obs.counter("spill.segcache.misses", 1);
                self.obs.counter("spill.workload.bytes_loaded", handle.len);
                if evicted > 0 {
                    self.obs.counter("spill.segcache.evictions", evicted);
                }
                cols
            }
        }
    }

    fn columns(&self, seg: usize) -> Arc<Columns> {
        self.load_segment(&self.segments[seg])
    }

    /// Segment containing the workload index (index must be `< len`).
    fn segment_of(&self, index: usize) -> usize {
        assert!(index < self.len, "pair index {index} out of bounds (len {})", self.len);
        self.starts.partition_point(|&s| s <= index) - 1
    }

    /// Applies the configured memory budget: while more pairs are resident
    /// than allowed, the lowest-similarity resident segments are encoded and
    /// appended to the spill file. The spill file is an append-only arena —
    /// re-merged segments abandon their old chunks — and deterministic:
    /// residency never affects any value an accessor returns.
    fn enforce_budget(&mut self) -> Result<()> {
        let budget = self.budget.resident_pairs;
        if budget == 0 {
            return Ok(());
        }
        let mut resident: usize =
            self.segments.iter().filter(|s| s.is_resident()).map(|s| s.len).sum();
        if resident <= budget {
            return Ok(());
        }
        if self.spill.is_none() {
            self.spill = Some(Arc::new(SpillFile::create_in(self.budget.spill_dir.as_deref())?));
        }
        let spill = self.spill.as_ref().expect("spill file just ensured");
        let mut spilled_segments = 0u64;
        let mut spilled_bytes = 0u64;
        for segment in &mut self.segments {
            if resident <= budget {
                break;
            }
            if let SegmentData::Resident(cols) = &segment.data {
                let handle = spill.append(&encode_segment(cols))?;
                resident -= segment.len;
                segment.data = SegmentData::Spilled(handle);
                segment.aos = OnceLock::new();
                spilled_segments += 1;
                spilled_bytes += handle.len;
            }
        }
        if spilled_segments > 0 {
            self.segments_spilled += spilled_segments;
            self.bytes_spilled += spilled_bytes;
            self.obs.counter("spill.workload.segments_spilled", spilled_segments);
            self.obs.counter("spill.workload.bytes_spilled", spilled_bytes);
        }
        Ok(())
    }

    /// Sets the memory budget and immediately enforces it, spilling the
    /// coldest segments if the workload is over it. An unbounded budget stops
    /// future spilling but does not pull already-spilled segments back in.
    pub fn set_memory_budget(&mut self, budget: MemoryBudget) -> Result<()> {
        let cache_cap = budget.cached_segments;
        self.budget = budget;
        self.cache = Mutex::new(SegCache::new(cache_cap));
        self.enforce_budget()
    }

    /// The configured memory budget.
    pub fn memory_budget(&self) -> &MemoryBudget {
        &self.budget
    }

    /// Number of pairs currently resident in memory (in columnar segments).
    pub fn resident_pairs(&self) -> usize {
        self.segments.iter().filter(|s| s.is_resident()).map(|s| s.len).sum()
    }

    /// Number of pairs currently spilled out of core.
    pub fn spilled_pairs(&self) -> usize {
        self.segments.iter().filter(|s| !s.is_resident()).map(|s| s.len).sum()
    }

    /// Total bytes appended to the spill file so far (0 without spilling).
    pub fn spilled_bytes(&self) -> u64 {
        self.spill.as_ref().map_or(0, |s| s.bytes_written())
    }

    /// Number of storage segments (exposed for diagnostics and tests).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Always-on spill and segment-cache tallies for this workload. The
    /// spill-side counts accumulate over the workload's whole life; the
    /// cache-side counts restart when the cache is rebuilt (on clone or
    /// [`Workload::set_memory_budget`]).
    pub fn spill_stats(&self) -> SpillStats {
        let cache = self.cache.lock().expect("segment cache lock poisoned");
        SpillStats {
            segments_spilled: self.segments_spilled,
            segments_loaded: cache.misses,
            bytes_spilled: self.bytes_spilled,
            bytes_loaded: cache.bytes_loaded,
            cache_hits: cache.hits,
            cache_misses: cache.misses,
            cache_evictions: cache.evictions,
        }
    }

    /// Attaches an observability handle; spill, cache and session events on
    /// this workload are recorded through it from then on.
    pub fn set_obs(&mut self, obs: ObsHandle) {
        self.obs = obs;
    }

    /// The attached observability handle (no-op unless [`Workload::set_obs`]
    /// was called). Optimizers reach the recorder through this so session
    /// events and engine events share one sink.
    pub fn obs(&self) -> &ObsHandle {
        &self.obs
    }

    /// Number of pairs in the workload.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Streams the pairs in ascending similarity order without materializing
    /// the whole workload; spilled segments are read through the cache one at
    /// a time. Prefer this over [`Workload::pairs`] on large workloads.
    pub fn iter(&self) -> impl Iterator<Item = InstancePair> + '_ {
        (0..self.segments.len()).flat_map(move |seg| {
            let cols = self.columns(seg);
            (0..cols.len()).map(move |i| cols.pair_at(i))
        })
    }

    /// The pairs, sorted by ascending similarity, materialized into one
    /// vector. On budgeted workloads this temporarily decodes every spilled
    /// segment — use [`Workload::iter`] to stream instead.
    pub fn pairs(&self) -> Vec<InstancePair> {
        self.iter().collect()
    }

    /// The pair at a position in similarity order.
    ///
    /// The returned reference comes from the segment's lazily materialized
    /// pair cache, which stays alive for as long as the segment is neither
    /// re-merged nor spilled.
    pub fn pair(&self, index: usize) -> &InstancePair {
        let seg = self.segment_of(index);
        let offset = index - self.starts[seg];
        let aos = self.segments[seg].aos.get_or_init(|| {
            let cols = self.columns(seg);
            (0..cols.len()).map(|i| cols.pair_at(i)).collect()
        });
        &aos[offset]
    }

    /// Total number of ground-truth matching pairs.
    pub fn total_matches(&self) -> usize {
        self.segments.iter().map(|s| s.match_count).sum()
    }

    /// Number of ground-truth matching pairs within an index range.
    pub fn matches_in_range(&self, range: std::ops::Range<usize>) -> usize {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "range {range:?} out of bounds (len {})",
            self.len
        );
        if range.is_empty() {
            return 0;
        }
        let mut count = 0usize;
        for seg in 0..self.segments.len() {
            let seg_start = self.starts[seg];
            let seg_end = seg_start + self.segments[seg].len;
            if seg_end <= range.start {
                continue;
            }
            if seg_start >= range.end {
                break;
            }
            if range.start <= seg_start && seg_end <= range.end {
                // Fully covered: the summary count avoids loading the segment.
                count += self.segments[seg].match_count;
            } else {
                let cols = self.columns(seg);
                let from = range.start.max(seg_start) - seg_start;
                let to = range.end.min(seg_end) - seg_start;
                count += cols.flags[from..to].iter().filter(|&&f| f & FLAG_MATCH != 0).count();
            }
        }
        count
    }

    /// Ground-truth match proportion within an index range (`0` for an empty range).
    pub fn match_proportion(&self, range: std::ops::Range<usize>) -> f64 {
        let len = range.len();
        if len == 0 {
            return 0.0;
        }
        self.matches_in_range(range) as f64 / len as f64
    }

    /// Similarity value at a position in similarity order.
    pub fn similarity_at(&self, index: usize) -> f64 {
        let seg = self.segment_of(index);
        self.columns(seg).sims[index - self.starts[seg]]
    }

    /// Sum of similarities over an index range, accumulated strictly left to
    /// right — bit-identical to summing the flat pair array, which the subset
    /// partition's mean similarities (and therefore the GP inputs) rely on.
    fn sim_sum_range(&self, range: std::ops::Range<usize>) -> f64 {
        let mut acc = 0.0f64;
        for seg in 0..self.segments.len() {
            let seg_start = self.starts[seg];
            let seg_end = seg_start + self.segments[seg].len;
            if seg_end <= range.start {
                continue;
            }
            if seg_start >= range.end {
                break;
            }
            let cols = self.columns(seg);
            let from = range.start.max(seg_start) - seg_start;
            let to = range.end.min(seg_end) - seg_start;
            for &s in &cols.sims[from..to] {
                acc += s;
            }
        }
        acc
    }

    /// Index of the first pair whose similarity is `>= threshold`
    /// (equals `len()` when every pair is below the threshold).
    pub fn lower_bound_index(&self, threshold: f64) -> usize {
        // Skip whole segments by their max similarity, then binary-search the
        // first segment that can contain the boundary. Element predicate and
        // order match the flat `partition_point`, so results are identical.
        let seg = self.segments.partition_point(|s| s.max_sim() < threshold);
        if seg == self.segments.len() {
            return self.len;
        }
        let cols = self.columns(seg);
        self.starts[seg] + cols.sims.partition_point(|&s| s < threshold)
    }

    /// Partitions the workload into consecutive subsets of `unit_size` pairs each
    /// (the last subset absorbs the remainder). This is the subset structure used
    /// by the sampling-based and hybrid optimizers; the paper uses `unit_size = 200`.
    pub fn partition(&self, unit_size: usize) -> Result<SubsetPartition> {
        SubsetPartition::new(self, unit_size)
    }

    /// Evaluates a label assignment against the ground truth.
    pub fn evaluate(&self, assignment: &LabelAssignment) -> Result<QualityMetrics> {
        if assignment.len() != self.len() {
            return Err(ErError::InvalidArgument(format!(
                "label assignment covers {} pairs but the workload has {}",
                assignment.len(),
                self.len()
            )));
        }
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut fn_ = 0usize;
        let mut tn = 0usize;
        for (pair, label) in self.iter().zip(assignment.labels()) {
            match (pair.is_match(), label.is_match()) {
                (true, true) => tp += 1,
                (false, true) => fp += 1,
                (true, false) => fn_ += 1,
                (false, false) => tn += 1,
            }
        }
        Ok(QualityMetrics::from_counts(tp, fp, fn_, tn))
    }
}

/// A dense label assignment: one label per pair, aligned with the workload's
/// similarity order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelAssignment {
    labels: Vec<Label>,
}

impl LabelAssignment {
    /// Creates an assignment from a vector of labels aligned with the workload order.
    pub fn new(labels: Vec<Label>) -> Self {
        Self { labels }
    }

    /// Creates an assignment that labels every pair `Unmatch`.
    pub fn all_unmatch(len: usize) -> Self {
        Self { labels: vec![Label::Unmatch; len] }
    }

    /// Creates a threshold assignment: pairs at or above `threshold_index` (in
    /// similarity order) are labeled `Match`, the rest `Unmatch`.
    pub fn from_threshold_index(len: usize, threshold_index: usize) -> Self {
        let labels = (0..len)
            .map(|i| if i >= threshold_index { Label::Match } else { Label::Unmatch })
            .collect();
        Self { labels }
    }

    /// Number of labels.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the assignment is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The labels in workload order.
    pub fn labels(&self) -> &[Label] {
        &self.labels
    }

    /// Sets the label at a position.
    pub fn set(&mut self, index: usize, label: Label) {
        self.labels[index] = label;
    }

    /// Number of pairs labeled `Match`.
    pub fn match_count(&self) -> usize {
        self.labels.iter().filter(|l| l.is_match()).count()
    }
}

/// Standard ER quality metrics derived from a confusion matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QualityMetrics {
    /// True positives: matching pairs labeled match.
    pub true_positives: usize,
    /// False positives: unmatching pairs labeled match.
    pub false_positives: usize,
    /// False negatives: matching pairs labeled unmatch.
    pub false_negatives: usize,
    /// True negatives: unmatching pairs labeled unmatch.
    pub true_negatives: usize,
}

impl QualityMetrics {
    /// Builds metrics directly from confusion-matrix counts.
    pub fn from_counts(
        true_positives: usize,
        false_positives: usize,
        false_negatives: usize,
        true_negatives: usize,
    ) -> Self {
        Self { true_positives, false_positives, false_negatives, true_negatives }
    }

    /// Precision `tp / (tp + fp)`; `1` when nothing was labeled match
    /// (the empty prediction makes no false claims).
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Recall `tp / (tp + fn)`; `1` when the workload contains no matching pairs.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// F1 score, the harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Total number of pairs covered by the confusion matrix.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.false_negatives + self.true_negatives
    }
}

/// One subset of an equal-count workload partition.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSubset {
    index: usize,
    range: std::ops::Range<usize>,
    mean_similarity: f64,
}

impl WorkloadSubset {
    /// Position of the subset in the partition (0 = lowest similarities).
    pub fn index(&self) -> usize {
        self.index
    }

    /// The workload index range covered by this subset.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.range.clone()
    }

    /// Number of pairs in the subset.
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Whether the subset is empty (never true for partitions built by [`SubsetPartition::new`]).
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }

    /// Mean similarity of the pairs in the subset — the `v_i` the Gaussian process
    /// regresses over.
    pub fn mean_similarity(&self) -> f64 {
        self.mean_similarity
    }
}

/// An equal-count partition of a workload into similarity-ordered subsets.
#[derive(Debug, Clone)]
pub struct SubsetPartition {
    unit_size: usize,
    subsets: Vec<WorkloadSubset>,
    workload_len: usize,
}

impl SubsetPartition {
    /// Partitions a workload into consecutive subsets of `unit_size` pairs
    /// (the final subset absorbs any remainder so no subset is smaller than
    /// `unit_size` except when the workload itself is smaller).
    pub fn new(workload: &Workload, unit_size: usize) -> Result<Self> {
        if unit_size == 0 {
            return Err(ErError::InvalidArgument("subset unit size must be positive".to_string()));
        }
        if workload.is_empty() {
            return Err(ErError::InvalidWorkload("cannot partition an empty workload".to_string()));
        }
        let n = workload.len();
        let full_subsets = (n / unit_size).max(1);
        let mut subsets = Vec::with_capacity(full_subsets);
        for i in 0..full_subsets {
            let start = i * unit_size;
            let end = if i + 1 == full_subsets { n } else { (i + 1) * unit_size };
            let range = start..end;
            let mean_similarity = workload.sim_sum_range(range.clone()) / range.len() as f64;
            subsets.push(WorkloadSubset { index: i, range, mean_similarity });
        }
        Ok(Self { unit_size, subsets, workload_len: n })
    }

    /// The requested unit size.
    pub fn unit_size(&self) -> usize {
        self.unit_size
    }

    /// Number of subsets.
    pub fn len(&self) -> usize {
        self.subsets.len()
    }

    /// Whether the partition has no subsets (never true for successfully built partitions).
    pub fn is_empty(&self) -> bool {
        self.subsets.is_empty()
    }

    /// The subsets in ascending similarity order.
    pub fn subsets(&self) -> &[WorkloadSubset] {
        &self.subsets
    }

    /// The subset at a given position.
    pub fn subset(&self, index: usize) -> &WorkloadSubset {
        &self.subsets[index]
    }

    /// Total number of pairs covered (equals the workload length).
    pub fn total_pairs(&self) -> usize {
        self.workload_len
    }

    /// The workload index range spanned by the subsets `[from, to]` (inclusive).
    pub fn range_of(&self, from: usize, to: usize) -> std::ops::Range<usize> {
        assert!(from <= to && to < self.subsets.len(), "invalid subset range {from}..={to}");
        self.subsets[from].range().start..self.subsets[to].range().end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn simple_workload() -> Workload {
        // Matches concentrated at high similarity.
        Workload::from_scores(vec![
            (0.1, false),
            (0.2, false),
            (0.35, false),
            (0.5, true),
            (0.55, false),
            (0.7, true),
            (0.8, true),
            (0.9, true),
        ])
        .unwrap()
    }

    /// A multi-segment workload with deterministic pseudo-random pairs.
    fn scrambled_pairs(n: usize, salt: u64) -> Vec<InstancePair> {
        (0..n)
            .map(|i| {
                let h = (i as u64).wrapping_mul(2654435761).wrapping_add(salt);
                let sim = (h % 1009) as f64 / 1008.0;
                InstancePair::with_records(
                    PairId(i as u64),
                    RecordId(h % 97),
                    RecordId(1_000 + (h % 53)),
                    sim,
                    Label::from_bool(h.is_multiple_of(3)),
                )
            })
            .collect()
    }

    #[test]
    fn workload_sorts_by_similarity() {
        let w = Workload::from_scores(vec![(0.9, true), (0.1, false), (0.5, false)]).unwrap();
        let sims: Vec<f64> = w.pairs().iter().map(|p| p.similarity()).collect();
        assert_eq!(sims, vec![0.1, 0.5, 0.9]);
    }

    #[test]
    fn workload_rejects_out_of_range_similarity() {
        assert!(Workload::from_scores(vec![(1.5, true)]).is_err());
        assert!(Workload::from_scores(vec![(-0.1, false)]).is_err());
        assert!(Workload::from_scores(vec![(f64::NAN, false)]).is_err());
    }

    #[test]
    fn workload_rejects_non_finite_similarities_with_proper_error() {
        // NaN and the two infinities must all be rejected with an InvalidWorkload
        // error on every construction path — none of them may reach the
        // similarity sort, where NaN breaks the ordering invariant silently.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = Workload::from_scores(vec![(0.5, true), (bad, false)]).unwrap_err();
            assert!(matches!(err, crate::ErError::InvalidWorkload(_)), "from_scores: {err}");
            let pairs = vec![InstancePair::new(PairId(0), bad, Label::Unmatch)];
            let err = Workload::from_pairs(pairs).unwrap_err();
            assert!(matches!(err, crate::ErError::InvalidWorkload(_)), "from_pairs: {err}");
        }
    }

    #[test]
    fn insert_sorted_rejects_non_finite_and_leaves_workload_untouched() {
        let mut w = simple_workload();
        let before: Vec<f64> = w.pairs().iter().map(|p| p.similarity()).collect();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 1.5, -0.2] {
            let err = w
                .insert_sorted(vec![InstancePair::new(PairId(99), bad, Label::Match)])
                .unwrap_err();
            assert!(matches!(err, crate::ErError::InvalidWorkload(_)), "insert_sorted: {err}");
            let after: Vec<f64> = w.pairs().iter().map(|p| p.similarity()).collect();
            assert_eq!(before, after, "rejected insert must not modify the workload");
        }
    }

    #[test]
    fn insert_sorted_merges_into_similarity_order() {
        let mut w = Workload::from_scores(vec![(0.2, false), (0.6, true)]).unwrap();
        w.insert_sorted(vec![
            InstancePair::new(PairId(10), 0.4, Label::Unmatch),
            InstancePair::new(PairId(11), 0.1, Label::Unmatch),
            InstancePair::new(PairId(12), 0.9, Label::Match),
        ])
        .unwrap();
        let sims: Vec<f64> = w.pairs().iter().map(|p| p.similarity()).collect();
        assert_eq!(sims, vec![0.1, 0.2, 0.4, 0.6, 0.9]);
        // Inserting into an empty workload also works.
        let mut empty = Workload::from_pairs(vec![]).unwrap();
        empty.insert_sorted(vec![InstancePair::new(PairId(0), 0.5, Label::Match)]).unwrap();
        assert_eq!(empty.len(), 1);
        empty.insert_sorted(vec![]).unwrap();
        assert_eq!(empty.len(), 1);
    }

    #[test]
    fn negative_zero_similarity_round_trips() {
        // Validation admits -0.0 (it is within [0, 1] under partial_cmp); the
        // columnar store and the spill codec must both preserve its bit pattern.
        let mut w = Workload::from_pairs(vec![
            InstancePair::new(PairId(0), -0.0, Label::Unmatch),
            InstancePair::new(PairId(1), 0.5, Label::Match),
        ])
        .unwrap();
        assert_eq!(w.similarity_at(0).to_bits(), (-0.0f64).to_bits());
        w.set_memory_budget(MemoryBudget::bounded(1, 0)).unwrap();
        assert_eq!(w.similarity_at(0).to_bits(), (-0.0f64).to_bits());
        assert_eq!(w.lower_bound_index(0.0), 0); // -0.0 is not < 0.0
    }

    #[test]
    fn match_counting_and_proportion() {
        let w = simple_workload();
        assert_eq!(w.total_matches(), 4);
        assert_eq!(w.matches_in_range(0..4), 1);
        assert!((w.match_proportion(4..8) - 0.75).abs() < 1e-12);
        assert_eq!(w.match_proportion(3..3), 0.0);
    }

    #[test]
    fn lower_bound_index_finds_threshold() {
        let w = simple_workload();
        assert_eq!(w.lower_bound_index(0.0), 0);
        assert_eq!(w.lower_bound_index(0.5), 3);
        assert_eq!(w.lower_bound_index(0.95), 8);
    }

    #[test]
    fn evaluate_threshold_assignment() {
        let w = simple_workload();
        // Label everything with similarity >= 0.5 as match (index 3 onwards).
        let assignment = LabelAssignment::from_threshold_index(w.len(), 3);
        let m = w.evaluate(&assignment).unwrap();
        assert_eq!(m.true_positives, 4);
        assert_eq!(m.false_positives, 1);
        assert_eq!(m.false_negatives, 0);
        assert_eq!(m.true_negatives, 3);
        assert!((m.precision() - 0.8).abs() < 1e-12);
        assert!((m.recall() - 1.0).abs() < 1e-12);
        assert!((m.f1() - 2.0 * 0.8 / 1.8).abs() < 1e-12);
    }

    #[test]
    fn evaluate_rejects_wrong_length() {
        let w = simple_workload();
        assert!(w.evaluate(&LabelAssignment::all_unmatch(3)).is_err());
    }

    #[test]
    fn metrics_degenerate_cases() {
        // No predictions at all → precision 1 by convention.
        let m = QualityMetrics::from_counts(0, 0, 5, 10);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
        // No matches in the workload → recall 1 by convention.
        let m = QualityMetrics::from_counts(0, 0, 0, 10);
        assert_eq!(m.recall(), 1.0);
    }

    #[test]
    fn partition_equal_counts_with_remainder() {
        let w = Workload::from_scores((0..10).map(|i| (i as f64 / 10.0, false))).unwrap();
        let p = w.partition(3).unwrap();
        // 10 pairs, unit 3 → subsets of sizes 3, 3, 4 (last absorbs remainder).
        assert_eq!(p.len(), 3);
        assert_eq!(p.subset(0).len(), 3);
        assert_eq!(p.subset(1).len(), 3);
        assert_eq!(p.subset(2).len(), 4);
        assert_eq!(p.total_pairs(), 10);
        assert_eq!(p.range_of(0, 2), 0..10);
        assert_eq!(p.range_of(1, 1), 3..6);
    }

    #[test]
    fn partition_mean_similarities_are_monotone() {
        let w = Workload::from_scores((0..100).map(|i| (i as f64 / 100.0, false))).unwrap();
        let p = w.partition(10).unwrap();
        let means: Vec<f64> = p.subsets().iter().map(|s| s.mean_similarity()).collect();
        for pair in means.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn partition_rejects_invalid_input() {
        let w = simple_workload();
        assert!(w.partition(0).is_err());
        let empty = Workload::from_pairs(vec![]).unwrap();
        assert!(empty.partition(10).is_err());
    }

    #[test]
    fn label_assignment_helpers() {
        let mut a = LabelAssignment::all_unmatch(4);
        assert_eq!(a.match_count(), 0);
        a.set(2, Label::Match);
        assert_eq!(a.match_count(), 1);
        let t = LabelAssignment::from_threshold_index(4, 2);
        assert_eq!(t.labels(), &[Label::Unmatch, Label::Unmatch, Label::Match, Label::Match]);
    }

    #[test]
    fn multi_segment_accessors_match_flat_reference() {
        // Enough pairs for several segments; every accessor must agree with a
        // flat re-computation over the materialized pair vector.
        let n = 3 * SEGMENT_TARGET + 123;
        let w = Workload::from_pairs(scrambled_pairs(n, 7)).unwrap();
        assert!(w.segment_count() >= 3, "expected multiple segments");
        let flat = w.pairs();
        assert_eq!(flat.len(), n);
        for win in flat.windows(2) {
            assert!(Workload::canonical_order(&win[0], &win[1]) != std::cmp::Ordering::Greater);
        }
        assert_eq!(w.total_matches(), flat.iter().filter(|p| p.is_match()).count());
        for (start, end) in [(0, n), (100, SEGMENT_TARGET + 50), (n - 10, n), (77, 77)] {
            let expect = flat[start..end].iter().filter(|p| p.is_match()).count();
            assert_eq!(w.matches_in_range(start..end), expect, "range {start}..{end}");
        }
        for idx in [0, 1, SEGMENT_TARGET - 1, SEGMENT_TARGET, 2 * SEGMENT_TARGET + 17, n - 1] {
            assert_eq!(w.pair(idx), &flat[idx], "pair({idx})");
            assert_eq!(w.similarity_at(idx).to_bits(), flat[idx].similarity().to_bits());
        }
        for threshold in [0.0, 0.25, 0.5004, 0.99, 1.0, 1.5] {
            let expect = flat.partition_point(|p| p.similarity() < threshold);
            assert_eq!(w.lower_bound_index(threshold), expect, "threshold {threshold}");
        }
        // Segment-wise subset means equal the flat left-to-right sums exactly.
        let p = w.partition(997).unwrap();
        for s in p.subsets() {
            let expect =
                flat[s.range()].iter().map(|q| q.similarity()).sum::<f64>() / s.len() as f64;
            assert_eq!(s.mean_similarity().to_bits(), expect.to_bits());
        }
    }

    #[test]
    fn segment_wise_insert_matches_batch_across_segments() {
        let all = scrambled_pairs(2 * SEGMENT_TARGET + 500, 11);
        let batch = Workload::from_pairs(all.clone()).unwrap();
        let mut incremental = Workload::from_pairs(vec![]).unwrap();
        for part in all.chunks(1237) {
            incremental.insert_sorted(part.to_vec()).unwrap();
        }
        assert_eq!(incremental.pairs(), batch.pairs());
    }

    #[test]
    fn spilled_workload_is_byte_identical_and_bounded() {
        let n = 2 * SEGMENT_TARGET + 777;
        let all = scrambled_pairs(n, 23);
        let reference = Workload::from_pairs(all.clone()).unwrap();
        let mut budgeted = Workload::from_pairs(vec![]).unwrap();
        let budget = SEGMENT_TARGET; // forces most segments out of core
        budgeted
            .set_memory_budget(MemoryBudget { resident_pairs: budget, ..MemoryBudget::default() })
            .unwrap();
        for part in all.chunks(999) {
            budgeted.insert_sorted(part.to_vec()).unwrap();
            assert!(
                budgeted.resident_pairs() <= budget,
                "resident {} over budget {budget}",
                budgeted.resident_pairs()
            );
        }
        assert!(budgeted.spilled_pairs() > 0, "spill must engage");
        assert!(budgeted.spilled_bytes() > 0);
        // Bit-identical contents and identical derived values.
        for (a, b) in budgeted.iter().zip(reference.iter()) {
            assert_eq!(a.id(), b.id());
            assert_eq!(a.left(), b.left());
            assert_eq!(a.right(), b.right());
            assert_eq!(a.similarity().to_bits(), b.similarity().to_bits());
            assert_eq!(a.ground_truth(), b.ground_truth());
        }
        assert_eq!(budgeted.total_matches(), reference.total_matches());
        assert_eq!(budgeted.lower_bound_index(0.5), reference.lower_bound_index(0.5));
        let pb = budgeted.partition(500).unwrap();
        let pr = reference.partition(500).unwrap();
        for (a, b) in pb.subsets().iter().zip(pr.subsets()) {
            assert_eq!(a.mean_similarity().to_bits(), b.mean_similarity().to_bits());
        }
        // pair() works on spilled segments too (it rehydrates through the codec).
        assert_eq!(budgeted.pair(3), &reference.pairs()[3]);
        // Clones share the spill file and stay readable.
        let clone = budgeted.clone();
        assert_eq!(clone.pairs(), reference.pairs());
    }

    #[test]
    fn segment_codec_round_trips() {
        let pairs = vec![
            InstancePair::new(PairId(0), -0.0, Label::Unmatch),
            InstancePair::new(PairId(u64::MAX), 1.0, Label::Match),
            InstancePair::with_records(
                PairId(7),
                RecordId(u64::MAX),
                RecordId(0),
                0.25,
                Label::Match,
            ),
        ];
        let mut cols = Columns::with_capacity(pairs.len());
        for p in &pairs {
            cols.push(p);
        }
        let chunk = encode_segment(&cols);
        let decoded = decode_segment(&chunk).unwrap();
        assert_eq!(decoded, cols);
        for (i, p) in pairs.iter().enumerate() {
            assert_eq!(&decoded.pair_at(i), p);
            assert_eq!(decoded.pair_at(i).similarity().to_bits(), p.similarity().to_bits());
        }
        // Corruption and bad magic are detected.
        let mut bad = chunk.clone();
        bad[10] ^= 0xff;
        assert!(decode_segment(&bad).is_err());
        let mut wrong_magic = chunk.clone();
        wrong_magic[0] = b'X';
        assert!(decode_segment(&wrong_magic).is_err());
    }

    proptest! {
        #[test]
        fn partition_covers_workload_without_overlap(
            n in 1usize..500,
            unit in 1usize..80,
        ) {
            let w = Workload::from_scores((0..n).map(|i| (i as f64 / n as f64, i % 7 == 0))).unwrap();
            let p = w.partition(unit).unwrap();
            // Ranges are contiguous, non-overlapping and cover 0..n.
            let mut cursor = 0usize;
            for s in p.subsets() {
                prop_assert_eq!(s.range().start, cursor);
                prop_assert!(!s.is_empty());
                cursor = s.range().end;
            }
            prop_assert_eq!(cursor, n);
        }

        #[test]
        fn insert_sorted_any_split_equals_batch_sort(
            n in 1usize..200,
            split in 1usize..6,
            salt in 0u64..1_000,
        ) {
            // Identical pairs (ids included) arriving in any chunking must
            // produce a workload identical to the one-shot batch sort. A coarse
            // similarity grid forces plenty of ties so the tie-break matters.
            let all: Vec<InstancePair> = (0..n)
                .map(|i| {
                    let h = (i as u64).wrapping_mul(2654435761).wrapping_add(salt);
                    let sim = (h % 11) as f64 / 10.0;
                    let left = RecordId(h % 13);
                    let right = RecordId(1_000 + (h % 7));
                    InstancePair::with_records(
                        PairId(i as u64),
                        left,
                        right,
                        sim,
                        Label::from_bool(h.is_multiple_of(3)),
                    )
                })
                .collect();
            let batch = Workload::from_pairs(all.clone()).unwrap();
            let mut incremental = Workload::from_pairs(vec![]).unwrap();
            let chunk = n.div_ceil(split).max(1);
            for part in all.chunks(chunk) {
                incremental.insert_sorted(part.to_vec()).unwrap();
            }
            prop_assert_eq!(incremental.pairs(), batch.pairs());
            // The merge preserves the sort invariant.
            for w in incremental.pairs().windows(2) {
                prop_assert!(w[0].similarity() <= w[1].similarity());
            }
        }

        #[test]
        fn spill_round_trip_is_byte_identical(
            n in 1usize..400,
            split in 1usize..5,
            budget in 1usize..64,
            salt in 0u64..1_000,
        ) {
            // Any workload, any insert chunking, any (tiny) resident budget:
            // pushing segments through the spill codec and reading them back
            // must reproduce the in-memory workload bit for bit.
            let all = scrambled_pairs(n, salt);
            let reference = Workload::from_pairs(all.clone()).unwrap();
            let mut budgeted = Workload::from_pairs(vec![]).unwrap();
            budgeted.set_memory_budget(MemoryBudget {
                resident_pairs: budget,
                cached_segments: 2,
                ..MemoryBudget::default()
            }).unwrap();
            let chunk = n.div_ceil(split).max(1);
            for part in all.chunks(chunk) {
                budgeted.insert_sorted(part.to_vec()).unwrap();
            }
            prop_assert_eq!(budgeted.len(), reference.len());
            for (a, b) in budgeted.iter().zip(reference.iter()) {
                prop_assert_eq!(a.id(), b.id());
                prop_assert_eq!(a.similarity().to_bits(), b.similarity().to_bits());
                prop_assert_eq!(a.left(), b.left());
                prop_assert_eq!(a.right(), b.right());
                prop_assert_eq!(a.ground_truth(), b.ground_truth());
            }
        }

        #[test]
        fn threshold_assignments_have_monotone_recall(
            n in 2usize..200,
        ) {
            let w = Workload::from_scores((0..n).map(|i| (i as f64 / n as f64, i % 3 == 0))).unwrap();
            // Lowering the threshold index can only increase recall.
            let mut last_recall = 0.0;
            for idx in (0..=n).rev() {
                let m = w.evaluate(&LabelAssignment::from_threshold_index(n, idx)).unwrap();
                prop_assert!(m.recall() + 1e-12 >= last_recall);
                last_recall = m.recall();
            }
        }
    }
}
