//! Out-of-core spill: an append-only, chunked, file-backed byte store the
//! blocking index and the workload use to push cold data past a configurable
//! resident budget.
//!
//! The codec primitives ([`ByteWriter`], [`ByteReader`], [`fnv1a`]) live in
//! [`crate::codec`] and are re-exported here for compatibility; every
//! structure spilled through this module is written in a hand-rolled,
//! documented, little-endian byte format and verified with an FNV-1a checksum
//! on read. The two on-disk chunk layouts are:
//!
//! **Workload segment** (`HSG1`, written by [`crate::workload::Workload`]):
//!
//! ```text
//! magic   4 bytes  "HSG1"
//! count   u32      number of pairs in the segment
//! pair    count ×  { sim_bits u64, pair_id u64, left u64, right u64, flags u8 }
//! check   u64      FNV-1a of every preceding byte
//! ```
//!
//! `flags` bit 0 is the ground-truth match bit and bit 1 records whether the
//! pair carries record ids (so `left`/`right` are meaningful); `sim_bits` is
//! the raw `f64::to_bits` of the similarity, making round trips bit-exact.
//!
//! **Posting generation** (`HPG1`, written by
//! [`crate::blocking::IncrementalTokenIndex`]):
//!
//! ```text
//! magic   4 bytes  "HPG1"
//! count   u32      number of posting entries
//! entry   count ×  { side u8, token_len u32, token bytes, n u32, n × u64 ids }
//! check   u64      FNV-1a of every preceding byte
//! ```
//!
//! A frozen generation keeps a small resident directory mapping the FNV-1a
//! hash of `(side, token)` to the entry's byte range inside the chunk, so a
//! probe reads exactly one entry (and verifies the token bytes against the
//! hash collision case) instead of decoding the generation.
//!
//! The [`SpillFile`] itself is an anonymous temporary: it is unlinked right
//! after creation, so the space is reclaimed by the OS when the last handle
//! drops, even on a crash. Chunks are append-only — rewriting a segment
//! abandons its old chunk (the store is an arena, not a heap), which keeps
//! every previously returned [`ChunkHandle`] valid for the file's lifetime.

pub use crate::codec::{fnv1a, ByteReader, ByteWriter};
use crate::{ErError, Result};
use std::fs::File;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How much of the pipeline's working set may stay resident in memory; the
/// rest overflows into a [`SpillFile`]. The default is fully unbounded (no
/// spilling), which keeps the in-memory fast path allocation-identical to the
/// pre-spill implementation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryBudget {
    /// Maximum number of workload pairs kept in resident segment columns
    /// (`0` = unbounded). Coldest (lowest-similarity) segments spill first.
    pub resident_pairs: usize,
    /// Maximum number of resident posting-list entries across all blocking
    /// index shards (`0` = unbounded). Exceeding it freezes shards into
    /// on-disk generations.
    pub resident_postings: usize,
    /// Capacity (in segments) of the read cache that pins recently touched
    /// spilled segments; at least one entry is always cached.
    pub cached_segments: usize,
    /// Directory for the spill file; `None` uses the system temp directory.
    pub spill_dir: Option<PathBuf>,
}

impl MemoryBudget {
    /// A budget that never spills (the default).
    pub fn unbounded() -> Self {
        Self { resident_pairs: 0, resident_postings: 0, cached_segments: 8, spill_dir: None }
    }

    /// A bounded budget: at most `resident_pairs` workload pairs and
    /// `resident_postings` posting entries stay in memory.
    pub fn bounded(resident_pairs: usize, resident_postings: usize) -> Self {
        Self { resident_pairs, resident_postings, ..Self::unbounded() }
    }

    /// Whether this budget can ever trigger spilling.
    pub fn is_unbounded(&self) -> bool {
        self.resident_pairs == 0 && self.resident_postings == 0
    }
}

impl Default for MemoryBudget {
    fn default() -> Self {
        Self::unbounded()
    }
}

/// The location of one immutable chunk inside a [`SpillFile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkHandle {
    /// Byte offset of the chunk in the file.
    pub offset: u64,
    /// Chunk length in bytes.
    pub len: u64,
}

/// An append-only spill file. Appends serialize on an internal offset lock;
/// reads are positioned (`pread`) and run concurrently from shared
/// references.
#[derive(Debug)]
pub struct SpillFile {
    file: File,
    tail: Mutex<u64>,
    bytes_read: AtomicU64,
}

fn io_err(context: &str, e: std::io::Error) -> ErError {
    ErError::Spill(format!("{context}: {e}"))
}

impl SpillFile {
    /// Creates an anonymous spill file in `dir` (or the system temp directory)
    /// and unlinks it immediately, so the space is freed when the last handle
    /// drops.
    pub fn create_in(dir: Option<&Path>) -> Result<Self> {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = dir.map(PathBuf::from).unwrap_or_else(std::env::temp_dir);
        let pid = std::process::id();
        for _ in 0..1024 {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path = dir.join(format!(".humo-spill-{pid}-{n}"));
            match std::fs::OpenOptions::new().read(true).write(true).create_new(true).open(&path) {
                Ok(file) => {
                    // Unlink-after-open: the fd keeps the inode alive, the
                    // name disappears, and a crash leaks nothing.
                    std::fs::remove_file(&path).map_err(|e| io_err("unlink spill file", e))?;
                    return Ok(Self { file, tail: Mutex::new(0), bytes_read: AtomicU64::new(0) });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(io_err("create spill file", e)),
            }
        }
        Err(ErError::Spill("could not find a free spill file name".to_string()))
    }

    /// Appends a chunk and returns its handle.
    pub fn append(&self, bytes: &[u8]) -> Result<ChunkHandle> {
        let mut tail = self.tail.lock().expect("spill tail lock poisoned");
        let offset = *tail;
        self.file.write_all_at(bytes, offset).map_err(|e| io_err("append spill chunk", e))?;
        *tail += bytes.len() as u64;
        Ok(ChunkHandle { offset, len: bytes.len() as u64 })
    }

    /// Reads `len` bytes at an absolute offset (positioned read, no seek).
    pub fn read_at(&self, offset: u64, len: usize) -> Result<Vec<u8>> {
        let mut buf = vec![0u8; len];
        self.file.read_exact_at(&mut buf, offset).map_err(|e| io_err("read spill chunk", e))?;
        self.bytes_read.fetch_add(len as u64, Ordering::Relaxed);
        Ok(buf)
    }

    /// Reads a whole chunk back.
    pub fn read_chunk(&self, handle: ChunkHandle) -> Result<Vec<u8>> {
        self.read_at(handle.offset, handle.len as usize)
    }

    /// Total bytes appended so far.
    pub fn bytes_written(&self) -> u64 {
        *self.tail.lock().expect("spill tail lock poisoned")
    }

    /// Total bytes read back so far (across every chunk and handle).
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }
}

/// Always-on spill and segment-cache tallies for one [`crate::workload::Workload`].
///
/// These are plain integer counters kept regardless of any
/// [`er_obs::Recorder`], so reports can expose spill behaviour with
/// observability off. Rates are derived, not stored, keeping the struct
/// `Copy + Eq` for embedding in report types.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// Segments written out to the spill file.
    pub segments_spilled: u64,
    /// Segments read back (decoded) from the spill file.
    pub segments_loaded: u64,
    /// Bytes written to the spill file for spilled segments.
    pub bytes_spilled: u64,
    /// Bytes read back from the spill file for segment loads.
    pub bytes_loaded: u64,
    /// Segment lookups answered by the read cache.
    pub cache_hits: u64,
    /// Segment lookups that had to hit the spill file.
    pub cache_misses: u64,
    /// Cache entries evicted to admit newer segments.
    pub cache_evictions: u64,
}

impl SpillStats {
    /// Fraction of spilled-segment lookups served from the cache
    /// (0 when no spilled segment was ever touched).
    pub fn cache_hit_rate(&self) -> f64 {
        let touches = self.cache_hits + self.cache_misses;
        if touches == 0 {
            0.0
        } else {
            self.cache_hits as f64 / touches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_defaults_are_unbounded() {
        assert!(MemoryBudget::default().is_unbounded());
        assert!(!MemoryBudget::bounded(10, 0).is_unbounded());
        assert!(!MemoryBudget::bounded(0, 10).is_unbounded());
    }

    #[test]
    fn spill_file_round_trips_chunks() {
        let file = SpillFile::create_in(None).unwrap();
        let a = file.append(b"hello").unwrap();
        let b = file.append(&[0u8; 1000]).unwrap();
        let c = file.append(b"world").unwrap();
        assert_eq!(file.read_chunk(a).unwrap(), b"hello");
        assert_eq!(file.read_chunk(c).unwrap(), b"world");
        assert_eq!(file.read_chunk(b).unwrap(), vec![0u8; 1000]);
        // Sub-range reads address into a chunk.
        assert_eq!(file.read_at(c.offset + 1, 3).unwrap(), b"orl");
        assert_eq!(file.bytes_written(), 1010);
        // Reading past the end fails instead of returning short data.
        assert!(file.read_at(1005, 100).is_err());
    }

    #[test]
    fn codec_primitives_stay_reexported() {
        // `HSG1`/`HPG1` callers historically imported the codec from here;
        // the re-export keeps that path stable after the move to
        // `crate::codec`.
        let mut w = ByteWriter::default();
        w.put_u64(42);
        let chunk = w.finish();
        let mut r = ByteReader::checked(&chunk).unwrap();
        assert_eq!(r.take_u64().unwrap(), 42);
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }
}
