//! Record, schema and dataset model.
//!
//! Records are flat maps from attribute names to [`AttributeValue`]s. A [`Schema`]
//! declares the attribute names a dataset is expected to carry, and a [`Dataset`]
//! is an indexed collection of records from one source (e.g. "DBLP" or "Abt").

use crate::{ErError, Result};
use std::collections::BTreeMap;

/// Identifier of a record, unique within its dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RecordId(pub u64);

impl std::fmt::Display for RecordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A single attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttributeValue {
    /// Free-form text (titles, names, descriptions, …).
    Text(String),
    /// A numeric value (prices, years, …).
    Number(f64),
    /// The attribute is present in the schema but missing for this record.
    Missing,
}

impl AttributeValue {
    /// Text content if this is a [`AttributeValue::Text`] value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            AttributeValue::Text(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Numeric content if this is a [`AttributeValue::Number`] value.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            AttributeValue::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// Whether the value is missing.
    pub fn is_missing(&self) -> bool {
        matches!(self, AttributeValue::Missing)
    }
}

impl From<&str> for AttributeValue {
    fn from(s: &str) -> Self {
        AttributeValue::Text(s.to_string())
    }
}

impl From<String> for AttributeValue {
    fn from(s: String) -> Self {
        AttributeValue::Text(s)
    }
}

impl From<f64> for AttributeValue {
    fn from(v: f64) -> Self {
        AttributeValue::Number(v)
    }
}

/// Declares the attribute names carried by the records of a dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    attributes: Vec<String>,
}

impl Schema {
    /// Creates a schema from attribute names, deduplicating while preserving order.
    pub fn new<I, S>(attributes: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut seen = std::collections::BTreeSet::new();
        let mut names = Vec::new();
        for a in attributes {
            let a = a.into();
            if seen.insert(a.clone()) {
                names.push(a);
            }
        }
        Self { attributes: names }
    }

    /// Attribute names in declaration order.
    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }

    /// Whether the schema contains an attribute with the given name.
    pub fn contains(&self, name: &str) -> bool {
        self.attributes.iter().any(|a| a == name)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// Whether the schema declares no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }
}

/// A relational record: an id plus attribute values.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    id: RecordId,
    values: BTreeMap<String, AttributeValue>,
}

impl Record {
    /// Creates an empty record with the given id.
    pub fn new(id: RecordId) -> Self {
        Self { id, values: BTreeMap::new() }
    }

    /// Builder-style attribute setter.
    pub fn with(mut self, attribute: impl Into<String>, value: impl Into<AttributeValue>) -> Self {
        self.values.insert(attribute.into(), value.into());
        self
    }

    /// Sets an attribute value.
    pub fn set(&mut self, attribute: impl Into<String>, value: impl Into<AttributeValue>) {
        self.values.insert(attribute.into(), value.into());
    }

    /// The record id.
    pub fn id(&self) -> RecordId {
        self.id
    }

    /// The value of an attribute, treating absent attributes as [`AttributeValue::Missing`].
    pub fn get(&self, attribute: &str) -> &AttributeValue {
        static MISSING: AttributeValue = AttributeValue::Missing;
        self.values.get(attribute).unwrap_or(&MISSING)
    }

    /// Text of an attribute, or `None` when missing or non-text.
    pub fn text(&self, attribute: &str) -> Option<&str> {
        self.get(attribute).as_text()
    }

    /// Number of attributes actually present on this record.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the record carries no attribute values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterator over `(attribute, value)` pairs in attribute-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &AttributeValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Checks the record against a schema: every present attribute must be declared.
    pub fn validate(&self, schema: &Schema) -> Result<()> {
        for name in self.values.keys() {
            if !schema.contains(name) {
                return Err(ErError::SchemaMismatch(format!(
                    "record {} carries undeclared attribute '{name}'",
                    self.id
                )));
            }
        }
        Ok(())
    }
}

/// A named, schema-typed collection of records with id-based lookup.
#[derive(Debug, Clone)]
pub struct Dataset {
    name: String,
    schema: Schema,
    records: Vec<Record>,
    index: BTreeMap<RecordId, usize>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Self { name: name.into(), schema, records: Vec::new(), index: BTreeMap::new() }
    }

    /// Dataset name (e.g. `"DBLP"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The dataset schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Adds a record after validating it against the schema.
    ///
    /// Returns an error if the record carries undeclared attributes or if a record
    /// with the same id is already present.
    pub fn push(&mut self, record: Record) -> Result<()> {
        record.validate(&self.schema)?;
        if self.index.contains_key(&record.id()) {
            return Err(ErError::InvalidArgument(format!(
                "duplicate record id {} in dataset '{}'",
                record.id(),
                self.name
            )));
        }
        self.index.insert(record.id(), self.records.len());
        self.records.push(record);
        Ok(())
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the dataset holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Record lookup by id.
    pub fn get(&self, id: RecordId) -> Option<&Record> {
        self.index.get(&id).map(|&i| &self.records[i])
    }

    /// Record lookup by id, returning an error when absent.
    pub fn require(&self, id: RecordId) -> Result<&Record> {
        self.get(id).ok_or_else(|| ErError::UnknownRecord(id.to_string()))
    }

    /// Slice of all records in insertion order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Iterator over all records.
    pub fn iter(&self) -> impl Iterator<Item = &Record> {
        self.records.iter()
    }

    /// Number of distinct non-missing values observed for an attribute.
    ///
    /// The paper weights each attribute by its number of distinct values when
    /// aggregating attribute similarities; this method provides that count.
    pub fn distinct_value_count(&self, attribute: &str) -> usize {
        let mut texts = std::collections::BTreeSet::new();
        let mut numbers = std::collections::BTreeSet::new();
        for record in &self.records {
            match record.get(attribute) {
                AttributeValue::Text(s) => {
                    texts.insert(s.clone());
                }
                AttributeValue::Number(v) => {
                    numbers.insert(v.to_bits());
                }
                AttributeValue::Missing => {}
            }
        }
        texts.len() + numbers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(["title", "authors", "venue", "year"])
    }

    #[test]
    fn schema_deduplicates_and_preserves_order() {
        let s = Schema::new(["a", "b", "a", "c"]);
        assert_eq!(s.attributes(), &["a".to_string(), "b".to_string(), "c".to_string()]);
        assert!(s.contains("b"));
        assert!(!s.contains("z"));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn record_get_returns_missing_for_absent_attribute() {
        let r = Record::new(RecordId(1)).with("title", "a paper");
        assert_eq!(r.text("title"), Some("a paper"));
        assert!(r.get("venue").is_missing());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn attribute_value_conversions() {
        assert_eq!(AttributeValue::from("x").as_text(), Some("x"));
        assert_eq!(AttributeValue::from(3.5).as_number(), Some(3.5));
        assert!(AttributeValue::Missing.is_missing());
        assert_eq!(AttributeValue::from(3.5).as_text(), None);
    }

    #[test]
    fn record_validation_against_schema() {
        let ok = Record::new(RecordId(1)).with("title", "t").with("year", 2001.0);
        assert!(ok.validate(&schema()).is_ok());
        let bad = Record::new(RecordId(2)).with("price", 10.0);
        assert!(bad.validate(&schema()).is_err());
    }

    #[test]
    fn dataset_push_and_lookup() {
        let mut ds = Dataset::new("DBLP", schema());
        ds.push(Record::new(RecordId(1)).with("title", "entity resolution")).unwrap();
        ds.push(Record::new(RecordId(2)).with("title", "record linkage")).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.get(RecordId(2)).unwrap().text("title"), Some("record linkage"));
        assert!(ds.get(RecordId(99)).is_none());
        assert!(ds.require(RecordId(99)).is_err());
    }

    #[test]
    fn dataset_rejects_duplicate_ids_and_bad_schema() {
        let mut ds = Dataset::new("DBLP", schema());
        ds.push(Record::new(RecordId(1)).with("title", "x")).unwrap();
        assert!(ds.push(Record::new(RecordId(1)).with("title", "y")).is_err());
        assert!(ds.push(Record::new(RecordId(3)).with("undeclared", "y")).is_err());
    }

    #[test]
    fn distinct_value_count_ignores_missing_and_duplicates() {
        let mut ds = Dataset::new("DBLP", schema());
        ds.push(Record::new(RecordId(1)).with("venue", "vldb")).unwrap();
        ds.push(Record::new(RecordId(2)).with("venue", "vldb")).unwrap();
        ds.push(Record::new(RecordId(3)).with("venue", "icde")).unwrap();
        ds.push(Record::new(RecordId(4))).unwrap();
        assert_eq!(ds.distinct_value_count("venue"), 2);
        assert_eq!(ds.distinct_value_count("title"), 0);
    }
}
