//! Text normalization and tokenization.
//!
//! All string similarity functions in [`crate::similarity`] operate either on raw
//! character sequences or on token multisets produced by the tokenizers here. The
//! normalization mirrors what ER systems typically do before matching: lowercase,
//! strip punctuation, collapse whitespace.

use std::collections::BTreeMap;

/// Lowercases, maps punctuation to spaces and collapses repeated whitespace.
pub fn normalize(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    let mut last_was_space = true;
    for ch in input.chars() {
        let mapped = if ch.is_alphanumeric() { Some(ch.to_ascii_lowercase()) } else { None };
        match mapped {
            Some(c) => {
                out.push(c);
                last_was_space = false;
            }
            None => {
                if !last_was_space {
                    out.push(' ');
                    last_was_space = true;
                }
            }
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Splits normalized text into lowercase word tokens.
pub fn word_tokens(input: &str) -> Vec<String> {
    normalize(input).split_whitespace().map(|s| s.to_string()).collect()
}

/// Produces the multiset of character q-grams of the normalized input.
///
/// The input is padded with `q - 1` leading and trailing `#`/`$` markers, the
/// standard trick that lets q-gram similarity capture prefix/suffix agreement.
/// Returns an empty vector when `q == 0` or the normalized input is empty.
pub fn qgrams(input: &str, q: usize) -> Vec<String> {
    if q == 0 {
        return Vec::new();
    }
    let normalized = normalize(input);
    if normalized.is_empty() {
        return Vec::new();
    }
    let mut padded: Vec<char> = Vec::with_capacity(normalized.len() + 2 * (q - 1));
    padded.extend(std::iter::repeat_n('#', q - 1));
    padded.extend(normalized.chars());
    padded.extend(std::iter::repeat_n('$', q - 1));
    if padded.len() < q {
        return vec![padded.iter().collect()];
    }
    padded.windows(q).map(|w| w.iter().collect()).collect()
}

/// Counts token occurrences, producing a term-frequency map.
pub fn term_frequencies<S: AsRef<str>>(tokens: &[S]) -> BTreeMap<String, usize> {
    let mut tf = BTreeMap::new();
    for t in tokens {
        *tf.entry(t.as_ref().to_string()).or_insert(0) += 1;
    }
    tf
}

/// A tokenization strategy, used by token-based similarity functions and blockers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tokenizer {
    /// Whitespace-delimited word tokens of the normalized text.
    Words,
    /// Character q-grams of the given width.
    QGrams(usize),
}

impl Tokenizer {
    /// Tokenizes the input according to the strategy.
    pub fn tokenize(&self, input: &str) -> Vec<String> {
        match self {
            Tokenizer::Words => word_tokens(input),
            Tokenizer::QGrams(q) => qgrams(input, *q),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_lowercases_and_strips_punctuation() {
        assert_eq!(normalize("Entity-Resolution:  A Survey!"), "entity resolution a survey");
        assert_eq!(normalize("  "), "");
        assert_eq!(normalize("ABC123"), "abc123");
    }

    #[test]
    fn word_tokens_splits_on_whitespace() {
        assert_eq!(word_tokens("Data, Matching & Linkage"), vec!["data", "matching", "linkage"]);
        assert!(word_tokens("").is_empty());
    }

    #[test]
    fn qgrams_pad_and_window() {
        let grams = qgrams("ab", 2);
        assert_eq!(grams, vec!["#a".to_string(), "ab".to_string(), "b$".to_string()]);
        assert!(qgrams("", 2).is_empty());
        assert!(qgrams("abc", 0).is_empty());
    }

    #[test]
    fn qgrams_count_matches_length() {
        // With padding of q-1 on both sides, #grams = len + q - 1 for non-empty input.
        let grams = qgrams("abcd", 3);
        assert_eq!(grams.len(), 4 + 3 - 1);
    }

    #[test]
    fn term_frequencies_counts_duplicates() {
        let tf = term_frequencies(&["a", "b", "a", "c", "a"]);
        assert_eq!(tf["a"], 3);
        assert_eq!(tf["b"], 1);
        assert_eq!(tf.len(), 3);
    }

    #[test]
    fn tokenizer_enum_dispatch() {
        assert_eq!(Tokenizer::Words.tokenize("a b"), vec!["a", "b"]);
        assert_eq!(Tokenizer::QGrams(2).tokenize("ab").len(), 3);
    }
}
